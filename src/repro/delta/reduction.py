"""The reduction map ρ_Δ (Definition 22) and its stochastic properties.

The Δ-synchronous analysis reuses the synchronous machinery through a
string surgery: an honest slot that is followed by another honest slot
within Δ slots *may* have its block delivered too late to be counted, so
the reduction conservatively relabels it adversarial; empty slots are
deleted.  Formally, with ``b`` the leading symbol::

    ρ_Δ(⊥ w) = ρ_Δ(w)
    ρ_Δ(b w) = b · ρ_Δ(w)   if b ∈ {h, H} and the next Δ symbols are in {⊥, A}
    ρ_Δ(b w) = A · ρ_Δ(w)   otherwise

(the second case also requires at least Δ remaining symbols, so the last
Δ honest slots of a finite string are always relabelled — the "distortion"
Proposition 4 sets aside).

Proposition 4: when the source symbols are i.i.d. with activity
``f = 1 − p_⊥``, the reduced string (minus its distorted tail) is i.i.d.
with ``p'_σ = p_σ · β / f`` for honest σ and
``p'_A = 1 − β + p_A · β / f``, where ``β = (1 − f)^Δ``.

Paper erratum (window semantics)
--------------------------------

Definition 22 as printed keeps an honest symbol when the next Δ symbols
lie in ``{⊥, A}`` — adversarial slots allowed in the window.  The proof
of Proposition 4, however, decomposes the string into ``⊥``-runs and
keeps an honest symbol only when it is followed by **Δ consecutive empty
slots**; only under that (more conservative) rule are the reduced symbols
independent, and only then does ``β = (1 − f)^Δ`` appear (under the
printed rule the survival probability is ``(p_⊥ + p_A)^Δ`` and
consecutive reduced symbols are correlated).  Both variants are sound
reductions — relabelling *more* honest slots as adversarial only
strengthens the adversary — and the empty-run string dominates the
quiet-window string in the Definition 6 partial order.  This module
implements both; ``mode="empty-run"`` (the proof's semantics, default)
is the one the stochastic results of Section 8 apply to, and
``mode="quiet-window"`` is Definition 22 verbatim.
"""

from __future__ import annotations

from repro.core.alphabet import (
    ADVERSARIAL,
    EMPTY,
    SEMI_SYNCHRONOUS_ALPHABET,
    validate,
)
from repro.core.distributions import SlotProbabilities

#: Keep honest symbols followed by Δ consecutive ⊥ (Proposition 4's proof).
MODE_EMPTY_RUN = "empty-run"
#: Keep honest symbols followed by Δ symbols in {⊥, A} (Definition 22).
MODE_QUIET_WINDOW = "quiet-window"
# repro.engine.kernels mirrors these two literals (importing them from
# here would cycle through repro.delta.__init__ → settlement → analysis
# → exact → kernels); tests/engine asserts the mirrors stay equal.


def reduce_string(word: str, delta: int, mode: str = MODE_EMPTY_RUN) -> str:
    """``ρ_Δ(word)`` — the synchronous image of a semi-synchronous string.

    See the module docstring for the two window semantics; the default
    matches Proposition 4 and Theorem 7.
    """
    validate(word, SEMI_SYNCHRONOUS_ALPHABET)
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if mode == MODE_EMPTY_RUN:
        allowed = (EMPTY,)
    elif mode == MODE_QUIET_WINDOW:
        allowed = (EMPTY, ADVERSARIAL)
    else:
        raise ValueError(f"unknown reduction mode {mode!r}")
    reduced = []
    for index, symbol in enumerate(word):
        if symbol == EMPTY:
            continue
        if symbol == ADVERSARIAL:
            reduced.append(ADVERSARIAL)
            continue
        window = word[index + 1 : index + 1 + delta]
        quiet = len(window) == delta and all(c in allowed for c in window)
        reduced.append(symbol if quiet else ADVERSARIAL)
    return "".join(reduced)


def reduce_strings(
    words: list[str], delta: int, mode: str = MODE_EMPTY_RUN
) -> list[str]:
    """Vectorized ρ_Δ over a whole batch of strings.

    The batched entry point: encodes the batch as a padded symbol matrix,
    runs :func:`repro.engine.kernels.reduce_matrix` once, and decodes the
    survivors.  Semantically identical to mapping :func:`reduce_string`
    over ``words`` (the test-suite asserts exact agreement), but the cost
    per string is a few array operations instead of a Python loop.
    """
    if not words:
        return []
    for word in words:
        validate(word, SEMI_SYNCHRONOUS_ALPHABET)
    from repro.engine.kernels import encode_words, decode_matrix, reduce_matrix

    symbols, lengths = encode_words(words)
    reduced, reduced_lengths = reduce_matrix(symbols, delta, mode, lengths)
    return decode_matrix(reduced, reduced_lengths)


def slot_bijection(word: str, delta: int) -> dict[int, int]:
    """The increasing bijection π: non-empty slots of ``w`` → slots of ρ_Δ(w).

    ``π[i] = j`` means source slot ``i`` (1-based) became reduced slot
    ``j``; empty slots have no image.  ``delta`` is accepted for symmetry
    with :func:`reduce_string` (π depends only on the ⊥ positions).
    """
    validate(word, SEMI_SYNCHRONOUS_ALPHABET)
    mapping: dict[int, int] = {}
    position = 0
    for index, symbol in enumerate(word, start=1):
        if symbol == EMPTY:
            continue
        position += 1
        mapping[index] = position
    return mapping


def undistorted_length(word: str, delta: int) -> int:
    """Length of the i.i.d. prefix of ρ_Δ(word) (Proposition 4: ``|x| − Δ``).

    The final Δ symbols of the reduced string are biased toward ``A`` by
    the end-of-string effect; analyses should restrict to this prefix.
    """
    return max(len(reduce_string(word, delta)) - delta, 0)


def reduction_beta(activity: float, delta: int) -> float:
    """``β = (1 − f)^Δ`` — probability a slot is followed by Δ quiet slots.

    Theorem 7's central quantity: an honest slot survives the reduction
    with probability β (given the i.i.d. source law).
    """
    if not 0 < activity <= 1:
        raise ValueError(f"activity must lie in (0, 1], got {activity}")
    return (1.0 - activity) ** delta


def reduced_probabilities(
    probabilities: SlotProbabilities, delta: int
) -> SlotProbabilities:
    """Proposition 4: the i.i.d. law of the reduced string's prefix.

    The empty-slot mass disappears (reduced strings are synchronous); an
    honest symbol survives iff its Δ-window is quiet (probability β, with
    the geometric-gap argument of the proof), else it is absorbed into
    ``A``.
    """
    activity = probabilities.activity
    if activity >= 1.0 and delta > 0:
        # With no empty slots every window contains an active slot, so every
        # honest symbol within range of another is relabelled: β = 0 would
        # make the reduced string all-adversarial.  Surface this explicitly.
        raise ValueError(
            "activity f = 1 with delta > 0 reduces every honest slot to A; "
            "the Δ-synchronous model requires f < 1"
        )
    beta = reduction_beta(activity, delta)
    scale = beta / activity
    p_unique = probabilities.p_unique * scale
    p_multi = probabilities.p_multi * scale
    p_adversarial = 1.0 - beta + probabilities.p_adversarial * scale
    return SlotProbabilities(p_unique, p_multi, p_adversarial)


def reduced_epsilon(probabilities: SlotProbabilities, delta: int) -> float:
    """The honest-majority margin ε' of the reduced string.

    ``ε' = 1 − 2 p'_A``; Theorem 7's hypothesis (Eq. (20)) is exactly
    ``ε' ≥ ε``, i.e. the reduced string still has honest majority.
    """
    return reduced_probabilities(probabilities, delta).epsilon
