"""The Δ-synchronous setting (Section 8).

* :mod:`repro.delta.reduction` — the reduction map ρ_Δ (Definition 22)
  turning semi-synchronous strings into synchronous ones, with its slot
  bijection π and the induced symbol distribution (Proposition 4);
* :mod:`repro.delta.forks` — Δ-forks (axiom F4Δ, Definition 21) and the
  fork-image isomorphism of Proposition 3;
* :mod:`repro.delta.settlement` — (k, Δ)-settlement (Definition 23) and
  the Theorem 7 error bound.
"""

from repro.delta.reduction import (
    reduce_string,
    reduced_probabilities,
    slot_bijection,
)
from repro.delta.forks import DeltaFork, image_fork
from repro.delta.settlement import (
    is_k_delta_settled,
    theorem7_error_bound,
)

__all__ = [
    "DeltaFork",
    "image_fork",
    "is_k_delta_settled",
    "reduce_string",
    "reduced_probabilities",
    "slot_bijection",
    "theorem7_error_bound",
]
