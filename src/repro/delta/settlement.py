"""(k, Δ)-settlement (Definition 23) and the Theorem 7 bound.

Definition 23 counts *blocks* rather than slots: slot ``s`` is not
(k, Δ)-settled when some Δ-fork has two maximum-length tines that both
carry at least k vertices after slot ``s``, diverge before ``s``, and at
least one contains a vertex labelled ``s``.  Lemma 2 transfers the
question to the reduced string: a Catalan slot of ``ρ_Δ(w)`` inside the
window — whose walk afterwards escapes below by more than Δ — settles the
source slot.

This module exposes:

* a per-string decision procedure via the reduced string's margins
  (sufficient conditions from Lemma 2 / Theorem 3 and the exact margin
  criterion on the reduced string);
* the Theorem 7 probability bound (delegating to
  :mod:`repro.analysis.bounds`);
* samplers used by the Δ-sweep benchmark.
"""

from __future__ import annotations

import random

from repro.core.alphabet import EMPTY, prefix_sums
from repro.core.catalan import catalan_slots
from repro.core.distributions import (
    SlotProbabilities,
    sample_characteristic_string,
)
from repro.core.margin import margin_sequence
from repro.analysis.bounds import theorem7_settlement_bound
from repro.delta.reduction import reduce_string, slot_bijection


def is_k_delta_settled(word: str, slot: int, depth: int, delta: int) -> bool:
    """Is ``slot`` (k = depth, Δ = delta)-settled in the semi-sync ``word``?

    Decided on the reduced string: slot ``s`` maps to ``π(s)``; the
    settlement criterion is the margin condition of Lemma 1 applied to
    ``ρ_Δ(w)``, with the suffix threshold counted in reduced slots (each
    reduced slot carries at most one block per tine, so ``depth`` blocks
    require at least ``depth`` reduced slots after ``π(s)``).  Empty
    target slots are vacuously settled (they carry no block).
    """
    if not 1 <= slot <= len(word):
        raise ValueError(f"slot {slot} outside [1, {len(word)}]")
    if word[slot - 1] == EMPTY:
        return True
    reduced = reduce_string(word, delta)
    mapping = slot_bijection(word, delta)
    target = mapping[slot]
    sequence = margin_sequence(reduced, target - 1)
    considered = sequence[depth:] if depth >= 1 else sequence[1:]
    return all(value < 0 for value in considered)


def lemma2_settles(word: str, slot: int, depth: int, delta: int) -> bool:
    """The sufficient condition of Lemma 2 (one-sided, conservative).

    True when the reduced string has a Catalan slot ``c'`` within the
    window of ``depth`` reduced slots after ``π(slot)`` whose walk
    afterwards stays more than Δ below its level at ``c'``.  Guarantees
    (|y'|, Δ)-settlement of ``slot``; ``False`` is inconclusive.
    """
    reduced = reduce_string(word, delta)
    mapping = slot_bijection(word, delta)
    if word[slot - 1] == EMPTY:
        return True
    target = mapping[slot]
    window_end = min(target + depth - 1, len(reduced))
    sums = prefix_sums(reduced)
    for c in catalan_slots(reduced):
        if not target <= c <= window_end:
            continue
        escape_from = c + depth
        if escape_from > len(reduced):
            continue
        if all(
            sums[i] <= sums[c] - delta
            for i in range(escape_from, len(reduced) + 1)
        ):
            return True
    return False


def theorem7_error_bound(
    probabilities: SlotProbabilities, depth: int, delta: int
) -> float:
    """Theorem 7's bound on ``Pr[slot s is not (k, Δ)-settled]``.

    Wraps :func:`repro.analysis.bounds.theorem7_settlement_bound` with the
    library's parameter object.  Requires semi-synchronous parameters
    (``p_⊥ > 0`` when Δ > 0).
    """
    return theorem7_settlement_bound(
        probabilities.activity,
        probabilities.p_adversarial,
        probabilities.p_unique,
        delta,
        depth,
    )


def estimate_violation_rate(
    probabilities: SlotProbabilities,
    slot: int,
    depth: int,
    delta: int,
    total_length: int,
    trials: int,
    rng: random.Random,
) -> float:
    """Monte-Carlo rate of (k, Δ)-settlement failure for one slot.

    Samples semi-synchronous strings, reduces them, and applies the
    margin criterion; used by the Δ-sweep benchmark to show the measured
    rate sits below the Theorem 7 bound.
    """
    failures = 0
    for _ in range(trials):
        word = sample_characteristic_string(probabilities, total_length, rng)
        if not is_k_delta_settled(word, slot, depth, delta):
            failures += 1
    return failures / trials
