"""Δ-forks (Definition 21) and the image isomorphism (Proposition 3).

A Δ-fork relaxes the synchronous depth axiom F4: honest blocks must be
strictly deeper only than honest blocks *more than Δ slots* older
(axiom F4Δ), reflecting that a leader may not yet have seen blocks
broadcast within the last Δ slots.  Empty slots (``.``) may label no
vertex.

Proposition 3 states that applying ρ_Δ to the characteristic string and
relabelling every vertex through the slot bijection π turns any Δ-fork
into a *synchronous* fork for the reduced string — this is what lets every
synchronous theorem transfer.  :func:`image_fork` implements the
relabelling and the tests verify the image satisfies F1–F4.
"""

from __future__ import annotations

from repro.core.forks import Fork, ForkAxiomViolation, Vertex
from repro.delta.reduction import reduce_string, slot_bijection


class DeltaFork(Fork):
    """A fork under the Δ-synchronous depth axiom F4Δ.

    Identical to :class:`repro.core.forks.Fork` except that validation
    replaces F4 by F4Δ: for honest labels ``i + Δ < j``, every vertex
    labelled ``i`` is strictly shallower than every vertex labelled ``j``.
    """

    def __init__(self, word: str, delta: int) -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        super().__init__(word)
        self.delta = delta

    def _validate_f4(self) -> None:
        honest_depths: dict[int, list[int]] = {}
        for vertex in self.vertices():
            if vertex is self.root:
                continue
            if self.is_honest_vertex(vertex):
                honest_depths.setdefault(vertex.label, []).append(vertex.depth)
        labels = sorted(honest_depths)
        for i, earlier in enumerate(labels):
            for later in labels[i + 1 :]:
                if earlier + self.delta < later:
                    if max(honest_depths[earlier]) >= min(honest_depths[later]):
                        raise ForkAxiomViolation(
                            f"honest depths not increasing between slots "
                            f"{earlier} and {later} at distance > Δ = "
                            f"{self.delta} (F4Δ)"
                        )

    def copy(self) -> "DeltaFork":
        clone = DeltaFork(self.word, self.delta)
        mapping = {self.root: clone.root}
        for vertex in self.vertices():
            if vertex is self.root:
                continue
            mapping[vertex] = clone.add_vertex(mapping[vertex.parent], vertex.label)
        return clone


def image_fork(fork: DeltaFork) -> Fork:
    """The synchronous image of a Δ-fork under ρ_Δ (Proposition 3).

    Copies the tree and relabels each vertex ``u`` to ``π(ℓ(u))``.  The
    result is a fork for ``ρ_Δ(word)``; validity (in particular the
    synchronous F4) is guaranteed by the proposition because any honest
    slot within Δ of a later honest slot was relabelled adversarial, and
    is checked explicitly by the tests.
    """
    reduced_word = reduce_string(fork.word, fork.delta)
    mapping = slot_bijection(fork.word, fork.delta)
    image = Fork(reduced_word)
    correspondence: dict[Vertex, Vertex] = {fork.root: image.root}
    for vertex in fork.vertices():
        if vertex is fork.root:
            continue
        parent_image = correspondence[vertex.parent]
        correspondence[vertex] = image.add_vertex(
            parent_image, mapping[vertex.label]
        )
    return image


def max_honest_depth_before(fork: DeltaFork, slot: int) -> int:
    """Largest depth among honest vertices labelled ≤ ``slot − Δ − 1``.

    The Δ-synchronous viability threshold: a leader at ``slot`` is only
    guaranteed to have seen honest chains older than Δ slots (axiom A4Δ).
    """
    threshold = slot - fork.delta - 1
    best = 0
    for vertex in fork.vertices():
        if vertex.label <= threshold and fork.is_honest_vertex(vertex):
            best = max(best, vertex.depth)
    return best
