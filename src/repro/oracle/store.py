"""Versioned, content-fingerprinted settlement-table artifacts.

An artifact is a directory::

    <dir>/manifest.json        # format, version, spec, fingerprint, checksums
    <dir>/forward.npy          # float64 (|α|, |frac|, |Δ|, |k|)
    <dir>/minimal_depth.npy    # int64   (|α|, |frac|, |Δ|, |targets|)
    <dir>/analytic_depth.npy   # int64   (|α|, |frac|, |Δ|, |targets|)

The **fingerprint** is the SHA-256 of the canonical JSON of
``{"format", "format_version", "spec"}`` — computed by the very same
digest routine the engine's :class:`~repro.engine.cache.ResultCache`
keys estimates with, and with the same invalidation rule: *any*
component change (an axis value, the activity, the MC configuration,
the format version) is a different fingerprint, and identical
components always collapse to the same one.  ``build_tables`` uses this
to make a rebuild with identical parameters a complete no-op.

Arrays are plain ``.npy`` files so :func:`load_tables` can hand the
query service **memory-mapped** (read-only) views: a server process
touches only the pages its queries hit, and many processes serving the
same artifact share one page-cache copy.  Per-array SHA-256 checksums
in the manifest catch truncated or tampered files at load time.

Every file — arrays and manifest alike — is written through a
same-directory temporary and an atomic rename, the manifest last.  A
crashed build therefore never leaves partially-written bytes under any
artifact name (at worst: new arrays beside the previous manifest, which
the default ``verify=True`` load rejects by checksum), and rebuilding
into a directory that live servers have mmap-mapped never truncates an
inode under them — their old view stays consistent until they reload.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile

import numpy as np

from repro.engine.cache import ResultCache
from repro.oracle.tables import OracleSpec, OracleTables

__all__ = [
    "FORMAT",
    "FORMAT_VERSION",
    "StoreError",
    "load_tables",
    "manifest_path",
    "read_manifest",
    "save_tables",
    "spec_fingerprint",
    "spec_key",
    "write_json_atomic",
]

#: Artifact family name; a different format is never silently readable.
FORMAT = "repro-settlement-oracle-tables"
#: Bumped on any incompatible layout change; part of the fingerprint.
#: v2: ``OracleSpec`` grew ``mc_target_se`` (adaptive cross-check), so
#: v1 manifests re-fingerprint differently — the version check turns
#: that into an accurate "incompatible version" error instead of a
#: misleading "manifest edited" one.
#: v3: the artifact grew the ``analytic_depth`` array (certified
#: Theorem 1 fallback for DP-unreachable minimal-depth cells); v2
#: artifacts lack the file, so they must rebuild rather than load.
FORMAT_VERSION = 3

_ARRAYS = {
    "forward": ("forward.npy", np.float64),
    "minimal_depth": ("minimal_depth.npy", np.int64),
    "analytic_depth": ("analytic_depth.npy", np.int64),
}


class StoreError(RuntimeError):
    """A missing, foreign, or corrupt artifact."""


def spec_key(spec: OracleSpec) -> dict:
    """The canonical (JSON-ready) identity of an artifact build."""
    return {
        "format": FORMAT,
        "format_version": FORMAT_VERSION,
        "spec": dataclasses.asdict(spec),
    }


def spec_fingerprint(spec: OracleSpec) -> str:
    """SHA-256 over the canonical serialization of :func:`spec_key`.

    Delegates to :meth:`ResultCache.digest` so the oracle's artifacts
    and the engine's estimate cache share one keying discipline.
    """
    return ResultCache.digest(spec_key(spec))


def manifest_path(directory: str | os.PathLike) -> pathlib.Path:
    """Where the manifest of ``directory``'s artifact lives."""
    return pathlib.Path(directory) / "manifest.json"


def read_manifest(directory: str | os.PathLike) -> dict | None:
    """The parsed manifest, or ``None`` when absent/unreadable/foreign."""
    try:
        manifest = json.loads(manifest_path(directory).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT:
        return None
    return manifest


def _sha256_file(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _atomic_replace(
    directory: pathlib.Path, target: pathlib.Path, write, binary: bool
) -> None:
    """Write through a same-directory temporary and an atomic rename.

    Every artifact file goes through this — arrays included — for two
    reasons: a crashed build can leave at worst an orphan temporary,
    never a target file with partial bytes; and a rebuild into a *live*
    directory never truncates an inode a serving process has
    mmap-mapped (the old file stays intact under its open handles, the
    new one takes over the name).
    """
    descriptor, temp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb" if binary else "w") as handle:
            write(handle)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def write_json_atomic(target: str | os.PathLike, payload: dict) -> None:
    """Publish ``payload`` as canonical JSON at ``target`` atomically.

    The same temporary-plus-rename discipline every base-artifact file
    uses, exposed for the sibling artifacts that live next to a table
    directory — the refinement overlay (:mod:`repro.oracle.refine`)
    publishes through this, so serving processes polling the file can
    never observe half-written bytes.
    """
    target = pathlib.Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    _atomic_replace(
        target.parent, target, lambda handle: handle.write(text), binary=False
    )


def save_tables(
    tables: OracleTables, directory: str | os.PathLike
) -> pathlib.Path:
    """Write ``tables`` as an artifact; returns the manifest path.

    Every file lands by atomic rename, arrays first and the manifest
    last, so a half-written artifact is never loadable and existing
    mmap readers of a rebuilt directory keep their consistent old view.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays = {
        "forward": tables.forward,
        "minimal_depth": tables.minimal_depth,
        "analytic_depth": tables.analytic_depth,
    }
    entries = {}
    for name, (filename, dtype) in _ARRAYS.items():
        array = np.ascontiguousarray(arrays[name], dtype=dtype)
        path = directory / filename
        _atomic_replace(
            directory, path, lambda handle: np.save(handle, array), binary=True
        )
        entries[name] = {
            "file": filename,
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "sha256": _sha256_file(path),
        }
    manifest = {
        **spec_key(tables.spec),
        "fingerprint": spec_fingerprint(tables.spec),
        "arrays": entries,
    }
    target = manifest_path(directory)
    payload = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    _atomic_replace(
        directory, target, lambda handle: handle.write(payload), binary=False
    )
    return target


def load_tables(
    directory: str | os.PathLike,
    mmap: bool = True,
    verify: bool = True,
) -> OracleTables:
    """Load an artifact back into an :class:`OracleTables`.

    ``mmap=True`` (default) maps the arrays read-only — the load cost
    is metadata only and the OS shares pages across processes.
    ``verify=True`` recomputes each array file's SHA-256 against the
    manifest first (one streaming read; cheap next to any build) and
    re-derives the fingerprint from the stored spec, so a manifest that
    was edited by hand is rejected rather than trusted.
    """
    directory = pathlib.Path(directory)
    manifest = read_manifest(directory)
    if manifest is None:
        raise StoreError(f"no {FORMAT} artifact at {directory}")
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"artifact at {directory} has format_version "
            f"{manifest.get('format_version')}, expected {FORMAT_VERSION}"
        )
    try:
        spec = OracleSpec(
            **{
                key: tuple(value) if isinstance(value, list) else value
                for key, value in manifest["spec"].items()
            }
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StoreError(f"artifact spec at {directory} is invalid: {error}")
    if verify and manifest.get("fingerprint") != spec_fingerprint(spec):
        raise StoreError(
            f"artifact at {directory} fails its fingerprint check "
            "(manifest edited, or written by an incompatible version)"
        )
    loaded = {}
    for name, (filename, dtype) in _ARRAYS.items():
        entry = manifest.get("arrays", {}).get(name)
        if entry is None:
            raise StoreError(f"artifact at {directory} lacks array {name!r}")
        path = directory / entry["file"]
        if not path.is_file():
            raise StoreError(f"artifact array file missing: {path}")
        if verify and _sha256_file(path) != entry["sha256"]:
            raise StoreError(f"artifact array corrupt (checksum): {path}")
        array = np.load(path, mmap_mode="r" if mmap else None)
        if array.dtype != np.dtype(dtype) or list(array.shape) != list(
            entry["shape"]
        ):
            raise StoreError(
                f"artifact array {name!r} has dtype/shape "
                f"{array.dtype}/{array.shape}, manifest says "
                f"{entry['dtype']}/{entry['shape']}"
            )
        loaded[name] = array
    return OracleTables(
        spec=spec,
        forward=loaded["forward"],
        minimal_depth=loaded["minimal_depth"],
        analytic_depth=loaded["analytic_depth"],
    )
