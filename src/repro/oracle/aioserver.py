"""Asyncio HTTP/1.1 front end for the oracle (stdlib-only).

The oracle is read-only mmap-backed NumPy state — every query is a
pure lookup, microseconds of work — so the threaded server's cost is
dominated by transport overhead: a thread per connection, and
``BaseHTTPRequestHandler``'s ``email``-module header parsing on every
request.  This module replaces both with a single-threaded event loop
and a hand-rolled minimal HTTP/1.1 parser:

* **keep-alive + pipelining** — requests are parsed straight out of
  the connection's stream buffer; a client that writes several
  requests back-to-back gets all responses in order without waiting;
* **bounded buffers** — the header section is capped at
  ``MAX_HEADER_BYTES`` (431 and close on overflow) and the body at the
  app's ``max_body_bytes`` (structured 413 *without reading the
  body*), so no connection can balloon the process;
* **one write per response** — status line, headers, and body leave in
  a single ``write`` (plus ``TCP_NODELAY``), so no Nagle/delayed-ACK
  stall can re-appear.

All routing, parsing of parameters/bodies, error rendering, and
metrics live in the shared :class:`~repro.oracle.app.OracleApp` — the
response *bytes* are identical to the threaded server's on every
route, which the serving-mode conformance suite asserts.

:class:`AsyncHTTPServer` runs either blocking (:meth:`run`, the
pre-fork worker entry) or on a background thread
(:meth:`start`/:meth:`shutdown`, mirroring ``ThreadingHTTPServer``'s
test ergonomics).
"""

from __future__ import annotations

import asyncio
import socket
import threading
from http.client import responses as _REASONS
from urllib.parse import urlsplit

from repro.oracle.app import OracleApp, request_clock

__all__ = ["MAX_HEADER_BYTES", "AsyncHTTPServer"]

#: Cap on one request's header section (request line + headers).  A
#: connection that exceeds it gets a 431 and is closed — the buffer
#: bound that keeps a slow-loris header stream from growing the heap.
MAX_HEADER_BYTES = 64 * 1024


class AsyncHTTPServer:
    """One event loop serving :class:`OracleApp` over HTTP/1.1."""

    def __init__(
        self,
        app: OracleApp,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: socket.socket | None = None,
    ) -> None:
        self.app = app
        self._host = host
        self._port = port
        self._sock = sock
        self.server_address = (
            sock.getsockname()[:2] if sock is not None else None
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if self._sock is not None:
            server = await asyncio.start_server(
                self._connection, sock=self._sock, limit=MAX_HEADER_BYTES
            )
        else:
            server = await asyncio.start_server(
                self._connection,
                self._host,
                self._port,
                limit=MAX_HEADER_BYTES,
            )
        self.server_address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._stop.wait()

    def run(self) -> None:
        """Serve until :meth:`shutdown` (or KeyboardInterrupt) — the
        blocking entry a pre-fork worker or the CLI runs."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            pass

    def start(self) -> "AsyncHTTPServer":
        """Serve on a daemon thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self.run, daemon=True, name="oracle-aioserver"
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("async oracle server failed to start")
        return self

    def shutdown(self) -> None:
        """Stop the loop (threadsafe); joins the background thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    # -- the connection loop ------------------------------------------

    async def _connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        raw = writer.get_extra_info("socket")
        if raw is not None:
            raw.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else None
        app = self.app
        try:
            while True:
                try:
                    header_block = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break  # clean EOF (or mid-request disconnect)
                except asyncio.LimitOverrunError:
                    started = request_clock()
                    response = app.error(
                        431,
                        "too-large",
                        "request header section exceeds "
                        f"{MAX_HEADER_BYTES} bytes",
                    )
                    self._write(writer, response, close=True)
                    await writer.drain()
                    app.observe(
                        "?", "other", response.status,
                        request_clock() - started, client=client,
                    )
                    break

                started = request_clock()
                close = False
                method = "?"
                path = "other"
                parsed = self._parse(header_block)
                if parsed is None:
                    response = app.error(
                        400, "bad-request", "malformed HTTP request"
                    )
                    close = True
                else:
                    method, target, keep_alive, headers = parsed
                    path = urlsplit(target).path
                    close = not keep_alive
                    if b"transfer-encoding" in headers:
                        response = app.unsupported_transfer_encoding()
                        close = True
                    else:
                        raw_length = headers.get(b"content-length")
                        try:
                            length = int(raw_length) if raw_length else 0
                            if length < 0:
                                raise ValueError(length)
                        except ValueError:
                            response = app.bad_content_length(
                                (raw_length or b"").decode(
                                    "latin-1", "replace"
                                )
                            )
                            close = True
                        else:
                            if length > app.max_body_bytes:
                                # Reject on the header alone — the body
                                # is never read, so the stream framing
                                # is gone and the connection must close.
                                response = app.too_large(length)
                                close = True
                            else:
                                body = (
                                    await reader.readexactly(length)
                                    if length
                                    else b""
                                )
                                if method in ("GET", "POST"):
                                    response = app.handle(
                                        method, target, body
                                    )
                                else:
                                    response = app.error(
                                        501,
                                        "bad-request",
                                        f"unsupported method {method!r}",
                                    )
                                    close = True

                self._write(writer, response, close=close)
                await writer.drain()
                app.observe(
                    method,
                    path,
                    response.status,
                    request_clock() - started,
                    client=client,
                )
                if close:
                    break
        except asyncio.CancelledError:
            pass  # server shutting down mid-connection
        finally:
            # Responses are drained before each loop turn, so a plain
            # close loses nothing; awaiting wait_closed here would trip
            # the streams module's cancelled-task logging at shutdown.
            writer.close()

    @staticmethod
    def _parse(header_block: bytes):
        """Parse one request head; ``None`` on malformed input.

        Returns ``(method, target, keep_alive, headers)`` with header
        names lower-cased bytes.  HTTP/1.1 defaults to keep-alive,
        HTTP/1.0 to close, either overridden by ``Connection``.
        """
        lines = header_block[:-4].split(b"\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None
        method = parts[0].decode("latin-1")
        target = parts[1].decode("latin-1")
        version = parts[2]
        if version not in (b"HTTP/1.1", b"HTTP/1.0"):
            return None
        headers: dict[bytes, bytes] = {}
        for line in lines[1:]:
            name, separator, value = line.partition(b":")
            if not separator:
                return None
            headers[name.strip().lower()] = value.strip()
        connection = headers.get(b"connection", b"").lower()
        if version == b"HTTP/1.1":
            keep_alive = connection != b"close"
        else:
            keep_alive = connection == b"keep-alive"
        return method, target, keep_alive, headers

    @staticmethod
    def _write(writer: asyncio.StreamWriter, response, close: bool) -> None:
        reason = _REASONS.get(response.status, "")
        head = (
            f"HTTP/1.1 {response.status} {reason}\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            f"{'Connection: close' + chr(13) + chr(10) if close else ''}"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + response.body)
