"""Entry point: ``python -m repro.oracle`` (see :mod:`repro.oracle.cli`)."""

from repro.oracle.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
