"""Offline settlement-table builder (the oracle's layer-6 back end).

The paper's operational question — *how deep must a block be before
settlement fails with probability ≤ 10⁻ˣ?* — is a pure function of four
coordinates: adversarial stake α, uniquely-honest fraction
p_h / (1 − α), delay bound Δ, and confirmation depth k.  This module
precomputes dense grids of answers so the query service
(:mod:`repro.oracle.service`) can respond at memory speed:

* ``forward``  — ``(α, fraction, Δ, k) → Pr[k-settlement violation]``,
  one exact Section 6.6 DP run **per cell** so every stored value is
  bit-identical to ``settlement_violation_probability`` at that cell
  (a shared multi-checkpoint sweep differs in the last ulp because the
  DP grid is sized by the largest checkpoint);
* ``minimal_depth`` — ``(α, fraction, Δ, target) → min { k :
  Pr[violation at k] ≤ target }``, read off one dense DP sweep to the
  spec's depth horizon per (α, fraction, Δ) combination (sentinel
  ``−1``: the target is not reachable within the horizon);
* ``analytic_depth`` — the same inverse question answered from the
  paper's *certified* Theorem 1 upper bound (Bound 1's dominating
  series with the stationary prefix correction, summed through
  :func:`repro.analysis.genfunc.probability_tail`) instead of the DP.
  The bound dominates the exact violation probability at every k
  (property-tested in ``tests/analysis/test_bounds.py``), so each cell
  is a *certified upper bound* on the true minimal depth.  Because the
  bound is analytic, its search horizon extends ``8×`` past the DP
  horizon: cells whose DP sentinel is ``−1`` (target below the
  tabulated resolution) usually still get a finite certified answer
  here — the query service falls back to it with
  ``source = "analytic"``.

Δ handling: the slot distribution is the active-slot composition
``from_adversarial_stake(α, fraction)`` thinned to activity ``f``
(:func:`effective_probabilities`), pushed through the Proposition 4
reduction ``ρ_Δ`` — the same conservative surgery the Δ-synchronous
analysis layer uses — so the synchronous DP applies verbatim.  Larger
Δ, larger α, and smaller fraction all produce stochastically dominated
strings, which is exactly the monotonicity the service's conservative
rounding relies on (property-tested in
``tests/analysis/test_monotonicity.py``).

Cross-validation rides the sweep engine: every ``mc_depths`` cell is
also Monte-Carlo estimated through :func:`repro.engine.sweeps.run_grid`
— fanned across a :class:`~repro.engine.parallel.ProcessBackend` when
``workers > 1`` and stored in a
:class:`~repro.engine.cache.ResultCache` — and the estimate must agree
with the exact DP within 6 standard errors.  A rebuild against a warm
cache therefore re-*checks* everything while re-*estimating* nothing,
and a rebuild into a directory whose manifest fingerprint matches the
spec is a complete no-op (see :mod:`repro.oracle.store`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis import genfunc
from repro.analysis.exact import (
    compute_settlement_probabilities,
    settlement_violation_probability,
)
from repro.core.distributions import (
    SlotProbabilities,
    from_adversarial_stake,
    semi_synchronous_condition,
)
from repro.delta.reduction import reduced_probabilities
from repro.engine.cache import ResultCache, format_stats
from repro.engine.parallel import ProcessBackend, SerialBackend
from repro.engine.runner import Estimate
from repro.engine.sweeps import SweepGrid, run_grid

__all__ = [
    "ANALYTIC_HORIZON_FACTOR",
    "OracleSpec",
    "OracleTables",
    "BuildReport",
    "DEFAULT_SPEC",
    "TINY_SPEC",
    "build_tables",
    "effective_probabilities",
]

#: The certified-bound search sweeps to this multiple of the DP depth
#: horizon.  The bound is a cheap series tail (no DP grid), so the
#: extra reach costs one coefficient vector per combo; part of the
#: artifact format (changing it changes ``analytic_depth`` cells, which
#: the store's FORMAT_VERSION covers).
ANALYTIC_HORIZON_FACTOR = 8


def effective_probabilities(
    alpha: float,
    unique_fraction: float,
    delta: int,
    activity: float = 1.0,
) -> SlotProbabilities:
    """The synchronous slot law a table cell's DP runs on.

    The active-slot composition is the Table 1 parameterisation
    (``p_A = α·f``, ``p_h = (1 − α)·fraction·f``, remainder multiply
    honest); Δ > 0 pushes it through the Proposition 4 reduction, whose
    output is again synchronous.  ``activity = 1`` (no empty slots)
    short-circuits to ``from_adversarial_stake`` — bit-identical to the
    Table 1 law, with Δ = 0 required.

    Raises ``ValueError`` when the reduced law loses honest majority
    (``p′_A ≥ 1/2``): the stationary initial-reach model X_∞ of the DP
    does not exist there, so the cell cannot be tabulated — lower Δ or
    the activity.
    """
    if activity >= 1.0:
        if delta > 0:
            raise ValueError(
                "delta > 0 needs activity < 1 (the reduction relabels "
                "every honest slot of a fully active string)"
            )
        return from_adversarial_stake(alpha, unique_fraction)
    base = semi_synchronous_condition(
        activity,
        alpha * activity,
        (1.0 - alpha) * unique_fraction * activity,
    )
    reduced = reduced_probabilities(base, delta)
    if reduced.p_adversarial >= 0.5:
        raise ValueError(
            f"reduced law at alpha={alpha}, delta={delta}, "
            f"activity={activity} has p'_A = {reduced.p_adversarial:.4f} "
            ">= 1/2 (no honest majority, X_inf undefined); lower delta "
            "or the activity"
        )
    return reduced


@dataclass(frozen=True)
class OracleSpec:
    """The complete, fingerprintable description of one table build.

    Axes must be strictly increasing (``targets`` strictly decreasing:
    loosest first) so the artifact is canonical — two specs describing
    the same grid serialize identically and fingerprint identically.
    ``mc_trials = 0`` disables the Monte-Carlo cross-check; otherwise
    every ``mc_depths ⊆ depths`` cell is validated.  ``mc_target_se``
    > 0 makes the cross-check *adaptive*: instead of spending the whole
    fixed ``mc_trials`` budget per cell, each cell runs until its
    standard error reaches the requested σ-resolution (``mc_trials``
    then caps the spend) — rare cells sample more, easy cells less, and
    the realized trial counts stay a deterministic function of the spec.
    All fields are part of the artifact fingerprint (see
    :mod:`repro.oracle.store`).
    """

    alphas: tuple[float, ...]
    unique_fractions: tuple[float, ...]
    deltas: tuple[int, ...]
    depths: tuple[int, ...]
    targets: tuple[float, ...]
    activity: float = 1.0
    mc_depths: tuple[int, ...] = ()
    mc_trials: int = 0
    mc_target_se: float = 0.0
    mc_seed: int = 2020
    mc_chunk_size: int = 4096

    def __post_init__(self) -> None:
        for name in ("alphas", "unique_fractions", "deltas", "depths"):
            values = tuple(getattr(self, name))
            object.__setattr__(self, name, values)
            if not values:
                raise ValueError(f"{name} must be non-empty")
            if any(b <= a for a, b in zip(values, values[1:])):
                raise ValueError(f"{name} must be strictly increasing")
        targets = tuple(self.targets)
        object.__setattr__(self, "targets", targets)
        object.__setattr__(self, "mc_depths", tuple(self.mc_depths))
        if not targets:
            raise ValueError("targets must be non-empty")
        if any(b >= a for a, b in zip(targets, targets[1:])):
            raise ValueError("targets must be strictly decreasing")
        if any(not 0.0 < t < 1.0 for t in targets):
            raise ValueError("targets must lie in (0, 1)")
        if any(not 0.0 <= a < 0.5 for a in self.alphas):
            raise ValueError("alphas must lie in [0, 0.5)")
        if any(not 0.0 <= f <= 1.0 for f in self.unique_fractions):
            raise ValueError("unique_fractions must lie in [0, 1]")
        if any(d < 0 for d in self.deltas):
            raise ValueError("deltas must be non-negative")
        if any(k < 1 for k in self.depths):
            raise ValueError("depths must be positive")
        if not 0.0 < self.activity <= 1.0:
            raise ValueError("activity must lie in (0, 1]")
        if self.activity >= 1.0 and any(d > 0 for d in self.deltas):
            raise ValueError("deltas > 0 need activity < 1")
        if self.mc_trials < 0:
            raise ValueError("mc_trials must be non-negative")
        if self.mc_trials and not self.mc_depths:
            raise ValueError("mc_trials > 0 needs mc_depths")
        if self.mc_target_se < 0:
            raise ValueError("mc_target_se must be non-negative")
        if self.mc_target_se and not self.mc_trials:
            raise ValueError(
                "mc_target_se > 0 needs mc_trials as its trial ceiling"
            )
        if not set(self.mc_depths) <= set(self.depths):
            raise ValueError("mc_depths must be a subset of depths")
        # Every cell's slot law must exist (honest majority after the
        # reduction) — fail at spec time, not mid-build.
        for alpha in (self.alphas[-1],):
            for delta in self.deltas:
                effective_probabilities(
                    alpha, self.unique_fractions[0], delta, self.activity
                )

    @property
    def shape(self) -> tuple[int, int, int, int]:
        """Forward-table shape ``(|α|, |fraction|, |Δ|, |k|)``."""
        return (
            len(self.alphas),
            len(self.unique_fractions),
            len(self.deltas),
            len(self.depths),
        )

    @property
    def depth_horizon(self) -> int:
        """Largest depth the minimal-k search sweeps to."""
        return max(self.depths)

    def combos(self):
        """Yield ``(i, j, l, alpha, fraction, delta)`` in index order."""
        for i, alpha in enumerate(self.alphas):
            for j, fraction in enumerate(self.unique_fractions):
                for l, delta in enumerate(self.deltas):
                    yield i, j, l, alpha, fraction, delta


@dataclass(frozen=True)
class OracleTables:
    """The built tables: spec plus the two query arrays.

    ``forward[i, j, l, m]`` is the exact violation probability at
    ``(alphas[i], unique_fractions[j], deltas[l], depths[m])`` —
    bit-identical to ``settlement_violation_probability`` on the cell's
    effective law.  ``minimal_depth[i, j, l, n]`` is the smallest
    integer k (≤ ``depth_horizon``) whose violation probability is
    ≤ ``targets[n]``, or ``−1`` when no such k exists in the horizon.
    ``analytic_depth[i, j, l, n]`` is the smallest k whose *certified*
    Theorem 1 bound is ≤ the target, searched to
    ``ANALYTIC_HORIZON_FACTOR × depth_horizon`` (``−1``: the bound
    cannot certify the target even there).  ``analytic_depth = None``
    constructs an all-``−1`` array — the state of artifacts built
    before the bound was tabulated, and of hand-built test tables.
    """

    spec: OracleSpec
    forward: np.ndarray
    minimal_depth: np.ndarray
    analytic_depth: np.ndarray | None = None

    def __post_init__(self) -> None:
        expected = self.spec.shape
        if tuple(self.forward.shape) != expected:
            raise ValueError(
                f"forward shape {self.forward.shape} != spec shape {expected}"
            )
        depth_shape = expected[:3] + (len(self.spec.targets),)
        if tuple(self.minimal_depth.shape) != depth_shape:
            raise ValueError(
                f"minimal_depth shape {self.minimal_depth.shape} != "
                f"{depth_shape}"
            )
        if self.analytic_depth is None:
            object.__setattr__(
                self,
                "analytic_depth",
                np.full(depth_shape, -1, dtype=np.int64),
            )
        elif tuple(self.analytic_depth.shape) != depth_shape:
            raise ValueError(
                f"analytic_depth shape {self.analytic_depth.shape} != "
                f"{depth_shape}"
            )

    def cell_probabilities(
        self, i: int, j: int, l: int
    ) -> SlotProbabilities:
        """The effective synchronous law of combo ``(i, j, l)``."""
        return effective_probabilities(
            self.spec.alphas[i],
            self.spec.unique_fractions[j],
            self.spec.deltas[l],
            self.spec.activity,
        )


@dataclass(frozen=True)
class BuildReport:
    """What one :func:`build_tables` call did (or skipped)."""

    tables: OracleTables
    rebuilt: bool
    seconds: float
    dp_cells: int = 0
    mc_points: int = 0
    mc_cached: int = 0
    cache_stats: dict | None = None
    manifest_path: str | None = None


# ----------------------------------------------------------------------
# Build workers (top-level: shipped to ProcessBackend workers)
# ----------------------------------------------------------------------


def _forward_cell(probabilities: SlotProbabilities, depth: int) -> float:
    """One forward cell: the per-k DP, the service's exactness anchor."""
    return settlement_violation_probability(probabilities, depth)


def _minimal_depth_row(
    probabilities: SlotProbabilities,
    horizon: int,
    targets: tuple[float, ...],
) -> list[int]:
    """Minimal settling depth per target from one dense DP sweep."""
    computation = compute_settlement_probabilities(
        probabilities, list(range(1, horizon + 1))
    )
    row = []
    search_from = 1
    for target in targets:  # strictly decreasing: minimal k only grows
        found = -1
        for k in range(search_from, horizon + 1):
            if computation[k] <= target:
                found = k
                break
        row.append(found)
        if found < 0:
            row.extend([-1] * (len(targets) - len(row)))
            break
        search_from = found
    return row


def _analytic_depth_row(
    probabilities: SlotProbabilities,
    horizon: int,
    targets: tuple[float, ...],
) -> list[int]:
    """Certified minimal depths via Theorem 1's Bound 1 tail.

    One dominating-series build per combo (Bound 1 with the stationary
    prefix correction), then a binary search per target over
    :func:`~repro.analysis.genfunc.probability_tail`, which is
    non-increasing in k.  Every returned depth k satisfies
    ``bound(k) ≤ target`` and the bound dominates the exact DP, so the
    answer is a *certified upper bound* on the true minimal depth —
    never anti-conservative, merely deeper than strictly necessary.

    Degenerate laws are left uncertified (all ``−1``): ``p_unique = 0``
    makes Bound 1 vacuous, and ``ε ≥ 1`` (no adversary) makes the DP
    itself exact at depth 1, so the fallback would never be consulted.
    """
    epsilon = probabilities.epsilon
    q_unique = probabilities.p_unique
    if not 0.0 < epsilon < 1.0 or q_unique <= 0.0:
        return [-1] * len(targets)
    order = horizon + 320
    series = genfunc.bound1_dominating_series(epsilon, q_unique, order)
    correction = genfunc.stationary_prefix_correction(epsilon, order)
    series = genfunc.series_multiply(correction, series, order)
    row = []
    search_from = 1
    for target in targets:  # strictly decreasing: minimal k only grows
        if genfunc.probability_tail(series, horizon) > target:
            row.extend([-1] * (len(targets) - len(row)))
            break
        low, high = search_from, horizon
        while low < high:
            middle = (low + high) // 2
            if genfunc.probability_tail(series, middle) <= target:
                high = middle
            else:
                low = middle + 1
        row.append(low)
        search_from = low
    return row


# ----------------------------------------------------------------------
# The builder
# ----------------------------------------------------------------------


def _mc_grid(
    spec: OracleSpec, combo_index: int, probabilities: SlotProbabilities
) -> SweepGrid:
    """The per-combo Monte-Carlo validation grid (depth axis only)."""
    return SweepGrid(
        name=f"oracle-mc-{combo_index}",
        base="iid-settlement",
        axes=(("depth", spec.mc_depths),),
        trials=spec.mc_trials,
        seed=spec.mc_seed + combo_index * len(spec.mc_depths),
        chunk_size=spec.mc_chunk_size,
        overrides=(("probabilities", probabilities),),
    )


def build_tables(
    spec: OracleSpec,
    out_dir=None,
    workers: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    log=None,
    backend=None,
) -> BuildReport:
    """Build (or load) the settlement tables for ``spec``.

    When ``out_dir`` already holds an artifact whose manifest
    fingerprint matches ``spec`` (and ``force`` is false), the build is
    a **no-op**: the artifact is loaded and returned with
    ``rebuilt=False`` — nothing is recomputed, nothing rewritten.

    Otherwise: forward cells run one exact DP each and minimal-depth
    rows one dense DP sweep each — fanned across a shared
    :class:`ProcessBackend` when ``workers > 1`` — then the
    ``mc_depths`` cells are Monte-Carlo cross-checked through
    :func:`run_grid` (same backend, optional ``cache``; a warm cache
    serves every point with zero re-estimation) and must agree with the
    DP within 6 standard errors.  The result is saved to ``out_dir``
    when given.

    ``backend`` overrides the worker-count heuristic with an explicit
    :class:`~repro.engine.parallel.Backend` — a shared process pool, an
    :class:`~repro.engine.array_backend.ArrayBackend`, or a
    :class:`~repro.engine.distributed.DistributedBackend` — which then
    carries both the DP task fan-out and the Monte-Carlo cross-check.
    The caller keeps ownership: ``build_tables`` never closes it.  By
    the chunk seed-tree contract the backend choice cannot change a
    single table cell or cross-check estimate.

    ``log`` is an optional ``print``-like callable for build progress
    (the CLI passes ``print``; the default is silent).
    """
    from repro.oracle import store  # local: store imports OracleTables

    emit = log if log is not None else (lambda *_: None)
    start = time.perf_counter()

    if out_dir is not None and not force:
        existing = store.read_manifest(out_dir)
        if (
            existing is not None
            and existing.get("fingerprint") == store.spec_fingerprint(spec)
        ):
            tables = store.load_tables(out_dir)
            emit(
                f"oracle tables at {out_dir} already match spec fingerprint "
                f"{existing['fingerprint'][:16]}...; rebuild is a no-op"
            )
            return BuildReport(
                tables=tables,
                rebuilt=False,
                seconds=time.perf_counter() - start,
                manifest_path=str(store.manifest_path(out_dir)),
            )

    laws = {
        (i, j, l): effective_probabilities(
            alpha, fraction, delta, spec.activity
        )
        for i, j, l, alpha, fraction, delta in spec.combos()
    }
    shape = spec.shape
    forward = np.empty(shape, dtype=np.float64)
    minimal = np.empty(shape[:3] + (len(spec.targets),), dtype=np.int64)
    analytic = np.empty(shape[:3] + (len(spec.targets),), dtype=np.int64)
    analytic_horizon = ANALYTIC_HORIZON_FACTOR * spec.depth_horizon

    owned = None
    shared = backend is not None
    if backend is None:
        backend = SerialBackend()
        if workers > 1:
            owned = backend = ProcessBackend(workers)
    try:
        emit(
            f"building {forward.size} forward cells + {len(laws)} "
            f"minimal-depth rows (exact DP, workers={workers})"
        )
        # Submit everything before collecting anything: on a process
        # backend the DP cells pipeline across combo boundaries.
        cell_futures = {
            (i, j, l, m): backend.submit_task(
                _forward_cell, law, spec.depths[m]
            )
            for (i, j, l), law in laws.items()
            for m in range(len(spec.depths))
        }
        row_futures = {
            (i, j, l): backend.submit_task(
                _minimal_depth_row, law, spec.depth_horizon, spec.targets
            )
            for (i, j, l), law in laws.items()
        }
        analytic_futures = {
            (i, j, l): backend.submit_task(
                _analytic_depth_row, law, analytic_horizon, spec.targets
            )
            for (i, j, l), law in laws.items()
        }
        for (i, j, l, m), future in cell_futures.items():
            forward[i, j, l, m] = future.result()
        for (i, j, l), future in row_futures.items():
            minimal[i, j, l, :] = future.result()
        for (i, j, l), future in analytic_futures.items():
            analytic[i, j, l, :] = future.result()
        rescuable = (minimal < 0) & (analytic >= 0)
        emit(
            f"certified analytic fallback (horizon {analytic_horizon}) "
            f"covers {int(rescuable.sum())} of {int((minimal < 0).sum())} "
            "DP-unreachable minimal-depth cells"
        )

        mc_points = mc_cached = 0
        if spec.mc_trials:
            budget = (
                f"SE target {spec.mc_target_se:g}, "
                f"<= {spec.mc_trials} trials/point"
                if spec.mc_target_se
                else f"{spec.mc_trials} trials/point"
            )
            emit(
                f"cross-validating {len(laws)} combos x "
                f"{len(spec.mc_depths)} depths by Monte Carlo ({budget})"
            )
            depth_index = {k: m for m, k in enumerate(spec.depths)}
            for combo_index, ((i, j, l), law) in enumerate(laws.items()):
                rows = run_grid(
                    _mc_grid(spec, combo_index, law),
                    backend=backend if (shared or workers > 1) else None,
                    cache=cache,
                    # mc_target_se > 0: the cross-check targets a fixed
                    # sigma-resolution per cell instead of a fixed trial
                    # count; mc_trials becomes the per-cell ceiling.
                    target_se=spec.mc_target_se or None,
                )
                for row in rows:
                    mc_points += 1
                    mc_cached += bool(row["cached"])
                    exact = forward[i, j, l, depth_index[row["depth"]]]
                    estimate = Estimate(
                        row["value"], row["standard_error"], row["trials"]
                    )
                    if not estimate.within(exact, sigmas=6.0):
                        raise RuntimeError(
                            "Monte-Carlo cross-check failed at "
                            f"alpha={spec.alphas[i]}, "
                            f"fraction={spec.unique_fractions[j]}, "
                            f"delta={spec.deltas[l]}, k={row['depth']}: "
                            f"MC {row['value']} +- "
                            f"{row['standard_error']} vs DP {exact}"
                        )
    finally:
        if owned is not None:
            owned.close()

    tables = OracleTables(
        spec=spec,
        forward=forward,
        minimal_depth=minimal,
        analytic_depth=analytic,
    )
    stats = cache.stats() if cache is not None else None
    if stats is not None:
        emit(f"result {format_stats(stats)}")

    manifest_path = None
    if out_dir is not None:
        manifest_path = str(store.save_tables(tables, out_dir))
        emit(f"artifact written to {out_dir}")

    return BuildReport(
        tables=tables,
        rebuilt=True,
        seconds=time.perf_counter() - start,
        dp_cells=int(forward.size) + len(laws),
        mc_points=mc_points,
        mc_cached=mc_cached,
        cache_stats=stats,
        manifest_path=manifest_path,
    )


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

#: Production-shaped grid: Table 1's stake and uniqueness coordinates at
#: a realistic activity (f = 0.05, the deployed Ouroboros value), delay
#: bounds 0–4, depths to 200.  Builds in a couple of minutes serially;
#: ``workers`` scales it down.  The cross-check targets a fixed
#: σ-resolution (adaptive): ``mc_trials`` is the per-cell ceiling, not
#: the spend — easy cells stop as soon as 3×10⁻³ resolution is reached.
DEFAULT_SPEC = OracleSpec(
    alphas=(0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35),
    unique_fractions=(0.25, 0.5, 0.8, 0.9, 1.0),
    deltas=(0, 1, 2, 4),
    depths=(10, 20, 30, 40, 60, 80, 100, 140, 200),
    targets=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10),
    activity=0.05,
    mc_depths=(10, 20),
    mc_trials=32_768,
    mc_target_se=3e-3,
    mc_seed=2020,
)

#: CI / test / benchmark-sized grid: builds in seconds, still exercises
#: every code path (reduction, both table directions, adaptive MC
#: cross-check at a fixed σ-resolution).
TINY_SPEC = OracleSpec(
    alphas=(0.10, 0.20, 0.30),
    unique_fractions=(0.5, 1.0),
    deltas=(0, 2),
    depths=(5, 10, 20, 30),
    targets=(1e-1, 1e-2, 1e-3),
    activity=0.05,
    mc_depths=(5, 10),
    mc_trials=8_192,
    mc_target_se=1e-2,
    mc_seed=2020,
    mc_chunk_size=1024,
)
