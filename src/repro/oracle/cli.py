"""``python -m repro.oracle`` — build, inspect, query, and serve tables.

Verbs::

    build  --out DIR [--preset tiny|default] [axis overrides] [--workers N]
           [--cache-dir DIR] [--force]
    info   ARTIFACT
    query  ARTIFACT --alpha A --fraction F --delta D (--depth K | --target P)
    serve  ARTIFACT [--host H] [--port P] [--mode threaded|async]
           [--workers N] [--max-body-bytes B]
           [--refine] [--refine-path FILE] [--refine-interval S]
           [--refine-top N]

``build`` starts from a preset spec and lets every axis be overridden
(``--alphas 0.1,0.2 --depths 10,20,40 ...``), so CI can build a tiny
artifact in seconds and production a dense one over many cores.  A
rebuild into a directory whose manifest already matches the spec is a
no-op; ``--cache-dir`` (or ``$REPRO_SWEEP_CACHE``) lets the Monte-Carlo
cross-check reuse the engine's result cache across rebuilds.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys

from repro.engine.cache import ResultCache, cache_from_env
from repro.engine.parallel import BACKEND_NAMES, make_backend
from repro.obs import metrics as obs_metrics
from repro.obs.trace import disable_tracing, enable_tracing
from repro.oracle.app import DEFAULT_MAX_BODY_BYTES
from repro.oracle.server import SERVING_MODES, serve_forever
from repro.oracle.service import SettlementOracle
from repro.oracle.store import StoreError
from repro.oracle.tables import DEFAULT_SPEC, TINY_SPEC, OracleSpec, build_tables

__all__ = ["main"]

_PRESETS = {"tiny": TINY_SPEC, "default": DEFAULT_SPEC}


def _floats(text: str) -> tuple[float, ...]:
    return tuple(float(token) for token in text.split(","))


def _ints(text: str) -> tuple[int, ...]:
    return tuple(int(token) for token in text.split(","))


def _build_spec(args) -> OracleSpec:
    spec = _PRESETS[args.preset]
    overrides = {
        "alphas": args.alphas,
        "unique_fractions": args.fractions,
        "deltas": args.deltas,
        "depths": args.depths,
        "targets": args.targets,
        "mc_depths": args.mc_depths,
        "activity": args.activity,
        "mc_trials": args.mc_trials,
        "mc_target_se": args.mc_target_se,
        "mc_seed": args.mc_seed,
    }
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if overrides.get("mc_trials") == 0:
        overrides["mc_depths"] = ()
        overrides.setdefault("mc_target_se", 0.0)
    elif "depths" in overrides and "mc_depths" not in overrides:
        # Keep the invariant mc_depths ⊆ depths when only depths moved.
        retained = tuple(
            k for k in spec.mc_depths if k in overrides["depths"]
        )
        overrides["mc_depths"] = retained or overrides["depths"][:1]
    return dataclasses.replace(spec, **overrides)


def _cmd_build(args) -> int:
    spec = _build_spec(args)
    cache = (
        ResultCache(args.cache_dir)
        if args.cache_dir
        else cache_from_env()
    )
    backend = None
    if args.backend is not None:
        backend = make_backend(args.backend, args.workers, args.hosts)
    registry = obs_metrics.enable() if args.metrics else None
    if args.trace:
        enable_tracing(args.trace)
    try:
        report = build_tables(
            spec,
            out_dir=args.out,
            workers=args.workers,
            cache=cache,
            force=args.force,
            log=print,
            backend=backend,
        )
    finally:
        if backend is not None:
            backend.close()
        if args.trace:
            disable_tracing()
        if registry is not None:
            obs_metrics.disable()
    action = "built" if report.rebuilt else "reused (no-op rebuild)"
    print(
        f"{action} {report.tables.forward.size} forward cells + "
        f"{report.tables.minimal_depth.size} minimal-depth cells in "
        f"{report.seconds:.2f}s"
        + (
            f" ({report.mc_cached}/{report.mc_points} MC checks from cache)"
            if report.mc_points
            else ""
        )
    )
    if args.trace:
        print(
            f"trace written to {args.trace} "
            f"(summarize: python -m repro.obs.report {args.trace})"
        )
    if registry is not None:
        print("-- metrics --")
        print(registry.render(), end="")
    return 0


def _cmd_info(args) -> int:
    # One verified load; a missing/foreign artifact surfaces as the
    # StoreError main() renders (no redundant manifest pre-pass).
    oracle = SettlementOracle.load(args.artifact)
    print(json.dumps(oracle.describe(), indent=2))
    return 0


def _cmd_query(args) -> int:
    oracle = SettlementOracle.load(args.artifact)
    if (args.depth is None) == (args.target is None):
        print(
            "error: pass exactly one of --depth (forward query) or "
            "--target (minimal-depth query)",
            file=sys.stderr,
        )
        return 2
    if args.depth is not None:
        value = oracle.violation_probability(
            args.alpha, args.fraction, args.delta, args.depth
        )
        payload = {
            "alpha": args.alpha,
            "unique_fraction": args.fraction,
            "delta": args.delta,
            "depth": args.depth,
            "violation_probability": value,
        }
    else:
        depth, source = oracle.settlement_depth_with_source(
            args.alpha, args.fraction, args.delta, args.target
        )
        payload = {
            "alpha": args.alpha,
            "unique_fraction": args.fraction,
            "delta": args.delta,
            "target": args.target,
            "depth": depth,
            "source": source,
        }
    print(json.dumps(payload))
    return 0


def _cmd_serve(args) -> int:
    oracle = SettlementOracle.load(args.artifact)
    refine_path = None
    if args.refine or args.refine_path is not None:
        refine_path = args.refine_path or str(
            pathlib.Path(args.artifact) / "overlay.json"
        )
    serve_forever(
        oracle,
        host=args.host,
        port=args.port,
        quiet=args.quiet,
        mode=args.mode,
        workers=args.workers,
        max_body_bytes=args.max_body_bytes,
        refine_path=refine_path,
        refine_interval=args.refine_interval,
        refine_top=args.refine_top,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.oracle",
        description="settlement oracle: build / inspect / query / serve "
        "precomputed settlement-delay tables",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    build = verbs.add_parser("build", help="build a table artifact")
    build.add_argument("--out", required=True, help="artifact directory")
    build.add_argument(
        "--preset",
        choices=sorted(_PRESETS),
        default="default",
        help="base spec the axis overrides start from",
    )
    build.add_argument("--alphas", type=_floats, default=None)
    build.add_argument("--fractions", type=_floats, default=None)
    build.add_argument("--deltas", type=_ints, default=None)
    build.add_argument("--depths", type=_ints, default=None)
    build.add_argument("--targets", type=_floats, default=None)
    build.add_argument("--activity", type=float, default=None)
    build.add_argument(
        "--mc-trials",
        type=int,
        default=None,
        help=(
            "Monte-Carlo cross-check trial ceiling per cell (0 disables "
            "the cross-check entirely)"
        ),
    )
    build.add_argument(
        "--mc-target-se",
        type=float,
        default=None,
        help=(
            "adaptive cross-check: stop each cell at this standard-error "
            "resolution instead of spending the whole --mc-trials budget "
            "(0 = fixed trial count)"
        ),
    )
    build.add_argument("--mc-depths", type=_ints, default=None)
    build.add_argument("--mc-seed", type=int, default=None)
    build.add_argument("--workers", type=int, default=1)
    build.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help=(
            "execution backend for the DP fan-out and MC cross-check "
            "(default: serial, or process when --workers > 1); table "
            "cells are bit-identical on all of them"
        ),
    )
    build.add_argument(
        "--hosts",
        default=None,
        metavar="HOST:PORT[,HOST:PORT]",
        help=(
            "worker addresses for --backend distributed (each runs "
            "python -m repro.worker)"
        ),
    )
    build.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory for the MC cross-check "
        "(default: $REPRO_SWEEP_CACHE if set)",
    )
    build.add_argument(
        "--force",
        action="store_true",
        help="rebuild even when the artifact already matches the spec",
    )
    build.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write JSONL span events for the build to FILE (summarize "
            "with python -m repro.obs.report FILE)"
        ),
    )
    build.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "collect engine metrics during the build and print the "
            "Prometheus text exposition afterwards"
        ),
    )
    build.set_defaults(run=_cmd_build)

    info = verbs.add_parser("info", help="print an artifact's summary")
    info.add_argument("artifact")
    info.set_defaults(run=_cmd_info)

    query = verbs.add_parser("query", help="answer one query from the CLI")
    query.add_argument("artifact")
    query.add_argument("--alpha", type=float, required=True)
    query.add_argument("--fraction", type=float, required=True)
    query.add_argument("--delta", type=int, required=True)
    query.add_argument("--depth", type=int, default=None)
    query.add_argument("--target", type=float, default=None)
    query.set_defaults(run=_cmd_query)

    serve = verbs.add_parser("serve", help="serve an artifact over HTTP")
    serve.add_argument("artifact")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )
    serve.add_argument(
        "--mode",
        choices=SERVING_MODES,
        default="threaded",
        help=(
            "HTTP transport: classic thread-per-connection, or a "
            "single-threaded asyncio event loop with keep-alive "
            "pipelining (default: threaded)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "pre-fork this many worker processes sharing one listening "
            "socket; each mmap-shares the artifact and labels its "
            "metrics with worker=N (default: 1, no fork)"
        ),
    )
    serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=DEFAULT_MAX_BODY_BYTES,
        help=(
            "reject POST bodies larger than this with a structured 413 "
            f"(default: {DEFAULT_MAX_BODY_BYTES})"
        ),
    )
    serve.add_argument(
        "--refine",
        action="store_true",
        help=(
            "tally where queries snap conservatively and refine the "
            "hottest off-grid cells with exact DPs in the background, "
            "publishing a hot-swapped overlay artifact (answers only "
            "ever tighten; every reply stays a certified upper bound)"
        ),
    )
    serve.add_argument(
        "--refine-path",
        default=None,
        metavar="FILE",
        help=(
            "overlay artifact location (implies --refine; default: "
            "ARTIFACT/overlay.json)"
        ),
    )
    serve.add_argument(
        "--refine-interval",
        type=float,
        default=5.0,
        help="seconds between refinement passes (default: 5)",
    )
    serve.add_argument(
        "--refine-top",
        type=int,
        default=16,
        help="hottest off-grid cells refined per pass (default: 16)",
    )
    serve.set_defaults(run=_cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except (StoreError, ValueError, RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
