"""Traffic-driven refinement: tiered overlay artifacts for hot cells.

The base table answers every in-hull query conservatively by snapping
to a precomputed grid corner; between grid lines that upper bound can
be loose.  This module closes the gap *where traffic actually lands*:

1. **Tally** — :class:`SnapTally` records, for every successful
   ``/v1/violation`` query, the *quantized* query coordinates: α and
   the uniquely-honest fraction rounded to the ``1/REFINE_SCALE`` grid
   (α up, fraction down — the conservative directions), Δ rounded up
   and k down to integers.  Quantized coordinates dominate the query
   but are (much) closer to it than the coarse grid corner.
2. **Refine** — :func:`refine_once` takes the hottest quantized cells
   and runs the *exact* Section 6.6 DP at each one — the same
   per-cell computation the offline builder uses — producing a value
   that is a certified upper bound for every query in the cell (the
   quantized coordinates dominate them all) yet is ≤ the base table's
   answer (the grid corner dominates the quantized coordinates;
   violation probability is monotone along every axis).
3. **Publish** — the refined cells land in a fingerprinted *overlay
   artifact* (:func:`save_overlay` / :func:`load_overlay`), a small
   JSON file bound to the base artifact's fingerprint and written
   atomically, so a crashed refiner never corrupts it and pre-fork
   siblings can hot-load it mid-flight.
4. **Serve** — :meth:`SettlementOracle.set_overlay` installs the
   overlay with one atomic reference swap; every answer becomes
   ``min(base, overlay)``, so refinement only ever *tightens* answers
   and every reply remains a certified upper bound
   (``tests/oracle/test_refine.py`` pins both directions against the
   direct DP).

:class:`RefineDaemon` runs the loop in the background: the *leader*
(worker 0 in pre-fork mode, the only process otherwise) refines its
tally every ``interval`` seconds and publishes; *followers* watch the
overlay file and hot-swap when its fingerprint changes.  Sustained
traffic therefore makes its own answers tighter while the serving hot
path never blocks — the swap is a reference assignment.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import threading
from collections import Counter

import numpy as np

from repro.analysis.exact import settlement_violation_probability
from repro.engine.cache import ResultCache
from repro.oracle.tables import effective_probabilities

__all__ = [
    "OVERLAY_FORMAT",
    "OVERLAY_VERSION",
    "REFINE_SCALE",
    "OverlayError",
    "RefineDaemon",
    "SnapTally",
    "key_coordinates",
    "load_overlay",
    "overlay_fingerprint",
    "quantize_columns",
    "quantize_key",
    "refine_once",
    "save_overlay",
]

#: Overlay artifact family name; foreign files are never readable.
OVERLAY_FORMAT = "repro-settlement-oracle-overlay"
#: Bumped on any incompatible overlay layout change.
OVERLAY_VERSION = 1

#: Quantization denominator for the α and fraction axes: refined cells
#: live on the 1/64 grid, ~an order of magnitude finer than any
#: realistic base-table axis.  Part of the overlay format (a different
#: scale yields different keys, so it is checked at load time).
REFINE_SCALE = 64


class OverlayError(RuntimeError):
    """A missing, foreign, corrupt, or mismatched overlay artifact."""


# ----------------------------------------------------------------------
# Quantization (shared with the service's overlay lookup)
# ----------------------------------------------------------------------


def quantize_key(
    alpha: float, fraction: float, delta: float, depth: float
) -> tuple[int, int, int, int]:
    """The conservative quantized cell of one query.

    α rounds **up** to the next ``1/REFINE_SCALE`` multiple, the
    fraction **down**, Δ **up** to an integer, k **down** to an integer
    — each the direction that makes the violation probability larger,
    so the cell's exact DP value dominates the query's true value.
    The post-hoc comparisons repair the sub-ulp cases where the float
    product rounded across an integer boundary: domination is exact,
    not merely probable.
    """
    qa = math.ceil(alpha * REFINE_SCALE)
    if qa / REFINE_SCALE < alpha:
        qa += 1
    qf = math.floor(fraction * REFINE_SCALE)
    if qf / REFINE_SCALE > fraction:
        qf -= 1
    qd = math.ceil(delta)
    if qd < delta:
        qd += 1
    qk = math.floor(depth)
    if qk > depth:
        qk -= 1
    return (qa, qf, int(qd), int(qk))


def quantize_columns(
    alphas, fractions, deltas, depths
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`quantize_key` over query columns."""
    alphas = np.asarray(alphas, dtype=np.float64)
    fractions = np.asarray(fractions, dtype=np.float64)
    deltas = np.asarray(deltas, dtype=np.float64)
    depths = np.asarray(depths, dtype=np.float64)
    qa = np.ceil(alphas * REFINE_SCALE).astype(np.int64)
    qa = np.where(qa / REFINE_SCALE < alphas, qa + 1, qa)
    qf = np.floor(fractions * REFINE_SCALE).astype(np.int64)
    qf = np.where(qf / REFINE_SCALE > fractions, qf - 1, qf)
    qd = np.ceil(deltas).astype(np.int64)
    qd = np.where(qd < deltas, qd + 1, qd)
    qk = np.floor(depths).astype(np.int64)
    qk = np.where(qk > depths, qk - 1, qk)
    return qa, qf, qd, qk


def key_coordinates(
    key: tuple[int, int, int, int]
) -> tuple[float, float, int, int]:
    """The real coordinates a quantized key denotes."""
    qa, qf, qd, qk = key
    return qa / REFINE_SCALE, qf / REFINE_SCALE, int(qd), int(qk)


# ----------------------------------------------------------------------
# The traffic tally
# ----------------------------------------------------------------------


class SnapTally:
    """Thread-safe counts of quantized query cells, hottest-first.

    Fed by :class:`~repro.oracle.app.OracleApp` on every successful
    violation query; drained by the refinement loop.  Counts are
    cumulative — the refiner excludes already-refined keys instead of
    resetting, so a cell's heat ranking never flickers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Counter = Counter()

    def record(
        self, alpha: float, fraction: float, delta: float, depth: float
    ) -> None:
        key = quantize_key(alpha, fraction, delta, depth)
        with self._lock:
            self._counts[key] += 1

    def record_batch(self, alphas, fractions, deltas, depths) -> None:
        qa, qf, qd, qk = quantize_columns(alphas, fractions, deltas, depths)
        keys = zip(qa.tolist(), qf.tolist(), qd.tolist(), qk.tolist())
        with self._lock:
            self._counts.update(keys)

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._counts)

    def hottest(self, count: int, exclude=frozenset()) -> list:
        """The ``count`` most-hit quantized keys not in ``exclude``."""
        with self._lock:
            ranked = self._counts.most_common()
        return [key for key, _ in ranked if key not in exclude][:count]


# ----------------------------------------------------------------------
# Refinement proper
# ----------------------------------------------------------------------


def refine_once(
    oracle, tally: SnapTally, top: int = 16, overlay: dict | None = None
) -> dict:
    """Refine the ``top`` hottest not-yet-refined cells; returns the
    merged overlay (a new dict — the input is never mutated, so the
    serving side can keep reading the old one mid-refine).

    Each new cell is one exact DP at the quantized coordinates on the
    spec's activity — certified, by monotonicity, to upper-bound every
    query in the cell.  Cells whose Δ-reduced law does not exist
    (honest majority lost) or whose depth undercuts 1 are skipped:
    the base table keeps answering those conservatively.
    """
    merged = dict(overlay or {})
    activity = oracle.spec.activity
    for key in tally.hottest(top, exclude=merged.keys()):
        alpha, fraction, delta, depth = key_coordinates(key)
        if depth < 1 or not 0.0 <= alpha < 0.5 or not 0.0 <= fraction <= 1.0:
            continue
        try:
            law = effective_probabilities(alpha, fraction, delta, activity)
        except ValueError:
            continue
        merged[key] = float(settlement_violation_probability(law, depth))
    return merged


# ----------------------------------------------------------------------
# Overlay artifacts
# ----------------------------------------------------------------------


def _overlay_key(payload: dict) -> dict:
    return {
        name: payload[name]
        for name in (
            "format",
            "format_version",
            "base_fingerprint",
            "scale",
            "entries",
        )
    }


def overlay_fingerprint(payload: dict) -> str:
    """SHA-256 of the overlay's canonical content (same digest
    discipline as the base artifact and the engine's result cache)."""
    return ResultCache.digest(_overlay_key(payload))


def save_overlay(
    path: str | os.PathLike, base_fingerprint: str, entries: dict
) -> pathlib.Path:
    """Atomically publish ``entries`` as an overlay bound to the base
    artifact ``base_fingerprint``; returns the written path."""
    from repro.oracle.store import write_json_atomic

    path = pathlib.Path(path)
    payload = {
        "format": OVERLAY_FORMAT,
        "format_version": OVERLAY_VERSION,
        "base_fingerprint": base_fingerprint,
        "scale": REFINE_SCALE,
        "entries": {
            "{},{},{},{}".format(*key): value
            for key, value in sorted(entries.items())
        },
    }
    payload["fingerprint"] = overlay_fingerprint(payload)
    write_json_atomic(path, payload)
    return path


def load_overlay(
    path: str | os.PathLike, base_fingerprint: str | None = None
) -> dict:
    """Load and verify an overlay; returns ``{key: value}``.

    Raises :class:`OverlayError` on a missing/foreign/corrupt file, a
    fingerprint mismatch, or (when ``base_fingerprint`` is given) an
    overlay built against a different base artifact.
    """
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise OverlayError(f"no readable overlay at {path}: {error}")
    if (
        not isinstance(payload, dict)
        or payload.get("format") != OVERLAY_FORMAT
    ):
        raise OverlayError(f"{path} is not a {OVERLAY_FORMAT} artifact")
    if payload.get("format_version") != OVERLAY_VERSION:
        raise OverlayError(
            f"overlay at {path} has format_version "
            f"{payload.get('format_version')}, expected {OVERLAY_VERSION}"
        )
    if payload.get("scale") != REFINE_SCALE:
        raise OverlayError(
            f"overlay at {path} uses scale {payload.get('scale')}, "
            f"expected {REFINE_SCALE}"
        )
    if payload.get("fingerprint") != overlay_fingerprint(payload):
        raise OverlayError(
            f"overlay at {path} fails its fingerprint check "
            "(edited, or written by an incompatible version)"
        )
    if (
        base_fingerprint is not None
        and payload.get("base_fingerprint") != base_fingerprint
    ):
        raise OverlayError(
            f"overlay at {path} was built for base artifact "
            f"{payload.get('base_fingerprint', '?')[:16]}..., not "
            f"{base_fingerprint[:16]}..."
        )
    entries = {}
    try:
        for text, value in payload["entries"].items():
            key = tuple(int(part) for part in text.split(","))
            if len(key) != 4:
                raise ValueError(text)
            entries[key] = float(value)
    except (AttributeError, TypeError, ValueError) as error:
        raise OverlayError(f"overlay entries at {path} are invalid: {error}")
    return entries


# ----------------------------------------------------------------------
# The background daemon
# ----------------------------------------------------------------------


class RefineDaemon(threading.Thread):
    """Background refinement loop (one per serving process).

    The **leader** (exactly one process per overlay path) refines its
    tally every ``interval`` seconds, publishes the overlay
    atomically, and installs it on its own oracle.  **Followers**
    (pre-fork siblings) poll the file's fingerprint and hot-swap their
    oracle's overlay when it changes.  Both start by adopting any
    compatible overlay already on disk, so a restarted server resumes
    its refined tier instead of re-learning it.
    """

    def __init__(
        self,
        oracle,
        tally: SnapTally | None,
        path: str | os.PathLike,
        interval: float = 5.0,
        top: int = 16,
        leader: bool = True,
        log=None,
    ) -> None:
        super().__init__(daemon=True, name="oracle-refine")
        from repro.oracle.store import spec_fingerprint

        if leader and tally is None:
            raise ValueError("a leader daemon needs a tally to refine from")
        self.oracle = oracle
        self.tally = tally
        self.path = pathlib.Path(path)
        self.interval = interval
        self.top = top
        self.leader = leader
        self.base_fingerprint = spec_fingerprint(oracle.spec)
        self._log = log if log is not None else (lambda *_: None)
        self._stop = threading.Event()
        self._overlay: dict = {}
        self._seen_fingerprint: str | None = None
        self._adopt_existing()

    def _adopt_existing(self) -> None:
        if not self.path.is_file():
            return
        try:
            self._overlay = load_overlay(self.path, self.base_fingerprint)
        except OverlayError as error:
            self._log(f"refine: ignoring overlay on disk ({error})")
            return
        self._seen_fingerprint = self._file_fingerprint()
        self.oracle.set_overlay(self._overlay)
        self._log(
            f"refine: adopted {len(self._overlay)} refined cells from "
            f"{self.path}"
        )

    def _file_fingerprint(self) -> str | None:
        try:
            return json.loads(self.path.read_text()).get("fingerprint")
        except (OSError, ValueError, AttributeError):
            return None

    def tick(self) -> int:
        """One refinement step; returns how many cells were added
        (leader) or adopted (follower).  Exposed for tests and for the
        CLI's synchronous smoke path."""
        if self.leader:
            return self._tick_leader()
        return self._tick_follower()

    def _tick_leader(self) -> int:
        if self.tally.total == 0:
            return 0
        overlay = refine_once(
            self.oracle, self.tally, top=self.top, overlay=self._overlay
        )
        added = len(overlay) - len(self._overlay)
        if added <= 0:
            return 0
        save_overlay(self.path, self.base_fingerprint, overlay)
        self._overlay = overlay
        self._seen_fingerprint = self._file_fingerprint()
        self.oracle.set_overlay(overlay)
        self._log(
            f"refine: published {added} new refined cells "
            f"({len(overlay)} total) to {self.path}"
        )
        return added

    def _tick_follower(self) -> int:
        fingerprint = self._file_fingerprint()
        if fingerprint is None or fingerprint == self._seen_fingerprint:
            return 0
        try:
            overlay = load_overlay(self.path, self.base_fingerprint)
        except OverlayError:
            # A half-visible or foreign overlay: keep the current one.
            return 0
        self._seen_fingerprint = fingerprint
        adopted = len(overlay) - len(self._overlay)
        self._overlay = overlay
        self.oracle.set_overlay(overlay)
        self._log(
            f"refine: hot-swapped overlay with {len(overlay)} cells "
            f"from {self.path}"
        )
        return adopted

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception as error:  # keep refining on transient errors
                self._log(f"refine: tick failed ({type(error).__name__}: "
                          f"{error})")

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self.is_alive():
            self.join(timeout=timeout)
