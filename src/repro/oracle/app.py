"""Transport-agnostic core of the oracle serving tier.

:class:`OracleApp` owns everything about serving settlement queries
that does *not* depend on how bytes arrive: routing, parameter and
body parsing, the structured error contract, per-request metrics and
the access log, the request-body size limit, and the traffic tally
that feeds background refinement.  Both front ends — the threaded
``http.server`` implementation (:mod:`repro.oracle.server`) and the
asyncio HTTP/1.1 implementation (:mod:`repro.oracle.aioserver`) — are
thin byte shovels around one shared app, which is what makes the
"every serving mode returns byte-identical JSON" contract a structural
property instead of a test-enforced aspiration: the response body is
produced exactly once, here.

Routes (identical across transports)::

    GET  /healthz         -> artifact summary + live overlay cell count
    GET  /metrics         -> Prometheus text exposition
    GET  /v1/violation?alpha=&unique_fraction=&delta=&depth=
    GET  /v1/depth?alpha=&unique_fraction=&delta=&target=
    POST /v1/violation    {"alpha": [...], ...}   (columnar batch)
    POST /v1/depth        {"alpha": [...], ...}   (columnar batch)

Error contract: every non-200 body is ``{"error": <kind>, "detail":
<message>}`` with kinds ``bad-request`` (malformed JSON, missing or
non-numeric parameters, a non-boolean ``strict``), ``out-of-domain``
(outside the conservative hull), ``not-found``, ``too-large`` (a POST
body over :attr:`OracleApp.max_body_bytes`, HTTP 413 — transports must
reject on the ``Content-Length`` header *before* reading the body),
and ``internal`` (genuine bugs, HTTP 500).  All non-2xx statuses are
counted in ``repro_oracle_errors_total{code=...}``.

Telemetry: the app owns a :class:`repro.obs.metrics.MetricsRegistry`
(pass ``registry=`` to share one).  Transports call :meth:`observe`
once per request; it counts
``repro_oracle_requests_total{route,method,code}``, observes
``repro_oracle_request_seconds{route}``, and, when not ``quiet``,
writes one structured JSON access-log line to stderr.  In pre-fork
mode every metric additionally carries a ``worker`` label
(``worker_label=``) so per-process scrape targets stay tellable apart.

Traffic tally: pass ``tally=`` (a
:class:`repro.oracle.refine.SnapTally`) and every successful
``/v1/violation`` query — scalar and batch — records its quantized
off-grid coordinates, which the refinement daemon turns into exact
per-cell DPs (see :mod:`repro.oracle.refine`).  ``tally=None`` (the
default) keeps the hot path entirely tally-free.
"""

from __future__ import annotations

import json
import sys
import time
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.oracle.service import OracleDomainError, SettlementOracle

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "OracleApp",
    "Response",
]

#: Default cap on a POST request body; configurable per app.
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024

_SINGLE_PARAMS = {
    "/v1/violation": ("alpha", "unique_fraction", "delta", "depth"),
    "/v1/depth": ("alpha", "unique_fraction", "delta", "target"),
}

#: Paths that may appear as a ``route`` label; anything else is folded
#: into ``"other"`` so scanners cannot inflate label cardinality.
_ROUTES = frozenset(_SINGLE_PARAMS) | {"/healthz", "/metrics"}


class Response:
    """One finished HTTP response: status, body bytes, content type."""

    __slots__ = ("status", "body", "content_type")

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type


class OracleApp:
    """The shared route/error/metrics core both servers delegate to."""

    def __init__(
        self,
        oracle: SettlementOracle,
        registry: MetricsRegistry | None = None,
        quiet: bool = True,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        worker_label: str | None = None,
        tally=None,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        self.oracle = oracle
        self.registry = registry if registry is not None else MetricsRegistry()
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self.tally = tally
        self.worker_label = worker_label
        self._labels = (
            {"worker": str(worker_label)} if worker_label is not None else {}
        )
        self._health = {"status": "ok", **oracle.describe()}

    # -- response builders --------------------------------------------

    def _json(self, status: int, payload) -> Response:
        return Response(status, json.dumps(payload).encode())

    def error(self, status: int, kind: str, detail: str) -> Response:
        """A structured error body (the contract every route shares)."""
        return self._json(status, {"error": kind, "detail": detail})

    def too_large(self, length: int) -> Response:
        """The 413 a transport returns *instead of reading* an oversized
        body; the connection must then be closed (the body was never
        consumed, so the stream framing is gone)."""
        return self.error(
            413,
            "too-large",
            f"request body of {length} bytes exceeds the "
            f"{self.max_body_bytes}-byte limit",
        )

    def bad_content_length(self, raw: str) -> Response:
        """Shared 400 for an unparsable ``Content-Length`` header, so
        both transports answer with identical bytes."""
        return self.error(
            400, "bad-request", f"bad request body: invalid Content-Length {raw!r}"
        )

    def unsupported_transfer_encoding(self) -> Response:
        """Shared 400 for ``Transfer-Encoding`` bodies (not supported;
        the connection must be closed — the framing is unreadable)."""
        return self.error(
            400,
            "bad-request",
            "bad request body: Transfer-Encoding is not supported, "
            "send a Content-Length body",
        )

    # -- dispatch ------------------------------------------------------

    def handle(self, method: str, target: str, body: bytes = b"") -> Response:
        """Answer one request.  ``target`` is the raw request target
        (path + query string); ``body`` the fully-read request body.
        Never raises: internal failures become structured 500s."""
        try:
            return self._dispatch(method, target, body)
        except Exception as error:  # never kill a serving loop
            return self.error(
                500, "internal", f"{type(error).__name__}: {error}"
            )

    def _dispatch(self, method: str, target: str, body: bytes) -> Response:
        split = urlsplit(target)
        path = split.path
        if method == "GET":
            if path == "/healthz":
                payload = dict(self._health)
                payload["overlay_cells"] = self.oracle.overlay_size
                return self._json(200, payload)
            if path == "/metrics":
                return Response(
                    200,
                    self.registry.render().encode(),
                    content_type="text/plain; version=0.0.4",
                )
            if path in _SINGLE_PARAMS:
                return self._guarded(
                    lambda: self._single_answer(path, parse_qs(split.query))
                )
            return self.error(404, "not-found", f"unknown path {path!r}")
        if method == "POST":
            if path not in _SINGLE_PARAMS:
                return self.error(404, "not-found", f"unknown path {path!r}")
            try:
                parsed = json.loads(body or b"{}")
                if not isinstance(parsed, dict):
                    raise ValueError("batch body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as error:
                return self.error(
                    400, "bad-request", f"bad request body: {error}"
                )
            return self._guarded(lambda: self._batch_answer(path, parsed))
        return self.error(
            501, "bad-request", f"unsupported method {method!r}"
        )

    def _guarded(self, answer) -> Response:
        try:
            return self._json(200, answer())
        except OracleDomainError as error:
            return self.error(400, "out-of-domain", str(error))
        except ValueError as error:
            return self.error(400, "bad-request", str(error))
        except Exception as error:  # genuine bug, structured 500
            return self.error(
                500, "internal", f"{type(error).__name__}: {error}"
            )

    # -- the two query routes -----------------------------------------

    def _single_answer(self, path: str, params: dict) -> dict:
        names = _SINGLE_PARAMS[path]
        values = []
        for name in names:
            raw = params.get(name)
            if raw is None:
                required = ", ".join(names)
                raise ValueError(
                    f"missing parameter {name!r} (need: {required})"
                )
            values.append(float(raw[0] if isinstance(raw, list) else raw))
        alpha, fraction, delta, last = values
        if path == "/v1/violation":
            probability = self.oracle.violation_probability(
                alpha, fraction, delta, last
            )
            if self.tally is not None:
                self.tally.record(alpha, fraction, delta, last)
            return {
                "violation_probability": probability,
                "conservative": True,
            }
        depth, source = self.oracle.settlement_depth_with_source(
            alpha, fraction, delta, last
        )
        return {"depth": depth, "source": source, "conservative": True}

    def _batch_answer(self, path: str, body: dict) -> dict:
        names = _SINGLE_PARAMS[path]
        columns = []
        for name in names:
            column = body.get(name)
            if not isinstance(column, list) or not column:
                required = ", ".join(names)
                raise ValueError(
                    f"batch body needs non-empty array {name!r} "
                    f"(columnar arrays: {required})"
                )
            columns.append(column)
        if len({len(column) for column in columns}) != 1:
            raise ValueError("batch columns must have equal lengths")
        strict = body.get("strict", True)
        if not isinstance(strict, bool):
            # bool("false") is True — demand a real JSON boolean rather
            # than silently treating any non-empty value as strict.
            raise ValueError(
                f"strict must be a JSON boolean (true/false), got {strict!r}"
            )
        if path == "/v1/violation":
            values = self.oracle.violation_probabilities(
                *columns, strict=strict
            )
            if self.tally is not None:
                self.tally.record_batch(*columns)
            # ndarray.tolist() converts the whole batch in C — ~4.6x
            # cheaper than the per-element [float(v) for v in values]
            # it replaced, ~10% off the whole encode once json.dumps
            # is included (benchmarks/bench_oracle_serving.py).
            return {"violation_probability": values.tolist()}
        depths, sources = self.oracle.settlement_depths_with_source(
            *columns, strict=strict
        )
        return {"depth": depths.tolist(), "source": sources}

    # -- per-request accounting ---------------------------------------

    def observe(
        self,
        method: str,
        path: str,
        status: int,
        elapsed: float,
        client: str | None = None,
    ) -> None:
        """Count one finished request (both transports call this once
        per request, including error and 413 short-circuits)."""
        route = path if path in _ROUTES else "other"
        code = str(status)
        self.registry.counter(
            "repro_oracle_requests_total",
            "requests served, by route/method/status",
            route=route,
            method=method,
            code=code,
            **self._labels,
        ).inc()
        self.registry.histogram(
            "repro_oracle_request_seconds",
            "request handling latency by route",
            route=route,
            **self._labels,
        ).observe(elapsed)
        if status >= 400:
            self.registry.counter(
                "repro_oracle_errors_total",
                "error responses, by status code",
                code=code,
                **self._labels,
            ).inc()
        if not self.quiet:
            entry = {
                "client": client,
                "method": method,
                "path": path,
                "code": status,
                "duration_ms": round(elapsed * 1000, 3),
            }
            if self.worker_label is not None:
                entry["worker"] = self.worker_label
            print(json.dumps(entry), file=sys.stderr, flush=True)


def request_clock() -> float:
    """The per-request clock both transports share (monotonic)."""
    return time.perf_counter()
