"""Settlement oracle service — the repository's sixth layer.

Everything below this package *computes* settlement numbers; this
package *serves* them.  An offline builder
(:mod:`repro.oracle.tables`) runs dense (α, uniquely-honest fraction,
Δ, k) grids through the exact Section 6.6 DP — cross-validated by
Monte-Carlo sweeps riding the engine's ``run_grid`` / ``ProcessBackend``
/ ``ResultCache`` stack — into a versioned, content-fingerprinted,
mmap-loadable artifact (:mod:`repro.oracle.store`).  The in-memory
:class:`SettlementOracle` (:mod:`repro.oracle.service`) answers single
and vectorized batch queries from that artifact: bit-identical to the
DP at grid points, conservatively rounded (never optimistic) between
them.  A stdlib serving tier exposes it to the network: one
transport-agnostic route/error/metrics core (:mod:`repro.oracle.app`)
behind either a threaded HTTP server (:mod:`repro.oracle.server`) or an
asyncio keep-alive/pipelining server (:mod:`repro.oracle.aioserver`),
optionally pre-forked across worker processes sharing one listening
socket, with background traffic-driven refinement
(:mod:`repro.oracle.refine`) tightening hot off-grid answers while
every reply stays a certified upper bound.  The ``python -m
repro.oracle`` CLI (:mod:`repro.oracle.cli`) drives it all.

See docs/ARCHITECTURE.md ("Layer 6") for the artifact-format contract.
"""

from repro.oracle.app import DEFAULT_MAX_BODY_BYTES, OracleApp
from repro.oracle.aioserver import AsyncHTTPServer
from repro.oracle.refine import (
    RefineDaemon,
    SnapTally,
    load_overlay,
    refine_once,
    save_overlay,
)
from repro.oracle.service import (
    OracleDomainError,
    SettlementOracle,
    UNREACHABLE_DEPTH,
)
from repro.oracle.server import (
    make_listening_socket,
    make_server,
    serve_forever,
)
from repro.oracle.store import (
    FORMAT,
    FORMAT_VERSION,
    StoreError,
    load_tables,
    read_manifest,
    save_tables,
    spec_fingerprint,
)
from repro.oracle.tables import (
    DEFAULT_SPEC,
    TINY_SPEC,
    BuildReport,
    OracleSpec,
    OracleTables,
    build_tables,
    effective_probabilities,
)

__all__ = [
    "AsyncHTTPServer",
    "BuildReport",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_SPEC",
    "FORMAT",
    "FORMAT_VERSION",
    "OracleApp",
    "OracleDomainError",
    "OracleSpec",
    "OracleTables",
    "RefineDaemon",
    "SettlementOracle",
    "SnapTally",
    "StoreError",
    "TINY_SPEC",
    "UNREACHABLE_DEPTH",
    "build_tables",
    "effective_probabilities",
    "load_overlay",
    "load_tables",
    "make_listening_socket",
    "make_server",
    "read_manifest",
    "refine_once",
    "save_overlay",
    "save_tables",
    "serve_forever",
    "spec_fingerprint",
]
