"""Settlement oracle service — the repository's sixth layer.

Everything below this package *computes* settlement numbers; this
package *serves* them.  An offline builder
(:mod:`repro.oracle.tables`) runs dense (α, uniquely-honest fraction,
Δ, k) grids through the exact Section 6.6 DP — cross-validated by
Monte-Carlo sweeps riding the engine's ``run_grid`` / ``ProcessBackend``
/ ``ResultCache`` stack — into a versioned, content-fingerprinted,
mmap-loadable artifact (:mod:`repro.oracle.store`).  The in-memory
:class:`SettlementOracle` (:mod:`repro.oracle.service`) answers single
and vectorized batch queries from that artifact: bit-identical to the
DP at grid points, conservatively rounded (never optimistic) between
them.  A stdlib HTTP server (:mod:`repro.oracle.server`) and the
``python -m repro.oracle`` CLI (:mod:`repro.oracle.cli`) expose it to
the network.

See docs/ARCHITECTURE.md ("Layer 6") for the artifact-format contract.
"""

from repro.oracle.service import (
    OracleDomainError,
    SettlementOracle,
    UNREACHABLE_DEPTH,
)
from repro.oracle.server import make_server, serve_forever
from repro.oracle.store import (
    FORMAT,
    FORMAT_VERSION,
    StoreError,
    load_tables,
    read_manifest,
    save_tables,
    spec_fingerprint,
)
from repro.oracle.tables import (
    DEFAULT_SPEC,
    TINY_SPEC,
    BuildReport,
    OracleSpec,
    OracleTables,
    build_tables,
    effective_probabilities,
)

__all__ = [
    "BuildReport",
    "DEFAULT_SPEC",
    "FORMAT",
    "FORMAT_VERSION",
    "OracleDomainError",
    "OracleSpec",
    "OracleTables",
    "SettlementOracle",
    "StoreError",
    "TINY_SPEC",
    "UNREACHABLE_DEPTH",
    "build_tables",
    "effective_probabilities",
    "load_tables",
    "make_server",
    "read_manifest",
    "save_tables",
    "serve_forever",
    "spec_fingerprint",
]
