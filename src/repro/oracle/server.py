"""A stdlib JSON query server in front of :class:`SettlementOracle`.

``ThreadingHTTPServer`` + ``BaseHTTPRequestHandler`` only — no
third-party web framework.  The oracle itself is read-only shared state
(mmap-backed NumPy arrays; every query is a pure ``searchsorted`` +
gather), so concurrent handler threads need no locking.

Endpoints::

    GET  /healthz                        -> artifact summary (fingerprint,
                                            axes, cell count)
    GET  /v1/violation?alpha=&unique_fraction=&delta=&depth=
                                         -> {"violation_probability": p,
                                             "conservative": true}
    GET  /v1/depth?alpha=&unique_fraction=&delta=&target=
                                         -> {"depth": k | null,
                                             "source": "table" |
                                                       "analytic" | null}
    POST /v1/violation   {"alpha": [...], "unique_fraction": [...],
                          "delta": [...], "depth": [...]}
                                         -> {"violation_probability": [...]}
    POST /v1/depth       {"alpha": [...], "unique_fraction": [...],
                          "delta": [...], "target": [...]}
                                         -> {"depth": [...],
                                             "source": [...]}  (-1/null =
                                            unreachable at this horizon)

Depth answers carry provenance: ``"table"`` when the exact-DP
minimal-depth table answered, ``"analytic"`` when the table's cell is
below the DP horizon's resolution but the certified Theorem 1 bound
reaches the target (the depth is then that certified upper bound — a
finite conservative answer where older servers said ``null``).

Batch POST bodies are *columnar* (one array per coordinate) so the
handler can feed them to the vectorized oracle methods unchanged — one
NumPy gather answers the whole batch.  Out-of-hull queries return
HTTP 400 with the oracle's conservative-hull message; clients that
prefer saturation can pass ``"strict": false`` in the POST body.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.oracle.service import OracleDomainError, SettlementOracle

__all__ = ["make_server", "serve_forever"]

_SINGLE_PARAMS = {
    "/v1/violation": ("alpha", "unique_fraction", "delta", "depth"),
    "/v1/depth": ("alpha", "unique_fraction", "delta", "target"),
}


def _single_answer(
    oracle: SettlementOracle, path: str, params: dict
) -> dict:
    names = _SINGLE_PARAMS[path]
    values = []
    for name in names:
        raw = params.get(name)
        if raw is None:
            required = ", ".join(names)
            raise ValueError(f"missing parameter {name!r} (need: {required})")
        values.append(float(raw[0] if isinstance(raw, list) else raw))
    alpha, fraction, delta, last = values
    if path == "/v1/violation":
        probability = oracle.violation_probability(
            alpha, fraction, delta, last
        )
        return {"violation_probability": probability, "conservative": True}
    depth, source = oracle.settlement_depth_with_source(
        alpha, fraction, delta, last
    )
    return {"depth": depth, "source": source, "conservative": True}


def _batch_answer(oracle: SettlementOracle, path: str, body: dict) -> dict:
    names = _SINGLE_PARAMS[path]
    columns = []
    for name in names:
        column = body.get(name)
        if not isinstance(column, list) or not column:
            required = ", ".join(names)
            raise ValueError(
                f"batch body needs non-empty array {name!r} "
                f"(columnar arrays: {required})"
            )
        columns.append(column)
    if len({len(column) for column in columns}) != 1:
        raise ValueError("batch columns must have equal lengths")
    strict = bool(body.get("strict", True))
    if path == "/v1/violation":
        values = oracle.violation_probabilities(*columns, strict=strict)
        return {"violation_probability": [float(v) for v in values]}
    depths, sources = oracle.settlement_depths_with_source(
        *columns, strict=strict
    )
    return {"depth": [int(v) for v in depths], "source": sources}


def make_server(
    oracle: SettlementOracle,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Build (and bind, but do not start) the query server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.  ``quiet`` silences the per-request
    stderr log lines (the default for tests and embedded use).
    """

    health = {"status": "ok", **oracle.describe()}

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _reply(self, code: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _guarded(self, answer) -> None:
            try:
                self._reply(200, answer())
            except (OracleDomainError, ValueError) as error:
                self._reply(400, {"error": str(error)})
            except Exception as error:  # never kill the thread
                self._reply(500, {"error": f"{type(error).__name__}: {error}"})

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            split = urlsplit(self.path)
            if split.path == "/healthz":
                self._reply(200, health)
                return
            if split.path in _SINGLE_PARAMS:
                params = parse_qs(split.query)
                self._guarded(
                    lambda: _single_answer(oracle, split.path, params)
                )
                return
            self._reply(404, {"error": f"unknown path {split.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            split = urlsplit(self.path)
            if split.path not in _SINGLE_PARAMS:
                self._reply(404, {"error": f"unknown path {split.path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = json.loads(self.rfile.read(length) or b"{}")
                if not isinstance(body, dict):
                    raise ValueError("batch body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as error:
                self._reply(400, {"error": f"bad request body: {error}"})
                return
            self._guarded(lambda: _batch_answer(oracle, split.path, body))

        def log_message(self, format, *args):  # noqa: A002
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, format, *args)

    return ThreadingHTTPServer((host, port), Handler)


def serve_forever(
    oracle: SettlementOracle,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = False,
    announce=print,
) -> None:
    """Bind and serve until interrupted (the CLI ``serve`` verb)."""
    server = make_server(oracle, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    announce(
        f"settlement oracle serving {oracle.describe()['cells']} cells "
        f"on http://{bound_host}:{bound_port} (Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
