"""Threaded front end + serving-tier orchestration for the oracle.

The routing, parsing, error contract, metrics, and refinement tally
all live in the transport-agnostic :class:`~repro.oracle.app.OracleApp`
— this module supplies the ``ThreadingHTTPServer`` byte shovel around
it, plus the pieces every serving mode shares:

* :func:`make_server` — the classic threaded server (one thread per
  connection; the oracle is read-only mmap-backed state, so handler
  threads need no locking).  It can *adopt* an already-listening
  socket, which is how pre-fork workers share one accept queue.
* :func:`make_listening_socket` — bind + listen without serving, the
  socket a pre-fork parent creates once and every forked worker
  inherits.  The kernel's shared accept queue then load-balances
  connections across workers with no userspace coordination.
* :func:`serve_forever` — the CLI entry.  ``mode`` selects the
  threaded or asyncio transport (:mod:`repro.oracle.aioserver`);
  ``workers > 1`` forks that many processes onto one listening socket,
  each mmap-sharing the same artifact pages and labelling its metrics
  with a ``worker`` label.  ``refine_path`` starts the tiered-artifact
  refinement loop (:mod:`repro.oracle.refine`): worker 0 tallies
  traffic and publishes overlay artifacts, the other workers watch the
  overlay file's fingerprint and hot-swap it in.

Routes, the structured error contract, and telemetry are documented on
:class:`OracleApp`; both transports return byte-identical JSON bodies
on every route because the bodies are produced once, in the app.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import sys
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.oracle.app import (
    DEFAULT_MAX_BODY_BYTES,
    OracleApp,
    Response,
    request_clock,
)
from repro.oracle.service import SettlementOracle

__all__ = [
    "make_listening_socket",
    "make_server",
    "serve_forever",
]

#: The serving transports ``serve_forever`` (and the CLI) accept.
SERVING_MODES = ("threaded", "async")


def make_listening_socket(
    host: str = "127.0.0.1", port: int = 0, backlog: int = 128
) -> socket.socket:
    """Bind + listen without serving (``port=0`` picks an ephemeral
    port).  A pre-fork parent creates this once; forked workers inherit
    the descriptor and ``accept`` from the one shared kernel queue —
    no ``SO_REUSEPORT`` (which would strand queued connections when a
    worker dies) and no userspace load balancer.
    """
    sock = socket.create_server((host, port), backlog=backlog)
    sock.set_inheritable(True)
    return sock


def make_server(
    oracle: SettlementOracle | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    registry: MetricsRegistry | None = None,
    *,
    app: OracleApp | None = None,
    sock: socket.socket | None = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    worker_label: str | None = None,
    tally=None,
) -> ThreadingHTTPServer:
    """Build (and bind, but do not start) the threaded query server.

    Either pass ``oracle`` (an :class:`OracleApp` is built around it —
    the historical signature) or a prebuilt ``app``.  ``port=0`` binds
    an ephemeral port; read the actual one from
    ``server.server_address[1]``.  ``sock`` adopts an existing
    *listening* socket instead of binding — the pre-fork path.  The
    shared app is exposed as ``server.app`` and its metrics registry as
    ``server.registry``.
    """
    if app is None:
        if oracle is None:
            raise TypeError("make_server needs an oracle or an app")
        app = OracleApp(
            oracle,
            registry=registry,
            quiet=quiet,
            max_body_bytes=max_body_bytes,
            worker_label=worker_label,
            tally=tally,
        )

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # Headers and body flush as separate TCP segments; without
        # TCP_NODELAY, Nagle + delayed ACK adds ~40ms to every
        # keep-alive response on Linux.
        disable_nagle_algorithm = True

        def _respond(self, response: Response, close: bool = False) -> None:
            if close:
                self.close_connection = True
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            if close:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(response.body)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._serve("GET")

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            self._serve("POST")

        def _serve(self, method: str) -> None:
            started = request_clock()
            status = 500  # only survives if responding itself raised
            try:
                if method == "POST":
                    status = self._post_response().status
                else:
                    response = app.handle("GET", self.path)
                    status = response.status
                    self._respond(response)
            finally:
                app.observe(
                    method,
                    urlsplit(self.path).path,
                    status,
                    request_clock() - started,
                    client=self.client_address[0],
                )

        def _post_response(self) -> Response:
            """Run the transport-side body checks, answer, and return
            the response (for ``_serve``'s accounting)."""
            if self.headers.get("Transfer-Encoding"):
                response = app.unsupported_transfer_encoding()
                self._respond(response, close=True)
                return response
            raw = self.headers.get("Content-Length", "0")
            try:
                length = int(raw)
                if length < 0:
                    raise ValueError(length)
            except ValueError:
                response = app.bad_content_length(raw)
                self._respond(response, close=True)
                return response
            if length > app.max_body_bytes:
                # Reject on the header alone — the body is never read,
                # so the keep-alive framing is gone and the connection
                # must close.
                response = app.too_large(length)
                self._respond(response, close=True)
                return response
            body = self.rfile.read(length) if length else b""
            response = app.handle("POST", self.path, body)
            self._respond(response)
            return response

        def log_message(self, format, *args):  # noqa: A002
            pass  # replaced by the app's structured access log.

    if sock is None:
        server = ThreadingHTTPServer((host, port), Handler)
    else:
        server = ThreadingHTTPServer(
            sock.getsockname()[:2], Handler, bind_and_activate=False
        )
        server.socket.close()  # the unused auto-created one
        server.socket = sock
        server.server_address = sock.getsockname()
        server.server_name, server.server_port = server.server_address[:2]
    server.app = app
    server.registry = app.registry
    return server


def _worker_main(
    oracle: SettlementOracle,
    sock: socket.socket,
    mode: str,
    quiet: bool,
    max_body_bytes: int,
    worker_label: str | None,
    refine_path,
    refine_interval: float,
    refine_top: int,
    leader: bool,
) -> None:
    """Serve ``sock`` with one app until interrupted — the body of a
    pre-fork worker process (and of single-process serving)."""
    tally = None
    daemon = None
    if refine_path is not None and leader:
        from repro.oracle.refine import SnapTally

        tally = SnapTally()
    app = OracleApp(
        oracle,
        quiet=quiet,
        max_body_bytes=max_body_bytes,
        worker_label=worker_label,
        tally=tally,
    )
    if refine_path is not None:
        from repro.oracle.refine import RefineDaemon

        daemon = RefineDaemon(
            oracle,
            tally,
            refine_path,
            interval=refine_interval,
            top=refine_top,
            leader=leader,
        )
        daemon.start()
    try:
        if mode == "async":
            from repro.oracle.aioserver import AsyncHTTPServer

            AsyncHTTPServer(app, sock=sock).run()
        else:
            server = make_server(app=app, sock=sock)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                server.server_close()
    finally:
        if daemon is not None:
            daemon.stop()


def serve_forever(
    oracle: SettlementOracle,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = False,
    announce=print,
    *,
    mode: str = "threaded",
    workers: int = 1,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    refine_path=None,
    refine_interval: float = 5.0,
    refine_top: int = 16,
) -> None:
    """Bind and serve until interrupted (the CLI ``serve`` verb).

    ``mode`` is ``"threaded"`` or ``"async"``; ``workers > 1`` forks
    that many worker processes sharing the listening socket (worker 0
    leads refinement when ``refine_path`` is set, the rest follow the
    overlay file).  All workers mmap-share the parent's artifact pages.
    """
    if mode not in SERVING_MODES:
        raise ValueError(f"mode must be one of {SERVING_MODES}, got {mode!r}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    sock = make_listening_socket(host, port)
    bound_host, bound_port = sock.getsockname()[:2]
    refined = f", refine={refine_path}" if refine_path is not None else ""
    announce(
        f"settlement oracle serving {oracle.describe()['cells']} cells "
        f"on http://{bound_host}:{bound_port} "
        f"(mode={mode}, workers={workers}{refined}) (Ctrl-C to stop)"
    )
    if workers == 1:
        try:
            _worker_main(
                oracle,
                sock,
                mode=mode,
                quiet=quiet,
                max_body_bytes=max_body_bytes,
                worker_label=None,
                refine_path=refine_path,
                refine_interval=refine_interval,
                refine_top=refine_top,
                leader=True,
            )
        finally:
            sock.close()
        return
    children = []
    for index in range(workers):
        pid = os.fork()
        if pid == 0:
            status = 0
            try:
                _worker_main(
                    oracle,
                    sock,
                    mode=mode,
                    quiet=quiet,
                    max_body_bytes=max_body_bytes,
                    worker_label=str(index),
                    refine_path=refine_path,
                    refine_interval=refine_interval,
                    refine_top=refine_top,
                    leader=index == 0,
                )
            except KeyboardInterrupt:
                pass
            except BaseException:
                traceback.print_exc(file=sys.stderr)
                status = 1
            finally:
                # Never let a worker fall back into the parent's stack.
                os._exit(status)
        children.append(pid)
    sock.close()  # workers hold the only live descriptors now

    def _forward_term(signum, frame):
        # A SIGTERM to the parent must not orphan the workers: route it
        # through the same shutdown path Ctrl-C takes.
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _forward_term)
    try:
        for pid in children:
            os.waitpid(pid, 0)
    except KeyboardInterrupt:
        for pid in children:
            with contextlib.suppress(ProcessLookupError):
                os.kill(pid, signal.SIGTERM)
        for pid in children:
            with contextlib.suppress(ChildProcessError, OSError):
                os.waitpid(pid, 0)
    finally:
        signal.signal(signal.SIGTERM, previous)
