"""A stdlib JSON query server in front of :class:`SettlementOracle`.

``ThreadingHTTPServer`` + ``BaseHTTPRequestHandler`` only — no
third-party web framework.  The oracle itself is read-only shared state
(mmap-backed NumPy arrays; every query is a pure ``searchsorted`` +
gather), so concurrent handler threads need no locking.

Endpoints::

    GET  /healthz                        -> artifact summary (fingerprint,
                                            axes, cell count)
    GET  /metrics                        -> Prometheus text exposition of
                                            the server's request metrics
    GET  /v1/violation?alpha=&unique_fraction=&delta=&depth=
                                         -> {"violation_probability": p,
                                             "conservative": true}
    GET  /v1/depth?alpha=&unique_fraction=&delta=&target=
                                         -> {"depth": k | null,
                                             "source": "table" |
                                                       "analytic" | null}
    POST /v1/violation   {"alpha": [...], "unique_fraction": [...],
                          "delta": [...], "depth": [...]}
                                         -> {"violation_probability": [...]}
    POST /v1/depth       {"alpha": [...], "unique_fraction": [...],
                          "delta": [...], "target": [...]}
                                         -> {"depth": [...],
                                             "source": [...]}  (-1/null =
                                            unreachable at this horizon)

Depth answers carry provenance: ``"table"`` when the exact-DP
minimal-depth table answered, ``"analytic"`` when the table's cell is
below the DP horizon's resolution but the certified Theorem 1 bound
reaches the target (the depth is then that certified upper bound — a
finite conservative answer where older servers said ``null``).

Batch POST bodies are *columnar* (one array per coordinate) so the
handler can feed them to the vectorized oracle methods unchanged — one
NumPy gather answers the whole batch.

Error contract: every non-200 body is ``{"error": <kind>, "detail":
<message>}`` with kinds ``bad-request`` (malformed JSON, missing or
non-numeric parameters), ``out-of-domain`` (a well-formed query outside
the conservative hull — clients that prefer saturation can pass
``"strict": false`` in a POST body), ``not-found``, and ``internal``
(genuine server bugs, HTTP 500).  All of them are counted in
``repro_oracle_errors_total{code=...}``.

Telemetry: the server owns a :class:`repro.obs.metrics.MetricsRegistry`
(pass ``registry=`` to share one), independent of the module-level
engine switchboard — ``GET /metrics`` works even when engine metrics
are disabled.  Per-request it counts
``repro_oracle_requests_total{route,method,code}``, observes
``repro_oracle_request_seconds{route}``, and, when not ``quiet``,
writes one structured JSON access-log line per request to stderr.
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.oracle.service import OracleDomainError, SettlementOracle

__all__ = ["make_server", "serve_forever"]

_SINGLE_PARAMS = {
    "/v1/violation": ("alpha", "unique_fraction", "delta", "depth"),
    "/v1/depth": ("alpha", "unique_fraction", "delta", "target"),
}

#: Paths that may appear as a ``route`` label; anything else is folded
#: into ``"other"`` so scanners cannot inflate label cardinality.
_ROUTES = frozenset(_SINGLE_PARAMS) | {"/healthz", "/metrics"}


def _single_answer(
    oracle: SettlementOracle, path: str, params: dict
) -> dict:
    names = _SINGLE_PARAMS[path]
    values = []
    for name in names:
        raw = params.get(name)
        if raw is None:
            required = ", ".join(names)
            raise ValueError(f"missing parameter {name!r} (need: {required})")
        values.append(float(raw[0] if isinstance(raw, list) else raw))
    alpha, fraction, delta, last = values
    if path == "/v1/violation":
        probability = oracle.violation_probability(
            alpha, fraction, delta, last
        )
        return {"violation_probability": probability, "conservative": True}
    depth, source = oracle.settlement_depth_with_source(
        alpha, fraction, delta, last
    )
    return {"depth": depth, "source": source, "conservative": True}


def _batch_answer(oracle: SettlementOracle, path: str, body: dict) -> dict:
    names = _SINGLE_PARAMS[path]
    columns = []
    for name in names:
        column = body.get(name)
        if not isinstance(column, list) or not column:
            required = ", ".join(names)
            raise ValueError(
                f"batch body needs non-empty array {name!r} "
                f"(columnar arrays: {required})"
            )
        columns.append(column)
    if len({len(column) for column in columns}) != 1:
        raise ValueError("batch columns must have equal lengths")
    strict = bool(body.get("strict", True))
    if path == "/v1/violation":
        values = oracle.violation_probabilities(*columns, strict=strict)
        return {"violation_probability": [float(v) for v in values]}
    depths, sources = oracle.settlement_depths_with_source(
        *columns, strict=strict
    )
    return {"depth": [int(v) for v in depths], "source": sources}


def make_server(
    oracle: SettlementOracle,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    registry: MetricsRegistry | None = None,
) -> ThreadingHTTPServer:
    """Build (and bind, but do not start) the query server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.  ``quiet`` silences the per-request
    stderr access-log lines (the default for tests and embedded use).
    ``registry`` shares a metrics registry with the caller; by default
    the server creates its own (exposed as ``server.registry``).
    """

    health = {"status": "ok", **oracle.describe()}
    if registry is None:
        registry = MetricsRegistry()

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # Headers and body flush as separate TCP segments; without
        # TCP_NODELAY, Nagle + delayed ACK adds ~40ms to every
        # keep-alive response on Linux.
        disable_nagle_algorithm = True

        def send_response(self, code: int, message: str | None = None) -> None:
            self._status = code
            super().send_response(code, message)

        def _reply(
            self,
            code: int,
            payload,
            content_type: str = "application/json",
        ) -> None:
            body = (
                payload
                if isinstance(payload, bytes)
                else json.dumps(payload).encode()
            )
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, code: int, kind: str, detail: str) -> None:
            self._reply(code, {"error": kind, "detail": detail})

        def _guarded(self, answer) -> None:
            try:
                self._reply(200, answer())
            except OracleDomainError as error:
                self._error(400, "out-of-domain", str(error))
            except ValueError as error:
                self._error(400, "bad-request", str(error))
            except Exception as error:  # never kill the thread
                self._error(
                    500, "internal", f"{type(error).__name__}: {error}"
                )

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._serve("GET")

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            self._serve("POST")

        def _serve(self, method: str) -> None:
            split = urlsplit(self.path)
            route = split.path if split.path in _ROUTES else "other"
            self._status = 500  # replaced by the first send_response
            started = time.perf_counter()
            try:
                self._dispatch(method, split)
            finally:
                elapsed = time.perf_counter() - started
                code = str(self._status)
                registry.counter(
                    "repro_oracle_requests_total",
                    "requests served, by route/method/status",
                    route=route,
                    method=method,
                    code=code,
                ).inc()
                registry.histogram(
                    "repro_oracle_request_seconds",
                    "request handling latency by route",
                    route=route,
                ).observe(elapsed)
                if self._status >= 400:
                    registry.counter(
                        "repro_oracle_errors_total",
                        "error responses, by status code",
                        code=code,
                    ).inc()
                if not quiet:
                    print(
                        json.dumps(
                            {
                                "client": self.client_address[0],
                                "method": method,
                                "path": split.path,
                                "code": self._status,
                                "duration_ms": round(elapsed * 1000, 3),
                            }
                        ),
                        file=sys.stderr,
                        flush=True,
                    )

        def _dispatch(self, method: str, split) -> None:
            if method == "GET":
                if split.path == "/healthz":
                    self._reply(200, health)
                    return
                if split.path == "/metrics":
                    self._reply(
                        200,
                        registry.render().encode(),
                        content_type="text/plain; version=0.0.4",
                    )
                    return
                if split.path in _SINGLE_PARAMS:
                    params = parse_qs(split.query)
                    self._guarded(
                        lambda: _single_answer(oracle, split.path, params)
                    )
                    return
                self._error(404, "not-found", f"unknown path {split.path!r}")
                return
            if split.path not in _SINGLE_PARAMS:
                self._error(404, "not-found", f"unknown path {split.path!r}")
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = json.loads(self.rfile.read(length) or b"{}")
                if not isinstance(body, dict):
                    raise ValueError("batch body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as error:
                self._error(400, "bad-request", f"bad request body: {error}")
                return
            self._guarded(lambda: _batch_answer(oracle, split.path, body))

        def log_message(self, format, *args):  # noqa: A002
            pass  # replaced by the structured access log in _serve.

    server = ThreadingHTTPServer((host, port), Handler)
    server.registry = registry
    return server


def serve_forever(
    oracle: SettlementOracle,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = False,
    announce=print,
) -> None:
    """Bind and serve until interrupted (the CLI ``serve`` verb)."""
    server = make_server(oracle, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    announce(
        f"settlement oracle serving {oracle.describe()['cells']} cells "
        f"on http://{bound_host}:{bound_port} (Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
