"""The in-memory settlement oracle: conservative answers at memory speed.

:class:`SettlementOracle` wraps one loaded
:class:`~repro.oracle.tables.OracleTables` artifact and answers the two
production questions:

* ``violation_probability(α, fraction, Δ, k)`` — how likely is a
  k-settlement failure?
* ``settlement_depth(α, fraction, Δ, target)`` — how deep must a block
  be for the failure probability to drop to ``target``?

**Exactness at grid points.**  A query whose coordinates all lie on the
table grid is answered straight from the ``forward`` array, whose cells
were computed by one per-k exact DP each — the answer is bit-identical
to ``settlement_violation_probability`` on the cell's effective law
(asserted by ``tests/oracle/test_service.py`` and the benchmark).

**Conservative rounding between grid points.**  Off-grid coordinates
are snapped one axis at a time, always toward the side that makes the
reported failure probability *larger* (or the reported depth *deeper*):

===================  =========================  ========================
axis                 violation query snaps      depth query snaps
===================  =========================  ========================
α (stake)            **up** (stronger adversary)  up
uniquely-honest
fraction             **down** (fewer h slots)     down
Δ (delay)            **up** (longer delays)       up
k (depth)            **down** (shallower block)   —
target probability   —                            **down** (stricter)
===================  =========================  ========================

Each snap moves to a stochastically dominated configuration (violation
probability is non-decreasing in α and Δ, non-increasing in the
fraction and in k — the monotonicity property-tested in
``tests/analysis/test_monotonicity.py``), so the snapped cell's exact
value is an upper bound on the true value at the query point: the
oracle never reports a smaller failure probability, or a shallower
settlement depth, than the exact DP would.

**Certified analytic fallback.**  A depth query whose snapped cell
holds the ``−1`` sentinel (target below the DP horizon's resolution)
need not go unanswered: the table also carries ``analytic_depth`` —
the smallest k whose *certified* Theorem 1 upper bound (Bound 1's
dominating series with prefix correction) meets the target, searched
``8×`` past the DP horizon.  The source-aware query forms
(:meth:`~SettlementOracle.settlement_depth_with_source` and its batch
twin) fall back to that cell and label the answer
``source = "analytic"`` — still conservative, because the bound
dominates the exact DP and the axis snapping is unchanged.  The plain
forms keep their historical table-only contract.

Queries *outside* the grid hull cannot be conservatively answered from
the table; by default they raise :class:`OracleDomainError`.  With
``strict=False`` they saturate to the trivially safe answers instead
(probability ``1.0``; depth ``-1`` = "not achievable at this table's
horizon" — the same sentinel the table uses for unreachable targets).

**Refinement overlays.**  :meth:`~SettlementOracle.set_overlay`
installs a tier of *refined cells* — exact DP values at quantized
query coordinates, built from real traffic by
:mod:`repro.oracle.refine` — with one atomic reference swap.  With an
overlay installed, every violation answer becomes ``min(base,
overlay[quantized cell])``: the overlay value is itself a certified
upper bound for every query in its cell (the quantized coordinates
dominate the query) and is ≤ the base answer (the grid corner
dominates the quantized coordinates), so refinement only ever
*tightens* answers without ever breaking the upper-bound guarantee.
Without an overlay (the default) the query paths are untouched.

All queries come in scalar and vectorized-batch forms; the batch forms
are pure NumPy (``searchsorted`` + fancy indexing) and answer hundreds
of thousands of queries per second (the ``oracle`` record in
``BENCH_engine.json`` asserts the floor).
"""

from __future__ import annotations

import math
import numbers
import os
from bisect import bisect_left, bisect_right

import numpy as np

from repro.oracle.tables import OracleTables

__all__ = ["OracleDomainError", "SettlementOracle", "UNREACHABLE_DEPTH"]

#: Sentinel depth: the target probability is not reachable within the
#: table's depth horizon (or, saturating, the query was out of hull).
UNREACHABLE_DEPTH = -1


class OracleDomainError(ValueError):
    """A query outside the table's conservative hull (strict mode)."""


def _as_array(values, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")
    return array


def _snap_up(grid: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Index of the smallest grid value ≥ each query (``len(grid)``:
    none exists — the query exceeds the grid's top)."""
    return np.searchsorted(grid, values, side="left")


def _snap_down(grid: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Index of the largest grid value ≤ each query (``-1``: none
    exists — the query undercuts the grid's bottom)."""
    return np.searchsorted(grid, values, side="right") - 1


class SettlementOracle:
    """Serve settlement queries from one precomputed table artifact."""

    def __init__(self, tables: OracleTables) -> None:
        self.tables = tables
        spec = tables.spec
        self._alphas = np.asarray(spec.alphas, dtype=np.float64)
        self._fractions = np.asarray(spec.unique_fractions, dtype=np.float64)
        self._deltas = np.asarray(spec.deltas, dtype=np.float64)
        self._depths = np.asarray(spec.depths, dtype=np.float64)
        # targets are stored loosest-first (decreasing); searchsorted
        # needs ascending, so keep the ascending view plus the map back.
        self._targets_ascending = np.asarray(
            spec.targets[::-1], dtype=np.float64
        )
        # Scalar fast path: plain-Python grids for bisect — a single
        # query then pays one int-tuple array read instead of the
        # length-1-batch NumPy round trip (~20x cheaper), while the
        # arrays stay mmap-backed.
        self._alpha_list = [float(a) for a in spec.alphas]
        self._fraction_list = [float(f) for f in spec.unique_fractions]
        self._delta_list = [float(d) for d in spec.deltas]
        self._depth_list = [float(k) for k in spec.depths]
        self._target_list_ascending = [float(t) for t in spec.targets[::-1]]
        # Refined-cell overlay (quantized key -> certified DP value);
        # ``None`` keeps the query paths overlay-free.  Installed and
        # replaced wholesale by :meth:`set_overlay` — a single
        # reference assignment, so readers on other threads see either
        # the old tier or the new one, never a half-swap.
        self._overlay: dict | None = None

    @classmethod
    def load(
        cls,
        directory: str | os.PathLike,
        mmap: bool = True,
        verify: bool = True,
    ) -> "SettlementOracle":
        """Open the artifact at ``directory`` (mmap-backed by default)."""
        from repro.oracle.store import load_tables

        return cls(load_tables(directory, mmap=mmap, verify=verify))

    @property
    def spec(self):
        return self.tables.spec

    def describe(self) -> dict:
        """A JSON-ready summary (the server's /healthz payload)."""
        from repro.oracle.store import spec_fingerprint

        spec = self.spec
        return {
            "fingerprint": spec_fingerprint(spec),
            "alphas": list(spec.alphas),
            "unique_fractions": list(spec.unique_fractions),
            "deltas": list(spec.deltas),
            "depths": list(spec.depths),
            "targets": list(spec.targets),
            "activity": spec.activity,
            "depth_horizon": spec.depth_horizon,
            "cells": int(self.tables.forward.size),
            # How many DP-unreachable depth cells the certified Theorem 1
            # bound rescues (finite analytic answer where the table is -1).
            "analytic_cells": int(
                (
                    (np.asarray(self.tables.minimal_depth) == UNREACHABLE_DEPTH)
                    & (np.asarray(self.tables.analytic_depth) >= 0)
                ).sum()
            ),
        }

    # -- refinement overlay --------------------------------------------

    def set_overlay(self, overlay: dict | None) -> None:
        """Atomically install (or clear) a refined-cell overlay.

        ``overlay`` maps quantized cells — the
        :func:`repro.oracle.refine.quantize_key` tuples — to certified
        exact-DP violation probabilities.  The dict is copied, so the
        caller may keep mutating its own; the swap itself is one
        reference assignment and needs no lock.
        """
        self._overlay = dict(overlay) if overlay else None

    @property
    def overlay_size(self) -> int:
        """How many refined cells the installed overlay holds."""
        overlay = self._overlay
        return len(overlay) if overlay is not None else 0

    # -- query plumbing ------------------------------------------------

    def _cell_indexes(
        self,
        alphas: np.ndarray,
        fractions: np.ndarray,
        deltas: np.ndarray,
        strict: bool,
        label: str,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        ai = _snap_up(self._alphas, alphas)
        fi = _snap_down(self._fractions, fractions)
        di = _snap_up(self._deltas, deltas)
        invalid = (
            (ai == len(self._alphas)) | (fi < 0) | (di == len(self._deltas))
        )
        if strict and invalid.any():
            where = int(np.flatnonzero(invalid)[0])
            raise OracleDomainError(
                f"{label} query {where} (alpha={alphas[where]}, "
                f"fraction={fractions[where]}, delta={deltas[where]}) is "
                "outside the table's conservative hull: alpha <= "
                f"{self._alphas[-1]}, fraction >= {self._fractions[0]}, "
                f"delta <= {self._deltas[-1]} required"
            )
        # Clamp so fancy indexing is safe; invalid rows are overwritten
        # with the saturated answer afterwards.
        ai = np.minimum(ai, len(self._alphas) - 1)
        fi = np.maximum(fi, 0)
        di = np.minimum(di, len(self._deltas) - 1)
        return ai, fi, di, invalid

    # -- forward queries: (alpha, fraction, delta, k) -> probability ---

    def violation_probabilities(
        self,
        alphas,
        fractions,
        deltas,
        depths,
        strict: bool = True,
    ) -> np.ndarray:
        """Vectorized k-settlement violation probabilities.

        All four inputs are broadcast-compatible 1-D arrays of equal
        length.  Answers are exact at grid points and conservative
        (upper bounds) between them; out-of-hull queries raise
        (``strict=True``) or saturate to 1.0 (``strict=False``).
        """
        alphas = _as_array(alphas, "alphas")
        fractions = _as_array(fractions, "fractions")
        deltas = _as_array(deltas, "deltas")
        depth_values = _as_array(depths, "depths")
        if not (
            len(alphas) == len(fractions) == len(deltas) == len(depth_values)
        ):
            raise ValueError("query columns must have equal lengths")
        ai, fi, di, invalid = self._cell_indexes(
            alphas, fractions, deltas, strict, "violation"
        )
        ki = _snap_down(self._depths, depth_values)
        shallow = ki < 0
        if strict and shallow.any():
            where = int(np.flatnonzero(shallow)[0])
            raise OracleDomainError(
                f"violation query {where} asks depth "
                f"{depth_values[where]}, below the table's smallest "
                f"depth {int(self._depths[0])}"
            )
        ki = np.maximum(ki, 0)
        saturated = invalid | shallow
        values = np.asarray(self.tables.forward)[ai, fi, di, ki]
        values = np.where(saturated, 1.0, values)
        overlay = self._overlay
        if overlay is not None:
            from repro.oracle.refine import quantize_columns

            qa, qf, qd, qk = quantize_columns(
                alphas, fractions, deltas, depth_values
            )
            get = overlay.get
            skip = saturated.tolist()
            for index, key in enumerate(
                zip(qa.tolist(), qf.tolist(), qd.tolist(), qk.tolist())
            ):
                # Saturated rows keep 1.0 (matching the scalar path's
                # early return); only in-hull answers are tightened.
                if skip[index]:
                    continue
                refined = get(key)
                if refined is not None and refined < values[index]:
                    values[index] = refined
        return values

    def _scalar_cell(
        self, alpha, unique_fraction, delta, strict: bool, label: str
    ) -> tuple[int, int, int] | None:
        """The bisect twin of :meth:`_cell_indexes` (``None``: out of
        hull in saturating mode); answers agree with the batch path on
        every input — asserted by the service tests."""
        for name, value in (
            ("alpha", alpha),
            ("unique_fraction", unique_fraction),
            ("delta", delta),
        ):
            if not isinstance(value, numbers.Real) or not math.isfinite(value):
                raise ValueError(
                    f"{name} must be a finite real number, got {value!r}"
                )
        ai = bisect_left(self._alpha_list, alpha)
        fi = bisect_right(self._fraction_list, unique_fraction) - 1
        di = bisect_left(self._delta_list, delta)
        if ai == len(self._alpha_list) or fi < 0 or di == len(self._delta_list):
            if strict:
                raise OracleDomainError(
                    f"{label} query (alpha={alpha}, "
                    f"fraction={unique_fraction}, delta={delta}) is outside "
                    "the table's conservative hull: alpha <= "
                    f"{self._alpha_list[-1]}, fraction >= "
                    f"{self._fraction_list[0]}, delta <= "
                    f"{self._delta_list[-1]} required"
                )
            return None
        return ai, fi, di

    def violation_probability(
        self,
        alpha: float,
        unique_fraction: float,
        delta: int,
        depth: int,
        strict: bool = True,
    ) -> float:
        """Scalar form of :meth:`violation_probabilities`.

        A dedicated bisect fast path (no NumPy dispatch): this is what
        a per-request server hit costs, benchmarked against the per-k
        DP in ``benchmarks/bench_oracle_throughput.py``.
        """
        cell = self._scalar_cell(
            alpha, unique_fraction, delta, strict, "violation"
        )
        if not isinstance(depth, numbers.Real) or not math.isfinite(depth):
            raise ValueError(f"depth must be a finite real number, got {depth!r}")
        ki = bisect_right(self._depth_list, depth) - 1
        if ki < 0:
            if strict:
                raise OracleDomainError(
                    f"violation query asks depth {depth}, below the "
                    f"table's smallest depth {int(self._depth_list[0])}"
                )
            return 1.0
        if cell is None:
            return 1.0
        ai, fi, di = cell
        value = float(self.tables.forward[ai, fi, di, ki])
        overlay = self._overlay
        if overlay is not None:
            from repro.oracle.refine import quantize_key

            refined = overlay.get(
                quantize_key(alpha, unique_fraction, delta, depth)
            )
            if refined is not None and refined < value:
                value = refined
        return value

    # -- inverse queries: (alpha, fraction, delta, target) -> depth ----

    def _depth_indexes(
        self, alphas, fractions, deltas, targets, strict: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Snapped cell + target indexes shared by both batch depth
        forms; the final mask flags rows with no conservative answer."""
        alphas = _as_array(alphas, "alphas")
        fractions = _as_array(fractions, "fractions")
        deltas = _as_array(deltas, "deltas")
        target_values = _as_array(targets, "targets")
        if not (
            len(alphas) == len(fractions) == len(deltas) == len(target_values)
        ):
            raise ValueError("query columns must have equal lengths")
        ai, fi, di, invalid = self._cell_indexes(
            alphas, fractions, deltas, strict, "depth"
        )
        # Largest grid target <= query target (snap to the stricter
        # side); in the stored loosest-first order that index is
        # len(targets) - 1 - ascending_index.
        ascending = _snap_down(self._targets_ascending, target_values)
        loose = ascending < 0
        if strict and loose.any():
            where = int(np.flatnonzero(loose)[0])
            raise OracleDomainError(
                f"depth query {where} asks target {target_values[where]}, "
                "stricter than the table's tightest target "
                f"{self._targets_ascending[0]}"
            )
        ascending = np.maximum(ascending, 0)
        ti = len(self._targets_ascending) - 1 - ascending
        return ai, fi, di, ti, invalid | loose

    def settlement_depths(
        self,
        alphas,
        fractions,
        deltas,
        targets,
        strict: bool = True,
    ) -> np.ndarray:
        """Vectorized minimal settlement depths (int64), table-only.

        For each query: the smallest tabulated k whose exact violation
        probability at the conservatively snapped cell is ≤ the largest
        grid target that is ≤ the query target.  ``UNREACHABLE_DEPTH``
        (−1) marks targets not reachable within the table's depth
        horizon.  Out-of-hull coordinates — including targets below the
        grid's strictest — raise (``strict=True``) or return −1
        (``strict=False``).  Use :meth:`settlement_depths_with_source`
        to also consult the certified analytic fallback.
        """
        ai, fi, di, ti, bad = self._depth_indexes(
            alphas, fractions, deltas, targets, strict
        )
        values = np.asarray(self.tables.minimal_depth)[ai, fi, di, ti]
        return np.where(bad, UNREACHABLE_DEPTH, values)

    def settlement_depths_with_source(
        self,
        alphas,
        fractions,
        deltas,
        targets,
        strict: bool = True,
    ) -> tuple[np.ndarray, list]:
        """Batch depths with provenance: ``(depths, sources)``.

        ``sources[i]`` is ``"table"`` when the DP table answered,
        ``"analytic"`` when the table's cell holds the −1 sentinel but
        the certified Theorem 1 bound reaches the target within its
        extended horizon (the returned depth is then that certified
        upper bound), and ``None`` when neither can answer (the depth
        is ``UNREACHABLE_DEPTH``).
        """
        ai, fi, di, ti, bad = self._depth_indexes(
            alphas, fractions, deltas, targets, strict
        )
        table = np.asarray(self.tables.minimal_depth)[ai, fi, di, ti]
        analytic = np.asarray(self.tables.analytic_depth)[ai, fi, di, ti]
        fallback = (table == UNREACHABLE_DEPTH) & (analytic >= 0) & ~bad
        depths = np.where(fallback, analytic, table)
        depths = np.where(bad, UNREACHABLE_DEPTH, depths)
        sources = [
            None
            if depth == UNREACHABLE_DEPTH
            else ("analytic" if analytic_used else "table")
            for depth, analytic_used in zip(depths, fallback)
        ]
        return depths, sources

    def settlement_depth(
        self,
        alpha: float,
        unique_fraction: float,
        delta: int,
        target: float,
        strict: bool = True,
    ) -> int | None:
        """Scalar form of :meth:`settlement_depths` (same bisect fast
        path as :meth:`violation_probability`), table-only.

        Returns ``None`` instead of the −1 sentinel when the target is
        not reachable within the table's depth horizon.
        """
        depth, _ = self._scalar_depth(
            alpha, unique_fraction, delta, target, strict
        )
        return depth

    def settlement_depth_with_source(
        self,
        alpha: float,
        unique_fraction: float,
        delta: int,
        target: float,
        strict: bool = True,
    ) -> tuple[int | None, str | None]:
        """Scalar :meth:`settlement_depths_with_source`:
        ``(depth | None, "table" | "analytic" | None)``."""
        return self._scalar_depth(
            alpha, unique_fraction, delta, target, strict, fallback=True
        )

    def _scalar_depth(
        self,
        alpha: float,
        unique_fraction: float,
        delta: int,
        target: float,
        strict: bool,
        fallback: bool = False,
    ) -> tuple[int | None, str | None]:
        cell = self._scalar_cell(alpha, unique_fraction, delta, strict, "depth")
        if not isinstance(target, numbers.Real) or not math.isfinite(target):
            raise ValueError(
                f"target must be a finite real number, got {target!r}"
            )
        ascending = bisect_right(self._target_list_ascending, target) - 1
        if ascending < 0:
            if strict:
                raise OracleDomainError(
                    f"depth query asks target {target}, stricter than the "
                    "table's tightest target "
                    f"{self._target_list_ascending[0]}"
                )
            return None, None
        if cell is None:
            return None, None
        ai, fi, di = cell
        ti = len(self._target_list_ascending) - 1 - ascending
        depth = int(self.tables.minimal_depth[ai, fi, di, ti])
        if depth != UNREACHABLE_DEPTH:
            return depth, "table"
        if fallback:
            certified = int(self.tables.analytic_depth[ai, fi, di, ti])
            if certified != UNREACHABLE_DEPTH:
                return certified, "analytic"
        return None, None
