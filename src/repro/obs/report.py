"""Trace summarizer: ``python -m repro.obs.report trace.jsonl``.

Reads the JSONL span events written by :mod:`repro.obs.trace` and
prints two views:

* a **per-span table** — count, total seconds, mean, p50, p99, max for
  every span name, sorted by total time (where the run went);
* a **nesting dump** (``--tree``, also printed by default) — spans
  aggregated by their full call path (``runner.run > runner.chunk``),
  indented flamegraph-style with counts and totals, so nested hot
  spots are visible without any external tooling.

Percentiles are computed over the raw per-span durations (nearest-rank
on the sorted sample), not from bucketed approximations.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

__all__ = ["load_events", "main", "render_table", "render_tree"]


def load_events(path: str) -> list[dict]:
    """Parse one trace file; malformed lines are skipped, not fatal —
    a crashed run may leave a torn final line."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict) and "name" in event:
                events.append(event)
    return events


def _percentile(durations: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a *sorted* non-empty sample."""
    index = max(0, min(len(durations) - 1,
                       round(fraction * (len(durations) - 1))))
    return durations[index]


def render_table(events: list[dict]) -> str:
    """The per-span-name count/total/p50/p99 table."""
    samples: dict[str, list[float]] = defaultdict(list)
    for event in events:
        samples[event["name"]].append(float(event.get("duration", 0.0)))
    headers = ["span", "count", "total_s", "mean_ms", "p50_ms", "p99_ms",
               "max_ms"]
    rows = []
    for name, durations in sorted(
        samples.items(), key=lambda item: -sum(item[1])
    ):
        durations.sort()
        total = sum(durations)
        rows.append([
            name,
            str(len(durations)),
            f"{total:.4f}",
            f"{1e3 * total / len(durations):.3f}",
            f"{1e3 * _percentile(durations, 0.50):.3f}",
            f"{1e3 * _percentile(durations, 0.99):.3f}",
            f"{1e3 * durations[-1]:.3f}",
        ])
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        if rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(cells):
        first = cells[0].ljust(widths[0])
        rest = (cell.rjust(width)
                for cell, width in zip(cells[1:], widths[1:]))
        return "  ".join([first, *rest])

    ruler = "  ".join("-" * width for width in widths)
    return "\n".join([fmt(headers), ruler, *(fmt(row) for row in rows)])


def render_tree(events: list[dict]) -> str:
    """The flamegraph-style nesting dump, aggregated by call path."""
    by_id = {event["id"]: event for event in events if "id" in event}

    def path_of(event: dict) -> tuple[str, ...]:
        names: list[str] = []
        cursor: dict | None = event
        while cursor is not None:
            names.append(cursor["name"])
            parent = cursor.get("parent")
            cursor = by_id.get(parent) if parent is not None else None
        return tuple(reversed(names))

    totals: dict[tuple[str, ...], list[float]] = defaultdict(
        lambda: [0, 0.0]
    )
    for event in events:
        aggregate = totals[path_of(event)]
        aggregate[0] += 1
        aggregate[1] += float(event.get("duration", 0.0))
    lines = []
    for path in sorted(totals):
        count, total = totals[path]
        indent = "  " * (len(path) - 1)
        lines.append(
            f"{indent}{path[-1]}  x{count}  {total:.4f}s"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="summarise a repro.obs.trace JSONL file",
    )
    parser.add_argument("trace", help="path to the trace JSONL file")
    parser.add_argument(
        "--tree",
        action="store_true",
        help="print only the nesting dump (default prints table + tree)",
    )
    args = parser.parse_args(argv)
    try:
        events = load_events(args.trace)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not events:
        print("no spans recorded")
        return 0
    if not args.tree:
        print(render_table(events))
        print()
    print(render_tree(events))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
