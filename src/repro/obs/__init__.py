"""Observability spine: in-process metrics and span tracing.

Two independent, individually-toggled facilities:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges, and fixed-bucket histograms with a Prometheus text-exposition
  encoder.  Disabled by default: the module-level accessors return
  shared no-op singletons until :func:`repro.obs.metrics.enable` is
  called, so instrumented hot paths cost one global read when nobody is
  watching.
* :mod:`repro.obs.trace` — a lightweight span API
  (``with span("runner.wave", chunk=i):``) writing JSONL events with
  monotonic timestamps, summarised by ``python -m repro.obs.report``.

The telemetry contract (asserted by ``tests/obs/test_overhead.py``):
instrumentation consumes **zero RNG**, never enters cache keys or
ledger schemas, and instrumented runs are bit-identical to
uninstrumented runs on every execution backend.
"""

from repro.obs import metrics, trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span

__all__ = ["MetricsRegistry", "metrics", "span", "trace"]
