"""Lightweight span tracing: JSONL events with monotonic timestamps.

One API: ``with span("runner.wave", wave=3, chunks=8):`` — the block's
wall time, its position in the thread's span stack, and the keyword
attributes are written as one JSON line when the block exits.  Tracing
is off by default: ``span`` then yields immediately (one global read,
no allocation).  :func:`enable_tracing` points the sink at a file;
:func:`disable_tracing` closes it.

Event schema (one object per line, written on span *exit*)::

    {"name": "runner.wave",       # the span name
     "id": 7, "parent": 3,        # ids are per-sink, parent null at root
     "depth": 1,                  # nesting depth in this thread
     "start": 1.234567,           # monotonic seconds since enable_tracing
     "duration": 0.0123,          # monotonic seconds in the block
     "thread": "MainThread",
     "error": "ValueError",       # only when the block raised
     "attrs": {"wave": 3, "chunks": 8}}

Timestamps come from ``time.monotonic()`` (never the wall clock, so
spans order correctly under clock steps) and are rebased to the
``enable_tracing`` call so traces start near zero.  Attribute values
must be JSON-serialisable; anything else is stringified rather than
refused — a trace line must never break the traced run.

Process discipline: the sink records the PID that enabled it and
``span`` no-ops in any other process, so forked pool workers inherit a
configured sink without ever interleaving writes into the parent's
file.  (Chunk spans therefore appear under the serial backend and
disappear under process fan-out — the orchestration spans, which is
what the report summarises, are always emitted by the parent.)

The telemetry contract: tracing consumes zero RNG and no trace state
feeds estimates, cache keys, or ledgers — see
``tests/obs/test_overhead.py``.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time

__all__ = [
    "disable_tracing",
    "enable_tracing",
    "is_tracing",
    "span",
    "tracing_to",
]


class _TraceSink:
    """An open JSONL trace file plus the id/stack bookkeeping."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._next_id = 0
        self._epoch = time.monotonic()
        self.pid = os.getpid()
        self._stacks = threading.local()

    def stack(self) -> list[int]:
        stack = getattr(self._stacks, "spans", None)
        if stack is None:
            stack = self._stacks.spans = []
        return stack

    def allocate_id(self) -> int:
        with self._lock:
            identifier = self._next_id
            self._next_id += 1
            return identifier

    def rebase(self, monotonic: float) -> float:
        return monotonic - self._epoch

    def write(self, event: dict) -> None:
        line = json.dumps(event, default=str, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            self._handle.flush()
            self._handle.close()


_SINK: _TraceSink | None = None


def enable_tracing(path: str | os.PathLike) -> None:
    """Start appending span events to ``path`` (JSONL, created if
    missing).  Replaces any previously enabled sink."""
    global _SINK
    if _SINK is not None:
        _SINK.close()
    _SINK = _TraceSink(path)


def disable_tracing() -> None:
    """Flush and close the sink; ``span`` becomes a no-op again."""
    global _SINK
    if _SINK is not None:
        _SINK.close()
        _SINK = None


def is_tracing() -> bool:
    """Is a sink installed *in this process*?"""
    return _SINK is not None and _SINK.pid == os.getpid()


@contextlib.contextmanager
def tracing_to(path: str | os.PathLike):
    """Trace a ``with`` block to ``path``, then restore the prior sink."""
    previous = _SINK
    enable_tracing(path)
    try:
        yield
    finally:
        disable_tracing()
        if previous is not None:
            enable_tracing(previous.path)


@contextlib.contextmanager
def span(name: str, **attrs):
    """Time a block as one named span (a no-op unless tracing is on)."""
    sink = _SINK
    if sink is None or sink.pid != os.getpid():
        yield
        return
    stack = sink.stack()
    identifier = sink.allocate_id()
    parent = stack[-1] if stack else None
    depth = len(stack)
    stack.append(identifier)
    start = time.monotonic()
    error = None
    try:
        yield
    except BaseException as raised:
        error = type(raised).__name__
        raise
    finally:
        duration = time.monotonic() - start
        stack.pop()
        event = {
            "name": name,
            "id": identifier,
            "parent": parent,
            "depth": depth,
            "start": round(sink.rebase(start), 9),
            "duration": round(duration, 9),
            "thread": threading.current_thread().name,
        }
        if error is not None:
            event["error"] = error
        if attrs:
            event["attrs"] = attrs
        sink.write(event)
