"""Thread-safe in-process metrics with Prometheus text exposition.

Three instrument kinds, the classic trio:

* :class:`Counter` — a monotonically increasing float (``inc``);
* :class:`Gauge` — a float that can move both ways (``set``/``inc``);
* :class:`Histogram` — fixed upper-bound buckets plus ``sum`` and
  ``count`` (``observe``), cumulative in the Prometheus convention.

Metrics live in a :class:`MetricsRegistry` and are addressed by a
*family name* plus an optional label set::

    registry = MetricsRegistry()
    registry.counter("repro_runner_trials_total", source="sampled").inc(4096)
    registry.histogram("repro_rpc_seconds", op="chunk").observe(0.012)
    print(registry.render())          # Prometheus text format

Module-level switchboard
------------------------

Engine code does not thread a registry through every call site.  It
uses the module-level accessors (:func:`counter`, :func:`gauge`,
:func:`histogram`), which resolve against the *active* registry —
``None`` by default, in which case they return shared **no-op
singletons**.  The disabled hot path is therefore one global read and
an ``is None`` test; no locks, no allocation, no branching in the
caller.  :func:`enable` installs a registry (creating one on demand),
:func:`disable` removes it, and :func:`enabled_registry` context-manages
the pair for tests.

Thread safety: every instrument owns one ``threading.Lock`` taken only
for the few arithmetic operations of an update, so concurrent chunk
completions (process-pool done-callbacks, distributed client threads,
HTTP handler threads) never lose increments — pinned by
``tests/obs/test_metrics.py``.

The telemetry contract: nothing in this module reads or advances any
RNG, and metric state never feeds cache keys, ledger schemas, or
estimates — metrics are write-only from the engine's point of view.
"""

from __future__ import annotations

import contextlib
import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active",
    "counter",
    "disable",
    "enable",
    "enabled_registry",
    "gauge",
    "histogram",
]

#: Default histogram upper bounds: request/chunk latencies in seconds,
#: half-millisecond floor to ten-second ceiling (+Inf is implicit).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_PATTERN = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _labels_suffix(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{_escape(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (or be set outright)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``bounds`` are the finite upper bounds in increasing order; the
    implicit ``+Inf`` bucket catches everything above the last bound.
    ``snapshot()`` returns *cumulative* bucket counts (the Prometheus
    ``le`` convention) so the encoder can emit them directly.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram bounds must be strictly increasing, got {bounds}"
            )
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count) — atomic."""
        with self._lock:
            cumulative, running = [], 0
            for bucket in self._counts:
                running += bucket
                cumulative.append(running)
            return cumulative, self._sum, self._count


class _NullCounter:
    """Shared do-nothing stand-in used while metrics are disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    value = 0.0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    value = 0.0


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    count = 0
    sum = 0.0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One metric name: its type, help string, and per-label children."""

    __slots__ = ("name", "kind", "help", "bounds", "children")

    def __init__(self, name: str, kind: str, help: str, bounds) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = bounds
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """A named collection of metric families with text exposition.

    Families are created on first access and re-used afterwards; asking
    for an existing name with a different instrument kind is a bug and
    raises.  Label values are coerced to strings (keep cardinality
    bounded: label by route, backend, or worker id — never by trial or
    query values).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _instrument(self, kind: str, name: str, help: str, bounds, labels):
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for key in labels:
            if not _LABEL_PATTERN.match(key):
                raise ValueError(f"invalid label name {key!r}")
        label_key = tuple(
            (key, str(value)) for key, value in sorted(labels.items())
        )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help, bounds)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            child = family.children.get(label_key)
            if child is None:
                child = (
                    Histogram(family.bounds)
                    if kind == "histogram"
                    else _TYPES[kind]()
                )
                family.children[label_key] = child
            return child

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._instrument("counter", name, help, None, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._instrument("gauge", name, help, None, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._instrument("histogram", name, help, buckets, labels)

    def render(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            families = [
                (family, dict(family.children))
                for _, family in sorted(self._families.items())
            ]
        for family, children in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for label_key in sorted(children):
                child = children[label_key]
                if family.kind == "histogram":
                    cumulative, total, count = child.snapshot()
                    bounds = [*map(str, child.bounds), "+Inf"]
                    for bound, value in zip(bounds, cumulative):
                        suffix = _labels_suffix(
                            label_key, f'le="{bound}"'
                        )
                        lines.append(
                            f"{family.name}_bucket{suffix} {value}"
                        )
                    suffix = _labels_suffix(label_key)
                    lines.append(f"{family.name}_sum{suffix} {total:g}")
                    lines.append(f"{family.name}_count{suffix} {count}")
                else:
                    suffix = _labels_suffix(label_key)
                    lines.append(f"{family.name}{suffix} {child.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Module-level switchboard (the engine's instrumentation surface)
# ----------------------------------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (a fresh one when ``None``) as the active
    sink of the module-level accessors; returns it."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    """Detach the active registry; accessors return no-ops again."""
    global _ACTIVE
    _ACTIVE = None


def active() -> MetricsRegistry | None:
    """The currently installed registry, or ``None`` when disabled."""
    return _ACTIVE


@contextlib.contextmanager
def enabled_registry(registry: MetricsRegistry | None = None):
    """Enable metrics for a ``with`` block, restoring the prior state."""
    previous = _ACTIVE
    installed = enable(registry)
    try:
        yield installed
    finally:
        enable(previous) if previous is not None else disable()


def counter(name: str, help: str = "", **labels):
    """The named counter of the active registry, or a shared no-op."""
    registry = _ACTIVE
    if registry is None:
        return NULL_COUNTER
    return registry.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels):
    """The named gauge of the active registry, or a shared no-op."""
    registry = _ACTIVE
    if registry is None:
        return NULL_GAUGE
    return registry.gauge(name, help, **labels)


def histogram(
    name: str,
    help: str = "",
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    **labels,
):
    """The named histogram of the active registry, or a shared no-op."""
    registry = _ACTIVE
    if registry is None:
        return NULL_HISTOGRAM
    return registry.histogram(name, help, buckets, **labels)
