"""Balanced forks, slot divergence and the CP↦settlement bridge.

A fork is *balanced* (Definition 18) when it has two maximum-length tines
sharing no edge; it is *x-balanced* when the two tines may share edges over
the prefix ``x`` but are disjoint over the remaining suffix.  An
x-balanced fork is precisely a settlement violation for slot ``|x| + 1``
(Observation 2), and Fact 6 converts existence into the margin sign:
an x-balanced fork for ``xy`` exists  ⇔  ``μ_x(y) ≥ 0``.

This module provides:

* structural balance checks on explicit forks;
* a *constructive* builder that turns a non-negative relative margin into
  an actual x-balanced fork, following the proof of Fact 6 (extend two
  disjoint tines of a canonical fork with adversarial padding);
* slot divergence (Definition 25) and the Figure 2 / Figure 3 example
  forks from the paper.
"""

from __future__ import annotations

from repro.core.alphabet import ADVERSARIAL
from repro.core.adversary_star import build_canonical_fork
from repro.core.forks import Fork, Vertex, lowest_common_ancestor
from repro.core.margin import relative_margin
from repro.core.reach import gap, reach, reserve


def is_balanced(fork: Fork) -> bool:
    """Definition 18: two edge-disjoint maximum-length tines exist."""
    return is_x_balanced(fork, 0)


def is_x_balanced(fork: Fork, prefix_length: int) -> bool:
    """Two maximum-length tines disjoint over the suffix past ``prefix_length``."""
    longest = fork.maximum_length_tines()
    for i, left in enumerate(longest):
        for right in longest[i + 1 :]:
            if left.is_disjoint_after(right, prefix_length):
                return True
    return False


def divergence_witnesses(
    fork: Fork, prefix_length: int
) -> list[tuple[Vertex, Vertex]]:
    """All max-length tine pairs witnessing x-balance (tests / rendering)."""
    longest = fork.maximum_length_tines()
    witnesses = []
    for i, left in enumerate(longest):
        for right in longest[i + 1 :]:
            if left.is_disjoint_after(right, prefix_length):
                witnesses.append((left.vertex, right.vertex))
    return witnesses


def slot_divergence(fork: Fork) -> int:
    """``div_slot(F)`` — maximum of ``ℓ(t1) − ℓ(t1 ∩ t2)`` (Definition 25).

    Maximised over viable tine pairs with ``ℓ(t1) ≤ ℓ(t2)``; a fork with
    slot divergence ≥ k + 1 is a k-CP^slot violation witness (Section 9).
    """
    vertices = fork.vertices()
    best = 0
    for i, left in enumerate(vertices):
        left_tine = fork.tine(left)
        if not left_tine.is_viable_at_onset(left.label + 1):
            continue
        for right in vertices:
            if right.label < left.label:
                continue
            if not fork.tine(right).is_viable_at_onset(right.label + 1):
                continue
            meet = lowest_common_ancestor(left, right)
            best = max(best, left.label - meet.label)
    return best


def build_x_balanced_fork(word: str, prefix_length: int) -> Fork | None:
    """Construct an x-balanced fork for ``word`` or return ``None``.

    Implements the forward direction of Fact 6 constructively: run ``A*``
    to get a canonical fork, find a pair of suffix-disjoint tines
    witnessing ``μ_x(y) ≥ 0`` and pad both with adversarial vertices from
    their reserve until they tie at the fork's maximum height.

    A witness may be a *self-pair* — a tine labelled within ``x`` counts
    as disjoint from itself over ``y`` (the convention that makes
    ``μ_x(ε) = ρ(x)``).  A self-pair is realised as two sibling
    adversarial paddings, which requires at least one adversarial slot in
    its reserve; a self-pair with empty reserve cannot present two
    *distinct* chains, so it certifies the margin value but not a
    Definition 18 balance witness.  In that corner (only possible when no
    adversarial slot follows the tine's label) the builder falls back to
    the best distinct pair and returns ``None`` if none is non-negative.
    ``None`` is always returned when ``μ_x(y) < 0`` (Fact 6's converse).
    """
    if relative_margin(word, prefix_length) < 0:
        return None
    fork = build_canonical_fork(word)
    pair = _best_realisable_pair(fork, prefix_length)
    if pair is None:
        return None
    left, right = pair

    if left is right:
        # Two sibling paddings of equal length max(gap, 1); the same
        # adversarial labels may be reused on both branches (F3 allows
        # any number of vertices per adversarial index).
        branch_length = max(fork.height - left.depth, 1)
        target = left.depth + branch_length
        first = _pad_to_height(fork, left, target)
        second = _pad_to_height(fork, left, target)
        assert first is not second
    else:
        target = fork.height
        first = _pad_to_height(fork, left, target)
        target = max(target, first.depth)
        second = _pad_to_height(fork, right, target)
        if second.depth > first.depth:
            first = _pad_to_height(fork, first, second.depth)
    assert first.depth == second.depth == fork.height
    return fork


def _best_realisable_pair(
    fork: Fork, prefix_length: int
) -> tuple[Vertex, Vertex] | None:
    """Best suffix-disjoint witness pair that can present two chains.

    Mirrors :func:`repro.core.margin.margin_of_fork` but (a) prefers
    distinct pairs over self-pairs at equal value and (b) only accepts a
    self-pair when its reserve can fund two sibling paddings.  Returns
    ``None`` when no realisable pair has non-negative value.
    """
    vertices = fork.vertices()
    reaches = {v: reach(fork, v) for v in vertices}
    best_value: int | None = None
    best_pair: tuple[Vertex, Vertex] | None = None
    best_is_distinct = False
    for i, left in enumerate(vertices):
        for right in vertices[i:]:
            distinct = left is not right
            if not distinct:
                if left.label > prefix_length:
                    continue
                needed = max(fork.height - left.depth, 1)
                if reserve(fork, left) < needed:
                    continue
            meet = lowest_common_ancestor(left, right)
            if meet.label > prefix_length:
                continue
            value = min(reaches[left], reaches[right])
            better = best_value is None or value > best_value
            tie_upgrade = (
                best_value is not None
                and value == best_value
                and distinct
                and not best_is_distinct
            )
            if better or tie_upgrade:
                best_value = value
                best_pair = (left, right)
                best_is_distinct = distinct
    if best_pair is None or (best_value is not None and best_value < 0):
        return None
    return best_pair


def _pad_to_height(fork: Fork, vertex: Vertex, target: int) -> Vertex:
    """Append adversarial vertices on top of ``vertex`` up to depth ``target``.

    Uses the latest adversarial indices available after the vertex's label
    so the paddings of the two witness tines can overlap in labels (an
    adversarial index may label many vertices).
    """
    needed = target - vertex.depth
    if needed <= 0:
        return vertex
    labels = [
        index
        for index in range(vertex.label + 1, len(fork.word) + 1)
        if fork.word[index - 1] == ADVERSARIAL
    ]
    if len(labels) < needed:
        raise AssertionError(
            "insufficient reserve while padding a non-negative-reach tine"
        )
    current = vertex
    for label in labels[:needed]:
        current = fork.add_vertex(current, label)
    return current


def figure_2_fork() -> Fork:
    """The balanced fork of Figure 2 for ``w = hAhAhA``.

    Two completely disjoint maximum-length tines: the honest chain
    1 → 3 → 5 and the adversarial chain 2 → 4 → 6.
    """
    fork = Fork("hAhAhA")
    v1 = fork.add_vertex(fork.root, 1)
    v3 = fork.add_vertex(v1, 3)
    fork.add_vertex(v3, 5)
    v2 = fork.add_vertex(fork.root, 2)
    v4 = fork.add_vertex(v2, 4)
    fork.add_vertex(v4, 6)
    return fork


def figure_3_fork() -> Fork:
    """The x-balanced fork of Figure 3 for ``w = hhhAhA`` with ``x = hh``.

    The two maximum-length tines share the prefix 1 → 2 and then diverge:
    3 → 5 honestly, 4 → 6 adversarially.
    """
    fork = Fork("hhhAhA")
    v1 = fork.add_vertex(fork.root, 1)
    v2 = fork.add_vertex(v1, 2)
    v3 = fork.add_vertex(v2, 3)
    fork.add_vertex(v3, 5)
    v4 = fork.add_vertex(v2, 4)
    fork.add_vertex(v4, 6)
    return fork
