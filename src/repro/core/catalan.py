"""Catalan slots (Definition 11) and their efficient detection.

A slot ``s`` of a characteristic string ``w`` is

* *left-Catalan* when every interval ``[ℓ, s]`` (``1 ≤ ℓ ≤ s``) is hH-heavy,
* *right-Catalan* when every interval ``[s, r]`` (``s ≤ r ≤ T``) is
  hH-heavy, and
* *Catalan* when it is both.

Catalan slots act as barriers for the adversary (Fact 2): every chain viable
after a Catalan slot must contain an honest block from it, which is the
engine behind the Unique Vertex Property (Theorem 3).

Walk characterisation
---------------------

With the Section 5 walk ``S_t`` (``+1`` on ``A``, ``−1`` on honest, ``0``
on ``⊥``):

* ``[ℓ, s]`` is hH-heavy for all ℓ  ⇔  ``S_s < S_j`` for all ``j < s``
  (the walk reaches a strict new minimum at ``s``);
* ``[s, r]`` is hH-heavy for all r  ⇔  ``S_r < S_{s−1}`` for all
  ``r ∈ [s, T]`` (the walk never returns to its pre-``s`` level).

Both conditions are computed for every slot simultaneously in O(n) via
prefix minima and suffix maxima, giving :func:`catalan_slots`.  The
quadratic direct-from-definition versions are kept (``*_naive``) as
independent oracles for the test-suite cross-checks.
"""

from __future__ import annotations

from repro.core.alphabet import is_honest, prefix_sums
from repro.core.intervals import IntervalOracle


def is_left_catalan(word: str, slot: int) -> bool:
    """Left-Catalan test straight from Definition 11 (quadratic)."""
    _check_slot(word, slot)
    oracle = IntervalOracle(word)
    return all(oracle.is_hh_heavy(left, slot) for left in range(1, slot + 1))


def is_right_catalan(word: str, slot: int) -> bool:
    """Right-Catalan test straight from Definition 11 (quadratic)."""
    _check_slot(word, slot)
    oracle = IntervalOracle(word)
    return all(
        oracle.is_hh_heavy(slot, right) for right in range(slot, len(word) + 1)
    )


def is_catalan(word: str, slot: int) -> bool:
    """True when ``slot`` is Catalan in ``word`` (Definition 11)."""
    return is_left_catalan(word, slot) and is_right_catalan(word, slot)


def catalan_slots(word: str) -> list[int]:
    """All Catalan slots of ``word`` in increasing order, in O(n).

    Uses the walk characterisation described in the module docstring.
    """
    length = len(word)
    if length == 0:
        return []
    sums = prefix_sums(word)

    # prefix_min[t] = min(S_0 .. S_t); strict new minimum at s means
    # S_s < prefix_min[s - 1].
    prefix_min = [0] * (length + 1)
    for t in range(1, length + 1):
        prefix_min[t] = min(prefix_min[t - 1], sums[t])

    # suffix_max[t] = max(S_t .. S_T); "never returns" at s means
    # suffix_max[s] < S_{s-1}, i.e. every S_r with r >= s stays strictly
    # below the pre-s level.
    suffix_max = [0] * (length + 2)
    suffix_max[length + 1] = -(10 ** 18)
    for t in range(length, -1, -1):
        suffix_max[t] = max(sums[t], suffix_max[t + 1])

    slots = []
    for s in range(1, length + 1):
        if not is_honest(word[s - 1]):
            continue
        new_minimum = sums[s] < prefix_min[s - 1]
        never_returns = suffix_max[s] < sums[s - 1]
        if new_minimum and never_returns:
            slots.append(s)
    return slots


def left_catalan_slots(word: str) -> list[int]:
    """All left-Catalan slots in O(n) (strict new minima of the walk)."""
    sums = prefix_sums(word)
    slots = []
    minimum = 0
    for s in range(1, len(word) + 1):
        if sums[s] < minimum and is_honest(word[s - 1]):
            slots.append(s)
        minimum = min(minimum, sums[s])
    return slots


def right_catalan_slots(word: str) -> list[int]:
    """All right-Catalan slots in O(n) (walk stays below pre-slot level)."""
    length = len(word)
    sums = prefix_sums(word)
    suffix_max = [0] * (length + 2)
    suffix_max[length + 1] = -(10 ** 18)
    for t in range(length, -1, -1):
        suffix_max[t] = max(sums[t], suffix_max[t + 1])
    return [
        s
        for s in range(1, length + 1)
        if is_honest(word[s - 1]) and suffix_max[s] < sums[s - 1]
    ]


def catalan_slots_naive(word: str) -> list[int]:
    """Quadratic-per-slot reference implementation (tests only)."""
    return [s for s in range(1, len(word) + 1) if is_catalan(word, s)]


def uniquely_honest_catalan_slots(word: str) -> list[int]:
    """Catalan slots whose symbol is ``h`` — the slots with the UVP (Thm 3)."""
    return [s for s in catalan_slots(word) if word[s - 1] == "h"]


def first_uniquely_honest_catalan_slot(word: str) -> int | None:
    """Smallest uniquely honest Catalan slot, or ``None``.

    This is the stopping time whose generating function ``C(Z)`` drives
    Bound 1 (Section 5.1).
    """
    slots = uniquely_honest_catalan_slots(word)
    return slots[0] if slots else None


def consecutive_catalan_pairs(word: str) -> list[int]:
    """Slots ``s`` with both ``s`` and ``s + 1`` Catalan (Theorem 4).

    Under the consistent tie-breaking axiom A0′, two consecutive Catalan
    slots give the earlier slot the UVP even when it is multiply honest;
    the rarity of such pairs is Bound 2.
    """
    slots = set(catalan_slots(word))
    return sorted(s for s in slots if s + 1 in slots)


def has_catalan_in_window(word: str, start: int, stop: int) -> bool:
    """Is some slot in ``[start, stop]`` Catalan in the *whole* string?"""
    return any(start <= s <= stop for s in catalan_slots(word))


def _check_slot(word: str, slot: int) -> None:
    if not 1 <= slot <= len(word):
        raise IndexError(f"slot {slot} outside [1, {len(word)}]")
