"""Exhaustive fork enumeration on short strings (test ground truth).

The recurrences of Theorem 5 and the characterisations of Theorem 3 /
Lemma 1 are verified in this library against brute force: this module
enumerates (up to configurable per-slot caps) every fork ``F ⊢ w``
satisfying axioms F1–F4, so that quantities like ``ρ(w)``, ``μ_x(y)`` and
the UVP can be evaluated straight from their definitions.

Enumeration is exponential and intended for ``|w| ≤ 6`` with small caps.
Caps are sound for the library's tests because

* honest slots never need more than two vertices to witness any reach or
  margin value (the optimal adversary ``A*`` of Figure 4 adds at most two
  per multiply honest slot), and
* forks produced by our constructive algorithms provide matching lower
  bounds, so capped enumeration serves as the *upper* bound check.

States are deduplicated by a canonical nested-tuple form, which keeps the
state space manageable.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

from repro.core.alphabet import (
    ADVERSARIAL,
    HONEST_MULTI,
    HONEST_UNIQUE,
)
from repro.core.forks import Fork, Vertex


def canonical_form(fork: Fork) -> tuple:
    """Order-independent canonical encoding of a fork's labelled tree."""

    def encode(vertex: Vertex) -> tuple:
        return (vertex.label, tuple(sorted(encode(c) for c in vertex.children)))

    return encode(fork.root)


def enumerate_forks(
    word: str,
    max_multi_vertices: int = 2,
    max_adversarial_vertices: int = 2,
    closed_only: bool = True,
) -> list[Fork]:
    """All capped forks ``F ⊢ word`` satisfying F1–F4, deduplicated.

    ``max_multi_vertices`` caps vertices per multiply honest slot (paper:
    unbounded, adversary's choice); ``max_adversarial_vertices`` caps
    vertices per adversarial slot.  With ``closed_only`` (Definition 12)
    forks with adversarial leaves are discarded — those are the forks over
    which ρ and μ maximise.
    """
    forks: dict[tuple, Fork] = {}
    initial = Fork(word)
    forks[canonical_form(initial)] = initial

    for slot in range(1, len(word) + 1):
        symbol = word[slot - 1]
        next_forks: dict[tuple, Fork] = {}
        for fork in forks.values():
            for extended in _extend_by_slot(
                fork, slot, symbol, max_multi_vertices, max_adversarial_vertices
            ):
                key = canonical_form(extended)
                if key not in next_forks:
                    next_forks[key] = extended
        forks = next_forks

    result = list(forks.values())
    if closed_only:
        result = [fork for fork in result if fork.is_closed()]
    return result


def _extend_by_slot(
    fork: Fork,
    slot: int,
    symbol: str,
    max_multi: int,
    max_adversarial: int,
) -> list[Fork]:
    """All ways to add slot ``slot``'s vertices to ``fork``.

    Honest vertices must land strictly deeper than every honest vertex of
    earlier slots (F4): their parent needs depth ≥ the prior maximum
    honest depth.  Adversarial vertices may attach anywhere (F2 only).
    """
    vertices = fork.vertices()
    if symbol == ADVERSARIAL:
        counts = range(0, max_adversarial + 1)
        eligible = list(range(len(vertices)))
    else:
        threshold = fork.max_honest_depth_up_to(slot - 1)
        eligible = [
            i for i, v in enumerate(vertices) if v.depth >= threshold
        ]
        if symbol == HONEST_UNIQUE:
            counts = range(1, 2)
        elif symbol == HONEST_MULTI:
            counts = range(1, max_multi + 1)
        else:
            raise ValueError(f"unexpected symbol {symbol!r} at slot {slot}")

    extensions = []
    for count in counts:
        if count == 0:
            extensions.append(fork.copy())
            continue
        for parents in combinations_with_replacement(eligible, count):
            clone = fork.copy()
            clone_vertices = clone.vertices()
            for parent_index in parents:
                clone.add_vertex(clone_vertices[parent_index], slot)
            extensions.append(clone)
    return extensions


def max_reach_by_enumeration(word: str, **caps) -> int:
    """``ρ(word)`` by brute force over capped closed forks."""
    from repro.core.reach import max_reach

    forks = enumerate_forks(word, **caps)
    return max(max_reach(fork) for fork in forks)


def max_margin_by_enumeration(word: str, prefix_length: int, **caps) -> int:
    """``μ_x(y)`` by brute force over capped closed forks."""
    from repro.core.margin import margin_of_fork

    forks = enumerate_forks(word, **caps)
    return max(margin_of_fork(fork, prefix_length) for fork in forks)
