"""The (D, T; s, k)-settlement game of Section 2.2, played move by move.

The boxed game of the paper: a characteristic string is drawn from the
leader-election distribution and revealed slot by slot; the *challenger*
deterministically plays the honest participants (new honest vertices go
on maximum-length tines), while the *adversary* chooses, for each slot,

* how many honest vertices a multiply honest slot gets (``k ≥ 1``),
* which maximum-length tine each lands on (tie-breaking),
* arbitrary adversarial vertices for ``A`` slots, and
* arbitrary augmentations with already-available adversarial labels.

The adversary wins when slot ``s`` is not ``k``-settled in some fork it
produced.  :class:`SettlementGameArena` enforces the challenger's rules;
strategies implement :class:`GameAdversary`.  Provided strategies:

* :class:`LongestChainSycophant` — always extends a current longest tine,
  mints nothing: the honest baseline (never wins);
* :class:`RandomForker` — random tie-breaking and random adversarial
  placements: a weak but legal attacker;
* :class:`CanonicalForker` — mirrors ``A*``; optimal by Theorem 6.

The arena cross-checks every produced fork against the axioms, making it
also a fuzzing harness for the fork machinery.
"""

from __future__ import annotations

import random

from repro.core.alphabet import (
    ADVERSARIAL,
    HONEST_MULTI,
    HONEST_UNIQUE,
)
from repro.core.adversary_star import AdversaryStar
from repro.core.balanced import is_x_balanced
from repro.core.forks import Fork, Vertex
from repro.core.margin import relative_margin


class GameAdversary:
    """Interface for settlement-game strategies."""

    def start(self, arena: "SettlementGameArena") -> None:
        """Called once before the first slot."""

    def honest_slot(
        self, arena: "SettlementGameArena", slot: int, multiply: bool
    ) -> list[Vertex]:
        """Choose the parent tine(s) for the slot's honest vertices.

        Must return vertices of maximal depth (the challenger verifies);
        for a uniquely honest slot exactly one, for a multiply honest
        slot one or more (duplicates allowed — sibling vertices).
        """
        raise NotImplementedError

    def adversarial_slot(
        self, arena: "SettlementGameArena", slot: int
    ) -> list[tuple[Vertex, int]]:
        """Arbitrary placements ``(parent, label)`` with ``label = slot``."""
        return []

    def augment(
        self, arena: "SettlementGameArena", slot: int
    ) -> list[tuple[Vertex, int]]:
        """Arbitrary post-slot placements using adversarial labels ≤ slot."""
        return []


class SettlementGameArena:
    """Challenger-side rules of the settlement game."""

    def __init__(self, word: str, adversary: GameAdversary) -> None:
        self.word = word
        self.fork = Fork("")
        self.adversary = adversary

    def play(self) -> Fork:
        """Run the whole game and return the final fork."""
        self.adversary.start(self)
        for slot, symbol in enumerate(self.word, start=1):
            self.fork.extend_word(symbol)
            if symbol == ADVERSARIAL:
                placements = self.adversary.adversarial_slot(self, slot)
                for parent, label in placements:
                    if label != slot:
                        raise ValueError("adversarial label must equal slot")
                    self.fork.add_vertex(parent, label)
            else:
                height = self.fork.height
                parents = self.adversary.honest_slot(
                    self, slot, symbol == HONEST_MULTI
                )
                if symbol == HONEST_UNIQUE and len(parents) != 1:
                    raise ValueError("uniquely honest slot gets one vertex")
                if not parents:
                    raise ValueError("honest slot needs at least one vertex")
                for parent in parents:
                    if parent.depth != height:
                        raise ValueError(
                            "honest vertices extend maximum-length tines"
                        )
                    self.fork.add_vertex(parent, slot)
            for parent, label in self.adversary.augment(self, slot):
                if self.word[label - 1] != ADVERSARIAL:
                    raise ValueError("augmentation uses adversarial labels")
                if label > slot:
                    raise ValueError("augmentation cannot use future labels")
                self.fork.add_vertex(parent, label)
        return self.fork

    def longest_vertices(self) -> list[Vertex]:
        """Current maximum-depth vertices (the legal honest parents)."""
        height = self.fork.height
        return [v for v in self.fork.vertices() if v.depth == height]

    def adversary_wins(self, target_slot: int, depth: int) -> bool:
        """Is ``target_slot`` left unsettled at depth ``depth``?

        Decided on the final fork: the adversary wins when it produced an
        x-balanced fork for ``x = w[:target_slot − 1]`` — i.e. two
        maximum-length tines diverging before the target — or when its
        remaining reserve could still create one (margin ≥ 0, Fact 6).
        """
        if len(self.word) < target_slot + depth:
            raise ValueError("string too short for this (s, k)")
        return is_x_balanced(self.fork, target_slot - 1) or (
            relative_margin(self.word, target_slot - 1) >= 0
            and self._fork_margin_nonnegative(target_slot - 1)
        )

    def _fork_margin_nonnegative(self, prefix_length: int) -> bool:
        from repro.core.margin import margin_of_fork

        return margin_of_fork(self.fork, prefix_length) >= 0


class LongestChainSycophant(GameAdversary):
    """Extends the first longest tine, mints nothing — the honest world."""

    def honest_slot(self, arena, slot, multiply):
        return [arena.longest_vertices()[0]]


class RandomForker(GameAdversary):
    """Random legal play: a fuzzing baseline, far from optimal."""

    def __init__(self, rng: random.Random, multi_cap: int = 2) -> None:
        self.rng = rng
        self.multi_cap = multi_cap

    def honest_slot(self, arena, slot, multiply):
        options = arena.longest_vertices()
        count = self.rng.randint(1, self.multi_cap) if multiply else 1
        return [self.rng.choice(options) for _ in range(count)]

    def adversarial_slot(self, arena, slot):
        placements = []
        if self.rng.random() < 0.7:
            candidates = [
                v for v in arena.fork.vertices() if v.label < slot
            ]
            placements.append((self.rng.choice(candidates), slot))
        return placements


class CanonicalForker(GameAdversary):
    """Plays the moves of ``A*``: optimal against every slot at once.

    Internally runs :class:`~repro.core.adversary_star.AdversaryStar` on
    the same symbols and mirrors its vertex placements into the arena's
    fork (conservative extensions become an augmentation of adversarial
    padding followed by the honest vertex on the padded tine).
    """

    def start(self, arena) -> None:
        self._star = AdversaryStar()
        self._mirror: dict[int, Vertex] = {
            self._star.fork.root.uid: arena.fork.root
        }
        self._unmapped: list[Vertex] = []

    def honest_slot(self, arena, slot, multiply):
        # Advance A*; its conservative paddings appear as pre-placed
        # adversarial vertices, so the honest vertices land on tines that
        # are maximal by construction.
        self._star.advance(arena.word[slot - 1])
        star_fork = self._star.fork
        parents = []
        for vertex in star_fork.vertices():
            if vertex.label != slot or vertex.uid in self._mirror:
                continue
            chain = [
                v
                for v in vertex.path_from_root()
                if v.uid not in self._mirror
            ]
            for missing in chain[:-1]:
                parent = self._mirror[missing.parent.uid]
                self._mirror[missing.uid] = arena.fork.add_vertex(
                    parent, missing.label
                )
            parents.append(self._mirror[vertex.parent.uid])
        # the arena will now create the honest vertices; remember which A*
        # vertices they correspond to so augment() can reconcile the maps
        self._unmapped = [
            v
            for v in star_fork.vertices_with_label(slot)
            if v.uid not in self._mirror
        ]
        return parents

    def adversarial_slot(self, arena, slot):
        self._star.advance(arena.word[slot - 1])
        return []

    def augment(self, arena, slot):
        # reconcile the honest vertices the arena just added
        star_fork = self._star.fork
        if getattr(self, "_unmapped", None):
            arena_new = [
                v
                for v in arena.fork.vertices()
                if v.label == slot and v.uid not in {
                    m.uid for m in self._mirror.values()
                }
            ]
            for star_vertex, arena_vertex in zip(self._unmapped, arena_new):
                self._mirror[star_vertex.uid] = arena_vertex
            self._unmapped = []
        return []


def play_settlement_game(
    word: str,
    adversary: GameAdversary,
    target_slot: int,
    depth: int,
) -> tuple[bool, Fork]:
    """Run one game; return (adversary wins, final fork)."""
    arena = SettlementGameArena(word, adversary)
    fork = arena.play()
    return arena.adversary_wins(target_slot, depth), fork
