"""Heavy intervals and the walk view of characteristic strings (Section 3.1).

For a characteristic string ``w`` of length ``T`` the paper studies closed
slot intervals ``I = [i, j] ⊆ [T]``:

* ``I`` is *hH-heavy* when ``#h(I) + #H(I) > #A(I)``;
* otherwise ``I`` is *A-heavy*.

A-heavy intervals are exactly the intervals over which an adversary can keep
a viable chain alive using only adversarial blocks (Fact 1), so all the
structural results reduce to questions about heavy intervals.  This module
provides O(1)-per-query interval counting via prefix sums plus the maximal
A-heavy interval computation used in Fact 3.
"""

from __future__ import annotations

from repro.core.alphabet import ADVERSARIAL, EMPTY, prefix_sums


class IntervalOracle:
    """Precomputed prefix sums answering heavy-interval queries in O(1).

    Slots are 1-based as in the paper; intervals are closed ``[i, j]`` with
    ``1 ≤ i ≤ j ≤ T``.
    """

    __slots__ = ("word", "_sums")

    def __init__(self, word: str) -> None:
        self.word = word
        #: ``_sums[t] = #A(w[1..t]) − #honest(w[1..t])`` — the walk S_t.
        self._sums = prefix_sums(word)

    def __len__(self) -> int:
        return len(self.word)

    def walk(self, t: int) -> int:
        """The walk value ``S_t`` after slot ``t`` (``S_0 = 0``)."""
        return self._sums[t]

    def adversarial_minus_honest(self, start: int, stop: int) -> int:
        """``#A([start, stop]) − #h − #H`` for the closed interval."""
        self._check(start, stop)
        return self._sums[stop] - self._sums[start - 1]

    def is_hh_heavy(self, start: int, stop: int) -> bool:
        """True when honest slots strictly outnumber adversarial ones."""
        return self.adversarial_minus_honest(start, stop) < 0

    def is_a_heavy(self, start: int, stop: int) -> bool:
        """True when the interval is not hH-heavy."""
        return self.adversarial_minus_honest(start, stop) >= 0

    def honest_count(self, start: int, stop: int) -> int:
        """``#h(I) + #H(I)`` over the closed interval."""
        self._check(start, stop)
        total = stop - start + 1
        adversarial = self.adversarial_count(start, stop)
        empty = self.empty_count(start, stop)
        return total - adversarial - empty

    def adversarial_count(self, start: int, stop: int) -> int:
        """``#A(I)`` over the closed interval."""
        self._check(start, stop)
        return self.word.count(ADVERSARIAL, start - 1, stop)

    def empty_count(self, start: int, stop: int) -> int:
        """``#⊥(I)`` — nonzero only for semi-synchronous strings."""
        self._check(start, stop)
        return self.word.count(EMPTY, start - 1, stop)

    def _check(self, start: int, stop: int) -> None:
        if not 1 <= start <= stop <= len(self.word):
            raise IndexError(
                f"interval [{start}, {stop}] outside [1, {len(self.word)}]"
            )


def maximal_a_heavy_interval(word: str, slot: int) -> tuple[int, int] | None:
    """The largest A-heavy interval containing ``slot``, or ``None``.

    Fact 3 uses this interval (with its maximality) to construct a viable
    adversarial extension skipping a non-Catalan slot.  Quadratic scan —
    acceptable because callers only use it on analysis-sized strings; the
    Catalan tests use it as an independent oracle against the O(n) walk
    characterisation.
    """
    oracle = IntervalOracle(word)
    best: tuple[int, int] | None = None
    for start in range(1, slot + 1):
        for stop in range(slot, len(word) + 1):
            if oracle.is_a_heavy(start, stop):
                if best is None or (stop - start) > (best[1] - best[0]):
                    best = (start, stop)
    return best


def all_a_heavy_intervals(word: str) -> list[tuple[int, int]]:
    """Every A-heavy closed interval of ``word`` (quadratic; tests only)."""
    oracle = IntervalOracle(word)
    length = len(word)
    heavy = []
    for start in range(1, length + 1):
        for stop in range(start, length + 1):
            if oracle.is_a_heavy(start, stop):
                heavy.append((start, stop))
    return heavy
