"""The Unique Vertex Property and the Bottleneck Property (Definition 4).

A slot ``s`` has the *bottleneck property* in ``w`` when, in every fork
``F ⊢ w``, every tine viable at the onset of any later slot passes through
some vertex labelled ``s``.  It has the *Unique Vertex Property* (UVP)
when that vertex is moreover unique: all future viable chains share one
specific block from slot ``s``, pinning the entire history up to ``s``.

Characterisations implemented here:

* **Theorem 3** — a *uniquely honest* slot has the UVP iff it is Catalan;
* **Fact 3** — an honest slot with the bottleneck property is Catalan (and
  a Catalan slot has the bottleneck property, via Fact 2);
* **Lemma 1** — a uniquely honest slot ``s`` has the UVP iff
  ``μ_x(y) < 0`` for every split ``w = xy`` with ``|x| = s − 1``,
  ``|y| ≥ 1``;
* **Theorem 4** — under the consistent tie-breaking axiom A0′, two
  consecutive Catalan slots give the earlier one the UVP even when it is
  multiply honest.

Both the Catalan route and the margin route are implemented so that the
test-suite can cross-validate them; a structural checker working on
explicit fork objects provides a third, definition-level oracle for small
strings.
"""

from __future__ import annotations

from repro.core.alphabet import HONEST_UNIQUE, is_honest
from repro.core.catalan import catalan_slots, is_catalan
from repro.core.forks import Fork
from repro.core.margin import margin_sequence


def has_uvp(word: str, slot: int) -> bool:
    """Does ``slot`` have the UVP in ``word``? (Theorem 3 route.)

    Only uniquely honest slots can have the UVP under the adversarial
    tie-breaking axiom A0 (an ``H`` slot may carry several vertices, and
    an ``A`` slot's vertices are adversarial); for those slots the UVP is
    equivalent to being Catalan.
    """
    _check_slot(word, slot)
    if word[slot - 1] != HONEST_UNIQUE:
        return False
    return is_catalan(word, slot)


def has_uvp_by_margin(word: str, slot: int) -> bool:
    """Lemma 1: UVP ⇔ every suffix margin is negative.

    Independent of :func:`has_uvp`; the two must agree on uniquely honest
    slots (a theorem of the paper, and a test of this library).
    """
    _check_slot(word, slot)
    if word[slot - 1] != HONEST_UNIQUE:
        return False
    sequence = margin_sequence(word, slot - 1)
    return all(value < 0 for value in sequence[1:])


def has_bottleneck_property(word: str, slot: int) -> bool:
    """Bottleneck property ⇔ Catalan, for honest slots (Facts 2 and 3)."""
    _check_slot(word, slot)
    if not is_honest(word[slot - 1]):
        return False
    return is_catalan(word, slot)


def uvp_slots(word: str) -> list[int]:
    """All slots with the UVP (uniquely honest Catalan slots; Theorem 3)."""
    return [s for s in catalan_slots(word) if word[s - 1] == HONEST_UNIQUE]


def uvp_slots_consistent_tiebreak(word: str) -> list[int]:
    """Slots with the UVP under axiom A0′ (Theorem 4).

    With a consistent longest-chain tie-breaking rule, slot ``s`` has the
    UVP when slots ``s`` and ``s + 1`` are both Catalan — even for
    multiply honest ``s`` — and additionally when ``s`` is uniquely honest
    Catalan (Theorem 3 still applies).  The final slot of two trailing
    consecutive Catalan slots gets only the bottleneck property, so it is
    excluded here.
    """
    catalan = set(catalan_slots(word))
    slots = set()
    for s in catalan:
        if word[s - 1] == HONEST_UNIQUE:
            slots.add(s)
        if s + 1 in catalan:
            slots.add(s)
    return sorted(slots)


def uvp_holds_in_fork(fork: Fork, slot: int) -> bool:
    """Definition-level UVP check on one explicit fork.

    True when some single vertex ``u`` labelled ``slot`` lies on *every*
    tine viable at the onset of every slot ``k ≥ slot + 1`` (vacuously
    false when a viable tine misses the slot entirely).  Used by the
    test-suite against exhaustively enumerated forks.
    """
    word = fork.word
    _check_slot(word, slot)
    candidates = fork.vertices_with_label(slot)
    if not candidates:
        return False
    for candidate in candidates:
        if _is_common_to_all_viable(fork, candidate, slot):
            return True
    return False


def bottleneck_holds_in_fork(fork: Fork, slot: int) -> bool:
    """Definition-level bottleneck check on one explicit fork."""
    word = fork.word
    _check_slot(word, slot)
    for onset in range(slot + 1, len(word) + 2):
        for tine in fork.viable_tines_at_onset(onset):
            if all(v.label != slot for v in tine.vertices()):
                return False
    return True


def _is_common_to_all_viable(fork: Fork, candidate, slot: int) -> bool:
    for onset in range(slot + 1, len(fork.word) + 2):
        for tine in fork.viable_tines_at_onset(onset):
            if not candidate.is_ancestor_of(tine.vertex):
                return False
    return True


def _check_slot(word: str, slot: int) -> None:
    if not 1 <= slot <= len(word):
        raise IndexError(f"slot {slot} outside [1, {len(word)}]")
