"""Relative margin μ_x(y) and the Theorem 5 recurrence (Definitions 16, 17).

For a closed fork ``F ⊢ w`` with ``w = xy``, the *relative margin*

    ``μ_x(F) = max over tine pairs t1 ≁_x t2 of min(reach(t1), reach(t2))``

is the "second-best" reach among tines disjoint over the suffix ``y``; the
string quantity ``μ_x(y)`` maximises over closed forks.  Margin is the
paper's bridge between settlement and stochastics:

* ``μ_x(y) ≥ 0``  ⇔  an x-balanced fork for ``xy`` exists (Fact 6), i.e.
  slot ``|x| + 1`` can be left unsettled;
* slot ``s`` (uniquely honest) has the UVP in ``w``  ⇔  ``μ_x(y) < 0``
  for every split ``w = xy`` with ``|x| = s − 1`` and ``|y| ≥ 1``
  (Lemma 1).

Theorem 5 gives the exact joint recurrence on ``(ρ(xy), μ_x(y))``::

    μ_x(ε)  = ρ(x)
    μ_x(yA) = μ_x(y) + 1
    μ_x(yb) = 0          if ρ(xy) > μ_x(y) = 0
            = 0          if ρ(xy) = μ_x(y) = 0 and b = H
            = μ_x(y) − 1 otherwise                     (b ∈ {h, H})

This module implements both the structural definition (on explicit forks)
and the recurrence; the test-suite cross-validates them and the exact
settlement DP of :mod:`repro.analysis.exact` vectorises the same
recurrence.
"""

from __future__ import annotations

from repro.core.alphabet import ADVERSARIAL, HONEST_MULTI, is_honest
from repro.core.forks import Fork, lowest_common_ancestor
from repro.core.reach import reach, reach_sequence


def margin_of_fork(fork: Fork, prefix_length: int = 0) -> int:
    """``μ_x(F)`` computed directly from Definition 17.

    ``prefix_length`` is ``|x|``; tine pairs must be disjoint over the
    suffix ``y`` (their last common vertex is labelled ≤ ``|x|``).  A tine
    whose own label is ≤ ``|x|`` counts as disjoint with itself — exactly
    the convention the paper uses to make ``μ_x(ε) = ρ(x)``.

    Quadratic in the number of vertices; intended for moderate forks and
    for ground-truthing the recurrence.
    """
    vertices = fork.vertices()
    reaches = {v: reach(fork, v) for v in vertices}
    best: int | None = None
    for i, left in enumerate(vertices):
        for right in vertices[i:]:
            meet = lowest_common_ancestor(left, right)
            if left is right and left.label > prefix_length:
                continue
            if meet.label > prefix_length:
                continue
            candidate = min(reaches[left], reaches[right])
            if best is None or candidate > best:
                best = candidate
    if best is None:
        raise ValueError("fork has no disjoint tine pair (impossible: root)")
    return best


def margin(word: str) -> int:
    """``μ(w) = μ_ε(w)`` via the Theorem 5 recurrence."""
    return relative_margin(word, 0)


def relative_margin(word: str, prefix_length: int) -> int:
    """``μ_x(y)`` for ``x = word[:prefix_length]``, ``y`` the rest.

    Runs the Theorem 5 recurrence in O(|word|).
    """
    if not 0 <= prefix_length <= len(word):
        raise ValueError(
            f"prefix length {prefix_length} outside [0, {len(word)}]"
        )
    return margin_sequence(word, prefix_length)[-1]


def margin_sequence(word: str, prefix_length: int) -> list[int]:
    """``[μ_x(ε), μ_x(y_1), μ_x(y_1 y_2), …]`` along the suffix.

    Entry ``t`` is ``μ_x(y_1 … y_t)``; entry 0 is ``μ_x(ε) = ρ(x)``.
    Together with :func:`repro.core.reach.reach_sequence` this exposes the
    full joint trajectory used by Lemma 1 and the exact DP.
    """
    prefix = word[:prefix_length]
    suffix = word[prefix_length:]
    rho_prefix = reach_sequence(prefix)[-1]

    values = [rho_prefix]
    margin_value = rho_prefix
    rho_value = rho_prefix
    for symbol in suffix:
        margin_value = _margin_step(rho_value, margin_value, symbol)
        rho_value = _rho_step(rho_value, symbol)
        values.append(margin_value)
    return values


def _rho_step(rho_value: int, symbol: str) -> int:
    """One step of the reach recurrence (Theorem 5, Eq. (13))."""
    if symbol == ADVERSARIAL:
        return rho_value + 1
    if is_honest(symbol):
        return max(rho_value - 1, 0)
    raise ValueError(f"unexpected symbol {symbol!r}")


def _margin_step(rho_value: int, margin_value: int, symbol: str) -> int:
    """One step of the relative-margin recurrence (Theorem 5, Eq. (14)).

    ``rho_value`` is ``ρ(xy)`` *before* consuming ``symbol``.
    """
    if symbol == ADVERSARIAL:
        return margin_value + 1
    if not is_honest(symbol):
        raise ValueError(f"unexpected symbol {symbol!r}")
    if margin_value == 0 and rho_value > 0:
        return 0
    if margin_value == 0 and rho_value == 0 and symbol == HONEST_MULTI:
        return 0
    return margin_value - 1


def joint_trajectory(
    word: str, prefix_length: int
) -> list[tuple[int, int]]:
    """``[(ρ(x y_{1..t}), μ_x(y_{1..t}))]`` for ``t = 0 … |y|``.

    The Markov chain state of the Section 6.6 algorithm, exposed for tests
    and for the Monte-Carlo cross-checks.
    """
    prefix = word[:prefix_length]
    suffix = word[prefix_length:]
    rho_value = reach_sequence(prefix)[-1]
    margin_value = rho_value
    trajectory = [(rho_value, margin_value)]
    for symbol in suffix:
        margin_value = _margin_step(rho_value, margin_value, symbol)
        rho_value = _rho_step(rho_value, symbol)
        trajectory.append((rho_value, margin_value))
    return trajectory


def margin_step(rho_value: int, margin_value: int, symbol: str) -> tuple[int, int]:
    """Public single-step transition: ``(ρ, μ) → (ρ', μ')`` on ``symbol``.

    Used by the exact DP and by online adversary simulations.
    """
    new_margin = _margin_step(rho_value, margin_value, symbol)
    new_rho = _rho_step(rho_value, symbol)
    return new_rho, new_margin


def settlement_violated(word: str, slot: int) -> bool:
    """Can slot ``slot`` be left unsettled *at the end of* ``word``?

    True iff ``μ_x(y) ≥ 0`` for the split ``x = word[:slot − 1]`` — by
    Fact 6 exactly the condition for an x-balanced fork for the whole
    string to exist.  This is the per-string indicator underlying the
    Table 1 probabilities (with ``|y| = k``).
    """
    if not 1 <= slot <= len(word):
        raise ValueError(f"slot {slot} outside [1, {len(word)}]")
    return relative_margin(word, slot - 1) >= 0


def ever_settlement_violated(word: str, slot: int, from_length: int = 0) -> bool:
    """Is ``μ_x(y') ≥ 0`` for *some* prefix ``y'`` with ``|y'| ≥ from_length``?

    Definition 3's settlement quantifies over all extensions; this helper
    checks every intermediate suffix length at once (Lemma 1's condition
    negated, restricted to suffixes of the given word).
    """
    sequence = margin_sequence(word, slot - 1)
    return any(value >= 0 for value in sequence[max(from_length, 1):])
