"""Core combinatorial framework of the paper.

This subpackage implements the synchronous fork framework of Blum et al.
as extended by Kiayias, Quader and Russell to characteristic strings over
``{h, H, A}`` with concurrent honest slot leaders: forks and tines,
gap/reserve/reach, relative margin and its recurrence (Theorem 5), Catalan
slots, the Unique Vertex Property, slot settlement, balanced forks, and the
optimal online adversary ``A*``.
"""

from repro.core.alphabet import (
    ADVERSARIAL,
    EMPTY,
    HONEST_MULTI,
    HONEST_UNIQUE,
    CharacteristicString,
    Symbol,
)
from repro.core.catalan import (
    catalan_slots,
    is_catalan,
    is_left_catalan,
    is_right_catalan,
)
from repro.core.forks import Fork, Tine, Vertex
from repro.core.margin import margin, margin_sequence, relative_margin
from repro.core.reach import reach_sequence, rho
from repro.core.adversary_star import build_canonical_fork
from repro.core.settlement import is_k_settled, settlement_violation_slots
from repro.core.uvp import has_bottleneck_property, has_uvp, uvp_slots

__all__ = [
    "ADVERSARIAL",
    "EMPTY",
    "HONEST_MULTI",
    "HONEST_UNIQUE",
    "CharacteristicString",
    "Symbol",
    "Fork",
    "Tine",
    "Vertex",
    "build_canonical_fork",
    "catalan_slots",
    "has_bottleneck_property",
    "has_uvp",
    "is_catalan",
    "is_k_settled",
    "is_left_catalan",
    "is_right_catalan",
    "margin",
    "margin_sequence",
    "reach_sequence",
    "relative_margin",
    "rho",
    "settlement_violation_slots",
    "uvp_slots",
]
