"""Distributions over characteristic strings (Definitions 6, 7; Theorem 7).

The central object is the (ε, p_h)-Bernoulli condition of Definition 7:
symbols are i.i.d. with

* ``Pr[A] = p_A = (1 − ε) / 2``,
* ``Pr[h] = p_h``  (a free parameter in ``[0, (1 + ε)/2]``), and
* ``Pr[H] = p_H = 1 − p_A − p_h``.

The semi-synchronous variant of Theorem 7 adds empty slots: ``Pr[⊥] = 1 − f``
where ``f`` is the *active-slot coefficient* and ``p_h + p_H + p_A = f``.

The module also implements stochastic dominance (Definition 6) checks used
by the tests, and an adversarially correlated "martingale" sampler that
satisfies ``Pr[w_i = A | w_1..w_{i-1}] ≤ p_A`` without being i.i.d. — the
paper's Theorem 1 covers such distributions via dominance.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.alphabet import (
    ADVERSARIAL,
    EMPTY,
    HONEST_MULTI,
    HONEST_UNIQUE,
    string_leq,
)


@dataclass(frozen=True)
class SlotProbabilities:
    """Per-slot symbol probabilities ``(p_h, p_H, p_A, p_⊥)``.

    ``p_empty`` is zero in the synchronous setting.  The honest-majority
    margin ε and the paper's standard parameters are exposed as properties.
    """

    p_unique: float
    p_multi: float
    p_adversarial: float
    p_empty: float = 0.0

    def __post_init__(self) -> None:
        total = self.p_unique + self.p_multi + self.p_adversarial + self.p_empty
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ValueError(f"probabilities sum to {total}, expected 1")
        for name, value in (
            ("p_unique", self.p_unique),
            ("p_multi", self.p_multi),
            ("p_adversarial", self.p_adversarial),
            ("p_empty", self.p_empty),
        ):
            if value < -1e-12 or value > 1 + 1e-12:
                raise ValueError(f"{name} = {value} outside [0, 1]")

    @property
    def p_honest(self) -> float:
        """``p_h + p_H`` — probability the slot is honest."""
        return self.p_unique + self.p_multi

    @property
    def activity(self) -> float:
        """The active-slot coefficient ``f = 1 − p_⊥``."""
        return 1.0 - self.p_empty

    @property
    def epsilon(self) -> float:
        """Honest-majority margin: ε with ``p_A = (1 − ε)/2`` (synchronous).

        Only meaningful when there are no empty slots; for semi-synchronous
        parameters use :meth:`repro.delta.reduction.reduced_probabilities`.
        """
        return 1.0 - 2.0 * self.p_adversarial

    def as_tuple(self) -> tuple[float, float, float, float]:
        """``(p_h, p_H, p_A, p_⊥)`` as a plain tuple."""
        return (self.p_unique, self.p_multi, self.p_adversarial, self.p_empty)


def bernoulli_condition(epsilon: float, p_unique: float) -> SlotProbabilities:
    """The (ε, p_h)-Bernoulli condition of Definition 7.

    ``p_A = (1 − ε)/2``, ``p_H = 1 − p_A − p_h``.  Raises ``ValueError``
    when ``p_h`` exceeds the honest mass ``(1 + ε)/2``.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    p_adversarial = (1.0 - epsilon) / 2.0
    honest_mass = 1.0 - p_adversarial
    if not 0 <= p_unique <= honest_mass + 1e-12:
        raise ValueError(
            f"p_h = {p_unique} outside [0, {honest_mass}] for epsilon = {epsilon}"
        )
    p_multi = max(honest_mass - p_unique, 0.0)
    return SlotProbabilities(p_unique, p_multi, p_adversarial)


def bivalent_condition(epsilon: float) -> SlotProbabilities:
    """The (ε, 0)-Bernoulli condition on bivalent strings (Definition 8).

    Every honest slot is multiply honest; used with the consistent
    tie-breaking axiom A0′ and Theorem 2.
    """
    return bernoulli_condition(epsilon, 0.0)


def from_adversarial_stake(
    alpha: float, unique_fraction: float = 1.0
) -> SlotProbabilities:
    """Parameters from an adversarial-stake bound ``α = p_A``.

    ``unique_fraction`` is ``p_h / (1 − α)`` — the fraction of honest slots
    that are uniquely honest; this is exactly the row parameter of Table 1.
    """
    if not 0 <= alpha < 0.5:
        raise ValueError(f"adversarial probability must be in [0, 0.5), got {alpha}")
    if not 0 <= unique_fraction <= 1:
        raise ValueError(f"unique_fraction must be in [0, 1], got {unique_fraction}")
    p_unique = (1.0 - alpha) * unique_fraction
    p_multi = (1.0 - alpha) - p_unique
    return SlotProbabilities(p_unique, p_multi, alpha)


def semi_synchronous_condition(
    activity: float, p_adversarial: float, p_unique: float
) -> SlotProbabilities:
    """Semi-synchronous parameters of Theorem 7.

    ``activity`` is ``f = 1 − p_⊥``; ``p_A`` and ``p_h`` are absolute
    per-slot probabilities with ``p_A + p_h ≤ f``; the remainder of the
    active mass is multiply honest.
    """
    if not 0 < activity <= 1:
        raise ValueError(f"activity must lie in (0, 1], got {activity}")
    if p_adversarial < 0 or p_unique < 0 or p_adversarial + p_unique > activity + 1e-12:
        raise ValueError("need p_A, p_h >= 0 and p_A + p_h <= f")
    p_multi = max(activity - p_adversarial - p_unique, 0.0)
    return SlotProbabilities(p_unique, p_multi, p_adversarial, 1.0 - activity)


def sample_characteristic_string(
    probabilities: SlotProbabilities,
    length: int,
    rng: random.Random,
) -> str:
    """Draw ``w ∈ {h, H, A, .}^length`` with i.i.d. symbols."""
    p_h, p_bigh, p_adv, _p_empty = probabilities.as_tuple()
    threshold_h = p_h
    threshold_bigh = p_h + p_bigh
    threshold_adv = threshold_bigh + p_adv
    symbols = []
    for _ in range(length):
        u = rng.random()
        if u < threshold_h:
            symbols.append(HONEST_UNIQUE)
        elif u < threshold_bigh:
            symbols.append(HONEST_MULTI)
        elif u < threshold_adv:
            symbols.append(ADVERSARIAL)
        else:
            symbols.append(EMPTY)
    return "".join(symbols)


def sample_martingale_string(
    probabilities: SlotProbabilities,
    length: int,
    rng: random.Random,
    correlation: float = 0.5,
) -> str:
    """Draw a correlated string dominated by the i.i.d. distribution.

    Models the martingale-type guarantee of adaptive-adversary analyses
    (Ouroboros Praos): conditioned on any history,
    ``Pr[w_i = A | w_1 … w_{i−1}] ≤ p_A``.  After an adversarial slot the
    conditional adversarial probability is damped by ``correlation``; the
    slack is given to uniquely honest slots, which only *lowers* every
    monotone event's probability, so the i.i.d. law stochastically
    dominates this one (Definition 6).
    """
    if not 0 <= correlation <= 1:
        raise ValueError("correlation must lie in [0, 1]")
    p_h, p_bigh, p_adv, p_empty = probabilities.as_tuple()
    symbols: list[str] = []
    previous_adversarial = False
    for _ in range(length):
        adv = p_adv * (correlation if previous_adversarial else 1.0)
        slack = p_adv - adv
        u = rng.random()
        if u < p_h + slack:
            symbols.append(HONEST_UNIQUE)
        elif u < p_h + slack + p_bigh:
            symbols.append(HONEST_MULTI)
        elif u < p_h + slack + p_bigh + adv:
            symbols.append(ADVERSARIAL)
        else:
            symbols.append(EMPTY)
        previous_adversarial = symbols[-1] == ADVERSARIAL
    return "".join(symbols)


def exact_string_probability(probabilities: SlotProbabilities, word: str) -> float:
    """``Pr[w = word]`` under the i.i.d. law — for exhaustive small-T sums."""
    p_h, p_bigh, p_adv, p_empty = probabilities.as_tuple()
    weight = {
        HONEST_UNIQUE: p_h,
        HONEST_MULTI: p_bigh,
        ADVERSARIAL: p_adv,
        EMPTY: p_empty,
    }
    probability = 1.0
    for symbol in word:
        probability *= weight[symbol]
    return probability


def enumerate_strings(alphabet: str, length: int):
    """Yield every string of ``length`` over ``alphabet`` (tests only)."""
    if length == 0:
        yield ""
        return
    for prefix in enumerate_strings(alphabet, length - 1):
        for symbol in alphabet:
            yield prefix + symbol


def empirical_dominates(
    stronger: list[str], weaker: list[str], indicator
) -> bool:
    """Check ``E[indicator]`` is at least as large under ``stronger`` samples.

    A crude empirical dominance probe for monotone ``indicator`` functions;
    used by tests to sanity-check :func:`sample_martingale_string`.
    """
    mean_strong = sum(indicator(w) for w in stronger) / max(len(stronger), 1)
    mean_weak = sum(indicator(w) for w in weaker) / max(len(weaker), 1)
    return mean_strong >= mean_weak - 1e-9


def verify_monotone(indicator, words: list[str]) -> bool:
    """Check an event is monotone w.r.t. the Definition 6 partial order.

    For every comparable pair in ``words``, membership must be preserved
    upward.  Quadratic; tests call it on small exhaustive families.
    """
    for low in words:
        if not indicator(low):
            continue
        for high in words:
            if len(high) == len(low) and string_leq(low, high) and not indicator(high):
                return False
    return True
