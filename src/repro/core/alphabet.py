"""Characteristic strings over the multi-leader alphabet ``{h, H, A}``.

Definition 1 of the paper encodes the outcome of leader election for each
slot as one symbol:

* ``h`` — *uniquely honest*: exactly one honest leader, no adversarial one;
* ``H`` — *multiply honest*: at least one honest leader (by convention more
  than one), no adversarial one;
* ``A`` — *adversarial*: at least one adversarial leader.

Section 8 extends the alphabet with ``⊥`` (an empty slot, no leader at
all), which this module writes as ``"."`` so that characteristic strings
remain plain ASCII.

Throughout the library a characteristic string is simply a ``str`` over
``"hHA."``; this module provides the canonical constants, validation,
counting helpers, and the partial order / stochastic-dominance machinery of
Definition 6.  A thin :class:`CharacteristicString` wrapper is offered for
users who prefer a typed object, but every algorithm in the library accepts
plain strings.
"""

from __future__ import annotations

from collections.abc import Iterable

#: Type alias: symbols are single-character strings over ``"hHA."``.
Symbol = str

#: Uniquely honest slot (exactly one honest leader).
HONEST_UNIQUE = "h"
#: Multiply honest slot (several honest leaders, no adversarial one).
HONEST_MULTI = "H"
#: Adversarial slot (at least one adversarial leader).
ADVERSARIAL = "A"
#: Empty slot (no leader at all); only valid in the Δ-synchronous setting.
EMPTY = "."

#: The synchronous alphabet of Definition 1.
SYNCHRONOUS_ALPHABET = frozenset((HONEST_UNIQUE, HONEST_MULTI, ADVERSARIAL))
#: The semi-synchronous alphabet of Definition 20.
SEMI_SYNCHRONOUS_ALPHABET = frozenset(
    (HONEST_UNIQUE, HONEST_MULTI, ADVERSARIAL, EMPTY)
)
#: The bivalent alphabet of Definition 8 (used with consistent tie-breaking).
BIVALENT_ALPHABET = frozenset((HONEST_MULTI, ADVERSARIAL))

#: Rank of each symbol in the partial order ``h < H < A`` of Definition 6.
_ORDER_RANK = {HONEST_UNIQUE: 0, HONEST_MULTI: 1, ADVERSARIAL: 2}


class InvalidCharacteristicString(ValueError):
    """Raised when a string contains symbols outside the chosen alphabet."""


def validate(word: str, alphabet: frozenset[str] = SYNCHRONOUS_ALPHABET) -> str:
    """Return ``word`` unchanged if every symbol lies in ``alphabet``.

    Raises :class:`InvalidCharacteristicString` otherwise.  The empty string
    is always valid (it is the characteristic string of the genesis-only
    execution).
    """
    bad = set(word) - alphabet
    if bad:
        raise InvalidCharacteristicString(
            f"invalid symbols {sorted(bad)!r} for alphabet {sorted(alphabet)!r}"
        )
    return word


def is_honest(symbol: str) -> bool:
    """True for ``h`` and ``H`` (the slot is honest; see Definition 1)."""
    return symbol == HONEST_UNIQUE or symbol == HONEST_MULTI


def is_adversarial(symbol: str) -> bool:
    """True exactly for ``A``."""
    return symbol == ADVERSARIAL


def count_symbols(word: str) -> dict[str, int]:
    """Return ``#σ(word)`` for every σ in the semi-synchronous alphabet."""
    return {symbol: word.count(symbol) for symbol in "hHA."}


def honest_count(word: str) -> int:
    """``#h(word) + #H(word)`` — honest slots of either kind."""
    return word.count(HONEST_UNIQUE) + word.count(HONEST_MULTI)


def adversarial_count(word: str) -> int:
    """``#A(word)``."""
    return word.count(ADVERSARIAL)


def is_hh_heavy(word: str) -> bool:
    """True when ``#h(word) + #H(word) > #A(word)`` (Section 3.1).

    An interval of slots is *hH-heavy* when honest slots strictly outnumber
    adversarial slots inside it; otherwise the interval is *A-heavy*.
    """
    return honest_count(word) > adversarial_count(word)


def is_a_heavy(word: str) -> bool:
    """True when the interval is not hH-heavy (Section 3.1)."""
    return not is_hh_heavy(word)


def symbol_leq(left: str, right: str) -> bool:
    """The single-symbol partial order ``h < H < A`` of Definition 6."""
    return _ORDER_RANK[left] <= _ORDER_RANK[right]


def string_leq(left: str, right: str) -> bool:
    """Coordinate-wise partial order on equal-length strings (Definition 6).

    ``left ≤ right`` means ``right`` is "more adversarial": any fork for
    ``left`` is also a fork for ``right``, so any settlement violation for
    ``left`` carries over to ``right``.
    """
    if len(left) != len(right):
        raise ValueError("strings of different lengths are incomparable")
    return all(symbol_leq(a, b) for a, b in zip(left, right))


def dominating_strings(word: str) -> Iterable[str]:
    """Yield every string ``w' ≥ word`` in the Definition 6 partial order.

    Exponential in the number of non-``A`` symbols; intended for tests on
    short strings only.
    """
    if not word:
        yield ""
        return
    head, tail = word[0], word[1:]
    heads = {
        HONEST_UNIQUE: (HONEST_UNIQUE, HONEST_MULTI, ADVERSARIAL),
        HONEST_MULTI: (HONEST_MULTI, ADVERSARIAL),
        ADVERSARIAL: (ADVERSARIAL,),
    }[head]
    for rest in dominating_strings(tail):
        for symbol in heads:
            yield symbol + rest


def walk_increments(word: str) -> list[int]:
    """Map symbols to walk steps: ``+1`` for ``A``, ``−1`` for honest.

    This is the process ``W_t`` of Section 5 (empty slots contribute 0 and
    are only meaningful in the semi-synchronous setting).
    """
    steps = []
    for symbol in word:
        if symbol == ADVERSARIAL:
            steps.append(1)
        elif symbol == EMPTY:
            steps.append(0)
        else:
            steps.append(-1)
    return steps


def prefix_sums(word: str) -> list[int]:
    """Prefix sums ``S_0 = 0, S_t = Σ_{i≤t} W_i`` of the walk (Section 5)."""
    sums = [0]
    total = 0
    for step in walk_increments(word):
        total += step
        sums.append(total)
    return sums


class CharacteristicString:
    """A validated characteristic string with convenience accessors.

    The class is a thin, immutable wrapper around ``str``; it exists for
    users who want parse-time validation and readable ``repr`` output.  All
    library algorithms accept plain strings, and instances compare equal to
    the underlying string's wrapper.
    """

    __slots__ = ("_word", "_alphabet")

    def __init__(
        self,
        word: str,
        alphabet: frozenset[str] = SYNCHRONOUS_ALPHABET,
    ) -> None:
        self._word = validate(word, alphabet)
        self._alphabet = alphabet

    @property
    def word(self) -> str:
        """The underlying plain string."""
        return self._word

    def __str__(self) -> str:
        return self._word

    def __repr__(self) -> str:
        return f"CharacteristicString({self._word!r})"

    def __len__(self) -> int:
        return len(self._word)

    def __getitem__(self, index):
        return self._word[index]

    def __iter__(self):
        return iter(self._word)

    def __eq__(self, other) -> bool:
        if isinstance(other, CharacteristicString):
            return self._word == other._word
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._word)

    def __le__(self, other: "CharacteristicString") -> bool:
        return string_leq(self._word, other._word)

    def slot(self, index: int) -> str:
        """Symbol of slot ``index`` using the paper's 1-based indexing."""
        if not 1 <= index <= len(self._word):
            raise IndexError(f"slot {index} outside [1, {len(self._word)}]")
        return self._word[index - 1]

    def interval(self, start: int, stop: int) -> str:
        """Substring for the closed slot interval ``[start, stop]`` (1-based)."""
        if not 1 <= start <= stop <= len(self._word):
            raise IndexError(f"interval [{start}, {stop}] out of range")
        return self._word[start - 1 : stop]

    def counts(self) -> dict[str, int]:
        """Symbol counts, as :func:`count_symbols`."""
        return count_symbols(self._word)
