"""Gap, reserve, reach and maximum reach (Definitions 13, 14; Theorem 5).

For a *closed* fork ``F ⊢ w`` with longest tine ``t̂`` and a tine ``t``:

* ``gap(t) = length(t̂) − length(t)`` — how far behind ``t`` is;
* ``reserve(t)`` — the number of adversarial indices of ``w`` after
  ``ℓ(t)`` (blocks the adversary may still mint on top of ``t``);
* ``reach(t) = reserve(t) − gap(t)``.

A tine with non-negative reach can be padded with adversarial blocks into a
maximum-length — hence adoptable — chain; reach measures the adversary's
remaining budget on that tine.  ``ρ(F)`` is the maximum reach over tines
and ``ρ(w)`` its maximum over closed forks; Theorem 5 shows ``ρ(w)``
satisfies the reflected-walk recurrence implemented by :func:`rho` /
:func:`reach_sequence`.

Structural computations here take any fork and evaluate the definitions
directly; they are deliberately independent of the recurrence so the tests
can compare the two.
"""

from __future__ import annotations

from repro.core.alphabet import ADVERSARIAL, is_honest
from repro.core.forks import Fork, Vertex


def reserve(fork: Fork, vertex: Vertex) -> int:
    """``reserve(t)`` — adversarial indices of ``w`` strictly after ``ℓ(t)``."""
    return fork.word.count(ADVERSARIAL, vertex.label)


def gap(fork: Fork, vertex: Vertex) -> int:
    """``gap(t) = height(F) − length(t)`` (meaningful for closed forks)."""
    return fork.height - vertex.depth


def reach(fork: Fork, vertex: Vertex) -> int:
    """``reach(t) = reserve(t) − gap(t)`` (Definition 13)."""
    return reserve(fork, vertex) - gap(fork, vertex)


def max_reach(fork: Fork) -> int:
    """``ρ(F)`` — maximum reach over all tines of ``F`` (Definition 14)."""
    return max(reach(fork, v) for v in fork.vertices())


def reach_by_vertex(fork: Fork) -> dict[Vertex, int]:
    """Reach of every tine, keyed by terminal vertex."""
    return {v: reach(fork, v) for v in fork.vertices()}


def zero_reach_vertices(fork: Fork) -> list[Vertex]:
    """Tines with reach exactly zero (the set ``Z`` of Figure 4)."""
    return [v for v in fork.vertices() if reach(fork, v) == 0]


def max_reach_vertices(fork: Fork) -> list[Vertex]:
    """Tines attaining ``ρ(F)`` (the set ``R`` of Figure 4)."""
    best = max_reach(fork)
    return [v for v in fork.vertices() if reach(fork, v) == best]


def rho(word: str) -> int:
    """``ρ(w)`` via the Theorem 5 recurrence.

    ``ρ(ε) = 0``; ``ρ(wA) = ρ(w) + 1``; for honest ``b``,
    ``ρ(wb) = max(ρ(w) − 1, 0)``.  This is the reflected ε-biased walk on
    the non-negative integers.
    """
    value = 0
    for symbol in word:
        if symbol == ADVERSARIAL:
            value += 1
        elif is_honest(symbol):
            value = max(value - 1, 0)
        else:
            raise ValueError(f"unexpected symbol {symbol!r} in reach recurrence")
    return value


def reach_sequence(word: str) -> list[int]:
    """``[ρ(ε), ρ(w_1), ρ(w_1 w_2), …]`` — all prefix reaches in O(n)."""
    values = [0]
    value = 0
    for symbol in word:
        if symbol == ADVERSARIAL:
            value += 1
        elif is_honest(symbol):
            value = max(value - 1, 0)
        else:
            raise ValueError(f"unexpected symbol {symbol!r} in reach recurrence")
        values.append(value)
    return values
