"""Biased random walks and the barrier distribution X_∞ (Section 5).

The probabilistic proofs of Bounds 1–3 study the ±1 walk induced by a
characteristic string (``+1`` on ``A``, ``−1`` on honest symbols) with
downward bias ε.  Three objects from that analysis are implemented here:

* descent/ascent stopping times of the walk and their classical hitting
  probabilities (the "gambler's ruin" constants ``A(1) = p/q``);
* the reflected walk ``X_t = S_t − min_{i≤t} S_i`` tracking the height of
  the walk above its running minimum, whose stationary law is the geometric
  distribution ``X_∞`` of Eq. (9) — the initial-reach distribution of the
  Section 6.6 algorithm; and
* Monte-Carlo samplers used by the test-suite to validate the
  generating-function coefficients empirically.

The batched samplers (``sample_reflected_walk_heights``,
``sample_descent_times``) delegate to :mod:`repro.engine.kernels` and
simulate whole walk populations as ``(trials, steps)`` arrays; the
scalar per-sample loops are kept as their cross-validation oracles.
The engine imports this module's closed-form helpers, so the delegation
is imported lazily.
"""

from __future__ import annotations

import math
import random

from repro.core.alphabet import walk_increments


def bias_probabilities(epsilon: float) -> tuple[float, float]:
    """``(p, q)`` with ``p = (1 − ε)/2`` up-mass and ``q = (1 + ε)/2``.

    ``q − p = ε`` is the downward bias of the walk.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    return (1.0 - epsilon) / 2.0, (1.0 + epsilon) / 2.0


def ruin_probability(epsilon: float) -> float:
    """Probability a downward-biased walk at 0 ever reaches +1: ``p/q``."""
    p, q = bias_probabilities(epsilon)
    return p / q


def stationary_reach_pmf(epsilon: float, maximum: int) -> list[float]:
    """The distribution X_∞ of Eq. (9), truncated to ``[0, maximum]``.

    ``Pr[X_∞ = k] = (1 − β) β^k`` with ``β = (1 − ε)/(1 + ε)``.  The
    returned list has ``maximum + 1`` entries and omits the tail mass
    ``β^{maximum+1}`` (callers that need exactness account for the tail
    separately; see :mod:`repro.analysis.exact`).
    """
    beta = stationary_reach_ratio(epsilon)
    return [(1.0 - beta) * beta**k for k in range(maximum + 1)]


def stationary_reach_ratio(epsilon: float) -> float:
    """``β = (1 − ε)/(1 + ε)`` — the geometric ratio of X_∞."""
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    return (1.0 - epsilon) / (1.0 + epsilon)


def stationary_reach_tail(epsilon: float, threshold: int) -> float:
    """``Pr[X_∞ ≥ threshold] = β^threshold`` (exact geometric tail)."""
    return stationary_reach_ratio(epsilon) ** threshold


def walk_path(word: str) -> list[int]:
    """``S_0 = 0, …, S_T`` for the walk induced by ``word``."""
    path = [0]
    for step in walk_increments(word):
        path.append(path[-1] + step)
    return path


def reflected_walk(word: str) -> list[int]:
    """``X_t = S_t − min_{i ≤ t} S_i`` — height above the running minimum.

    This is the ε-biased walk with a reflecting barrier used in the |x| ≥ 1
    case of Bounds 1 and 2; ``X_{|x|}`` equals the maximum reach ρ(x)
    (Theorem 5 / [4, Lemma 6.1]).
    """
    heights = [0]
    total = 0
    minimum = 0
    for step in walk_increments(word):
        total += step
        minimum = min(minimum, total)
        heights.append(total - minimum)
    return heights


def descent_time(word: str) -> int | None:
    """First ``t`` with ``S_t = −1``, or ``None`` if the walk never descends.

    The generating function of this stopping time over random strings is
    ``D(Z)`` of Section 5.1.
    """
    total = 0
    for t, step in enumerate(walk_increments(word), start=1):
        total += step
        if total == -1:
            return t
    return None


def ascent_time(word: str) -> int | None:
    """First ``t`` with ``S_t = +1`` (generating function ``A(Z)``)."""
    total = 0
    for t, step in enumerate(walk_increments(word), start=1):
        total += step
        if total == 1:
            return t
    return None


def sample_descent_time(
    epsilon: float, rng: random.Random, cutoff: int = 10**6
) -> int | None:
    """Sample the descent stopping time of the ε-biased walk directly."""
    p, _q = bias_probabilities(epsilon)
    position = 0
    for t in range(1, cutoff + 1):
        position += 1 if rng.random() < p else -1
        if position == -1:
            return t
    return None


def sample_reflected_walk_height(
    epsilon: float, steps: int, rng: random.Random
) -> int:
    """Sample ``X_steps`` of the reflected ε-biased walk started at 0.

    Scalar oracle for :func:`sample_reflected_walk_heights`.
    """
    p, _q = bias_probabilities(epsilon)
    height = 0
    for _ in range(steps):
        if rng.random() < p:
            height += 1
        elif height > 0:
            height -= 1
    return height


def sample_reflected_walk_heights(
    epsilon: float, steps: int, trials: int, generator
) -> "np.ndarray":  # noqa: F821 — numpy imported lazily via the engine
    """Sample ``trials`` independent ``X_steps`` values in one batch.

    Delegates to the batched kernel: one ``(trials, steps)`` uniform
    block, closed-form reflection, no per-step Python loop.
    ``generator`` is a ``numpy.random.Generator``.
    """
    from repro.engine.kernels import reflected_walk_heights_from_uniforms

    return reflected_walk_heights_from_uniforms(
        epsilon, generator.random((trials, steps))
    )


def sample_descent_times(
    epsilon: float, trials: int, generator, cutoff: int = 10**4
) -> "np.ndarray":  # noqa: F821 — numpy imported lazily via the engine
    """Sample ``trials`` descent stopping times in one batch (0 = censored).

    Batched counterpart of :func:`sample_descent_time`; the whole
    population advances one vectorized step at a time, so the wall-clock
    cost is ``O(max observed descent)`` NumPy calls rather than
    ``O(trials × steps)`` Python iterations.
    """
    from repro.engine.kernels import descent_times

    return descent_times(epsilon, trials, generator, cutoff)


def expected_descent_time(epsilon: float) -> float:
    """``E[first descent] = 1/ε`` for the ε-biased walk (D'(1))."""
    return 1.0 / epsilon


def geometric_tail_exponent(epsilon: float) -> float:
    """Decay rate ``−ln(1 − ε²)/2`` of the centred walk's return mass.

    ``Pr[S_k = 0]`` decays like ``(1 − ε²)^{k/2}`` (Stirling; used in
    Bound 3's proof) — exposed for the Δ-synchronous error estimates.
    """
    return -math.log1p(-epsilon * epsilon) / 2.0
