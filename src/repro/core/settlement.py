"""Slot settlement (Definition 3) and the settlement game (Section 2.2).

Slot ``s`` is *k-settled* in ``w`` when no fork for any sufficiently long
prefix of ``w`` contains two maximum-length tines diverging before ``s``.
Settlement failures are exactly what an exchange waiting ``k`` slots before
crediting a deposit cares about.

The operational characterisations used here:

* a slot ``t ∈ [s, s + k]`` with the UVP forces ``s`` to be k-settled
  (Eq. (1));
* slot ``s`` admits a violation *at the end of* ``w``  ⇔
  ``μ_{w[:s−1]}(w[s−1:]) ≥ 0``  (Fact 6 / Observation 2 via x-balanced
  forks);
* the settlement game of Section 2.2 is implemented as a challenger that
  any adversary strategy can be played against; the optimal strategy is
  :class:`repro.core.adversary_star.AdversaryStar`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.alphabet import ADVERSARIAL, is_honest
from repro.core.catalan import catalan_slots
from repro.core.margin import margin_sequence
from repro.core.uvp import uvp_slots, uvp_slots_consistent_tiebreak


def is_k_settled(word: str, slot: int, depth: int) -> bool:
    """Is ``slot`` k-settled (``k = depth``) in ``word``? (Definition 3.)

    Evaluated via relative margin: a violation witnessed by a fork for a
    prefix ``ŵ = xy`` with ``|x| = slot − 1`` and ``|y| ≥ depth`` exists
    iff ``μ_x(y) ≥ 0`` for some such ``y`` (Fact 6).  Margins for every
    suffix length come from one O(|word|) recurrence pass.
    """
    if not 1 <= slot <= len(word):
        raise ValueError(f"slot {slot} outside [1, {len(word)}]")
    if depth < 0:
        raise ValueError(f"negative settlement depth {depth}")
    sequence = margin_sequence(word, slot - 1)
    considered = sequence[depth:] if depth >= 1 else sequence[1:]
    return all(value < 0 for value in considered)


def settlement_violation_slots(word: str, depth: int) -> list[int]:
    """Slots of ``word`` that are *not* k-settled (``k = depth``)."""
    return [
        slot
        for slot in range(1, len(word) + 1)
        if not is_k_settled(word, slot, depth)
    ]


def settled_by_uvp(word: str, slot: int, depth: int) -> bool:
    """Sufficient condition of Eq. (1): some slot in the window has UVP.

    A one-sided (conservative) test: ``True`` guarantees k-settlement; on
    ``False`` settlement may still hold.  The gap between this and
    :func:`is_k_settled` is exercised in tests.
    """
    window_end = min(slot + depth, len(word))
    return any(slot <= t <= window_end for t in uvp_slots(word))


def settled_by_uvp_consistent(word: str, slot: int, depth: int) -> bool:
    """Eq. (1) with the A0′ (consistent tie-breaking) UVP slots (Thm. 4)."""
    window_end = min(slot + depth, len(word))
    return any(
        slot <= t <= window_end
        for t in uvp_slots_consistent_tiebreak(word)
    )


def settlement_time(word: str, slot: int) -> int | None:
    """Smallest ``k`` such that ``slot`` is k-settled in ``word``.

    ``None`` when even observing the whole string leaves the slot
    unsettled (i.e. the final margin is still non-negative).  Otherwise
    the returned ``k`` satisfies: every fork for every prefix of length
    ≥ ``slot + k`` keeps slot ``slot`` settled.
    """
    sequence = margin_sequence(word, slot - 1)
    violations = [t for t, value in enumerate(sequence) if value >= 0 and t >= 1]
    if not violations:
        return 1
    last_violation = violations[-1]
    if last_violation == len(sequence) - 1:
        return None
    return last_violation + 1


class SettlementGame:
    """The (D, T; s, k)-settlement game of Section 2.2.

    The challenger is deterministic; an *adversary strategy* is a callable
    receiving the characteristic string consumed so far (ending in the
    current slot's symbol) and the mutable game state.  The optimal
    strategy builds canonical forks; random or greedy strategies give
    Monte-Carlo lower bounds on the violation probability.

    For tractability the game records only the quantities that decide the
    outcome — the joint (reach, margin) trajectory — because Theorem 6
    shows the optimal adversary attains the Theorem 5 recurrence values
    and Fact 6 converts the final margin sign into the violation verdict.
    Concrete fork-building adversaries are exercised separately through
    :class:`repro.core.adversary_star.AdversaryStar`.
    """

    def __init__(self, target_slot: int, depth: int) -> None:
        if target_slot < 1:
            raise ValueError("target slot must be >= 1")
        self.target_slot = target_slot
        self.depth = depth

    def adversary_wins(self, word: str) -> bool:
        """Outcome under *optimal* play on the drawn string ``word``.

        The adversary wins when slot ``target_slot`` is not k-settled in
        some fork for some prefix of length ≥ ``target_slot + depth``.
        """
        if len(word) < self.target_slot + self.depth:
            raise ValueError(
                f"string of length {len(word)} too short for slot "
                f"{self.target_slot} with depth {self.depth}"
            )
        return not is_k_settled(word, self.target_slot, self.depth)

    def win_probability(
        self,
        sampler: Callable[[], str],
        trials: int,
    ) -> float:
        """Monte-Carlo estimate of the optimal adversary's win rate."""
        wins = sum(self.adversary_wins(sampler()) for _ in range(trials))
        return wins / trials


def longest_settlement_free_window(word: str) -> int:
    """Length of the longest window without a UVP slot.

    The Theorem 8 common-prefix argument bounds CP violations by the
    existence of long UVP-free windows; this helper measures them.
    """
    slots = uvp_slots(word)
    boundaries = [0] + slots + [len(word) + 1]
    return max(b - a - 1 for a, b in zip(boundaries, boundaries[1:]))


def catalan_settlement_summary(word: str) -> dict[str, object]:
    """Descriptive statistics connecting Catalan slots and settlement.

    Returns counts used by the examples and by EXPERIMENTS.md narration.
    """
    catalan = catalan_slots(word)
    uvp = uvp_slots(word)
    honest = sum(1 for c in word if is_honest(c))
    return {
        "length": len(word),
        "honest_slots": honest,
        "adversarial_slots": word.count(ADVERSARIAL),
        "catalan_slots": len(catalan),
        "uvp_slots": len(uvp),
        "longest_uvp_free_window": longest_settlement_free_window(word),
    }
