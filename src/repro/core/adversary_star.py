"""The optimal online adversary ``A*`` of Figure 4 (Section 6.5).

``A*`` scans a characteristic string left to right and maintains a closed
fork that is *canonical* (Definition 19, Theorem 6): for **every** prefix
split ``w = xy`` it simultaneously attains the maximum possible reach
``ρ(F) = ρ(w)`` and relative margin ``μ_x(F) = μ_x(y)``.  It is therefore
an optimal online attacker against the settlement of all slots at once.

The strategy, per new symbol:

* ``A`` — do nothing (every tine's reserve, hence reach, grows by one);
* ``h`` / ``H`` — conservatively extend carefully chosen tine(s):

  - let ``Z`` be the zero-reach tines and ``R`` the maximum-reach tines of
    the current fork;
  - pick ``(r₁, z₁) ∈ R × Z`` minimising the divergence label
    ``ℓ(r₁ ∩ z₁)`` (ties broken deterministically);
  - extend ``z₁`` alone, unless the symbol is ``H`` and ``ρ(F) = 0`` with
    at least two zero-reach tines available — then extend both ``z₁`` and
    ``r₁`` (two sibling extensions when ``z₁ = r₁``), keeping the margin
    at zero as Eq. (14) promises;
  - when ``Z`` is empty (possible after a run of adversarial symbols has
    lifted every reach above zero) extend a maximum-reach tine; the new
    vertex lands at reach zero and re-seeds ``Z``.

A *conservative extension* (Definition 15) of a tine ``t`` pads ``t`` with
exactly ``gap(t)`` adversarial vertices — consuming the least reserve — and
places the new honest vertex at depth ``height(F) + 1``.

Theorem 6's canonicality is verified exhaustively in the test-suite by
comparing ``μ_x(F)`` (structural) against the Theorem 5 recurrence for all
prefixes of randomly drawn strings.
"""

from __future__ import annotations

from repro.core.alphabet import (
    ADVERSARIAL,
    HONEST_MULTI,
    is_honest,
)
from repro.core.forks import Fork, Vertex, lowest_common_ancestor
from repro.core.reach import reach


class AdversaryStar:
    """Online builder of canonical forks (Figure 4).

    Feed symbols with :meth:`advance`; the current canonical closed fork is
    :attr:`fork`.  The instance also records, per honest step, which tines
    were extended — useful for protocol-level adversaries that mirror the
    combinatorial strategy with real blocks.
    """

    def __init__(self) -> None:
        self.fork = Fork("")
        self.extension_log: list[tuple[int, list[int]]] = []

    @property
    def word(self) -> str:
        """The characteristic string consumed so far."""
        return self.fork.word

    def advance(self, symbol: str) -> None:
        """Consume one symbol of the characteristic string."""
        slot = len(self.fork.word) + 1
        self.fork.extend_word(symbol)
        if symbol == ADVERSARIAL:
            return
        if not is_honest(symbol):
            raise ValueError(f"A* expects symbols in {{h, H, A}}, got {symbol!r}")

        # Reaches are evaluated against the word *without* the new honest
        # symbol, matching Figure 4 (F_n is a fork for w_1 .. w_n).  A new
        # honest symbol changes no tine's reserve, so evaluating after
        # extend_word is identical.
        targets = self._select_targets(symbol)
        height = self.fork.height
        extended_uids = []
        for target in targets:
            vertex = self._conservative_extension(target, slot, height)
            extended_uids.append(vertex.uid)
        self.extension_log.append((slot, extended_uids))

    def run(self, word: str) -> Fork:
        """Consume a whole string and return the canonical fork."""
        for symbol in word:
            self.advance(symbol)
        return self.fork

    # ------------------------------------------------------------------

    def _select_targets(self, symbol: str) -> list[Vertex]:
        """Choose the tine(s) to extend.

        Follows Figure 4 as completed by the proof of Proposition 2: when
        the new symbol is ``H`` and ``ρ(F) = 0``, *two* conservative
        extensions ``σ1 ≻ z1`` and ``σ2 ≻ r1`` are made (two sibling
        extensions when ``z1 = r1``); otherwise a single extension of
        ``z1``.  When no zero-reach tine exists (a run of adversarial
        symbols lifted every reach above zero — then ``ρ(F) ≥ 1``), a
        maximum-reach tine is extended instead; its extension has reach 0.
        """
        vertices = self.fork.vertices()
        reaches = {v: reach(self.fork, v) for v in vertices}
        maximum = max(reaches.values())
        zero = [v for v in vertices if reaches[v] == 0]
        top = [v for v in vertices if reaches[v] == maximum]

        if not zero:
            return [min(top, key=lambda v: v.uid)]

        # Pick (r1, z1) minimising the divergence label ℓ(r1 ∩ z1); ties
        # broken by creation order for determinism.  The pair may be a
        # single tine paired with itself (divergence label = its own).
        best_key = None
        best_pair: tuple[Vertex, Vertex] | None = None
        for r in top:
            for z in zero:
                meet = lowest_common_ancestor(r, z)
                key = (meet.label, z.uid, r.uid)
                if best_key is None or key < best_key:
                    best_key = key
                    best_pair = (r, z)
        assert best_pair is not None
        r1, z1 = best_pair

        if symbol == HONEST_MULTI and maximum == 0:
            return [z1, r1]
        return [z1]

    def _conservative_extension(
        self, target: Vertex, slot: int, height: int
    ) -> Vertex:
        """Pad ``target`` with gap-many adversarial vertices, then extend.

        The padding uses the earliest adversarial indices after the
        target's label; reach(target) ≥ 0 guarantees enough of them exist.
        The new honest vertex lands at depth ``height + 1``.
        """
        word = self.fork.word
        needed = height - target.depth
        vertex = target
        label_floor = target.label
        added = 0
        while added < needed:
            label_floor += 1
            if label_floor >= slot:
                raise AssertionError(
                    "insufficient reserve for a conservative extension: "
                    "the target tine had negative reach"
                )
            if word[label_floor - 1] == ADVERSARIAL:
                vertex = self.fork.add_vertex(vertex, label_floor)
                added += 1
        return self.fork.add_vertex(vertex, slot)


def build_canonical_fork(word: str) -> Fork:
    """Run ``A*`` on ``word`` and return the canonical fork (Theorem 6)."""
    return AdversaryStar().run(word)
