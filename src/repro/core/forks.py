"""The fork framework of Definition 2: labelled trees of abstract blocks.

A *fork* ``F ⊢ w`` for a characteristic string ``w ∈ {h, H, A}^n`` is a
rooted tree whose vertices are abstract blocks labelled with slot indices,
subject to the axioms

* **F1** — the root (genesis) has label 0;
* **F2** — labels strictly increase along every root-to-leaf path;
* **F3** — every uniquely honest index labels *exactly one* vertex, every
  multiply honest index labels *at least one* vertex (adversarial indices
  may label any number, including zero);
* **F4** — honest vertices appear at strictly increasing depths: if
  ``i < j`` are honest indices, every vertex labelled ``i`` is strictly
  shallower than every vertex labelled ``j``.

A *tine* is a root-to-vertex path and stands for a blockchain; we identify
a tine with its terminal :class:`Vertex`.  The module implements fork
construction, axiom validation, viability (Section 2), the honest-depth
function ``d(·)``, closedness (Definition 12), the tine relations ``∼_x``
(Definition 16) and fork prefixes (Definition 10).

Forks here are plain mutable trees; algorithms that need snapshots use
:meth:`Fork.copy`.  Validation is explicit (:meth:`Fork.validate`) rather
than enforced on every mutation so that adversary implementations can build
forks incrementally.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.alphabet import (
    ADVERSARIAL,
    EMPTY,
    HONEST_MULTI,
    HONEST_UNIQUE,
    is_honest,
)


class ForkAxiomViolation(ValueError):
    """Raised by :meth:`Fork.validate` when an axiom F1–F4 fails."""


class Vertex:
    """One abstract block: a tree node carrying a slot label.

    The root (genesis) vertex has ``label == 0`` and ``parent is None``.
    ``depth`` is the number of edges from the root, which equals the length
    of the tine terminating here (Definition 9).
    """

    __slots__ = ("label", "parent", "children", "depth", "uid")

    def __init__(self, label: int, parent: "Vertex | None", uid: int) -> None:
        self.label = label
        self.parent = parent
        self.children: list[Vertex] = []
        self.depth = 0 if parent is None else parent.depth + 1
        #: Stable creation index; used for deterministic iteration and as a
        #: tie-breaking key by consistent chain-selection rules.
        self.uid = uid

    def __repr__(self) -> str:
        return f"Vertex(label={self.label}, depth={self.depth}, uid={self.uid})"

    def path_from_root(self) -> list["Vertex"]:
        """The tine ending at this vertex, root first."""
        path: list[Vertex] = []
        vertex: Vertex | None = self
        while vertex is not None:
            path.append(vertex)
            vertex = vertex.parent
        path.reverse()
        return path

    def ancestors(self) -> Iterator["Vertex"]:
        """Proper ancestors, closest first (excludes ``self``)."""
        vertex = self.parent
        while vertex is not None:
            yield vertex
            vertex = vertex.parent

    def is_ancestor_of(self, other: "Vertex") -> bool:
        """True when ``self`` lies on the tine ending at ``other``.

        Reflexive: every vertex is an ancestor of itself (matching the
        tine-prefix relation ``t1 ⪯ t2`` of Definition 9).
        """
        vertex: Vertex | None = other
        while vertex is not None and vertex.depth >= self.depth:
            if vertex is self:
                return True
            vertex = vertex.parent
        return False


class Tine:
    """A root-to-vertex path viewed as a blockchain (Definition 9).

    Thin value object over a terminal :class:`Vertex` in a specific
    :class:`Fork`; exposes the paper's tine vocabulary (length, label,
    common prefix, the ``∼_x`` relation, viability).
    """

    __slots__ = ("fork", "vertex")

    def __init__(self, fork: "Fork", vertex: Vertex) -> None:
        self.fork = fork
        self.vertex = vertex

    @property
    def length(self) -> int:
        """Number of edges on the path (Definition 9)."""
        return self.vertex.depth

    @property
    def label(self) -> int:
        """``ℓ(t)`` — the slot label of the terminal vertex."""
        return self.vertex.label

    def vertices(self) -> list[Vertex]:
        """Vertices along the tine, root first."""
        return self.vertex.path_from_root()

    def common_prefix(self, other: "Tine") -> Vertex:
        """The last common vertex ``t1 ∩ t2`` (Definition 9)."""
        return lowest_common_ancestor(self.vertex, other.vertex)

    def shares_edge_after(self, other: "Tine", prefix_length: int) -> bool:
        """The relation ``t1 ∼_x t2`` with ``|x| = prefix_length``.

        True when the tines share an edge terminating at a vertex labelled
        in the suffix ``y`` (i.e. with label > ``prefix_length``).
        """
        meet = self.common_prefix(other)
        return meet.label > prefix_length

    def is_disjoint_after(self, other: "Tine", prefix_length: int) -> bool:
        """``t1 ≁_x t2`` — disjoint over the suffix past ``prefix_length``."""
        return not self.shares_edge_after(other, prefix_length)

    def is_strict_prefix_of(self, other: "Tine") -> bool:
        """``t1 ≺ t2`` (Definition 9)."""
        return self.vertex is not other.vertex and self.vertex.is_ancestor_of(
            other.vertex
        )

    def length_up_to_slot(self, slot: int) -> int:
        """Length of the portion of the tine over slots ``0..slot``."""
        length = 0
        for vertex in self.vertices():
            if vertex.label <= slot and vertex.parent is not None:
                length += 1
        return length

    def is_viable_at_onset(self, slot: int) -> bool:
        """Viability at the onset of ``slot`` (Section 2, "Viable tines").

        The portion of the tine over slots ``0..slot−1`` must be at least
        as long as the depth of every honest vertex from those slots.
        An honest observer acting at ``slot`` only ever adopts such tines.
        """
        return self.fork.is_viable_at_onset(self.vertex, slot)

    def is_adversarial(self) -> bool:
        """True when the terminal vertex is adversarial (Section 3.1)."""
        return not self.fork.is_honest_vertex(self.vertex)

    def last_honest_vertex(self) -> Vertex:
        """Deepest honest vertex on the tine (the root if none other)."""
        for vertex in reversed(self.vertices()):
            if self.fork.is_honest_vertex(vertex):
                return vertex
        return self.fork.root

    def __repr__(self) -> str:
        labels = [v.label for v in self.vertices()]
        return f"Tine(labels={labels})"


class Fork:
    """A fork ``F ⊢ w`` (Definition 2) as a mutable labelled tree.

    Construction starts from the genesis-only trivial fork; vertices are
    appended with :meth:`add_vertex`.  ``word`` uses the paper's 1-based
    slot indexing: symbol ``word[i - 1]`` governs label ``i``.
    """

    def __init__(self, word: str) -> None:
        self.word = word
        self._uid_counter = 0
        self.root = Vertex(0, None, self._next_uid())
        self._vertices: list[Vertex] = [self.root]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _next_uid(self) -> int:
        uid = self._uid_counter
        self._uid_counter += 1
        return uid

    def add_vertex(self, parent: Vertex, label: int) -> Vertex:
        """Append a block with slot ``label`` on top of ``parent``.

        Enforces only the local axiom F2 (strictly increasing labels) and
        label range; global axioms are checked by :meth:`validate`.
        """
        if not 1 <= label <= len(self.word):
            raise ForkAxiomViolation(
                f"label {label} outside [1, {len(self.word)}]"
            )
        if label <= parent.label:
            raise ForkAxiomViolation(
                f"label {label} not greater than parent label {parent.label} (F2)"
            )
        if self.word[label - 1] == EMPTY:
            raise ForkAxiomViolation(f"slot {label} is empty: no leader exists")
        vertex = Vertex(label, parent, self._next_uid())
        parent.children.append(vertex)
        self._vertices.append(vertex)
        return vertex

    def extend_word(self, suffix: str) -> None:
        """Append ``suffix`` to the characteristic string (online growth)."""
        self.word = self.word + suffix

    def copy(self) -> "Fork":
        """Deep copy preserving vertex identities only structurally."""
        clone = Fork(self.word)
        mapping = {self.root: clone.root}
        for vertex in self._vertices:
            if vertex is self.root:
                continue
            mapping[vertex] = clone.add_vertex(mapping[vertex.parent], vertex.label)
        return clone

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    def vertices(self) -> list[Vertex]:
        """All vertices in creation order (root first)."""
        return list(self._vertices)

    def leaves(self) -> list[Vertex]:
        """Vertices without children."""
        return [v for v in self._vertices if not v.children]

    def tine(self, vertex: Vertex) -> Tine:
        """The tine terminating at ``vertex``."""
        return Tine(self, vertex)

    def tines(self) -> list[Tine]:
        """Every tine of the fork (one per vertex, including the root)."""
        return [Tine(self, v) for v in self._vertices]

    def __len__(self) -> int:
        return len(self._vertices)

    @property
    def height(self) -> int:
        """Length of the longest tine (Definition 9)."""
        return max(v.depth for v in self._vertices)

    def symbol(self, label: int) -> str:
        """The characteristic-string symbol governing ``label``."""
        if label == 0:
            return HONEST_UNIQUE  # genesis is honest by convention
        return self.word[label - 1]

    def is_honest_vertex(self, vertex: Vertex) -> bool:
        """Honest vertices carry labels of honest slots (the root counts)."""
        return vertex.label == 0 or is_honest(self.word[vertex.label - 1])

    def vertices_with_label(self, label: int) -> list[Vertex]:
        """All vertices carrying slot ``label``."""
        return [v for v in self._vertices if v.label == label]

    def honest_vertices(self) -> list[Vertex]:
        """All honest vertices including the root."""
        return [v for v in self._vertices if self.is_honest_vertex(v)]

    # ------------------------------------------------------------------
    # the paper's derived notions
    # ------------------------------------------------------------------

    def honest_depth(self, label: int) -> int:
        """``d(label)`` — largest depth of honest vertices at ``label``.

        Defined for honest slots that carry at least one vertex (F3
        guarantees existence in valid forks).
        """
        depths = [v.depth for v in self.vertices_with_label(label)]
        if not depths:
            raise KeyError(f"no vertex with label {label}")
        return max(depths)

    def max_honest_depth_up_to(self, slot: int) -> int:
        """``max{d(i) : i honest, i ≤ slot}`` (0 when none exist)."""
        best = 0
        for vertex in self._vertices:
            if vertex.label <= slot and self.is_honest_vertex(vertex):
                best = max(best, vertex.depth)
        return best

    def is_viable_at_onset(self, vertex: Vertex, slot: int) -> bool:
        """Viability of the tine ending at ``vertex`` at the onset of ``slot``.

        Compares the tine's length over slots ``< slot`` against the depth
        of every honest vertex from those slots.
        """
        tine = Tine(self, vertex)
        if vertex.label >= slot:
            prefix_length = tine.length_up_to_slot(slot - 1)
        else:
            prefix_length = vertex.depth
        return prefix_length >= self.max_honest_depth_up_to(slot - 1)

    def viable_tines_at_onset(self, slot: int) -> list[Tine]:
        """All tines viable at the onset of ``slot`` whose label is < slot."""
        return [
            Tine(self, v)
            for v in self._vertices
            if v.label < slot and self.is_viable_at_onset(v, slot)
        ]

    def maximum_length_tines(self) -> list[Tine]:
        """Tines achieving ``height(F)``."""
        height = self.height
        return [Tine(self, v) for v in self._vertices if v.depth == height]

    def is_closed(self) -> bool:
        """Closed forks have only honest leaves (Definition 12)."""
        return all(self.is_honest_vertex(leaf) for leaf in self.leaves())

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check axioms F1–F4; raise :class:`ForkAxiomViolation` on failure."""
        self._validate_f1()
        self._validate_f2()
        self._validate_f3()
        self._validate_f4()

    def is_valid(self) -> bool:
        """Convenience wrapper around :meth:`validate`."""
        try:
            self.validate()
        except ForkAxiomViolation:
            return False
        return True

    def _validate_f1(self) -> None:
        if self.root.label != 0:
            raise ForkAxiomViolation(f"root label {self.root.label} != 0 (F1)")
        for vertex in self._vertices:
            if vertex is not self.root and vertex.label == 0:
                raise ForkAxiomViolation("non-root vertex labelled 0 (F1)")

    def _validate_f2(self) -> None:
        for vertex in self._vertices:
            if vertex.parent is not None and vertex.label <= vertex.parent.label:
                raise ForkAxiomViolation(
                    f"labels not increasing: {vertex.parent.label} -> "
                    f"{vertex.label} (F2)"
                )

    def _validate_f3(self) -> None:
        counts: dict[int, int] = {}
        for vertex in self._vertices:
            if vertex is self.root:
                continue
            counts[vertex.label] = counts.get(vertex.label, 0) + 1
        for index, symbol in enumerate(self.word, start=1):
            present = counts.get(index, 0)
            if symbol == HONEST_UNIQUE and present != 1:
                raise ForkAxiomViolation(
                    f"uniquely honest slot {index} has {present} vertices (F3)"
                )
            if symbol == HONEST_MULTI and present < 1:
                raise ForkAxiomViolation(
                    f"multiply honest slot {index} has no vertex (F3)"
                )
            if symbol == EMPTY and present != 0:
                raise ForkAxiomViolation(
                    f"empty slot {index} has {present} vertices"
                )

    def _validate_f4(self) -> None:
        honest_depths: dict[int, list[int]] = {}
        for vertex in self._vertices:
            if vertex is self.root:
                continue
            if self.is_honest_vertex(vertex):
                honest_depths.setdefault(vertex.label, []).append(vertex.depth)
        labels = sorted(honest_depths)
        for earlier, later in zip(labels, labels[1:]):
            if max(honest_depths[earlier]) >= min(honest_depths[later]):
                raise ForkAxiomViolation(
                    f"honest depths not increasing between slots {earlier} "
                    f"and {later} (F4)"
                )

    # ------------------------------------------------------------------
    # fork prefixes (Definition 10)
    # ------------------------------------------------------------------

    def contains_as_prefix(self, other: "Fork") -> bool:
        """``other ⊑ self``: every path of ``other`` appears here.

        Checked structurally by embedding ``other``'s tree into ``self``
        greedily by (label, children) shape; sufficient for the test-suite's
        prefix assertions on forks built by our own constructions, where
        embeddings are label-unique per branch.
        """
        if not self.word.startswith(other.word) and self.word != other.word:
            return False
        return _embeds(other.root, self.root)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def to_ascii(self) -> str:
        """Human-readable tree rendering used by the figure benchmarks."""
        lines: list[str] = []

        def walk(vertex: Vertex, indent: str, is_last: bool) -> None:
            marker = "" if vertex is self.root else ("└─ " if is_last else "├─ ")
            honest = self.is_honest_vertex(vertex)
            decoration = f"({vertex.label})" if honest else f"[{vertex.label}]"
            lines.append(f"{indent}{marker}{decoration}")
            child_indent = indent + ("" if vertex is self.root else
                                     ("   " if is_last else "│  "))
            for i, child in enumerate(vertex.children):
                walk(child, child_indent, i == len(vertex.children) - 1)

        walk(self.root, "", True)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Fork(word={self.word!r}, vertices={len(self._vertices)}, "
            f"height={self.height})"
        )


def lowest_common_ancestor(left: Vertex, right: Vertex) -> Vertex:
    """Deepest vertex lying on both tines (``t1 ∩ t2`` of Definition 9)."""
    a, b = left, right
    while a.depth > b.depth:
        a = a.parent  # type: ignore[assignment]
    while b.depth > a.depth:
        b = b.parent  # type: ignore[assignment]
    while a is not b:
        a = a.parent  # type: ignore[assignment]
        b = b.parent  # type: ignore[assignment]
    return a


def _embeds(pattern: Vertex, target: Vertex) -> bool:
    """Greedy tree embedding helper for :meth:`Fork.contains_as_prefix`."""
    if pattern.label != target.label:
        return False
    remaining = list(target.children)
    for child in pattern.children:
        match = None
        for candidate in remaining:
            if _embeds(child, candidate):
                match = candidate
                break
        if match is None:
            return False
        remaining.remove(match)
    return True


def build_fork(word: str, edges: Iterable[tuple[int, int]]) -> Fork:
    """Construct a fork from ``(parent_index, label)`` pairs.

    ``parent_index`` refers to the creation order (0 is genesis, 1 the
    first added vertex, …).  Convenient for writing paper figures as
    literal data; see the figure benchmarks.
    """
    fork = Fork(word)
    created = [fork.root]
    for parent_index, label in edges:
        created.append(fork.add_vertex(created[parent_index], label))
    return fork


def figure_1_fork() -> Fork:
    """The example fork of Figure 1 for ``w = hAhAhHAAH``.

    Three disjoint maximum-length tines; honest slots 6 and 9 each carry
    two concurrent honest vertices.
    """
    fork = Fork("hAhAhHAAH")
    v1 = fork.add_vertex(fork.root, 1)
    # Branch 1: 1 -> 2 -> 3 -> 4 -> 6 -> 9
    v2a = fork.add_vertex(v1, 2)
    v3 = fork.add_vertex(v2a, 3)
    v4a = fork.add_vertex(v3, 4)
    v6a = fork.add_vertex(v4a, 6)
    fork.add_vertex(v6a, 9)
    # Branch 2: 1 -> 2 -> 3 -> 4 -> 6 -> 9 (second vertices for 2, 4, 6, 9)
    v4b = fork.add_vertex(v3, 4)
    v6b = fork.add_vertex(v4b, 6)
    fork.add_vertex(v6b, 9)
    # Branch 3: 1 -> 2' -> 4'' -> 5 -> 7 -> 8
    v2b = fork.add_vertex(v1, 2)
    v4c = fork.add_vertex(v2b, 4)
    v5 = fork.add_vertex(v4c, 5)
    v7 = fork.add_vertex(v5, 7)
    fork.add_vertex(v7, 8)
    return fork
