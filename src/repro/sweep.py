"""Command-line sweep orchestrator: ``python -m repro.sweep``.

Runs any registered :class:`~repro.engine.sweeps.SweepGrid` and writes a
tidy results table — one row per grid point with its axis coordinates,
the Monte-Carlo estimate, its standard error, and whether the point was
served from the on-disk cache without re-estimation.

Examples::

    python -m repro.sweep --list                 # what can I run?
    python -m repro.sweep table1 --workers 8     # Table 1 grid, 8 cores
    python -m repro.sweep delta --trials 5000 --out delta.json
    python -m repro.sweep stake --cache-dir .sweep-cache   # warm rerun: instant
    python -m repro.sweep table1 --only alpha=0.1 --only depth=10,20
    python -m repro.sweep stake --seed 777       # re-seed the whole grid

Debugging subsets: ``--only axis=v1,v2`` (repeatable) restricts the run
to the matching grid points *after* expansion, so each surviving point
keeps the seed — and cache entry — it has in the full grid.  ``--seed``
replaces the grid's base seed (a different seed is a different run and
re-keys every point).

Caching: pass ``--cache-dir`` (or set ``$REPRO_SWEEP_CACHE``) and every
``(scenario, estimator, seed, trials, chunk_size)`` point is stored
after its first estimation; identical reruns do zero sampling.  Any key
component change — a different seed, trial count, or scenario field —
misses and recomputes (see ``repro.engine.cache``).

Parallelism: ``--workers N`` fans the runner's chunks across ``N``
processes.  Estimates are bit-identical for every worker count — the
per-chunk spawned ``SeedSequence`` tree depends only on
``(seed, trials, chunk_size)`` — so ``--workers`` is purely a wall-clock
knob.  ``--backend`` picks the execution backend explicitly:
``serial``, ``process``, ``array`` (chunks evaluated through the
configured array namespace — see ``repro.engine.array_api``), or
``distributed`` with ``--hosts host:port,host:port`` naming
``python -m repro.worker`` processes on other machines.  The backend is
also purely a wall-clock knob: all four produce bit-identical rows.

Adaptive precision: ``--target-se`` / ``--rel-se`` switch every point
to the runner's ``run_until`` path — chunk waves are dispatched until
the point's standard error meets the target, spending at most
``--max-trials`` (default: the fixed trial budget).  The ``trials``
column then shows each point's *realized* spend and the ``reused``
column how much of it was served from the chunk ledger; the cache
footer carries the chunk-level counters.  Raising ``--trials`` on a
warm cache re-samples only the new chunks (the ledger's prefix
property) — the old full chunks are reused bit-identically.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.engine.cache import ResultCache, cache_from_env, format_stats
from repro.engine.parallel import BACKEND_NAMES, make_backend
from repro.engine.sweeps import SweepGrid, get_grid, grid_names, run_grid
from repro.obs import metrics as obs_metrics
from repro.obs.trace import disable_tracing, enable_tracing

__all__ = ["main", "format_table", "parse_only"]


def parse_only(grid: SweepGrid, specs: list[str]) -> dict:
    """Parse repeated ``--only axis=v1,v2`` flags against ``grid``.

    Each token is matched against the axis's *declared* values (so
    ``0.1`` matches the float ``0.1``, ``10`` the int ``10``, and
    ``adversarial`` a string axis value) — the CLI never guesses types.
    Unknown axes or tokens matching no declared value are errors.
    Repeating an axis unions its value lists.
    """
    declared = dict(grid.axes)
    only: dict[str, list] = {}
    for spec in specs:
        axis, separator, rendered = spec.partition("=")
        if not separator or not rendered:
            raise ValueError(
                f"--only expects axis=v1,v2, got {spec!r}"
            )
        if axis not in declared:
            known = ", ".join(grid.axis_names)
            raise ValueError(f"unknown axis {axis!r}; grid axes: {known}")
        values = only.setdefault(axis, [])
        for token in rendered.split(","):
            matches = [
                value
                for value in declared[axis]
                if str(value) == token or _cell(value) == token
            ]
            if not matches:
                choices = ", ".join(_cell(v) for v in declared[axis])
                raise ValueError(
                    f"axis {axis!r} has no value {token!r}; "
                    f"declared: {choices}"
                )
            values.extend(
                value for value in matches if value not in values
            )
    return only


def _cell(value) -> str:
    """Render one axis value (numbers compactly, anything else as-is)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    return f"{value:g}"


def format_table(axis_names: list[str], rows: list[dict]) -> str:
    """Render tidy sweep rows as an aligned text table.

    ``trials`` is the realized spend (fixed budget, or whatever the
    adaptive stopping rule used); ``reused`` is the slice of it served
    from the cache's chunk ledger without any sampling.
    """
    headers = [*axis_names, "value", "std_err", "trials", "reused", "cached"]
    rendered = [
        [
            *(_cell(row[name]) for name in axis_names),
            f"{row['value']:.6g}",
            f"{row['standard_error']:.3g}",
            str(row["trials"]),
            str(row["reused_trials"]),
            "yes" if row["cached"] else "no",
        ]
        for row in rows
    ]
    widths = [
        max(len(header), *(len(line[i]) for line in rendered), 0)
        for i, header in enumerate(headers)
    ]
    def fmt(cells):
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    ruler = "  ".join("-" * width for width in widths)
    return "\n".join([fmt(headers), ruler, *(fmt(line) for line in rendered)])


def _list_grids(out) -> None:
    print("registered sweep grids:", file=out)
    for name in grid_names():
        grid = get_grid(name)
        axes = " x ".join(
            f"{axis}[{len(tuple(values))}]" for axis, values in grid.axes
        )
        print(
            f"  {name:16s} {axes}  ({grid.size()} points, "
            f"{grid.trials} trials/point)",
            file=out,
        )
        if grid.description:
            print(f"      {grid.description}", file=out)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="run a registered parameter sweep grid",
    )
    parser.add_argument("grid", nargs="?", help="grid name (see --list)")
    parser.add_argument(
        "--list", action="store_true", help="list registered grids and exit"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size (default 1 = serial; same estimates either way)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help=(
            "execution backend (default: serial, or process when "
            "--workers > 1); 'array' evaluates chunks through the "
            "configured array namespace, 'distributed' ships them to "
            "the --hosts workers — estimates are bit-identical on all "
            "of them"
        ),
    )
    parser.add_argument(
        "--hosts",
        default=None,
        metavar="HOST:PORT[,HOST:PORT]",
        help=(
            "worker addresses for --backend distributed (each runs "
            "python -m repro.worker)"
        ),
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the grid's per-point trial count",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "override the grid's base seed (point i runs with seed + i; "
            "a different seed re-keys every cache entry)"
        ),
    )
    parser.add_argument(
        "--target-se",
        type=float,
        default=None,
        help=(
            "adaptive mode: stop each point once its standard error is "
            "<= this (realized trials vary per point, capped by "
            "--max-trials)"
        ),
    )
    parser.add_argument(
        "--rel-se",
        type=float,
        default=None,
        help=(
            "adaptive mode: stop each point once its standard error is "
            "<= this fraction of its value (combinable with --target-se; "
            "first target met stops the point)"
        ),
    )
    parser.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help=(
            "adaptive trial ceiling per point (default: the fixed "
            "--trials budget)"
        ),
    )
    parser.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="AXIS=V1,V2",
        help=(
            "restrict the run to grid points whose AXIS takes one of the "
            "listed values (repeatable; filtered points keep their "
            "full-grid seeds and cache keys)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_SWEEP_CACHE if set)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore $REPRO_SWEEP_CACHE and run uncached",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the tidy rows as JSON to this path",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write JSONL span events to FILE (summarize with "
            "python -m repro.obs.report FILE); telemetry never touches "
            "the RNG, so traced runs stay bit-identical"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "collect engine metrics during the run and print the "
            "Prometheus text exposition after the summary"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        _list_grids(sys.stdout)
        return 0
    if not args.grid:
        parser.error("a grid name (or --list) is required")

    try:
        grid = get_grid(args.grid)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    try:
        only = parse_only(grid, args.only)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    cache = None
    if not args.no_cache:
        cache = (
            ResultCache(args.cache_dir) if args.cache_dir else cache_from_env()
        )

    # Validate the adaptive flags up front (mirroring run_until's own
    # checks) so a bad flag is a clean CLI error while genuine runtime
    # failures keep their tracebacks.
    for name, value in (
        ("--target-se", args.target_se),
        ("--rel-se", args.rel_se),
    ):
        if value is not None and not value > 0:
            print(f"error: {name} must be positive, got {value}",
                  file=sys.stderr)
            return 2
    if args.max_trials is not None and args.max_trials < 1:
        print("error: --max-trials must be positive", file=sys.stderr)
        return 2
    adaptive = (
        args.target_se is not None
        or args.rel_se is not None
        or grid.target_se is not None
        or grid.rel_se is not None
    )
    if args.max_trials is not None and not adaptive:
        print(
            "error: --max-trials only caps adaptive runs; add "
            "--target-se or --rel-se (fixed budgets use --trials)",
            file=sys.stderr,
        )
        return 2

    if args.hosts and args.backend != "distributed":
        print(
            "error: --hosts only applies to --backend distributed",
            file=sys.stderr,
        )
        return 2
    backend = None
    if args.backend is not None:
        try:
            backend = make_backend(args.backend, args.workers, args.hosts)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    registry = obs_metrics.enable() if args.metrics else None
    if args.trace:
        enable_tracing(args.trace)

    start = time.perf_counter()
    try:
        rows = run_grid(
            grid,
            trials=args.trials,
            workers=args.workers,
            cache=cache,
            backend=backend,
            seed=args.seed,
            only=only,
            target_se=args.target_se,
            rel_se=args.rel_se,
            max_trials=args.max_trials,
        )
    finally:
        if backend is not None:
            backend.close()
        if args.trace:
            disable_tracing()
        if registry is not None:
            obs_metrics.disable()
    elapsed = time.perf_counter() - start

    print(format_table(grid.axis_names, rows))
    served = sum(1 for row in rows if row["cached"])
    realized = sum(row["trials"] for row in rows)
    reused = sum(row["reused_trials"] for row in rows)
    backend_name = args.backend or (
        "process" if args.workers > 1 else "serial"
    )
    summary = (
        f"{len(rows)} points in {elapsed:.2f}s "
        f"(backend={backend_name}, workers={args.workers}, "
        f"{served} from cache, "
        f"{realized} trials realized, {reused} reused from ledger)"
    )
    print(summary)
    if cache is not None:
        print(format_stats(cache.stats()))
    if args.trace:
        print(
            f"trace written to {args.trace} "
            f"(summarize: python -m repro.obs.report {args.trace})"
        )
    if registry is not None:
        print("-- metrics --")
        print(registry.render(), end="")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {"grid": grid.name, "trials": args.trials or grid.trials,
                 "workers": args.workers, "rows": rows},
                handle,
                indent=2,
            )
            handle.write("\n")
        print(f"rows written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
