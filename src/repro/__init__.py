"""repro — Consistency of PoS blockchains with concurrent honest slot leaders.

A from-scratch Python reproduction of Kiayias, Quader and Russell,
*"Consistency of Proof-of-Stake Blockchains with Concurrent Honest Slot
Leaders"* (ICDCS 2020, arXiv:2001.06403): the multi-leader fork
framework, Catalan slots and the Unique Vertex Property, the relative
margin recurrence with the exact settlement-probability algorithm
(Table 1), the generating-function error bounds, the Δ-synchronous
reduction, and an executable PoS longest-chain protocol with rushing
adversaries that the combinatorial model is validated against.

Quick start::

    from repro import settlement_violation_probability, from_adversarial_stake

    params = from_adversarial_stake(alpha=0.20, unique_fraction=0.8)
    risk = settlement_violation_probability(params, k=100)
    # exact Pr[a slot is not 100-settled]  ≈ 5.1e-8 (Table 1)

See README.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core.adversary_star import AdversaryStar, build_canonical_fork
from repro.core.alphabet import CharacteristicString
from repro.core.catalan import catalan_slots, is_catalan
from repro.core.distributions import (
    SlotProbabilities,
    bernoulli_condition,
    bivalent_condition,
    from_adversarial_stake,
    semi_synchronous_condition,
)
from repro.core.forks import Fork, Tine, Vertex
from repro.core.margin import margin, relative_margin
from repro.core.reach import rho
from repro.core.settlement import is_k_settled, settlement_time
from repro.core.uvp import has_uvp, uvp_slots
from repro.analysis.exact import (
    settlement_table,
    settlement_violation_probability,
)
from repro.analysis.bounds import (
    theorem1_settlement_bound,
    theorem2_settlement_bound,
    theorem7_settlement_bound,
    theorem8_cp_bound,
)
from repro.delta.reduction import reduce_string
from repro.engine.cache import ResultCache
from repro.engine.runner import Estimate, ExperimentRunner, run_scenario
from repro.engine.scenarios import Scenario, get_scenario, scenario_names
from repro.engine.sweeps import SweepGrid, get_grid, grid_names, run_grid
from repro.protocol.leader import StakeDistribution
from repro.protocol.simulation import Simulation

__version__ = "1.0.0"

__all__ = [
    "AdversaryStar",
    "CharacteristicString",
    "Estimate",
    "ExperimentRunner",
    "Fork",
    "ResultCache",
    "Scenario",
    "Simulation",
    "SweepGrid",
    "SlotProbabilities",
    "StakeDistribution",
    "Tine",
    "Vertex",
    "bernoulli_condition",
    "bivalent_condition",
    "build_canonical_fork",
    "catalan_slots",
    "from_adversarial_stake",
    "get_grid",
    "get_scenario",
    "grid_names",
    "has_uvp",
    "is_catalan",
    "is_k_settled",
    "margin",
    "reduce_string",
    "relative_margin",
    "rho",
    "run_grid",
    "run_scenario",
    "scenario_names",
    "semi_synchronous_condition",
    "settlement_table",
    "settlement_time",
    "settlement_violation_probability",
    "theorem1_settlement_bound",
    "theorem2_settlement_bound",
    "theorem7_settlement_bound",
    "theorem8_cp_bound",
    "uvp_slots",
]
