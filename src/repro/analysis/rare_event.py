"""Rare-event settlement estimation: exponential tilting and splitting.

The settlement-failure probabilities of Table 1 decay as
``exp(−Θ(k))`` in the depth ``k`` (Theorem 1's dominating series has
radius > 1), so the cells that matter in production — 10⁻⁹ and below —
are unreachable by direct Monte Carlo: at ``n`` trials the smallest
resolvable probability is ~``1/n`` and an all-miss run certifies
nothing beyond the rule-of-three bound.  This module supplies two
estimators that do reach them, both flowing through the engine's
weighted-accumulator contract (:mod:`repro.engine.runner`):

**Exponential tilting (importance sampling).**  The synchronous
characteristic string is i.i.d. over ``{h, H, A}`` with
``Pr[A] = p_A = (1 − ε)/2``.  Tilting by ``θ`` reweights the per-slot
law to ``p'_A = p_A e^θ / Z``, ``p'_h = p_h e^{−θ} / Z``,
``p'_H = p_H e^{−θ} / Z`` with ``Z = p_A e^θ + (p_h + p_H) e^{−θ}`` —
the honest/adversarial *split* moves, the relative weight of ``h``
versus ``H`` inside the honest mass does not (both carry the same
likelihood ratio, so the tilt cannot distort the uniquely-honest
structure the margin recursion depends on).  The per-symbol log
likelihood ratios are ``−θ + ln Z`` for ``A`` and ``+θ + ln Z`` for
either honest symbol.  Sampling runs under the *tilted* scenario —
including its stationary initial reach, drawn with the tilted
``β' = (1 − ε')/(1 + ε')`` — and :class:`TiltedSettlementViolation`
emits per-trial weights ``1[μ ≥ 0] · exp(Σ log-ratios + ln w_init)``
where ``w_init(r) = (1 − β)β^r / ((1 − β')β'^r)`` corrects the initial
reach back to the base law.  Choosing ``ε' < ε`` (a *weaker* tilted
adversary margin) makes violations common while keeping every weight
factor bounded: ``β < β'`` ensures ``w_init`` is bounded in ``r``.

**Tilt-parameter heuristic.**  ``θ`` is parameterised by the target
tilted margin ``ε'`` via ``θ = ½[ln(p_hon/p_A) + ln((1−ε')/(1+ε'))]``
(the value that makes the tilted conditional adversarial mass exactly
``(1 − ε')/2``).  The default ``ε' = clip(1/√depth, 0.01, ε)`` places
the tilted walk's expected deficit ``ε'·k`` at the walk's own
fluctuation scale ``√k``, so the violation boundary sits about one
standard deviation into the tilted distribution.  Tilting all the way
to common violations (``ε' ≈ 2/k``) is counterproductive: the event
stops being rare but the per-trial likelihood ratios spread over many
orders of magnitude and the weight variance dominates — empirically
``1/√depth`` beats ``2/depth`` by ~3× in variance at depth 120.

**Fixed-effort multilevel splitting.**  The margin walk gains at most
``+1`` per slot, so a path with ``μ_t < −(k − t)`` can never reach
``μ_k ≥ 0``: the events ``L_j = {μ_{t_j} ≥ −(k − t_j)}`` at stage
times ``t_1 < … < t_m = k`` are nested supersets of the violation
event, and ``Pr[μ_k ≥ 0] = Π_j Pr[L_j | L_{j−1}]``.  The fixed-effort
scheme estimates each conditional factor with a constant population of
``N`` particles, resampling survivors uniformly with replacement after
each stage.  The product of stage survival fractions is a consistent
estimator with O(1/N) resampling bias (documented, not corrected); the
reported standard error is the delta-method approximation
``p̂ · sqrt(Σ_j (1 − p̂_j)/(N · p̂_j))``, which ignores the (positive)
resampling correlation between stages and is therefore a mild
underestimate at small N — use it for sizing, not certification.

Both estimators are validated against the exact DP
(:func:`repro.analysis.exact.settlement_violation_probability`) in
``tests/analysis/test_rare_event.py``.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from repro.core.distributions import SlotProbabilities
from repro.core.walks import stationary_reach_ratio
from repro.engine import kernels
from repro.engine.runner import Estimate, ExperimentRunner
from repro.engine.scenarios import Batch, Scenario

__all__ = [
    "SplittingEstimate",
    "TiltedSettlementViolation",
    "default_tilted_epsilon",
    "direct_mc_projection",
    "importance_scenario",
    "settlement_is_estimate",
    "splitting_settlement_estimate",
    "tilt_parameter",
    "tilted_probabilities",
]


def _require_synchronous(probabilities: SlotProbabilities) -> None:
    """The tilting algebra assumes the synchronous law (no empty slots
    and honest majority); semi-synchronous parameters must be reduced
    first (``repro.oracle.tables.effective_probabilities``)."""
    if probabilities.p_empty != 0.0:
        raise ValueError(
            "rare-event estimators need a synchronous law (p_empty == 0); "
            "reduce semi-synchronous parameters first"
        )
    if not 0.0 < probabilities.epsilon < 1.0:
        raise ValueError(
            f"need an honest-majority margin, got epsilon = "
            f"{probabilities.epsilon}"
        )


def default_tilted_epsilon(depth: int, epsilon: float) -> float:
    """The tilt-selection heuristic: ``ε' = clip(1/√depth, 0.01, ε)``.

    Deeper cells get a weaker tilted adversary margin, chosen so the
    tilted walk's expected deficit ``ε'·depth`` matches its fluctuation
    scale ``√depth`` — the violation boundary then sits roughly one
    standard deviation into the tilted distribution.  Tilting harder
    (``ε' ≈ 2/depth``, which makes violations outright common) trades a
    higher hit rate for per-trial likelihood ratios spread over many
    orders of magnitude and loses badly on net variance.  The floor
    0.01 keeps ``β' < 1`` well away from the degenerate boundary, and
    the cap at the base ``ε`` means we never tilt toward an even
    stronger honest majority — that would make the event rarer still.
    """
    if depth < 1:
        raise ValueError(f"depth must be positive, got {depth}")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    return min(max(1.0 / math.sqrt(depth), 0.01), epsilon)


def tilt_parameter(
    probabilities: SlotProbabilities, tilted_epsilon: float
) -> float:
    """The ``θ`` whose tilted law has adversarial mass ``(1 − ε')/2``.

    Solving ``p_A e^θ / Z = (1 − ε')/2`` for the synchronous law gives
    ``θ = ½[ln(p_hon/p_A) + ln((1 − ε')/(1 + ε'))]``.
    """
    _require_synchronous(probabilities)
    if not 0.0 < tilted_epsilon < 1.0:
        raise ValueError(
            f"tilted epsilon must lie in (0, 1), got {tilted_epsilon}"
        )
    return 0.5 * (
        math.log(probabilities.p_honest / probabilities.p_adversarial)
        + math.log((1.0 - tilted_epsilon) / (1.0 + tilted_epsilon))
    )


def tilted_probabilities(
    probabilities: SlotProbabilities, theta: float
) -> SlotProbabilities:
    """The exponentially tilted slot law (synchronous input required)."""
    _require_synchronous(probabilities)
    up = math.exp(theta)
    down = math.exp(-theta)
    a = probabilities.p_adversarial * up
    h = probabilities.p_unique * down
    big_h = probabilities.p_multi * down
    z = a + h + big_h
    return SlotProbabilities(h / z, big_h / z, a / z)


@dataclass(frozen=True)
class TiltedSettlementViolation:
    """Likelihood-ratio-weighted settlement-violation estimator.

    Runs against the *tilted* scenario and reweights each trial back to
    the base law whose parameters are stored here as plain floats (a
    frozen dataclass of JSON-able fields, so the estimator pickles to
    process/distributed workers and fingerprints deterministically for
    the chunk ledger).  The per-trial weight is::

        1[μ_k ≥ 0] · exp(n_A·(−θ + ln Z) + n_hon·(+θ + ln Z) + ln w_init)

    with ``Z = p_A e^θ + p_hon e^{−θ}`` of the base law and ``w_init``
    the stationary-initial-reach correction of the module docstring.
    """

    p_unique: float
    p_multi: float
    p_adversarial: float
    theta: float

    def __post_init__(self) -> None:
        _require_synchronous(self.base_probabilities())

    def base_probabilities(self) -> SlotProbabilities:
        return SlotProbabilities(
            self.p_unique, self.p_multi, self.p_adversarial
        )

    def __call__(self, scenario: Scenario, batch: Batch) -> np.ndarray:
        base = self.base_probabilities()
        expected = tilted_probabilities(base, self.theta)
        sampled = scenario.probabilities
        if not all(
            math.isclose(a, b, rel_tol=0.0, abs_tol=1e-12)
            for a, b in zip(expected.as_tuple(), sampled.as_tuple())
        ):
            raise ValueError(
                "scenario law does not match the tilt of this estimator; "
                "build the pair with importance_scenario()"
            )
        xp = kernels.array_namespace(batch.symbols)
        _rho, mu = kernels.joint_final_states(
            batch.symbols, batch.start_columns, batch.initial_reaches
        )
        violated = mu >= 0
        n_adv = (batch.symbols == kernels.CODE_ADVERSARIAL).sum(axis=1)
        n_hon = (batch.symbols < kernels.CODE_ADVERSARIAL).sum(axis=1)
        z = self.p_adversarial * math.exp(self.theta) + (
            base.p_honest
        ) * math.exp(-self.theta)
        log_z = math.log(z)
        log_w = n_adv * (-self.theta + log_z) + n_hon * (self.theta + log_z)
        if batch.initial_reaches is not None:
            beta = stationary_reach_ratio(base.epsilon)
            beta_tilted = stationary_reach_ratio(sampled.epsilon)
            log_w = log_w + (
                math.log((1.0 - beta) / (1.0 - beta_tilted))
                + batch.initial_reaches
                * (math.log(beta) - math.log(beta_tilted))
            )
        return xp.where(violated, xp.exp(log_w), 0.0)


def importance_scenario(
    scenario: Scenario, tilted_epsilon: float | None = None
) -> tuple[Scenario, TiltedSettlementViolation]:
    """The (tilted scenario, weighted estimator) pair for one cell.

    ``scenario`` must be a plain synchronous settlement workload (the
    Table 1 model: i.i.d. symbols, no reduction).  The returned
    scenario samples under the tilted law — so violations are common —
    and the returned estimator reweights every trial back to
    ``scenario``'s law; running the pair through
    :class:`~repro.engine.runner.ExperimentRunner` estimates the *base*
    scenario's violation probability.
    """
    if scenario.reduced:
        raise ValueError(
            "importance sampling runs on the reduced synchronous law "
            "directly; build a plain scenario from the reduced "
            "probabilities instead of a reduced workload"
        )
    if scenario.sampler != "iid":
        raise ValueError("importance sampling supports the iid sampler only")
    base = scenario.probabilities
    _require_synchronous(base)
    if tilted_epsilon is None:
        tilted_epsilon = default_tilted_epsilon(scenario.depth, base.epsilon)
    theta = tilt_parameter(base, tilted_epsilon)
    tilted = tilted_probabilities(base, theta)
    estimator = TiltedSettlementViolation(
        base.p_unique, base.p_multi, base.p_adversarial, theta
    )
    return dataclasses.replace(scenario, probabilities=tilted), estimator


def settlement_is_estimate(
    scenario: Scenario,
    seed: int,
    *,
    trials: int | None = None,
    rel_se: float | None = None,
    max_trials: int | None = None,
    tilted_epsilon: float | None = None,
    chunk_size: int = 4096,
    workers: int = 1,
    cache=None,
    backend=None,
) -> Estimate:
    """Estimate ``scenario``'s settlement-violation probability by IS.

    Fixed budget (``trials``) or adaptive (``rel_se`` with a
    ``max_trials`` ceiling) — the adaptive mode drives
    :meth:`~repro.engine.runner.ExperimentRunner.run_until` on the
    weighted SE, which is the whole point of the accumulator contract:
    a rare-event run stops exactly when the *likelihood-ratio* estimate
    is resolved, something a hit-count SE can never certify.  Results
    are ledger-cacheable like any other run (the tilted scenario and
    the estimator's fields key the cache).
    """
    tilted_scenario, estimator = importance_scenario(
        scenario, tilted_epsilon
    )
    runner = ExperimentRunner(
        tilted_scenario, estimator, chunk_size, workers, cache
    )
    if rel_se is not None:
        if max_trials is None:
            raise ValueError("rel_se mode needs a max_trials budget")
        return runner.run_until(
            seed, rel_se=rel_se, max_trials=max_trials, backend=backend
        )
    if trials is None:
        raise ValueError("pass trials (fixed budget) or rel_se (adaptive)")
    return runner.run(trials, seed, backend=backend)


# ----------------------------------------------------------------------
# Fixed-effort multilevel splitting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SplittingEstimate:
    """A multilevel-splitting estimate with its stage diagnostics."""

    value: float
    standard_error: float
    particles: int
    stage_times: tuple[int, ...]
    stage_fractions: tuple[float, ...]

    def as_estimate(self) -> Estimate:
        """The engine-uniform view (``trials`` = particle population)."""
        return Estimate(self.value, self.standard_error, self.particles)


def splitting_settlement_estimate(
    probabilities: SlotProbabilities,
    depth: int,
    particles: int,
    seed: int,
    stage_length: int = 8,
) -> SplittingEstimate:
    """Fixed-effort multilevel splitting for ``Pr[μ_depth ≥ 0]``.

    Stages end at ``t_j = stage_length, 2·stage_length, …, depth``; the
    survival threshold at ``t_j`` is ``μ_{t_j} ≥ −(depth − t_j)`` (a
    path below it can never climb back — the walk gains at most +1 per
    slot).  If any stage kills every particle the estimate is 0 with a
    rule-of-three-scale SE on the *product* reached so far.
    """
    _require_synchronous(probabilities)
    if depth < 1:
        raise ValueError(f"depth must be positive, got {depth}")
    if particles < 2:
        raise ValueError(f"need at least 2 particles, got {particles}")
    if stage_length < 1:
        raise ValueError(f"stage_length must be positive, got {stage_length}")
    generator = np.random.default_rng(np.random.SeedSequence(seed))
    reaches = kernels.sample_initial_reaches(
        probabilities.epsilon, particles, generator
    )
    rho = reaches.astype(np.int64)
    mu = rho.copy()
    stage_times = tuple(range(stage_length, depth, stage_length)) + (depth,)
    fractions: list[float] = []
    time = 0
    for stage_end in stage_times:
        symbols = kernels.sample_characteristic_matrix(
            probabilities, particles, stage_end - time, generator
        )
        for column in range(symbols.shape[1]):
            rho, mu = kernels.batched_margin_step(
                rho, mu, symbols[:, column]
            )
        time = stage_end
        survivors = np.flatnonzero(mu >= -(depth - stage_end))
        fraction = survivors.size / particles
        fractions.append(fraction)
        if survivors.size == 0:
            value = 0.0
            partial = float(np.prod(fractions[:-1])) if fractions[:-1] else 1.0
            se = partial / particles
            return SplittingEstimate(
                value, se, particles, stage_times, tuple(fractions)
            )
        if stage_end < depth:
            chosen = survivors[
                generator.integers(0, survivors.size, size=particles)
            ]
            rho = rho[chosen].copy()
            mu = mu[chosen].copy()
    value = float(np.prod(fractions))
    relative_variance = sum(
        (1.0 - fraction) / (particles * fraction) for fraction in fractions
    )
    se = value * math.sqrt(relative_variance)
    return SplittingEstimate(
        value, se, particles, stage_times, tuple(fractions)
    )


def direct_mc_projection(probability: float, rel_se: float) -> float:
    """Trials direct MC would need for ``rel_se``: ``(1 − p)/(p·rel_se²)``.

    The benchmark's variance-reduction floor compares an IS run's
    realized trials against this projection.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must lie in (0, 1), got {probability}")
    if not rel_se > 0.0:
        raise ValueError(f"rel_se must be positive, got {rel_se}")
    return (1.0 - probability) / (probability * rel_se * rel_se)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.analysis.rare_event``: one IS cell, end to end.

    Estimates one Table-1 cell by exponential tilting — adaptively
    (``--rel-se`` with a ``--max-trials`` ceiling, the default) or at a
    fixed budget (``--trials``) — optionally cross-checking against the
    exact DP (``--exact``) and reusing a chunk ledger (``--cache-dir``).
    The footer prints the cache/ledger counters, so a warm rerun is
    grep-assertable: ``sampled 0`` and ``0 chunk misses`` mean every
    weighted chunk replayed from the v2 ledger.  Exercised by the CI
    ``rare-event-smoke`` job.
    """
    import argparse

    from repro.core.distributions import from_adversarial_stake
    from repro.engine.cache import ResultCache, format_stats
    from repro.engine.scenarios import get_scenario

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.rare_event",
        description="importance-sampled settlement-violation estimate",
    )
    parser.add_argument("--alpha", type=float, default=0.20)
    parser.add_argument("--fraction", type=float, default=1.0)
    parser.add_argument("--depth", type=int, default=120)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--trials", type=int, default=None, help="fixed budget (no adaptivity)"
    )
    parser.add_argument(
        "--rel-se",
        type=float,
        default=0.25,
        help="adaptive relative-SE target (default mode)",
    )
    parser.add_argument("--max-trials", type=int, default=200_000)
    parser.add_argument("--chunk-size", type=int, default=4096)
    parser.add_argument(
        "--tilted-epsilon",
        type=float,
        default=None,
        help="override the 1/sqrt(depth) tilt heuristic",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="chunk-ledger directory"
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="also run the exact DP and report the sigma distance",
    )
    args = parser.parse_args(argv)

    law = from_adversarial_stake(args.alpha, args.fraction)
    scenario = dataclasses.replace(
        get_scenario("iid-settlement", depth=args.depth), probabilities=law
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    tilted_scenario, estimator = importance_scenario(
        scenario, args.tilted_epsilon
    )
    runner = ExperimentRunner(
        tilted_scenario, estimator, args.chunk_size, 1, cache
    )
    print(
        f"cell alpha={args.alpha} fraction={args.fraction} "
        f"depth={args.depth} (tilted epsilon "
        f"{tilted_probabilities(law, estimator.theta).epsilon:.4f})"
    )
    if args.trials is not None:
        estimate = runner.run(args.trials, args.seed)
    else:
        estimate = runner.run_until(
            args.seed, rel_se=args.rel_se, max_trials=args.max_trials
        )
    report = runner.last_report
    relative = (
        estimate.standard_error / estimate.value
        if estimate.value > 0
        else math.inf
    )
    print(
        f"IS estimate {estimate.value:.6e} "
        f"(rel. SE {relative:.3f}, {estimate.trials} trials realized; "
        f"sampled {report.sampled_trials}, "
        f"{report.reused_trials} reused from ledger)"
    )
    status = 0
    if args.exact:
        from repro.analysis.exact import settlement_violation_probability

        exact = settlement_violation_probability(law, args.depth)
        projection = direct_mc_projection(exact, max(relative, args.rel_se))
        sigma = (
            abs(estimate.value - exact) / estimate.standard_error
            if estimate.standard_error > 0
            else math.inf
        )
        print(
            f"exact DP {exact:.6e}: within {sigma:.2f} sigma; "
            f"direct MC would need ~{projection:.2e} trials at this "
            f"resolution ({projection / max(estimate.trials, 1):.0f}x more)"
        )
        if sigma > 6.0:
            print("FAIL: IS estimate more than 6 sigma from the exact DP")
            status = 1
    if cache is not None:
        print(format_stats(cache.stats()))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
