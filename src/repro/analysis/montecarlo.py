"""Monte-Carlo estimators cross-validating the exact and asymptotic results.

Sampling characteristic strings and evaluating the Theorem 5 recurrence
makes Monte Carlo a practical oracle for every probability in the paper:
settlement violations (against the exact DP), Catalan-slot rarity
(against Bounds 1 and 2), and consistency under non-i.i.d. (martingale)
leader sequences (against the dominance claim of Theorem 1).

The estimators here are *batched*: they draw ``(trials, T)`` uniform
blocks from a seeded ``numpy.random.Generator`` and run the vectorized
recurrences of :mod:`repro.engine.kernels`, so throughput scales with
array width instead of the Python interpreter.  Every batched estimator
has a ``*_scalar`` twin that consumes the **same uniform blocks in the
same order** (the documented seed discipline) but evaluates the scalar
recurrences of :mod:`repro.core` symbol by symbol — the pairs agree
bit-for-bit on equal seeds, which is what ``tests/engine`` asserts.

For backwards compatibility every estimator also accepts a
``random.Random``: its ``getrandbits(64)`` seeds the NumPy generator, so
legacy call sites stay deterministic (though on a different stream than
before the batching refactor).
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.catalan import (
    catalan_slots,
    uniquely_honest_catalan_slots,
)
from repro.core.distributions import SlotProbabilities
from repro.core.margin import margin_step
from repro.core.walks import stationary_reach_ratio
from repro.engine import kernels
from repro.engine.runner import Estimate, estimate_from_hits

__all__ = [
    "Estimate",
    "coerce_generator",
    "estimate_no_consecutive_catalan_in_window",
    "estimate_no_consecutive_catalan_in_window_scalar",
    "estimate_no_unique_catalan_in_window",
    "estimate_no_unique_catalan_in_window_scalar",
    "estimate_settlement_violation",
    "estimate_settlement_violation_scalar",
    "estimate_violation_from_sampler",
    "sample_initial_reach",
]


def coerce_generator(
    rng: random.Random | np.random.Generator | int,
) -> np.random.Generator:
    """Turn any supported randomness source into a ``numpy`` Generator.

    Integers seed a fresh generator; a ``random.Random`` contributes 64
    bits of its stream as the seed (deterministic given its state);
    generators pass through untouched.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, random.Random):
        return np.random.default_rng(rng.getrandbits(64))
    return np.random.default_rng(rng)


def sample_initial_reach(epsilon: float, rng: random.Random) -> int:
    """Draw from the X_∞ law of Eq. (9) (geometric with ratio β).

    Scalar rejection-loop sampler, kept as the distributional oracle for
    :func:`repro.engine.kernels.sample_initial_reaches`.
    """
    beta = stationary_reach_ratio(epsilon)
    reach = 0
    while rng.random() < beta:
        reach += 1
    return reach


# ----------------------------------------------------------------------
# Settlement violations (the Table 1 probability)
# ----------------------------------------------------------------------


def _settlement_uniform_phases(
    depth: int,
    trials: int,
    generator: np.random.Generator,
    prefix_length: int | None,
) -> tuple[np.ndarray | None, np.ndarray]:
    """The shared randomness discipline of the settlement estimators.

    Phase 1 (stationary model only): one ``(trials,)`` block for the
    initial reaches.  Phase 2: one ``(trials, |x| + depth)`` block,
    row-major, for the symbols.  Batched and scalar paths both call this,
    which is what makes them bit-identical on equal seeds.
    """
    reach_uniforms = None
    length = depth
    if prefix_length is None:
        reach_uniforms = generator.random(trials)
    else:
        length = prefix_length + depth
    symbol_uniforms = generator.random((trials, length))
    return reach_uniforms, symbol_uniforms


def estimate_settlement_violation(
    probabilities: SlotProbabilities,
    depth: int,
    trials: int,
    rng: random.Random | np.random.Generator | int,
    prefix_length: int | None = None,
) -> Estimate:
    """Monte-Carlo ``Pr[μ_x(y) ≥ 0]`` at ``|y| = depth``, batched.

    Samples the initial reach (X_∞ for ``prefix_length=None``, otherwise
    by running the reach recurrence over a sampled prefix), then runs the
    joint Theorem 5 recurrence over a sampled suffix — all on
    ``(trials, T)`` arrays.  This is the same quantity the exact DP
    computes, by an entirely independent route — the test-suite requires
    agreement within sampling error.
    """
    if probabilities.p_empty:
        raise ValueError("synchronous probabilities required")
    generator = coerce_generator(rng)
    reach_uniforms, symbol_uniforms = _settlement_uniform_phases(
        depth, trials, generator, prefix_length
    )
    symbols = kernels.symbols_from_uniforms(probabilities, symbol_uniforms)
    initial = (
        kernels.initial_reaches_from_uniforms(
            probabilities.epsilon, reach_uniforms
        )
        if reach_uniforms is not None
        else None
    )
    starts = 0 if prefix_length is None else prefix_length
    _rho, mu = kernels.joint_final_states(symbols, starts, initial)
    return estimate_from_hits(int((mu >= 0).sum()), trials)


def estimate_settlement_violation_scalar(
    probabilities: SlotProbabilities,
    depth: int,
    trials: int,
    rng: random.Random | np.random.Generator | int,
    prefix_length: int | None = None,
) -> Estimate:
    """Scalar oracle for :func:`estimate_settlement_violation`.

    Consumes the identical uniform blocks but evaluates the recurrences
    one symbol at a time via :func:`repro.core.margin.margin_step` —
    bit-identical to the batched path on equal seeds, interpreter-bound
    on purpose.
    """
    if probabilities.p_empty:
        raise ValueError("synchronous probabilities required")
    generator = coerce_generator(rng)
    reach_uniforms, symbol_uniforms = _settlement_uniform_phases(
        depth, trials, generator, prefix_length
    )
    start = 0 if prefix_length is None else prefix_length
    hits = 0
    for i in range(trials):
        word = _word_from_uniforms(probabilities, symbol_uniforms[i])
        if reach_uniforms is not None:
            reach = int(
                kernels.initial_reaches_from_uniforms(
                    probabilities.epsilon, reach_uniforms[i : i + 1]
                )[0]
            )
        else:
            from repro.core.reach import rho

            reach = rho(word[:start])
        margin = reach
        for symbol in word[start:]:
            reach, margin = margin_step(reach, margin, symbol)
        if margin >= 0:
            hits += 1
    return estimate_from_hits(hits, trials)


def _word_from_uniforms(
    probabilities: SlotProbabilities, uniforms: np.ndarray
) -> str:
    """Scalar uniform→symbol mapping (the kernels' threshold discipline)."""
    t_h, t_bigh, t_adv = kernels.symbol_thresholds(probabilities)
    symbols = []
    for u in uniforms:
        if u < t_h:
            symbols.append("h")
        elif u < t_bigh:
            symbols.append("H")
        elif u < t_adv:
            symbols.append("A")
        else:
            symbols.append(".")
    return "".join(symbols)


# ----------------------------------------------------------------------
# Catalan-slot rarity (Bounds 1 and 2)
# ----------------------------------------------------------------------


def estimate_no_unique_catalan_in_window(
    probabilities: SlotProbabilities,
    window_start: int,
    window_length: int,
    total_length: int,
    trials: int,
    rng: random.Random | np.random.Generator | int,
) -> Estimate:
    """Monte-Carlo probability that a window has no uniquely honest Catalan slot.

    The event of Bound 1; Catalan-ness is evaluated in the whole sampled
    string (one ``(trials, total_length)`` block), so the estimate
    includes the boundary effects the bound's prefix correction accounts
    for.
    """
    generator = coerce_generator(rng)
    symbols = kernels.sample_characteristic_matrix(
        probabilities, trials, total_length, generator
    )
    mask = kernels.uniquely_honest_catalan_mask(symbols)
    window = mask[:, window_start - 1 : window_start - 1 + window_length]
    return estimate_from_hits(int((~window.any(axis=1)).sum()), trials)


def estimate_no_unique_catalan_in_window_scalar(
    probabilities: SlotProbabilities,
    window_start: int,
    window_length: int,
    total_length: int,
    trials: int,
    rng: random.Random | np.random.Generator | int,
) -> Estimate:
    """Scalar oracle for :func:`estimate_no_unique_catalan_in_window`."""
    generator = coerce_generator(rng)
    uniforms = generator.random((trials, total_length))
    hits = 0
    window_end = window_start + window_length - 1
    for i in range(trials):
        word = _word_from_uniforms(probabilities, uniforms[i])
        slots = uniquely_honest_catalan_slots(word)
        if not any(window_start <= s <= window_end for s in slots):
            hits += 1
    return estimate_from_hits(hits, trials)


def estimate_no_consecutive_catalan_in_window(
    probabilities: SlotProbabilities,
    window_start: int,
    window_length: int,
    total_length: int,
    trials: int,
    rng: random.Random | np.random.Generator | int,
) -> Estimate:
    """Monte-Carlo probability of no two consecutive Catalan slots (Bound 2)."""
    generator = coerce_generator(rng)
    symbols = kernels.sample_characteristic_matrix(
        probabilities, trials, total_length, generator
    )
    pairs = kernels.consecutive_catalan_mask(symbols)
    window = pairs[:, window_start - 1 : window_start - 1 + window_length]
    return estimate_from_hits(int((~window.any(axis=1)).sum()), trials)


def estimate_no_consecutive_catalan_in_window_scalar(
    probabilities: SlotProbabilities,
    window_start: int,
    window_length: int,
    total_length: int,
    trials: int,
    rng: random.Random | np.random.Generator | int,
) -> Estimate:
    """Scalar oracle for :func:`estimate_no_consecutive_catalan_in_window`."""
    generator = coerce_generator(rng)
    uniforms = generator.random((trials, total_length))
    hits = 0
    window_end = window_start + window_length - 1
    for i in range(trials):
        word = _word_from_uniforms(probabilities, uniforms[i])
        slots = set(catalan_slots(word))
        if not any(
            window_start <= s <= window_end and s + 1 in slots for s in slots
        ):
            hits += 1
    return estimate_from_hits(hits, trials)


# ----------------------------------------------------------------------
# Arbitrary samplers (the Theorem 1 dominance check)
# ----------------------------------------------------------------------


def estimate_violation_from_sampler(
    sampler,
    target_slot: int,
    depth: int,
    trials: int,
) -> Estimate:
    """Violation rate for strings drawn from an arbitrary sampler.

    ``sampler()`` must return a characteristic string of length at least
    ``target_slot + depth − 1``.  Used to check the dominance claim: a
    martingale-damped sampler must not exceed the i.i.d. probability.
    Stays scalar by design — the sampler is an opaque callable; batched
    martingale workloads go through
    :func:`repro.engine.runner.run_scenario` instead.
    """
    from repro.core.margin import relative_margin

    hits = 0
    for _ in range(trials):
        word = sampler()
        needed = target_slot + depth - 1
        if len(word) < needed:
            raise ValueError("sampler returned a string that is too short")
        if relative_margin(word[:needed], target_slot - 1) >= 0:
            hits += 1
    return estimate_from_hits(hits, trials)
