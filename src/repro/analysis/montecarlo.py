"""Monte-Carlo estimators cross-validating the exact and asymptotic results.

Sampling characteristic strings and evaluating the Theorem 5 recurrence
is cheap (O(T) per sample), which makes Monte Carlo a practical oracle
for every probability in the paper: settlement violations (against the
exact DP), Catalan-slot rarity (against Bounds 1 and 2), and consistency
under non-i.i.d. (martingale) leader sequences (against the dominance
claim of Theorem 1).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.catalan import (
    catalan_slots,
    uniquely_honest_catalan_slots,
)
from repro.core.distributions import (
    SlotProbabilities,
    sample_characteristic_string,
)
from repro.core.margin import margin_step
from repro.core.walks import stationary_reach_ratio


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with its standard error."""

    value: float
    standard_error: float
    trials: int

    def within(self, target: float, sigmas: float = 4.0) -> bool:
        """Is ``target`` within ``sigmas`` standard errors of the estimate?"""
        slack = sigmas * self.standard_error + 1e-12
        return abs(self.value - target) <= slack


def _estimate(hits: int, trials: int) -> Estimate:
    rate = hits / trials
    se = math.sqrt(max(rate * (1.0 - rate), 1e-12) / trials)
    return Estimate(rate, se, trials)


def sample_initial_reach(epsilon: float, rng: random.Random) -> int:
    """Draw from the X_∞ law of Eq. (9) (geometric with ratio β)."""
    beta = stationary_reach_ratio(epsilon)
    reach = 0
    while rng.random() < beta:
        reach += 1
    return reach


def estimate_settlement_violation(
    probabilities: SlotProbabilities,
    depth: int,
    trials: int,
    rng: random.Random,
    prefix_length: int | None = None,
) -> Estimate:
    """Monte-Carlo ``Pr[μ_x(y) ≥ 0]`` at ``|y| = depth``.

    Samples the initial reach (X_∞ for ``prefix_length=None``, otherwise
    by running the reach recurrence over a sampled prefix), then runs the
    joint Theorem 5 recurrence over a sampled suffix.  This is the same
    quantity the exact DP computes, by an entirely independent route —
    the test-suite requires agreement within sampling error.
    """
    p_h, p_bigh, p_adv, p_empty = probabilities.as_tuple()
    if p_empty:
        raise ValueError("synchronous probabilities required")
    hits = 0
    for _ in range(trials):
        if prefix_length is None:
            reach = sample_initial_reach(probabilities.epsilon, rng)
        else:
            prefix = sample_characteristic_string(
                probabilities, prefix_length, rng
            )
            from repro.core.reach import rho

            reach = rho(prefix)
        margin = reach
        suffix = sample_characteristic_string(probabilities, depth, rng)
        for symbol in suffix:
            reach, margin = margin_step(reach, margin, symbol)
        if margin >= 0:
            hits += 1
    return _estimate(hits, trials)


def estimate_no_unique_catalan_in_window(
    probabilities: SlotProbabilities,
    window_start: int,
    window_length: int,
    total_length: int,
    trials: int,
    rng: random.Random,
) -> Estimate:
    """Monte-Carlo probability that a window has no uniquely honest Catalan slot.

    The event of Bound 1; Catalan-ness is evaluated in the whole sampled
    string, so the estimate includes the boundary effects the bound's
    prefix correction accounts for.
    """
    hits = 0
    window_end = window_start + window_length - 1
    for _ in range(trials):
        word = sample_characteristic_string(probabilities, total_length, rng)
        slots = uniquely_honest_catalan_slots(word)
        if not any(window_start <= s <= window_end for s in slots):
            hits += 1
    return _estimate(hits, trials)


def estimate_no_consecutive_catalan_in_window(
    probabilities: SlotProbabilities,
    window_start: int,
    window_length: int,
    total_length: int,
    trials: int,
    rng: random.Random,
) -> Estimate:
    """Monte-Carlo probability of no two consecutive Catalan slots (Bound 2)."""
    hits = 0
    window_end = window_start + window_length - 1
    for _ in range(trials):
        word = sample_characteristic_string(probabilities, total_length, rng)
        slots = set(catalan_slots(word))
        if not any(
            window_start <= s <= window_end and s + 1 in slots for s in slots
        ):
            hits += 1
    return _estimate(hits, trials)


def estimate_violation_from_sampler(
    sampler,
    target_slot: int,
    depth: int,
    trials: int,
) -> Estimate:
    """Violation rate for strings drawn from an arbitrary sampler.

    ``sampler()`` must return a characteristic string of length at least
    ``target_slot + depth − 1``.  Used to check the dominance claim: a
    martingale-damped sampler must not exceed the i.i.d. probability.
    """
    from repro.core.margin import relative_margin

    hits = 0
    for _ in range(trials):
        word = sampler()
        needed = target_slot + depth - 1
        if len(word) < needed:
            raise ValueError("sampler returned a string that is too short")
        if relative_margin(word[:needed], target_slot - 1) >= 0:
            hits += 1
    return _estimate(hits, trials)
