"""Exact k-settlement violation probabilities (the Section 6.6 algorithm).

The paper's Theorem 5 recurrence makes the pair

    state_t = ( ρ(x y_1…y_t),  μ_x(y_1…y_t) )

a Markov chain over ``{(r, m) : r ≥ 0, m ≤ r}`` when the symbols of ``y``
are i.i.d.; the probability that slot ``|x| + 1`` incurs a k-settlement
violation is ``Pr[μ_x(y) ≥ 0]`` at ``|y| = k`` (Fact 6 / Lemma 1).  The
initial state is ``(ρ(x), ρ(x))``; for ``|x| → ∞`` the reach ``ρ(x)`` is
distributed as the dominating geometric law X_∞ of Eq. (9).  Table 1 of
the paper tabulates these probabilities; this module regenerates them.

Exactness of the finite grid
----------------------------

The DP state space is truncated to ``r ∈ [0, R]``, ``m ∈ [−k_max, R]``
with ``R = k_max + 2``.  The truncation is *exact* (not an approximation)
for horizons ``t ≤ k_max``:

* the margin transition depends on ``r`` only through the predicate
  ``r = 0``; once ``r`` hits the cap ``R``, the remaining ``t ≤ k_max``
  steps can lower it by at most ``k_max``, so ``r ≥ 2 > 0`` throughout —
  capped states behave identically to their uncapped counterparts;
* the sign of the margin at a checkpoint is all that matters, and a
  capped margin satisfies ``m ≥ R − k_max = 2 > 0`` for the remaining
  horizon, as does the (larger) true margin;
* the margin can fall at most one per step, so ``m ≥ −k_max`` always
  (the initial margin ``ρ(x)`` is non-negative);
* initial X_∞ mass at or above the cap (total ``β^R``) is placed in the
  absorbing corner ``(R, R)`` — correct because any initial reach
  ``r₀ ≥ R > k_max`` makes every checkpoint a certain violation
  (``m ≥ r₀ − k ≥ 0``).

Everything else is plain float64 convolution; the subtractive boundary
corrections cancel exactly in floating point (a value is subtracted from
itself), so no catastrophic cancellation occurs even for probabilities
near 1e-300.

The per-symbol transition steps of the DP are shared with the batched
Monte-Carlo engine and live in :mod:`repro.engine.kernels`
(``settlement_*_step``); this module owns only the sweep orchestration
and the Table 1 presentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distributions import SlotProbabilities, from_adversarial_stake
from repro.engine.kernels import (
    settlement_adversarial_step,
    settlement_honest_step,
    settlement_initial_grid,
    settlement_violation_mass,
)


@dataclass(frozen=True)
class SettlementComputation:
    """Result of one DP run: violation probabilities at each checkpoint.

    ``probabilities[k]`` is the exact probability that slot ``|x| + 1`` is
    not k-settled (margin non-negative at suffix length ``k``) under the
    configured slot distribution and initial-reach model.
    """

    slot_probabilities: SlotProbabilities
    prefix_model: str
    probabilities: dict[int, float]

    def __getitem__(self, k: int) -> float:
        return self.probabilities[k]


def settlement_violation_probability(
    probabilities: SlotProbabilities,
    k: int,
    prefix_length: int | None = None,
) -> float:
    """``Pr[slot |x|+1 is not k-settled]`` for one horizon.

    ``prefix_length=None`` uses the |x| → ∞ model (initial reach ~ X_∞,
    as in Table 1); an integer uses the exact reach distribution of a
    length-``prefix_length`` i.i.d. prefix.
    """
    computation = compute_settlement_probabilities(
        probabilities, [k], prefix_length=prefix_length
    )
    return computation[k]


def compute_settlement_probabilities(
    probabilities: SlotProbabilities,
    checkpoints: list[int],
    prefix_length: int | None = None,
) -> SettlementComputation:
    """Run the joint (reach, margin) DP, reading out each checkpoint.

    One DP sweep to ``max(checkpoints)`` serves every requested ``k``:
    the grid is sized for the largest horizon, which only widens the cap
    (the exactness argument needs ``R > k`` for each read-out, and
    ``R = k_max + 2 > k`` holds for all of them).
    """
    if probabilities.p_empty:
        raise ValueError(
            "empty slots are not part of the synchronous model; reduce the "
            "string first via repro.delta.reduction"
        )
    if not checkpoints or min(checkpoints) < 1:
        raise ValueError("checkpoints must be positive suffix lengths")
    k_max = max(checkpoints)
    wanted = set(checkpoints)

    grid = settlement_initial_grid(probabilities, k_max, prefix_length)
    p_h = probabilities.p_unique
    p_bigh = probabilities.p_multi
    p_adv = probabilities.p_adversarial

    results: dict[int, float] = {}
    for t in range(1, k_max + 1):
        grid = (
            p_adv * settlement_adversarial_step(grid)
            + p_h * settlement_honest_step(grid, k_max, unique=True)
            + p_bigh * settlement_honest_step(grid, k_max, unique=False)
        )
        if t in wanted:
            results[t] = settlement_violation_mass(grid, k_max)

    model = "x->infinity" if prefix_length is None else f"|x|={prefix_length}"
    return SettlementComputation(probabilities, model, results)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------

#: Column parameters of Table 1: adversarial probability α = Pr[A].
TABLE1_ALPHAS = (0.01, 0.10, 0.20, 0.30, 0.40, 0.49)
#: Row-group parameters: Pr[h] / (1 − α), the uniquely honest fraction.
TABLE1_UNIQUE_FRACTIONS = (1.0, 0.9, 0.8, 0.5, 0.25, 0.01)
#: Row parameters within each group: settlement depths k.
TABLE1_DEPTHS = (100, 200, 300, 400, 500)


def settlement_table(
    alphas: tuple[float, ...] = TABLE1_ALPHAS,
    unique_fractions: tuple[float, ...] = TABLE1_UNIQUE_FRACTIONS,
    depths: tuple[int, ...] = TABLE1_DEPTHS,
) -> dict[tuple[float, float, int], float]:
    """Regenerate (a sub-grid of) Table 1.

    Keys are ``(unique_fraction, alpha, k)``; values are exact
    k-settlement violation probabilities with |x| → ∞ initial reach.
    One DP run per (fraction, alpha) pair serves all depths.
    """
    table: dict[tuple[float, float, int], float] = {}
    for fraction in unique_fractions:
        for alpha in alphas:
            probabilities = from_adversarial_stake(alpha, fraction)
            computation = compute_settlement_probabilities(
                probabilities, list(depths)
            )
            for k in depths:
                table[(fraction, alpha, k)] = computation[k]
    return table


def format_table(table: dict[tuple[float, float, int], float]) -> str:
    """Render a :func:`settlement_table` result in the paper's layout."""
    fractions = sorted({key[0] for key in table}, reverse=True)
    alphas = sorted({key[1] for key in table})
    depths = sorted({key[2] for key in table})
    lines = []
    header = "frac   k   " + "  ".join(f"α={alpha:<8.2f}" for alpha in alphas)
    lines.append(header)
    lines.append("-" * len(header))
    for fraction in fractions:
        for k in depths:
            cells = "  ".join(
                f"{table[(fraction, alpha, k)]:10.2E}" for alpha in alphas
            )
            lines.append(f"{fraction:<5.2f} {k:4d} {cells}")
        lines.append("")
    return "\n".join(lines)
