"""Quantitative analyses: exact settlement probabilities, bounds, Monte Carlo.

* :mod:`repro.analysis.exact` — the Section 6.6 algorithm computing exact
  k-settlement violation probabilities (regenerates Table 1);
* :mod:`repro.analysis.genfunc` — truncated power-series engine for the
  Section 5 generating functions;
* :mod:`repro.analysis.bounds` — Bounds 1–3 and the Theorem 1/2/7/8 error
  estimates;
* :mod:`repro.analysis.montecarlo` — sampling estimators cross-validating
  the exact and asymptotic results;
* :mod:`repro.analysis.cp` — common-prefix violation analysis (Section 9).
"""

from repro.analysis.exact import (
    SettlementComputation,
    settlement_table,
    settlement_violation_probability,
)

__all__ = [
    "SettlementComputation",
    "settlement_table",
    "settlement_violation_probability",
]
