"""The common-prefix property (Section 9) and its UVP-based analysis.

``k-CP^slot`` (Definition 24): for every pair of viable tines with
``ℓ(t1) ≤ ℓ(t2)``, the tine ``t1`` trimmed of its last k *slots* is a
prefix of ``t2``.  A traditional k-CP violation (trimming k *blocks*)
implies a k-CP^slot violation, so bounding the latter suffices.

The structural bridge (Eq. (25)): if every length-k window of ``w``
contains a slot with the UVP, ``w`` satisfies k-CP^slot.  Theorem 8 turns
this into the probability bound ``T · e^{−Ω(k·min(ε³, ε²p_h))}``, and
Theorem 9 (Appendix A) shows the converse construction — a fork with slot
divergence > k yields an x-balanced fork, i.e. a settlement violation.

This module provides per-string and per-fork CP predicates, the window
analysis, and samplers for the CP benchmark.
"""

from __future__ import annotations

import random

from repro.core.balanced import slot_divergence
from repro.core.distributions import (
    SlotProbabilities,
    sample_characteristic_string,
)
from repro.core.forks import Fork
from repro.core.margin import margin_sequence
from repro.core.uvp import uvp_slots, uvp_slots_consistent_tiebreak


def uvp_free_windows(word: str, depth: int, consistent: bool = False) -> list[int]:
    """Start slots of length-``depth`` windows containing no UVP slot.

    Such windows are the only places a k-CP^slot violation can live
    (Eq. (25)); an empty result certifies the property for the string.
    """
    slots = (
        uvp_slots_consistent_tiebreak(word) if consistent else uvp_slots(word)
    )
    marked = set(slots)
    windows = []
    for start in range(1, len(word) - depth + 2):
        if not any(s in marked for s in range(start, start + depth)):
            windows.append(start)
    return windows


def satisfies_k_cp_slot(word: str, depth: int, consistent: bool = False) -> bool:
    """Sufficient UVP-window certificate for k-CP^slot (one-sided).

    True ⇒ the string satisfies k-CP^slot.  False is inconclusive (the
    implication (25) only runs one way); the exact per-string predicate
    is :func:`k_cp_slot_holds_exactly`.
    """
    return not uvp_free_windows(word, depth, consistent)


def k_cp_slot_holds_exactly(word: str, depth: int) -> bool:
    """Exact k-CP^slot predicate via slot divergence and relative margin.

    Theorem 9 + Fact 6: a fork for ``w`` with slot divergence ≥ k + 1
    exists iff some split ``w = xyz`` with ``|y| ≥ k`` has
    ``μ_x(y) ≥ 0``... more precisely the violation requires an
    x-balanced fork over a window of length ≥ k, so we check, for every
    split point ``x``, whether the margin stays non-negative at some
    suffix length ≥ k.  (Conservative in the same direction as the
    paper's own reduction from CP to settlement.)
    """
    for start in range(len(word)):
        sequence = margin_sequence(word, start)
        if any(value >= 0 for value in sequence[depth:]):
            return False
    return True


def fork_violates_k_cp_slot(fork: Fork, depth: int) -> bool:
    """Definition 24 on an explicit fork: slot divergence exceeding k."""
    return slot_divergence(fork) >= depth + 1


def estimate_cp_violation_rate(
    probabilities: SlotProbabilities,
    total_length: int,
    depth: int,
    trials: int,
    rng: random.Random,
    consistent: bool = False,
) -> float:
    """Monte-Carlo rate of strings *not* certified by the UVP windows.

    An upper estimate of the k-CP^slot violation rate (the certificate is
    one-sided), directly comparable to the Theorem 8 bound.
    """
    failures = 0
    for _ in range(trials):
        word = sample_characteristic_string(probabilities, total_length, rng)
        if not satisfies_k_cp_slot(word, depth, consistent):
            failures += 1
    return failures / trials
