"""Numerical versions of the paper's error bounds (Bounds 1–3, Theorems 1–2, 7–8).

Each bound is exposed in two strengths:

* an *asymptotic rate* — the exact exponential decay rate promised by the
  theorem (from the generating functions' radii of convergence); and
* a *computable tail* — the concrete probability bound obtained by
  summing the dominating series' coefficients, which is what the paper's
  dominance arguments actually license (``Pr[...] ≤ Σ_{t ≥ k} ĉ_t``).

The computable tails are used by the benchmark suite to compare theory
against the exact DP of :mod:`repro.analysis.exact` and against Monte
Carlo; the rates are used for the min(ε³, ε²p_h) shape checks.
"""

from __future__ import annotations

import math

from repro.analysis import genfunc
from repro.core.walks import bias_probabilities


def bound1_tail(
    epsilon: float,
    q_unique: float,
    k: int,
    with_prefix: bool = True,
    order: int | None = None,
) -> float:
    """Bound 1: ``Pr[no uniquely honest Catalan slot in a k-window]``.

    Upper bound via the dominating series ``Ĉ(Z)`` (and, with
    ``with_prefix``, the ``X_∞(D(Z))`` correction for windows preceded by
    an arbitrarily long history).  The tail is computed as ``1 − head``
    of the probability generating function, so only ``k`` coefficients
    are needed and no far-tail mass is lost.
    """
    if k < 0:
        raise ValueError("window length k must be non-negative")
    if q_unique <= 0:
        return 1.0
    order = order if order is not None else k + 320
    series = genfunc.bound1_dominating_series(epsilon, q_unique, order)
    if with_prefix:
        correction = genfunc.stationary_prefix_correction(epsilon, order)
        series = genfunc.series_multiply(correction, series, order)
    return genfunc.probability_tail(series, k)


def bound2_tail(
    epsilon: float,
    k: int,
    with_prefix: bool = True,
    order: int | None = None,
) -> float:
    """Bound 2: ``Pr[no two consecutive Catalan slots in a k-window]``.

    Applies to bivalent strings (``p_h = 0``) under the consistent
    tie-breaking axiom A0′; via the dominating series ``M̂(Z)``.
    """
    if k < 0:
        raise ValueError("window length k must be non-negative")
    order = order if order is not None else k + 320
    series = genfunc.bound2_dominating_series(epsilon, order)
    if with_prefix:
        correction = genfunc.stationary_prefix_correction(epsilon, order)
        series = genfunc.series_multiply(correction, series, order)
    return genfunc.probability_tail(series, k)


def theorem1_settlement_bound(epsilon: float, p_unique: float, k: int) -> float:
    """Theorem 1: ``S^{s,k}[B] ≤ exp(−k·Ω(min(ε³, ε²p_h)))``, computably.

    The settlement insecurity is bounded by the probability that the
    k-window ``[s, s + k − 1]`` contains no uniquely honest Catalan slot
    (Theorem 3 + Eq. (1)), i.e. by Bound 1 with prefix correction.
    """
    return bound1_tail(epsilon, p_unique, k)


def theorem2_settlement_bound(epsilon: float, k: int) -> float:
    """Theorem 2 (axiom A0′, bivalent strings): via Bound 2."""
    return bound2_tail(epsilon, k)


def theorem1_asymptotic_rate(epsilon: float, p_unique: float) -> float:
    """The exact decay rate ``ln R`` behind ``Ω(min(ε³, ε²p_h))``."""
    return genfunc.bound1_decay_rate(epsilon, p_unique)


def theorem2_asymptotic_rate(epsilon: float) -> float:
    """The exact decay rate behind ``Ω(ε³(1 + O(ε)))``."""
    return genfunc.bound2_decay_rate(epsilon)


def nominal_rate_shape(epsilon: float, p_unique: float) -> float:
    """The paper's headline shape ``min(ε³, ε² p_h)`` (up to constants).

    Used by tests to confirm the true rates scale like the headline:
    for small ε with p_h = Θ(1), rate = Θ(ε³); for small p_h, Θ(ε²p_h).
    """
    return min(epsilon**3, epsilon**2 * p_unique)


def theorem8_cp_bound(
    total_length: int, epsilon: float, p_unique: float, k: int
) -> float:
    """Theorem 8: ``Pr[w violates k-CP^slot] ≤ T · Bound1-tail``.

    The union bound over window start positions; with axiom A0′ and
    ``p_unique = 0`` use :func:`theorem8_cp_bound_consistent`.
    """
    return min(total_length * bound1_tail(epsilon, p_unique, k), 1.0)


def theorem8_cp_bound_consistent(total_length: int, epsilon: float, k: int) -> float:
    """Theorem 8, second claim (bivalent strings, axiom A0′)."""
    return min(total_length * bound2_tail(epsilon, k), 1.0)


# ----------------------------------------------------------------------
# Bound 3 and Theorem 7 (Δ-synchrony)
# ----------------------------------------------------------------------


def bound3_level_probability(epsilon: float, k: int, level: int) -> float:
    """``f_j(k) = Pr[S_{c+k} = S_c − j]`` for the ε-biased walk.

    Exact binomial expression from the proof of Bound 3; zero when the
    parities of ``k`` and ``j`` differ.  Evaluated in log space — the
    binomial coefficient overflows a float already around k ≈ 1030.
    """
    if level < 0 or level > k:
        return 0.0
    if (k - level) % 2:
        return 0.0
    p, q = bias_probabilities(epsilon)
    down = (k + level) // 2
    log_value = (
        math.lgamma(k + 1)
        - math.lgamma(down + 1)
        - math.lgamma(k - down + 1)
        + (k - down) * math.log(p)
        + down * math.log(q)
    )
    if log_value < -745.0:  # below float64 underflow
        return 0.0
    return math.exp(log_value)


def bound3_return_mass(epsilon: float, k: int, delta: int) -> float:
    """``f(Δ, k) = Σ_{j ≤ Δ} f_j(k)`` — walk within Δ of its level at c."""
    return sum(bound3_level_probability(epsilon, k, j) for j in range(delta + 1))


def bound3_tail(epsilon: float, k: int, delta: int, horizon: int | None = None) -> float:
    """Bound 3: ``Pr[B_Δ | G] ≤ Σ_{t ≥ k} f(Δ, t)``.

    The probability that the walk ever returns to within Δ of the Catalan
    slot's level after k further slots.  The series decays geometrically
    at rate ``(1 − ε²)^{1/2}`` per step; ``horizon`` truncates the sum and
    the geometric remainder is added conservatively.
    """
    horizon = horizon if horizon is not None else 4 * k + 200
    total = 0.0
    for t in range(k, horizon + 1):
        total += bound3_return_mass(epsilon, t, delta)
    # Geometric remainder: f(Δ, t) ≤ f(Δ, horizon) r^{t − horizon} with
    # r = sqrt(1 − ε²) < 1 for the dominant term.
    ratio = math.sqrt(1.0 - epsilon * epsilon)
    last = bound3_return_mass(epsilon, horizon, delta)
    total += last * ratio / (1.0 - ratio)
    return min(total, 1.0)


def theorem7_condition(
    p_adversarial: float, activity: float, delta: int
) -> float:
    """Left side of Eq. (20): ``p_A β/f + (1 − β)`` with ``β = (1 − f)^Δ``.

    Theorem 7 requires this to be ≤ (1 − ε)/2; the returned value *is*
    the reduced adversarial probability after the ρ_Δ map, so the caller
    reads off the achievable ε directly (ε = 1 − 2·value).
    """
    if not 0 < activity <= 1:
        raise ValueError("activity f must lie in (0, 1]")
    beta = (1.0 - activity) ** delta
    return p_adversarial * beta / activity + (1.0 - beta)


def theorem7_settlement_bound(
    activity: float,
    p_adversarial: float,
    p_unique: float,
    delta: int,
    k: int,
) -> float:
    """Theorem 7: (k, Δ)-settlement failure bound in the Δ-synchronous model.

    Combines Bound 1 on the reduced string (whose parameters come from
    Proposition 4: ``p'_σ = p_σ β/f`` for honest σ) with Bound 3's walk
    escape term, per the decomposition ``Pr[A] ≤ Pr[¬G1] + Pr[¬G2 | G1]``
    of Section 8.3.
    """
    reduced_adversarial = theorem7_condition(p_adversarial, activity, delta)
    epsilon = 1.0 - 2.0 * reduced_adversarial
    if epsilon <= 0:
        return 1.0
    beta = (1.0 - activity) ** delta
    reduced_unique = p_unique * beta / activity
    catalan_term = bound1_tail(epsilon, reduced_unique, k)
    escape_term = bound3_tail(epsilon, k, delta)
    return min(catalan_term + escape_term, 1.0)
