"""Truncated power-series engine for the Section 5 generating functions.

The proofs of Bounds 1 and 2 manipulate ordinary generating functions of
biased-walk stopping times:

* ``D(Z) = (1 − sqrt(1 − 4pqZ²)) / (2pZ)`` — first *descent* of the
  ε-biased walk (a probability generating function, ``D(1) = 1``);
* ``A(Z) = (1 − sqrt(1 − 4pqZ²)) / (2qZ)`` — first *ascent*
  (defective: ``A(1) = p/q`` by gambler's ruin);
* compositions such as ``A(Z · D(Z))`` ("ascend, then descend as many
  levels as the ascent took steps"), the dominating series ``Ĉ(Z)`` of
  Bound 1 and ``M̂(Z)`` of Bound 2, and the prefix correction
  ``X_∞(D(Z))``.

Series are represented as numpy coefficient arrays ``c[0..N]`` truncated
at a caller-chosen order.  Closed-form coefficients are used where the
paper provides them (Catalan numbers for ``D`` and ``A``); compositions
and rational forms are evaluated by exact truncated convolution, so the
coefficient arrays are the true series coefficients up to the truncation
order — which is what turns the paper's dominance arguments into
computable tail bounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.walks import bias_probabilities, stationary_reach_ratio


def series_multiply(left: np.ndarray, right: np.ndarray, order: int) -> np.ndarray:
    """Product of two truncated series, truncated/padded to ``order + 1`` terms."""
    product = np.convolve(left[: order + 1], right[: order + 1])[: order + 1]
    if len(product) < order + 1:
        product = np.pad(product, (0, order + 1 - len(product)))
    return product


def series_power(base: np.ndarray, exponent: int, order: int) -> np.ndarray:
    """``base**exponent`` truncated to ``order`` terms (square-and-multiply)."""
    result = np.zeros(order + 1)
    result[0] = 1.0
    factor = base[: order + 1].copy()
    e = exponent
    while e > 0:
        if e & 1:
            result = series_multiply(result, factor, order)
        e >>= 1
        if e:
            factor = series_multiply(factor, factor, order)
    return result


def series_compose(outer: np.ndarray, inner: np.ndarray, order: int) -> np.ndarray:
    """``outer(inner(Z))`` truncated to ``order`` terms.

    Requires ``inner[0] == 0`` (compositions in the paper always have
    this: the inner series are walk lengths, which take ≥ 1 step).
    Horner evaluation: O(order) series multiplications.
    """
    if abs(inner[0]) > 0:
        raise ValueError("series composition requires inner[0] == 0")
    result = np.zeros(order + 1)
    for coefficient in outer[order::-1] if len(outer) > order else outer[::-1]:
        result = series_multiply(result, inner, order)
        result[0] += coefficient
    return result


def series_inverse_one_minus(series: np.ndarray, order: int) -> np.ndarray:
    """``1 / (1 − series)`` truncated to ``order`` terms.

    Requires ``series[0] == 0``; computed by the standard recurrence for
    reciprocal power series.
    """
    if abs(series[0]) > 0:
        raise ValueError("1/(1 - f) expansion requires f[0] == 0")
    result = np.zeros(order + 1)
    result[0] = 1.0
    f = series[: order + 1]
    for n in range(1, order + 1):
        top = min(n, len(f) - 1)
        result[n] = float(np.dot(f[1 : top + 1], result[n - 1 :: -1][:top]))
    return result


def catalan_number(n: int) -> int:
    """The n-th Catalan number ``C_n`` (the footnote-2 namesake)."""
    return math.comb(2 * n, n) // (n + 1)


def descent_series(epsilon: float, order: int) -> np.ndarray:
    """Coefficients of ``D(Z)`` up to ``order``.

    ``D`` has only odd-power terms: ``d_{2i+1} = C_i p^i q^{i+1}`` — the
    walk must take ``2i + 1`` steps (i up, i + 1 down) with ballot-style
    ordering counted by the Catalan number.  Computed by the ratio
    recurrence ``C_{i+1}/C_i = 2(2i + 1)/(i + 2)`` entirely in floats
    (the Catalan numbers themselves overflow float64 near i ≈ 500, while
    the coefficients ``C_i (pq)^i`` stay bounded).
    """
    p, q = bias_probabilities(epsilon)
    series = np.zeros(order + 1)
    coefficient = q  # d_1 = C_0 q
    for i in range(0, (order - 1) // 2 + 1):
        series[2 * i + 1] = coefficient
        coefficient *= 2.0 * (2 * i + 1) / (i + 2) * p * q
    return series


def ascent_series(epsilon: float, order: int) -> np.ndarray:
    """Coefficients of ``A(Z)``: ``a_{2i+1} = C_i q^i p^{i+1}``.

    Defective: the total mass is ``A(1) = p/q < 1``.  Same float-safe
    ratio recurrence as :func:`descent_series`.
    """
    p, q = bias_probabilities(epsilon)
    series = np.zeros(order + 1)
    coefficient = p  # a_1 = C_0 p
    for i in range(0, (order - 1) // 2 + 1):
        series[2 * i + 1] = coefficient
        coefficient *= 2.0 * (2 * i + 1) / (i + 2) * p * q
    return series


def z_times(series: np.ndarray, order: int) -> np.ndarray:
    """Multiply a series by ``Z`` (shift coefficients up by one)."""
    shifted = np.zeros(order + 1)
    shifted[1:] = series[:order]
    return shifted


def ascent_of_z_descent(epsilon: float, order: int) -> np.ndarray:
    """``A(Z · D(Z))`` — ascend, then descend that many levels (Section 5.1)."""
    descent = descent_series(epsilon, order)
    inner = z_times(descent, order)
    outer = ascent_series(epsilon, order)
    return series_compose(outer, inner, order)


def bound1_dominating_series(
    epsilon: float, q_unique: float, order: int
) -> np.ndarray:
    """``Ĉ(Z)`` of Eq. (3): dominates the first-uniquely-honest-Catalan time.

    ``Ĉ(Z) = (q_h ε / q) Z / (1 − F(Z))`` with
    ``F(Z) = pZD(Z) + q_h Z A(ZD(Z)) + q_H Z``.
    A probability generating function: coefficients are non-negative and
    sum to 1 (checked in tests).
    """
    p, q = bias_probabilities(epsilon)
    if not 0 <= q_unique <= q + 1e-12:
        raise ValueError(f"q_h = {q_unique} outside [0, q = {q}]")
    q_multi = q - q_unique

    descent = descent_series(epsilon, order)
    f_series = (
        p * z_times(descent, order)
        + q_unique * z_times(ascent_of_z_descent(epsilon, order), order)
    )
    f_series[1] += q_multi  # the q_H · Z term
    geometric = series_inverse_one_minus(f_series, order)
    lead = np.zeros(order + 1)
    lead[1] = q_unique * epsilon / q
    return series_multiply(lead, geometric, order)


def bound2_dominating_series(epsilon: float, order: int) -> np.ndarray:
    """``M̂(Z)`` of Section 5.2: dominates the first consecutive-Catalan pair.

    The renewal structure of the search is (Section 5.2)

        ``M(Z) = D(Z) · {ε + (1 − ε) E(Z) M(Z)}``,

    which solves to ``M = εD / (1 − (1 − ε) · D · E)``.  (The paper's
    Eq. (10) prints ``εD/(1 − (1 − ε)E)``, dropping the leading ``D`` of
    the recursive branch — an algebra slip: with it, the series fails to
    dominate the true first-pair time already at t = 3, where the true
    coefficient is ``ε·d₃``.  The corrected form is used here and verified
    against Monte Carlo in the tests.)  The epoch surrogate is
    ``Ê(Z) = pZD(Z) + qZ A(ZD(Z)) / A(1) ⪰ E``.
    """
    p, q = bias_probabilities(epsilon)
    descent = descent_series(epsilon, order)
    ascent_composed = ascent_of_z_descent(epsilon, order)
    epoch = p * z_times(descent, order) + (q / (p / q)) * z_times(
        ascent_composed, order
    )
    recursive_branch = (1.0 - epsilon) * series_multiply(descent, epoch, order)
    geometric = series_inverse_one_minus(recursive_branch, order)
    return epsilon * series_multiply(descent, geometric, order)


def stationary_prefix_correction(epsilon: float, order: int) -> np.ndarray:
    """``X_∞(D(Z)) = (1 − β) / (1 − β D(Z))`` (the |x| ≥ 1 case).

    Composing the geometric initial-reach law with descent times converts
    a "start at the running minimum" bound into a "start anywhere after a
    long prefix" bound.
    """
    beta = stationary_reach_ratio(epsilon)
    descent = descent_series(epsilon, order)
    geometric = series_inverse_one_minus(beta * descent, order)
    return (1.0 - beta) * geometric


def tail_sum(series: np.ndarray, k: int) -> float:
    """``Σ_{t ≥ k} c_t`` — truncated-series tail (may under-count).

    Only the first ``len(series)`` coefficients contribute; use
    :func:`probability_tail` for probability generating functions, where
    the total mass is known to be exactly 1 and the tail can be computed
    without truncation loss.
    """
    if k <= 0:
        return float(series.sum())
    if k >= len(series):
        return 0.0
    return float(series[k:].sum())


def probability_tail(series: np.ndarray, k: int) -> float:
    """``Pr[T ≥ k]`` for a PGF's coefficient series, in every regime.

    The dominating series Ĉ, M̂ and their prefix-corrected versions are
    probability generating functions by construction (their defining
    renewal equations conserve mass), so ``1 − Σ_{t<k} c_t`` is the exact
    tail — but in float64 it floors out near machine epsilon (≈ 2e−16).
    The direct partial sum ``Σ_{t ≥ k} c_t`` over the truncated series is
    instead accurate for fast-decaying (tiny) tails but under-counts
    slow-decaying ones.  Both are ≤ the true tail, so their maximum is
    the best available estimate and correct in both regimes; callers
    supply a truncation order of ``k`` plus a few decay lengths.
    """
    if k <= 0:
        return 1.0
    head = float(series[: min(k, len(series))].sum())
    complement = min(max(1.0 - head, 0.0), 1.0)
    partial = float(series[k:].sum()) if k < len(series) else 0.0
    if complement > 1e-12:
        # Large/slow-decay regime: 1 − head is exact and the truncated
        # partial sum may under-count; the complement dominates anyway.
        return min(max(complement, partial), 1.0)
    # Tiny-tail regime: 1 − head is pure cancellation noise (≈ machine
    # epsilon); the partial sum is accurate because tails this small decay
    # within the truncation slack.
    return min(partial, 1.0)


def radius_bound_r1(epsilon: float) -> float:
    """``R₁`` of Eq. (5): convergence radius of ``A(ZD(Z))``.

    ``R₁ = sqrt((2/sqrt(1 − ε²) − 1/(1 + ε)) / (1 + ε))
        = 1 + ε³/2 + O(ε⁴)``.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    inner = 2.0 / math.sqrt(1.0 - epsilon * epsilon) - 1.0 / (1.0 + epsilon)
    return math.sqrt(inner / (1.0 + epsilon))


def evaluate_f(epsilon: float, q_unique: float, z: float, order: int = 400) -> float:
    """Numeric value of ``F(z)`` (Bound 1's denominator series) at real z."""
    p, q = bias_probabilities(epsilon)
    q_multi = q - q_unique
    if 4 * p * q * z * z >= 1.0:
        raise ValueError(f"D(z) diverges at z = {z}")
    descent = (1.0 - math.sqrt(1.0 - 4 * p * q * z * z)) / (2 * p * z)
    x = z * descent
    if 4 * p * q * x * x >= 1.0:
        raise ValueError(f"A(zD(z)) diverges at z = {z}")
    ascent_at = (1.0 - math.sqrt(1.0 - 4 * p * q * x * x)) / (2 * q * x)
    return p * z * descent + q_unique * z * ascent_at + q_multi * z


def radius_bound_r2(epsilon: float, q_unique: float) -> float:
    """``R₂``: the positive solution of ``F(z) = 1`` (bisection).

    Returns ``R₁`` when ``F`` stays below 1 on the whole convergence
    interval (the ``q_H = 0`` case of the paper).
    """
    r1 = radius_bound_r1(epsilon)
    low, high = 1.0, r1 * (1.0 - 1e-12)
    try:
        f_high = evaluate_f(epsilon, q_unique, high)
    except ValueError:
        f_high = float("inf")
    if f_high < 1.0:
        return r1
    if evaluate_f(epsilon, q_unique, low) >= 1.0:
        return 1.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        try:
            value = evaluate_f(epsilon, q_unique, mid)
        except ValueError:
            value = float("inf")
        if value < 1.0:
            low = mid
        else:
            high = mid
    return low


def bound1_decay_rate(epsilon: float, q_unique: float) -> float:
    """``ln R`` with ``R = min(R₁, R₂)`` — Bound 1's exponential rate.

    The paper shows ``R = exp(Θ(min(ε³, ε² q_h)))``; the returned value is
    the exact logarithm of the dominating series' convergence radius.
    """
    return math.log(min(radius_bound_r1(epsilon), radius_bound_r2(epsilon, q_unique)))


def bound2_decay_rate(epsilon: float) -> float:
    """``ln R₁`` — Bound 2's exponential rate ``ε³(1 + O(ε))/2``."""
    return math.log(radius_bound_r1(epsilon))
