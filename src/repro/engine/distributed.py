"""Multi-host execution backend: chunks over a socket wire protocol.

:class:`DistributedBackend` implements the
:class:`repro.engine.parallel.Backend` protocol by shipping pickled work
items to ``python -m repro.worker`` processes on other hosts and merging
the returned chunk accumulators back into the caller's futures (and,
through the runner, into the chunk ledger).  Because a chunk is a pure
function of ``(scenario, estimator, size, seed)`` — the seed shipped as
the spawned child's ``(entropy, spawn_key)`` pair, which reconstructs
the exact ``SeedSequence`` on any host — distribution preserves the
engine's serial ≡ parallel ≡ distributed bit-identity contract: every
backend produces the same per-chunk moment triples, so re-execution
after a worker loss is always safe (at-least-once delivery,
exactly-once *semantics*).

Wire protocol
-------------

One TCP connection per worker, length-prefixed pickle frames both ways:

* frame   = 8-byte big-endian payload length ``n`` + ``n`` bytes of
  ``pickle.dumps(obj)``;
* request = ``{"op": ..., ...}`` with ops ``ping`` (liveness),
  ``chunk`` (``scenario``, ``fingerprint``, ``estimator``, ``size``,
  ``entropy``, ``spawn_key``), ``task`` (``function``, ``args``), and
  ``shutdown`` (graceful worker exit);
* reply   = ``{"ok": True, "result": ...}`` or ``{"ok": False,
  "error": <traceback string>}``.  A ``chunk`` reply's ``result`` is
  the plain ``(sum_w, sum_w2, trials)`` accumulator triple (protocol
  v2); clients normalise replies through
  :func:`repro.engine.runner.as_accumulator`, which also accepts the
  bare v1 hit count, so a mixed-version cluster degrades gracefully
  instead of corrupting aggregates.

Requests are answered in order on each connection; the backend keeps at
most one request in flight per worker, so the worker needs no request
ids.  Frames above :data:`MAX_FRAME_BYTES` are refused before
deserialising — a corrupted length prefix must not trigger a
multi-gigabyte allocation.

Failure semantics
-----------------

Each worker is driven by one client thread pulling from a shared work
queue.  A *transport* failure (connect refused, send/recv error, the
per-request ``timeout``) requeues the item — another worker, or this one
after reconnecting, will re-execute it — and the thread reconnects with
exponential backoff.  A thread that exhausts its reconnect attempts
retires; when the *last* thread retires the queue is drained and every
pending future fails with :class:`ConnectionError`.  A *remote* failure
(the worker ran the item and replied ``ok: False``) is deterministic, so
it is raised as :class:`RemoteTaskError` without retry — re-running a
pure function cannot change its outcome.

Security: the protocol is pickle over plain TCP — run workers only on
hosts and networks you trust, exactly as you would a Dask or
``multiprocessing.managers`` cluster.
"""

from __future__ import annotations

import logging
import pickle
import queue
import socket
import struct
import threading
import time
from concurrent.futures import Future
from typing import Sequence

import numpy as np

from repro.engine.cache import scenario_fingerprint
from repro.engine.runner import Estimator
from repro.engine.scenarios import Scenario
from repro.obs import metrics

logger = logging.getLogger("repro.engine.distributed")

__all__ = [
    "DistributedBackend",
    "ProtocolError",
    "RemoteTaskError",
    "recv_message",
    "send_message",
]

#: Struct format of the frame header: one unsigned 64-bit length.
HEADER_FORMAT = ">Q"
HEADER_BYTES = struct.calcsize(HEADER_FORMAT)

#: Refuse frames larger than this before allocating for them (1 GiB).
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(RuntimeError):
    """The wire stream violated the framing contract."""


class RemoteTaskError(RuntimeError):
    """A worker executed a work item and reported a Python error."""


def send_message(sock: socket.socket, message: object) -> None:
    """Write one length-prefixed pickle frame to ``sock``."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(struct.pack(HEADER_FORMAT, len(payload)) + payload)


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a frame
    boundary, :class:`ProtocolError` on EOF mid-frame."""
    parts: list[bytes] = []
    remaining = count
    while remaining:
        piece = sock.recv(min(remaining, 1 << 20))
        if not piece:
            if remaining == count and not parts:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({remaining} bytes short)"
            )
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


def recv_message(sock: socket.socket) -> object | None:
    """Read one frame from ``sock``; ``None`` on clean end-of-stream."""
    header = _recv_exactly(sock, HEADER_BYTES)
    if header is None:
        return None
    (length,) = struct.unpack(HEADER_FORMAT, header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds protocol cap")
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise ProtocolError("connection closed before frame payload")
    return pickle.loads(payload)


def chunk_message(
    scenario: Scenario,
    estimator: Estimator,
    size: int,
    child: np.random.SeedSequence,
) -> dict:
    """The wire form of one chunk work item.

    The seed travels as the child's ``(entropy, spawn_key)`` pair —
    ``SeedSequence(entropy, spawn_key=spawn_key)`` reconstructs the
    spawned child exactly (NumPy's documented spawn contract), making
    the item self-describing and host-independent.  ``fingerprint``
    rides along so workers and logs can name the scenario without
    re-deriving it.
    """
    return {
        "op": "chunk",
        "scenario": scenario,
        "fingerprint": scenario_fingerprint(scenario),
        "estimator": estimator,
        "size": size,
        "entropy": child.entropy,
        "spawn_key": tuple(child.spawn_key),
    }


def _host_key(host: tuple[str, int]) -> str:
    """The ``"host:port"`` form used for stats keys and log lines."""
    return f"{host[0]}:{host[1]}"


class _WorkItem:
    __slots__ = ("message", "future", "failures")

    def __init__(self, message: dict, future: Future) -> None:
        self.message = message
        self.future = future
        self.failures = 0


def parse_hosts(spec: str | Sequence[str]) -> list[tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (or a sequence of such entries).

    A bare ``:port`` entry means localhost.  Raises ``ValueError`` on
    malformed entries rather than guessing.
    """
    if isinstance(spec, str):
        entries = [part for part in spec.split(",") if part.strip()]
    else:
        entries = list(spec)
    hosts: list[tuple[str, int]] = []
    for entry in entries:
        host, separator, port_text = entry.strip().rpartition(":")
        if not separator or not port_text.isdigit():
            raise ValueError(
                f"host entry {entry!r} is not of the form host:port"
            )
        hosts.append((host or "127.0.0.1", int(port_text)))
    if not hosts:
        raise ValueError("at least one worker host is required")
    return hosts


class DistributedBackend:
    """Backend fanning chunks out to ``repro.worker`` hosts.

    ``hosts`` is a list of ``(host, port)`` pairs (or use
    :meth:`from_spec` for the CLI's ``"host:port,host:port"`` form);
    each host runs one ``python -m repro.worker`` process.  ``timeout``
    bounds every round trip — size chunks so evaluation fits well
    inside it, since a timed-out chunk is re-executed elsewhere.
    ``max_failures`` caps transport-level re-deliveries *per item*
    before its future fails (defaults to three tries per worker).
    """

    def __init__(
        self,
        hosts: Sequence[tuple[str, int]],
        timeout: float = 120.0,
        max_failures: int | None = None,
        reconnect_attempts: int = 6,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        self.hosts = list(hosts)
        if not self.hosts:
            raise ValueError("at least one worker host is required")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self.max_failures = (
            3 * len(self.hosts) if max_failures is None else max_failures
        )
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._queue: queue.Queue[_WorkItem] = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._alive = 0
        self._closed = threading.Event()
        #: Latest stats frame piggybacked by each worker, keyed by
        #: ``"host:port"`` — who served what, and for how long they have
        #: been up.  v1 workers send no frame; their entry stays absent.
        self.worker_stats: dict[str, dict] = {}

    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "DistributedBackend":
        """Build a backend from a ``"host:port,host:port"`` string."""
        return cls(parse_hosts(spec), **kwargs)

    # -- Backend protocol -------------------------------------------------

    def submit_task(self, function, /, *args) -> Future:
        """Ship one pure, picklable task to a worker; its future."""
        return self._enqueue({"op": "task", "function": function, "args": args})

    def submit_chunks(
        self,
        scenario: Scenario,
        estimator: Estimator,
        sizes: list[int],
        children: list[np.random.SeedSequence],
    ) -> list[Future]:
        """Ship one chunk per (size, child); futures in chunk order."""
        if len(sizes) != len(children):
            raise ValueError("one SeedSequence child per chunk required")
        return [
            self._enqueue(chunk_message(scenario, estimator, size, child))
            for size, child in zip(sizes, children)
        ]

    def ping(self) -> int:
        """Round-trip a liveness probe; the number of reachable hosts."""
        reachable = 0
        for host in self.hosts:
            try:
                with socket.create_connection(host, timeout=self.timeout) as s:
                    s.settimeout(self.timeout)
                    send_message(s, {"op": "ping"})
                    reply = recv_message(s)
                if isinstance(reply, dict) and reply.get("ok"):
                    reachable += 1
            except OSError:
                continue
        return reachable

    def close(self) -> None:
        """Stop the client threads; pending futures fail (idempotent).

        Does *not* stop the worker processes — they belong to whoever
        started them and may be serving other clients.  Use
        :meth:`shutdown_workers` to take the cluster down too.
        """
        self._closed.set()
        for thread in self._threads:
            thread.join(timeout=self.timeout + 5.0)
        self._threads.clear()
        self._drain(ConnectionError("backend closed with work pending"))

    def shutdown_workers(self) -> None:
        """Ask every reachable worker to exit gracefully."""
        for host in self.hosts:
            try:
                with socket.create_connection(host, timeout=5.0) as s:
                    s.settimeout(5.0)
                    send_message(s, {"op": "shutdown"})
                    recv_message(s)
            except OSError:
                continue

    def __enter__(self) -> "DistributedBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- client threads ---------------------------------------------------

    def _enqueue(self, message: dict) -> Future:
        if self._closed.is_set():
            raise RuntimeError("backend is closed")
        self._ensure_threads()
        with self._lock:
            if self._alive == 0:
                raise ConnectionError(
                    f"all {len(self.hosts)} worker hosts were lost"
                )
        future: Future = Future()
        self._queue.put(_WorkItem(message, future))
        return future

    def _ensure_threads(self) -> None:
        with self._lock:
            if self._threads:
                return
            self._alive = len(self.hosts)
            for host in self.hosts:
                thread = threading.Thread(
                    target=self._serve_host,
                    args=(host,),
                    name=f"repro-distributed-{host[0]}:{host[1]}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def _serve_host(self, host: tuple[str, int]) -> None:
        try:
            while not self._closed.is_set():
                sock = self._connect(host)
                if sock is None:
                    if not self._closed.is_set():
                        metrics.counter(
                            "repro_distributed_workers_lost_total",
                            "worker hosts retired after reconnect backoff",
                        ).inc()
                        logger.warning(
                            "worker %s unreachable after %d attempts; "
                            "retiring (last stats: %s)",
                            _host_key(host),
                            self.reconnect_attempts,
                            self.worker_stats.get(_host_key(host)),
                        )
                    return  # backoff exhausted: retire this worker.
                try:
                    self._pump(sock, host)
                finally:
                    sock.close()
        finally:
            with self._lock:
                self._alive -= 1
                last = self._alive == 0
            if last and not self._closed.is_set():
                self._drain(
                    ConnectionError(
                        f"all {len(self.hosts)} worker hosts were lost"
                    )
                )

    def _connect(self, host: tuple[str, int]) -> socket.socket | None:
        """Connect with exponential backoff; ``None`` when giving up."""
        delay = self.backoff_base
        for attempt in range(self.reconnect_attempts):
            if self._closed.is_set():
                return None
            try:
                sock = socket.create_connection(host, timeout=self.timeout)
                sock.settimeout(self.timeout)
                if attempt:
                    metrics.counter(
                        "repro_distributed_reconnects_total",
                        "successful reconnects after a transport failure",
                    ).inc()
                return sock
            except OSError:
                metrics.counter(
                    "repro_distributed_connect_failures_total",
                    "failed connection attempts to worker hosts",
                ).inc()
                if attempt + 1 == self.reconnect_attempts:
                    return None
                self._closed.wait(delay)
                delay = min(delay * 2, self.backoff_cap)
        return None

    def _absorb_stats(self, host_key: str, reply: dict) -> None:
        """Merge a worker's piggybacked stats frame into client state."""
        stats = reply.get("stats")
        if not isinstance(stats, dict):
            return  # v1 worker: no frame on the wire.
        self.worker_stats[host_key] = stats
        registry = metrics.active()
        if registry is None:
            return
        worker = str(stats.get("worker", host_key))
        registry.gauge(
            "repro_worker_uptime_seconds",
            "monotonic uptime reported by each worker",
            worker=worker,
        ).set(float(stats.get("uptime", 0.0)))
        served = stats.get("served", {})
        if isinstance(served, dict):
            for op, count in served.items():
                registry.gauge(
                    "repro_worker_served_requests",
                    "requests served per worker, by op (worker-reported)",
                    worker=worker,
                    op=str(op),
                ).set(float(count))
        registry.gauge(
            "repro_worker_errors",
            "failed requests per worker (worker-reported)",
            worker=worker,
        ).set(float(stats.get("errors", 0)))

    def _pump(self, sock: socket.socket, host: tuple[str, int]) -> None:
        """Drive one connection until it breaks or the backend closes."""
        host_key = _host_key(host)
        while not self._closed.is_set():
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            op = str(item.message.get("op", "unknown"))
            started = time.perf_counter()
            try:
                send_message(sock, item.message)
                reply = recv_message(sock)
            except (OSError, ProtocolError, pickle.PickleError) as error:
                self._requeue(item, error, host_key)
                return  # transport is suspect: reconnect.
            metrics.histogram(
                "repro_rpc_seconds",
                "round-trip latency of worker RPCs, by op",
                op=op,
            ).observe(time.perf_counter() - started)
            if not isinstance(reply, dict) or "ok" not in reply:
                self._requeue(
                    item,
                    ProtocolError(f"malformed worker reply: {reply!r}"),
                    host_key,
                )
                return
            self._absorb_stats(host_key, reply)
            if reply["ok"]:
                item.future.set_result(reply["result"])
            else:
                # The worker *ran* the item and it raised: deterministic,
                # so surface it instead of re-executing elsewhere.
                item.future.set_exception(RemoteTaskError(reply["error"]))

    def _requeue(
        self, item: _WorkItem, error: Exception, host_key: str | None = None
    ) -> None:
        metrics.counter(
            "repro_distributed_requeues_total",
            "work items re-delivered after a transport failure",
        ).inc()
        if host_key is not None:
            stats = self.worker_stats.get(host_key)
            logger.warning(
                "requeueing %s item after transport failure on %s "
                "(worker %s, uptime %.1fs at last frame): %r",
                item.message.get("op", "unknown"),
                host_key,
                stats.get("worker", "unknown") if stats else "unknown",
                float(stats.get("uptime", 0.0)) if stats else 0.0,
                error,
            )
        item.failures += 1
        if item.failures >= self.max_failures:
            item.future.set_exception(
                ConnectionError(
                    f"work item failed {item.failures} transport attempts; "
                    f"last error: {error!r}"
                )
            )
        else:
            self._queue.put(item)

    def _drain(self, error: Exception) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if not item.future.done():
                item.future.set_exception(error)
