"""Batched NumPy kernels for the Theorem 5 recurrences and their relatives.

Every probability in the paper reduces to running a small per-symbol
recurrence over characteristic strings: the reflected-walk reach
(Eq. (13)), the joint ``(ρ, μ)`` margin recurrence (Eq. (14)), the
Catalan-slot walk characterisation (Definition 11), and the ρ_Δ
reduction map (Definition 22).  The scalar reference implementations
live in :mod:`repro.core` and :mod:`repro.delta`; this module implements
the *same* transitions on ``(trials, T)`` symbol matrices so that Monte
Carlo throughput scales with array width instead of the Python
interpreter.  The scalar paths are retained as cross-validation oracles;
``tests/engine`` asserts exact agreement symbol-for-symbol.

Symbol encoding
---------------

Characteristic strings are encoded as ``uint8`` codes::

    h -> 0   (CODE_UNIQUE)      A -> 2   (CODE_ADVERSARIAL)
    H -> 1   (CODE_MULTI)       . -> 3   (CODE_EMPTY)

``CODE_EMPTY`` doubles as the padding value for ragged batches: an empty
slot is a no-op for the reach and margin recurrences and contributes a
zero step to the Section 5 walk, so trailing padding never changes a
row's trajectory (the scalar recurrences reject ``.`` outright; the
batched ones treat it as the identity transition, which is the unique
consistent extension).

Seed discipline
---------------

All samplers consume a ``numpy.random.Generator``.  Randomness is drawn
in documented *phases* (e.g. one ``(trials,)`` uniform block for initial
reaches, then one ``(trials, T)`` block for suffix symbols, row-major).
Scalar oracles that reproduce a batched estimator bit-for-bit must draw
the same blocks in the same order and map uniforms to symbols with the
same thresholds — see ``*_from_uniforms`` below, which make the mapping
explicit and deterministic given the uniform block.

Array-namespace dispatch
------------------------

The hot kernels resolve their array namespace from their inputs
(:func:`repro.engine.array_api.array_namespace`): feed them NumPy arrays
and they compute on the CPU, feed them CuPy (or any NumPy-compatible
namespace's) arrays and the same code path runs on the accelerator.
Randomness stays on the host either way — the samplers draw from a
``numpy.random.Generator`` and the boundary conversion lives in
:class:`repro.engine.array_backend.ArrayBackend` — so every namespace
consumes identical uniform bits.  Integer recurrences are exact
everywhere; the float threshold comparisons are bit-identical wherever
the namespace implements IEEE-754 doubles (see ``array_api``'s contract
note).  The NumPy path additionally uses ``out=``/in-place forms where
the result is bit-identical (the temporaries audit;
``BENCH_engine.json``'s ``backend.kernel_microbench`` records the
throughput).  The settlement-DP grids at the bottom of this module are
small dense float64 tables consumed by the exact-DP layer and stay
NumPy-only.
"""

from __future__ import annotations

import numpy as np

from repro.engine.array_api import (
    array_namespace,
    prefix_maximum,
    prefix_minimum,
)

from repro.core.alphabet import (
    ADVERSARIAL,
    EMPTY,
    HONEST_MULTI,
    HONEST_UNIQUE,
)
from repro.core.distributions import SlotProbabilities
from repro.core.walks import bias_probabilities, stationary_reach_ratio

#: uint8 code of each symbol (also the index into :data:`SYMBOLS`).
CODE_UNIQUE = 0
CODE_MULTI = 1
CODE_ADVERSARIAL = 2
CODE_EMPTY = 3

#: Decode table: ``SYMBOLS[code]`` is the character of that code.
SYMBOLS = HONEST_UNIQUE + HONEST_MULTI + ADVERSARIAL + EMPTY

# Window-semantics modes of the ρ_Δ reduction.  The canonical constants
# (and the erratum discussion of the two semantics) live in
# repro.delta.reduction; these literals mirror them because importing the
# delta package from here would be circular (delta.__init__ → settlement
# → analysis.bounds → analysis.exact → this module).
MODE_EMPTY_RUN = "empty-run"
MODE_QUIET_WINDOW = "quiet-window"

_ENCODE_TABLE = np.full(128, 255, dtype=np.uint8)
for _code, _char in enumerate(SYMBOLS):
    _ENCODE_TABLE[ord(_char)] = _code


# ----------------------------------------------------------------------
# Encoding / decoding
# ----------------------------------------------------------------------


def encode_word(word: str) -> np.ndarray:
    """Encode one characteristic string as a ``(T,)`` uint8 vector.

    Any character outside the four-symbol alphabet — unknown ASCII and
    non-ASCII alike — raises ``ValueError``; nothing ever maps through
    the 255 sentinel of the encode table into a kernel.
    """
    try:
        raw = np.frombuffer(word.encode("ascii"), dtype=np.uint8)
    except UnicodeEncodeError:
        bad = sorted(set(word) - set(SYMBOLS))
        raise ValueError(
            f"invalid symbols {bad!r} for alphabet {SYMBOLS!r}"
        ) from None
    codes = _ENCODE_TABLE[raw]
    if (codes == 255).any():
        bad = sorted(set(word) - set(SYMBOLS))
        raise ValueError(f"invalid symbols {bad!r} for alphabet {SYMBOLS!r}")
    return codes


def encode_words(words: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode a batch of strings into a padded ``(n, T)`` matrix.

    Rows shorter than the longest string are padded with
    :data:`CODE_EMPTY` (a no-op for every kernel); the returned
    ``lengths`` vector records each row's true length.
    """
    lengths = np.array([len(w) for w in words], dtype=np.int64)
    width = int(lengths.max()) if len(words) else 0
    matrix = np.full((len(words), width), CODE_EMPTY, dtype=np.uint8)
    for i, word in enumerate(words):
        matrix[i, : lengths[i]] = encode_word(word)
    return matrix, lengths


def decode_matrix(
    symbols: np.ndarray, lengths: np.ndarray | None = None
) -> list[str]:
    """Decode a ``(n, T)`` code matrix back into strings.

    With ``lengths`` given, each row is truncated to its true length
    (inverse of :func:`encode_words`).
    """
    table = np.frombuffer(SYMBOLS.encode("ascii"), dtype=np.uint8)
    rows = table[symbols]
    out = []
    for i in range(symbols.shape[0]):
        row = rows[i] if lengths is None else rows[i, : lengths[i]]
        out.append(row.tobytes().decode("ascii"))
    return out


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------


def symbol_thresholds(
    probabilities: SlotProbabilities,
) -> tuple[float, float, float]:
    """Cumulative thresholds ``(p_h, p_h+p_H, p_h+p_H+p_A)``.

    A uniform ``u`` maps to ``h`` when ``u < p_h``, to ``H`` when
    ``u < p_h + p_H``, to ``A`` when ``u < p_h + p_H + p_A`` and to ``⊥``
    otherwise — the exact chained-comparison discipline of the scalar
    :func:`repro.core.distributions.sample_characteristic_string`.
    """
    p_h, p_bigh, p_adv, _p_empty = probabilities.as_tuple()
    return p_h, p_h + p_bigh, p_h + p_bigh + p_adv


def symbols_from_uniforms(
    probabilities: SlotProbabilities, uniforms: np.ndarray
) -> np.ndarray:
    """Map a uniform array to i.i.d. symbol codes (shape-preserving)."""
    xp = array_namespace(uniforms)
    t_h, t_bigh, t_adv = symbol_thresholds(probabilities)
    codes = (uniforms >= t_h).astype(xp.uint8)
    codes += uniforms >= t_bigh
    codes += uniforms >= t_adv
    return codes


def sample_characteristic_matrix(
    probabilities: SlotProbabilities,
    trials: int,
    length: int,
    generator: np.random.Generator,
) -> np.ndarray:
    """Draw ``(trials, length)`` i.i.d. symbol codes (one uniform block)."""
    return symbols_from_uniforms(
        probabilities, generator.random((trials, length))
    )


def martingale_from_uniforms(
    probabilities: SlotProbabilities,
    uniforms: np.ndarray,
    correlation: float,
) -> np.ndarray:
    """Correlated (martingale-damped) symbols from a ``(n, T)`` uniform block.

    Column ``t`` of the block decides slot ``t`` of every trial at once;
    after an adversarial slot the conditional adversarial probability is
    damped by ``correlation`` and the slack moved to uniquely honest
    slots, exactly as the scalar
    :func:`repro.core.distributions.sample_martingale_string`.
    """
    if not 0 <= correlation <= 1:
        raise ValueError("correlation must lie in [0, 1]")
    xp = array_namespace(uniforms)
    p_h, p_bigh, p_adv, _p_empty = probabilities.as_tuple()
    trials, length = uniforms.shape
    codes = xp.empty((trials, length), dtype=xp.uint8)
    previous_adversarial = xp.zeros(trials, dtype=bool)
    for t in range(length):
        adv = xp.where(previous_adversarial, p_adv * correlation, p_adv)
        slack = p_adv - adv
        t_h = p_h + slack
        t_bigh = t_h + p_bigh
        t_adv = t_bigh + adv
        u = uniforms[:, t]
        codes[:, t] = (
            (u >= t_h).astype(xp.uint8) + (u >= t_bigh) + (u >= t_adv)
        )
        previous_adversarial = codes[:, t] == CODE_ADVERSARIAL
    return codes


def sample_martingale_matrix(
    probabilities: SlotProbabilities,
    trials: int,
    length: int,
    generator: np.random.Generator,
    correlation: float = 0.5,
) -> np.ndarray:
    """Draw ``(trials, length)`` martingale-damped symbol codes."""
    return martingale_from_uniforms(
        probabilities, generator.random((trials, length)), correlation
    )


def initial_reaches_from_uniforms(
    epsilon: float, uniforms: np.ndarray
) -> np.ndarray:
    """Map uniforms to X_∞ draws (Eq. (9)): ``Pr[X ≥ k] = β^k``.

    Inverse-CDF form of the scalar rejection loop in
    :func:`repro.analysis.montecarlo.sample_initial_reach`:
    ``X = ⌊log u / log β⌋`` satisfies ``Pr[X ≥ k] = Pr[u < β^k] = β^k``.
    """
    xp = array_namespace(uniforms)
    beta = stationary_reach_ratio(epsilon)
    safe = xp.clip(uniforms, np.finfo(float).tiny, None)
    return xp.floor(xp.log(safe) / np.log(beta)).astype(xp.int64)


def sample_initial_reaches(
    epsilon: float, trials: int, generator: np.random.Generator
) -> np.ndarray:
    """Draw ``(trials,)`` initial reaches from the X_∞ law of Eq. (9)."""
    return initial_reaches_from_uniforms(epsilon, generator.random(trials))


# ----------------------------------------------------------------------
# Reach: the reflected walk (Theorem 5, Eq. (13))
# ----------------------------------------------------------------------


def walk_step_matrix(symbols: np.ndarray) -> np.ndarray:
    """Section 5 walk steps: ``+1`` for ``A``, ``−1`` honest, ``0`` for ``⊥``.

    Honest is one comparison (``code < CODE_ADVERSARIAL`` — the unique
    and multi codes are 0 and 1 by construction) and the subtraction
    runs in place on the adversarial mask's int64 view, so the kernel
    allocates two temporaries instead of the four of the masked-
    assignment form it replaced.
    """
    xp = array_namespace(symbols)
    steps = (symbols == CODE_ADVERSARIAL).astype(xp.int64)
    steps -= symbols < CODE_ADVERSARIAL
    return steps


def prefix_sum_matrix(symbols: np.ndarray) -> np.ndarray:
    """``(n, T+1)`` prefix sums ``S_0 = 0, …, S_T`` of the walk.

    On NumPy the walk steps are written straight into the output
    buffer's ``[:, 1:]`` view and accumulated there in place — no
    separate step matrix is ever materialized.
    """
    xp = array_namespace(symbols)
    trials = symbols.shape[0]
    sums = xp.zeros((trials, symbols.shape[1] + 1), dtype=xp.int64)
    body = sums[:, 1:]
    body += symbols == CODE_ADVERSARIAL
    body -= symbols < CODE_ADVERSARIAL
    if xp is np:
        np.cumsum(body, axis=1, out=body)
    else:
        sums[:, 1:] = xp.cumsum(body, axis=1)
    return sums


def reach_trajectories(
    symbols: np.ndarray, initial_reaches: np.ndarray | None = None
) -> np.ndarray:
    """``(n, T+1)`` reach values ``ρ`` along every row, batched.

    Uses the closed form ``X_t = S_t − min_{i ≤ t} S_i`` of the reflected
    walk (no per-slot Python loop), generalised to a non-zero start: a
    walk started at height ``r₀`` reflects only once it has consumed the
    initial headroom, ``X_t = S_t − min(−r₀, min_{i ≤ t} S_i)``.
    Agrees exactly with :func:`repro.core.reach.reach_sequence`.
    """
    xp = array_namespace(symbols)
    sums = prefix_sum_matrix(symbols)
    floor = prefix_minimum(xp, sums)
    if initial_reaches is not None:
        # min with a per-row constant preserves monotonicity, so no
        # further accumulate pass is needed
        floor = xp.minimum(floor, -initial_reaches[:, None])
    return sums - floor


def final_reaches(
    symbols: np.ndarray, initial_reaches: np.ndarray | None = None
) -> np.ndarray:
    """``ρ`` of every full row (the trajectory's last column).

    Only the final value is needed, so the running-minimum pass of
    :func:`reach_trajectories` collapses to one row-wise reduction:
    ``X_T = S_T − min(−r₀, min_i S_i)`` (``min_i`` includes ``S_0 = 0``).
    Bit-identical to the trajectory's last column, without materializing
    the ``(n, T+1)`` floor and trajectory matrices.
    """
    xp = array_namespace(symbols)
    sums = prefix_sum_matrix(symbols)
    floor = sums.min(axis=1)
    if initial_reaches is not None:
        floor = xp.minimum(floor, -initial_reaches)
    return sums[:, -1] - floor


# ----------------------------------------------------------------------
# The joint (reach, margin) recurrence (Theorem 5, Eq. (14))
# ----------------------------------------------------------------------


def batched_margin_step(
    rho: np.ndarray, mu: np.ndarray, column: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One joint transition ``(ρ, μ) → (ρ', μ')`` for a column of symbols.

    Vector form of :func:`repro.core.margin.margin_step`; ``rho`` is
    ``ρ(xy)`` *before* consuming the column.  Empty symbols are the
    identity (used for padding).
    """
    xp = array_namespace(rho, mu, column)
    adversarial = column == CODE_ADVERSARIAL
    honest = column < CODE_ADVERSARIAL  # codes h = 0, H = 1
    stays_zero = (mu == 0) & ((rho > 0) | (column == CODE_MULTI))
    new_mu = xp.where(
        adversarial,
        mu + 1,
        xp.where(honest, xp.where(stays_zero, 0, mu - 1), mu),
    )
    new_rho = xp.where(
        adversarial,
        rho + 1,
        xp.where(honest, xp.maximum(rho - 1, 0), rho),
    )
    return new_rho, new_mu


def joint_final_states(
    symbols: np.ndarray,
    prefix_lengths: np.ndarray | int = 0,
    initial_reaches: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Final ``(ρ(xy), μ_x(y))`` of every row without storing trajectories.

    ``prefix_lengths`` gives ``|x|`` per row (or one int for all): while a
    row is still inside its prefix the margin simply tracks the reach
    (``μ_x(ε) = ρ(x)``), after which the Theorem 5 margin transition takes
    over.  ``initial_reaches`` seeds ``ρ`` before the first symbol (the
    X_∞ model of Table 1); it defaults to zero.
    """
    xp = array_namespace(symbols)
    trials, length = symbols.shape
    starts = xp.broadcast_to(
        xp.asarray(prefix_lengths, dtype=xp.int64), (trials,)
    )
    rho = (
        xp.zeros(trials, dtype=xp.int64)
        if initial_reaches is None
        else initial_reaches.astype(xp.int64).copy()
    )
    mu = rho.copy()
    for t in range(length):
        new_rho, new_mu = batched_margin_step(rho, mu, symbols[:, t])
        in_prefix = t < starts
        mu = xp.where(in_prefix, new_rho, new_mu)
        rho = new_rho
    return rho, mu


def margin_trajectories(
    symbols: np.ndarray,
    prefix_lengths: np.ndarray | int = 0,
    initial_reaches: np.ndarray | None = None,
) -> np.ndarray:
    """``(n, T+1)`` margin values along every row.

    Column ``t`` holds ``μ_x(y_1 … y_{t−|x|})`` once ``t ≥ |x|`` and the
    running reach ``ρ(w_1 … w_t)`` while still inside the prefix (so that
    column ``|x|`` is ``μ_x(ε) = ρ(x)``, matching
    :func:`repro.core.margin.margin_sequence` entry 0).
    """
    xp = array_namespace(symbols)
    trials, length = symbols.shape
    starts = xp.broadcast_to(
        xp.asarray(prefix_lengths, dtype=xp.int64), (trials,)
    )
    rho = (
        xp.zeros(trials, dtype=xp.int64)
        if initial_reaches is None
        else initial_reaches.astype(xp.int64).copy()
    )
    mu = rho.copy()
    out = xp.empty((trials, length + 1), dtype=xp.int64)
    out[:, 0] = mu
    for t in range(length):
        new_rho, new_mu = batched_margin_step(rho, mu, symbols[:, t])
        in_prefix = t < starts
        mu = xp.where(in_prefix, new_rho, new_mu)
        rho = new_rho
        out[:, t + 1] = mu
    return out


# ----------------------------------------------------------------------
# Catalan slots (Definition 11, walk characterisation)
# ----------------------------------------------------------------------


def catalan_slot_mask(symbols: np.ndarray) -> np.ndarray:
    """Boolean ``(n, T)`` mask: column ``s−1`` marks slot ``s`` Catalan.

    Vector form of :func:`repro.core.catalan.catalan_slots`: a strict new
    walk minimum at ``s`` (left-Catalan) whose level is never revisited
    (right-Catalan).  Padding rows with ``⊥`` is harmless — the walk is
    flat there and ``⊥`` is never honest.
    """
    xp = array_namespace(symbols)
    sums = prefix_sum_matrix(symbols)
    prefix_min = prefix_minimum(xp, sums)
    suffix_max = prefix_maximum(xp, sums[:, ::-1])[:, ::-1]
    honest = symbols < CODE_ADVERSARIAL  # codes h = 0, H = 1
    new_minimum = sums[:, 1:] < prefix_min[:, :-1]
    never_returns = suffix_max[:, 1:] < sums[:, :-1]
    return honest & new_minimum & never_returns


def uniquely_honest_catalan_mask(symbols: np.ndarray) -> np.ndarray:
    """Columns of uniquely honest Catalan slots (the UVP slots of Thm 3)."""
    return catalan_slot_mask(symbols) & (symbols == CODE_UNIQUE)


def consecutive_catalan_mask(symbols: np.ndarray) -> np.ndarray:
    """``(n, T−1)`` mask: column ``s−1`` marks both ``s``, ``s+1`` Catalan."""
    mask = catalan_slot_mask(symbols)
    return mask[:, :-1] & mask[:, 1:]


# ----------------------------------------------------------------------
# The ρ_Δ reduction map (Definition 22)
# ----------------------------------------------------------------------


def reduce_matrix(
    symbols: np.ndarray,
    delta: int,
    mode: str = MODE_EMPTY_RUN,
    lengths: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ρ_Δ: reduce every row of a semi-synchronous symbol matrix.

    Returns ``(reduced, reduced_lengths)`` where ``reduced`` is padded
    with :data:`CODE_EMPTY` to the input width.  Matches
    :func:`repro.delta.reduction.reduce_string` row-for-row (both window
    semantics; see that module's erratum note): an honest symbol is kept
    iff it is followed — *within its row's true length* — by Δ symbols
    from the allowed set, otherwise it is relabelled adversarial; empty
    slots are deleted and the survivors compacted to the left.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    xp = array_namespace(symbols)
    trials, width = symbols.shape
    if lengths is None:
        lengths = xp.full(trials, width, dtype=xp.int64)

    columns = xp.arange(width)
    valid = columns[None, :] < lengths[:, None]

    if mode == MODE_EMPTY_RUN:
        allowed = symbols == CODE_EMPTY
    elif mode == MODE_QUIET_WINDOW:
        allowed = (symbols == CODE_EMPTY) | (symbols == CODE_ADVERSARIAL)
    else:
        raise ValueError(f"unknown reduction mode {mode!r}")

    # Window check: positions j+1 … j+Δ must all be allowed and lie inside
    # the row (j + Δ < length).  Prefix sums of the allowed mask give every
    # window count in one subtraction.
    counts = xp.zeros((trials, width + 1), dtype=xp.int64)
    body = counts[:, 1:]
    body += allowed & valid
    if xp is np:
        np.cumsum(body, axis=1, out=body)
    else:
        counts[:, 1:] = xp.cumsum(body, axis=1)
    hi = xp.minimum(columns[None, :] + 1 + delta, width)
    window = xp.take_along_axis(
        counts, xp.broadcast_to(hi, (trials, width)), axis=1
    ) - counts[:, 1:]
    quiet = (window == delta) & (columns[None, :] + delta < lengths[:, None])

    honest = symbols < CODE_ADVERSARIAL  # codes h = 0, H = 1
    relabeled = xp.where(
        honest & ~quiet, xp.uint8(CODE_ADVERSARIAL), symbols
    )

    keep = valid & (symbols != CODE_EMPTY)
    reduced_lengths = keep.sum(axis=1)
    positions = xp.cumsum(keep, axis=1) - 1
    reduced = xp.full((trials, width), CODE_EMPTY, dtype=xp.uint8)
    rows = xp.nonzero(keep)[0]
    reduced[rows, positions[keep]] = relabeled[keep]
    return reduced, reduced_lengths


def reduced_slot_columns(
    symbols: np.ndarray, target_slot: int, lengths: np.ndarray | None = None
) -> np.ndarray:
    """Per-row 0-based column of ``π(target_slot)`` in the reduced matrix.

    ``π`` is the increasing bijection of
    :func:`repro.delta.reduction.slot_bijection`: the image of a
    non-empty source slot is its rank among non-empty slots.  Rows whose
    target slot is empty (no image — vacuously settled in Definition 23)
    or out of range get the sentinel ``−1``.
    """
    xp = array_namespace(symbols)
    trials, width = symbols.shape
    if not 1 <= target_slot <= width:
        raise ValueError(f"slot {target_slot} outside [1, {width}]")
    if lengths is None:
        lengths = xp.full(trials, width, dtype=xp.int64)
    non_empty = symbols[:, :target_slot] != CODE_EMPTY
    rank = non_empty.sum(axis=1) - 1
    has_image = non_empty[:, -1] & (target_slot <= lengths)
    return xp.where(has_image, rank, -1)


# ----------------------------------------------------------------------
# Biased-walk samplers (Section 5)
# ----------------------------------------------------------------------


def reflected_walk_heights_from_uniforms(
    epsilon: float, uniforms: np.ndarray
) -> np.ndarray:
    """Final heights ``X_T`` of reflected ε-biased walks, one per row.

    ``u < p`` steps up, else down; same Bernoulli discipline as the
    scalar :func:`repro.core.walks.sample_reflected_walk_height`.

    Only the final height is needed: ``X_T = S_T − min(0, min_i S_i)``,
    so the running-minimum pass collapses to one row reduction and the
    steps land as int64 straight out of ``where`` (the audit dropped a
    full-matrix ``astype`` copy and the ``(n, T+1)`` floor matrix).
    """
    xp = array_namespace(uniforms)
    p, _q = bias_probabilities(epsilon)
    steps = xp.where(uniforms < p, np.int64(1), np.int64(-1))
    sums = xp.cumsum(steps, axis=1)
    floor = xp.minimum(sums.min(axis=1), 0)
    return sums[:, -1] - floor


def descent_times(
    epsilon: float,
    trials: int,
    generator: np.random.Generator,
    cutoff: int = 10**6,
) -> np.ndarray:
    """Batched descent stopping times (first hit of ``−1``); 0 = censored.

    One uniform block per time step over the still-active rows' columns
    (drawn for all rows to keep the stream shape deterministic); rows
    that never descend within ``cutoff`` steps report 0.
    """
    p, _q = bias_probabilities(epsilon)
    position = np.zeros(trials, dtype=np.int64)
    times = np.zeros(trials, dtype=np.int64)
    active = np.ones(trials, dtype=bool)
    for t in range(1, cutoff + 1):
        if not active.any():
            break
        u = generator.random(trials)
        step = np.where(u < p, 1, -1)
        position = np.where(active, position + step, position)
        arrived = active & (position == -1)
        times[arrived] = t
        active &= ~arrived
    return times


# ----------------------------------------------------------------------
# The Section 6.6 settlement DP (transition steps shared with
# repro.analysis.exact)
# ----------------------------------------------------------------------


def settlement_grid_shape(k_max: int) -> tuple[int, int]:
    """Rows index reach ``r ∈ [0, R]``; columns index ``m ∈ [−k_max, R]``.

    ``R = k_max + 2``; see :mod:`repro.analysis.exact` for the proof that
    this truncation is exact for horizons ``t ≤ k_max``.
    """
    cap = k_max + 2
    return cap + 1, k_max + cap + 1


def settlement_initial_grid(
    probabilities: SlotProbabilities,
    k_max: int,
    prefix_length: int | None,
) -> np.ndarray:
    """Initial joint law of ``(ρ(x), μ_x(ε))`` on the DP grid.

    ``prefix_length=None`` places the X_∞ geometric law on the diagonal
    (absorbing excess mass in the certain-violation corner); an integer
    uses the exact reach distribution of an i.i.d. prefix of that length.
    """
    rows, cols = settlement_grid_shape(k_max)
    cap = rows - 1
    offset = k_max  # column index of m == 0
    grid = np.zeros((rows, cols))

    if prefix_length is None:
        beta = stationary_reach_ratio(probabilities.epsilon)
        for r in range(cap):
            grid[r, offset + r] = (1.0 - beta) * beta**r
        grid[cap, offset + cap] = beta**cap  # absorbed tail: certain violation
    else:
        reach_pmf = prefix_reach_pmf(probabilities, prefix_length, cap)
        for r in range(cap):
            grid[r, offset + r] = reach_pmf[r]
        grid[cap, offset + cap] = max(1.0 - reach_pmf[:cap].sum(), 0.0)
    return grid


def prefix_reach_pmf(
    probabilities: SlotProbabilities, length: int, cap: int
) -> np.ndarray:
    """Distribution of ρ(x) for an i.i.d. prefix of given length.

    The reach recurrence is a reflected walk: +1 on ``A`` (probability
    p_A), max(·−1, 0) on honest symbols.  Mass at or above ``cap`` is
    accumulated in the top cell (same saturation argument as the joint
    grid).
    """
    p_adv = probabilities.p_adversarial
    p_honest = probabilities.p_honest
    pmf = np.zeros(cap + 1)
    pmf[0] = 1.0
    for _ in range(length):
        nxt = np.zeros_like(pmf)
        nxt[1:] += p_adv * pmf[:-1]
        nxt[-1] += p_adv * pmf[-1]
        nxt[:-1] += p_honest * pmf[1:]
        nxt[0] += p_honest * pmf[0]
        pmf = nxt
    return pmf


def settlement_adversarial_step(grid: np.ndarray) -> np.ndarray:
    """DP transition on ``A``: ``(r, m) → (r+1, m+1)``, saturating at the cap."""
    out = np.zeros_like(grid)
    out[1:, 1:] = grid[:-1, :-1]
    out[-1, 1:] += grid[-1, :-1]
    out[1:, -1] += grid[:-1, -1]
    out[-1, -1] += grid[-1, -1]
    return out


def settlement_honest_step(
    grid: np.ndarray, k_max: int, unique: bool
) -> np.ndarray:
    """DP transition on ``h`` (unique) or ``H`` (multi); Theorem 5, Eq. (14).

    Generic motion is ``(r, m) → (max(r−1, 0), m−1)``; the m = 0 column is
    then corrected: with r > 0 the margin stays at 0 for both symbols,
    with r = 0 it stays at 0 only for ``H``.
    """
    offset = k_max  # column of m == 0
    colshift = np.zeros_like(grid)
    colshift[:, :-1] = grid[:, 1:]

    out = np.zeros_like(grid)
    out[:-1, :] += colshift[1:, :]
    out[0, :] += colshift[0, :]

    # m == 0, r > 0: margin stays 0 (was shifted to m = −1 above).
    out[:-1, offset - 1] -= grid[1:, offset]
    out[:-1, offset] += grid[1:, offset]
    if not unique:
        # m == 0, r == 0, symbol H: margin stays 0 as well.
        out[0, offset - 1] -= grid[0, offset]
        out[0, offset] += grid[0, offset]
    return out


def settlement_violation_mass(grid: np.ndarray, k_max: int) -> float:
    """``Pr[m ≥ 0]`` — total mass in the non-negative margin columns."""
    return float(grid[:, k_max:].sum())
