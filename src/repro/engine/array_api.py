"""Array-namespace dispatch for the batched kernels.

The hot kernels in :mod:`repro.engine.kernels` are written against a
*namespace* ``xp`` instead of the ``numpy`` module directly: every
kernel resolves the namespace of its input arrays with
:func:`array_namespace` and issues all array operations through it.
One code path therefore serves NumPy on the CPU and any NumPy-compatible
accelerator namespace (CuPy on CUDA, or a shim around another array-API
implementation) — the only difference between backends is *where* the
arrays live.

Resolution rule
---------------

``array_namespace(*arrays)`` returns, in order of preference:

1. the namespace an input array declares through the standard
   ``__array_namespace__`` protocol (NumPy ≥ 2 ndarrays return the
   ``numpy`` module; accelerator arrays return their own);
2. the **module-level default** namespace (``numpy`` unless changed via
   :func:`set_default_namespace` / the :func:`use_namespace` context
   manager) for arrays that predate the protocol.

Inputs win over the default on purpose: a kernel fed device arrays must
compute on the device even while the process default is NumPy, and vice
versa — mixing is the caller's bug, not something to silently "fix" by
copying across namespaces.

Namespace requirements
----------------------

The kernels need the *NumPy-compatible subset*, not the minimal
array-API standard: ``zeros``/``empty``/``full``/``asarray``/``arange``,
``where``/``minimum``/``maximum``, ``cumsum(axis=)``, boolean and
integer fancy indexing, and in-place slice assignment.  CuPy provides
all of it.  Namespaces without ufunc ``.accumulate`` (strict array-API
modules) are still served: :func:`prefix_minimum` / :func:`prefix_maximum`
fall back to a log-step Hillis–Steele scan built from ``minimum`` /
``maximum`` alone.

Bit-identity contract
---------------------

All randomness is drawn on the host from ``numpy.random.Generator`` and
shipped to the namespace as-is, so every backend consumes *identical*
uniform bits.  The kernels' integer recurrences are exact on any
conforming namespace; the few float comparisons (symbol thresholds,
initial-reach logs) are bit-identical wherever the namespace implements
IEEE-754 double semantics (CuPy does).  Namespaces that do not must be
run with an explicit ulp-tolerance (see
:class:`repro.engine.array_backend.ArrayBackend`).
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = [
    "array_namespace",
    "default_namespace",
    "prefix_maximum",
    "prefix_minimum",
    "set_default_namespace",
    "to_namespace",
    "to_numpy",
    "use_namespace",
]

_DEFAULT_NAMESPACE = np


def default_namespace():
    """The namespace used for arrays that declare none (default NumPy)."""
    return _DEFAULT_NAMESPACE


def set_default_namespace(namespace) -> None:
    """Replace the module-level default namespace.

    The namespace must provide the NumPy-compatible subset documented in
    the module docstring.  Prefer the :func:`use_namespace` context
    manager, which restores the previous default on exit.
    """
    global _DEFAULT_NAMESPACE
    if not hasattr(namespace, "asarray"):
        raise TypeError(
            f"{namespace!r} does not look like an array namespace "
            "(no asarray)"
        )
    _DEFAULT_NAMESPACE = namespace


@contextlib.contextmanager
def use_namespace(namespace):
    """Temporarily install ``namespace`` as the module-level default."""
    previous = _DEFAULT_NAMESPACE
    set_default_namespace(namespace)
    try:
        yield namespace
    finally:
        set_default_namespace(previous)


def array_namespace(*arrays):
    """The namespace the given arrays compute in (see module docstring).

    The first array that implements ``__array_namespace__`` decides;
    arrays without the protocol fall through to the module default.
    """
    for array in arrays:
        probe = getattr(array, "__array_namespace__", None)
        if probe is not None:
            return probe()
    return _DEFAULT_NAMESPACE


def to_namespace(namespace, array):
    """Convert a host array into ``namespace`` (no-op for NumPy-on-NumPy)."""
    if namespace is np and isinstance(array, np.ndarray):
        return array
    return namespace.asarray(array)


def to_numpy(array) -> np.ndarray:
    """Convert a namespace array back to a host ``numpy.ndarray``.

    Device arrays come back through their ``.get()`` (the CuPy
    device-to-host copy); everything else through ``numpy.asarray``.
    """
    if isinstance(array, np.ndarray):
        return array
    getter = getattr(array, "get", None)
    if getter is not None:
        return np.asarray(getter())
    return np.asarray(array)


def _scan(namespace, matrix, combine):
    """Hillis–Steele inclusive scan along axis 1 using only ``combine``.

    O(T log T) work but fully vectorized — the fallback for namespaces
    whose ufuncs lack ``.accumulate``.  ``combine`` must be associative
    (minimum / maximum are).
    """
    out = namespace.asarray(matrix).copy()
    width = out.shape[1]
    shift = 1
    while shift < width:
        out[:, shift:] = combine(out[:, shift:], out[:, :-shift])
        shift *= 2
    return out


def prefix_minimum(namespace, matrix):
    """Running row minimum (``minimum.accumulate`` or the scan fallback)."""
    accumulate = getattr(
        getattr(namespace, "minimum", None), "accumulate", None
    )
    if accumulate is not None:
        return accumulate(matrix, axis=1)
    return _scan(namespace, matrix, namespace.minimum)


def prefix_maximum(namespace, matrix):
    """Running row maximum (``maximum.accumulate`` or the scan fallback)."""
    accumulate = getattr(
        getattr(namespace, "maximum", None), "accumulate", None
    )
    if accumulate is not None:
        return accumulate(matrix, axis=1)
    return _scan(namespace, matrix, namespace.maximum)
