"""Batched kernel engine: vectorized recurrences behind a scenario API.

Five layers (bottom to top):

* :mod:`repro.engine.kernels` — batched NumPy implementations of the
  Theorem 5 recurrences on ``(trials, T)`` uint8 symbol matrices:
  sampling, the reach reflected walk, the joint ``(ρ, μ)`` recurrence,
  Catalan-slot detection, and the ρ_Δ reduction map.  The scalar
  reference implementations in :mod:`repro.core` / :mod:`repro.delta`
  are kept as cross-validation oracles.
* :mod:`repro.engine.scenarios` — a frozen :class:`Scenario` dataclass
  plus a registry of declarative Monte-Carlo workloads (i.i.d.,
  Δ-synchronous–reduced, martingale-damped, adversarial-stake sweeps).
* :mod:`repro.engine.runner` — :class:`ExperimentRunner`: chunked
  batching of a scenario against an estimator, each chunk seeded by its
  own spawned ``SeedSequence`` child, with :class:`Estimate`
  aggregation.
* :mod:`repro.engine.sweeps` (with :mod:`repro.engine.parallel` and
  :mod:`repro.engine.cache`) — the orchestration layer:
  :class:`SweepGrid` expands parameter grids into scenario points,
  :class:`ProcessBackend` fans chunks across cores with identical
  results, and :class:`ResultCache` content-addresses every computed
  point on disk so nothing is estimated twice.  Two further backends
  drive the same chunk contract elsewhere:
  :class:`~repro.engine.array_backend.ArrayBackend` evaluates chunks
  through an array-API namespace (NumPy, CuPy, …; see
  :mod:`repro.engine.array_api`) and
  :class:`~repro.engine.distributed.DistributedBackend` ships them to
  ``python -m repro.worker`` hosts over a socket protocol — all four
  backends are bit-identical by the per-chunk seed-tree contract.
* :mod:`repro.engine.protocol` — the protocol-execution workload:
  :class:`ProtocolScenario` describes a full Section 2 protocol
  configuration, samples batches of independent ``Simulation`` runs
  under the same chunked seed tree, and plugs the executable protocol
  into the runner / parallel / cache / sweep layers unchanged.

See ``docs/ARCHITECTURE.md`` for the full map and the reproducibility
contract.
"""

from repro.engine import kernels
from repro.engine.scenarios import (
    Batch,
    Scenario,
    adversarial_stake_sweep,
    get_scenario,
    register,
    scenario_names,
)
from repro.engine.runner import (
    ChunkAccumulator,
    Estimate,
    ExperimentRunner,
    NoConsecutiveCatalanInWindow,
    NoUniqueCatalanInWindow,
    RunReport,
    accumulate_weights,
    as_accumulator,
    chunk_sizes,
    delta_settlement_violation,
    estimate_from_hits,
    estimate_from_moments,
    no_consecutive_catalan_in_window,
    no_unique_catalan_in_window,
    run_chunk,
    run_scenario,
    settlement_violation,
)
from repro.engine.cache import ResultCache, cache_from_env
from repro.engine.parallel import (
    WORKERS_ENV,
    Backend,
    ProcessBackend,
    SerialBackend,
    default_workers,
)
from repro.engine.array_api import (
    array_namespace,
    default_namespace,
    set_default_namespace,
    use_namespace,
)
from repro.engine.array_backend import ArrayBackend, run_chunk_array
from repro.engine.distributed import DistributedBackend, RemoteTaskError
from repro.engine.protocol import (
    ProtocolBatch,
    ProtocolRunner,
    ProtocolScenario,
    protocol_cp_violation,
    protocol_deep_reorg,
    protocol_settlement_violation,
    run_protocol_scalar,
)
from repro.engine.sweeps import (
    SweepGrid,
    SweepPoint,
    get_grid,
    grid_names,
    register_grid,
    run_grid,
    select_points,
)

__all__ = [
    "ArrayBackend",
    "Backend",
    "Batch",
    "ChunkAccumulator",
    "DistributedBackend",
    "Estimate",
    "ExperimentRunner",
    "ProtocolBatch",
    "ProtocolRunner",
    "ProtocolScenario",
    "NoConsecutiveCatalanInWindow",
    "NoUniqueCatalanInWindow",
    "ProcessBackend",
    "RemoteTaskError",
    "ResultCache",
    "RunReport",
    "Scenario",
    "SerialBackend",
    "SweepGrid",
    "SweepPoint",
    "WORKERS_ENV",
    "accumulate_weights",
    "adversarial_stake_sweep",
    "array_namespace",
    "as_accumulator",
    "cache_from_env",
    "chunk_sizes",
    "default_namespace",
    "default_workers",
    "delta_settlement_violation",
    "estimate_from_hits",
    "estimate_from_moments",
    "get_grid",
    "get_scenario",
    "grid_names",
    "kernels",
    "no_consecutive_catalan_in_window",
    "no_unique_catalan_in_window",
    "protocol_cp_violation",
    "protocol_deep_reorg",
    "protocol_settlement_violation",
    "register",
    "register_grid",
    "run_chunk",
    "run_chunk_array",
    "run_grid",
    "set_default_namespace",
    "use_namespace",
    "run_protocol_scalar",
    "run_scenario",
    "scenario_names",
    "select_points",
    "settlement_violation",
]
