"""Batched kernel engine: vectorized recurrences behind a scenario API.

Three layers (bottom to top):

* :mod:`repro.engine.kernels` — batched NumPy implementations of the
  Theorem 5 recurrences on ``(trials, T)`` uint8 symbol matrices:
  sampling, the reach reflected walk, the joint ``(ρ, μ)`` recurrence,
  Catalan-slot detection, and the ρ_Δ reduction map.  The scalar
  reference implementations in :mod:`repro.core` / :mod:`repro.delta`
  are kept as cross-validation oracles.
* :mod:`repro.engine.scenarios` — a frozen :class:`Scenario` dataclass
  plus a registry of declarative Monte-Carlo workloads (i.i.d.,
  Δ-synchronous–reduced, martingale-damped, adversarial-stake sweeps).
* :mod:`repro.engine.runner` — :class:`ExperimentRunner`: chunked
  batching of a scenario against an estimator with a seeded
  ``numpy.random.Generator`` and :class:`Estimate` aggregation.
"""

from repro.engine import kernels
from repro.engine.scenarios import (
    Batch,
    Scenario,
    adversarial_stake_sweep,
    get_scenario,
    register,
    scenario_names,
)
from repro.engine.runner import (
    Estimate,
    ExperimentRunner,
    delta_settlement_violation,
    estimate_from_hits,
    no_consecutive_catalan_in_window,
    no_unique_catalan_in_window,
    run_scenario,
    settlement_violation,
)

__all__ = [
    "Batch",
    "Estimate",
    "ExperimentRunner",
    "Scenario",
    "adversarial_stake_sweep",
    "delta_settlement_violation",
    "estimate_from_hits",
    "get_scenario",
    "kernels",
    "no_consecutive_catalan_in_window",
    "no_unique_catalan_in_window",
    "register",
    "run_scenario",
    "scenario_names",
    "settlement_violation",
]
