"""Process-pool execution backend for the experiment runner.

The engine's unit of parallelism is the *chunk* (see
:func:`repro.engine.runner.run_chunk`): a fixed-size slice of the trial
stream with its own spawned ``SeedSequence`` child.  Because a chunk's
result depends only on ``(scenario, estimator, size, child)`` — never on
which process evaluates it or in which order — fanning chunks across a
process pool is *embarrassingly* deterministic: per-chunk accumulators
(``(sum_w, sum_w2, trials)`` moment triples; exact hit counts in the
boolean case) are bit-identical to a serial run, and the aggregated
estimate is therefore the same for every worker count.  That invariant
is what ``tests/engine/test_parallel.py`` pins down.

Why processes and not threads: the chunk kernels are NumPy-bound but
interleave enough Python-level control flow (sampling phases, reduction
bookkeeping) that the GIL caps thread scaling well below core count;
processes sidestep it entirely.  Everything shipped to a worker —
frozen ``Scenario`` dataclasses, module-level estimator functions, the
frozen window-estimator classes, ``SeedSequence`` objects — pickles
cleanly by construction.

Typical use is through the higher layers (``ExperimentRunner(...,
workers=8)`` or ``repro.engine.sweeps.run_grid(..., workers=8)``), but
the backend can be driven directly and shared across many runs::

    with ProcessBackend(workers=8) as pool:
        for scenario in scenarios:
            runner = ExperimentRunner(scenario)
            runner.run(100_000, seed=7, backend=pool)
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Protocol, runtime_checkable

import numpy as np

from repro.engine.runner import Estimator, run_chunk
from repro.engine.scenarios import Scenario
from repro.obs import metrics

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "ProcessBackend",
    "SerialBackend",
    "WORKERS_ENV",
    "default_workers",
    "make_backend",
]

#: Names accepted by :func:`make_backend` (the CLI ``--backend`` values).
BACKEND_NAMES = ("serial", "process", "array", "distributed")


def make_backend(
    name: str,
    workers: int | None = None,
    hosts: str | None = None,
) -> "Backend":
    """Construct a backend from its CLI name; caller owns ``close()``.

    The single factory behind every ``--backend`` flag (sweep CLI,
    oracle builder, benchmarks): ``serial``, ``process`` (pool of
    ``workers``), ``array`` (in-process array-namespace evaluation;
    NumPy unless :func:`repro.engine.array_api.set_default_namespace`
    chose otherwise), or ``distributed`` (``hosts`` is the required
    ``"host:port,host:port"`` worker list).  Imports lazily so the
    serial/process path never pays for the socket or namespace
    machinery.
    """
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(workers)
    if name == "array":
        from repro.engine.array_api import default_namespace
        from repro.engine.array_backend import ArrayBackend

        return ArrayBackend(default_namespace())
    if name == "distributed":
        if not hosts:
            raise ValueError(
                "--backend distributed requires --hosts host:port[,host:port]"
            )
        from repro.engine.distributed import DistributedBackend

        return DistributedBackend.from_spec(hosts)
    raise ValueError(
        f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
    )


@runtime_checkable
class Backend(Protocol):
    """The streaming execution interface every backend implements.

    The runner (fixed-budget *and* adaptive paths), the sweep
    orchestrator, and the oracle builder all drive exactly this
    surface — chunks and generic pure tasks in, futures out — so
    :class:`SerialBackend` and :class:`ProcessBackend` are
    interchangeable and the choice of backend can never change a
    result, only its wall-clock.
    """

    def submit_task(self, function, /, *args):
        """Submit one pure, picklable task; returns its future."""
        ...  # pragma: no cover - protocol signature only

    def submit_chunks(
        self,
        scenario: Scenario,
        estimator: Estimator,
        sizes: list[int],
        children: list[np.random.SeedSequence],
    ) -> list:
        """Submit one chunk per (size, child); futures in chunk order."""
        ...  # pragma: no cover - protocol signature only


#: Environment variable pinning :func:`default_workers` (positive int).
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """A sensible worker count for this machine: the CPU count.

    A positive integer in ``$REPRO_WORKERS`` overrides the detected
    count — CI runners and ``python -m repro.worker`` hosts pin their
    core budget through it without code changes (anything non-numeric
    or < 1 is rejected loudly rather than silently ignored).  Otherwise
    ``os.process_cpu_count`` (affinity-aware, Python ≥ 3.13) when
    available, else ``os.cpu_count()``, floored at 1.
    """
    pinned = os.environ.get(WORKERS_ENV)
    if pinned is not None:
        try:
            workers = int(pinned)
        except ValueError:
            workers = 0
        if workers < 1:
            raise ValueError(
                f"${WORKERS_ENV} must be a positive integer, got {pinned!r}"
            )
        return workers
    counter = getattr(os, "process_cpu_count", os.cpu_count)
    return max(counter() or 1, 1)


class _ImmediateFuture:
    """A pre-resolved stand-in for ``concurrent.futures.Future``."""

    def __init__(self, value) -> None:
        self._value = value

    def result(self):
        return self._value


class SerialBackend:
    """In-process backend: evaluates chunks eagerly, no pool.

    Exists so the runner and the sweep orchestrator drive *one*
    submit/gather code path for every worker count — the serial case is
    just the backend whose futures are already resolved.  Per-chunk
    results are identical to :class:`ProcessBackend` by the seed-tree
    contract.
    """

    def submit_task(self, function, /, *args) -> _ImmediateFuture:
        """Evaluate an arbitrary pure task now; a resolved future.

        The generic sibling of :meth:`submit_chunks` for deterministic
        non-chunk work (the settlement-oracle builder ships exact-DP
        cells through it).  The task must be a top-level callable with
        picklable arguments so the same call works on a process pool.
        """
        return _ImmediateFuture(function(*args))

    def submit_chunks(
        self,
        scenario: Scenario,
        estimator: Estimator,
        sizes: list[int],
        children: list[np.random.SeedSequence],
    ) -> list[_ImmediateFuture]:
        """Evaluate every chunk now; resolved futures in chunk order."""
        if len(sizes) != len(children):
            raise ValueError("one SeedSequence child per chunk required")
        if metrics.active() is None:
            return [
                _ImmediateFuture(run_chunk(scenario, estimator, size, child))
                for size, child in zip(sizes, children)
            ]
        latency = metrics.histogram(
            "repro_chunk_seconds",
            "chunk evaluation latency by backend",
            backend="serial",
        )
        futures = []
        for size, child in zip(sizes, children):
            start = time.perf_counter()
            result = run_chunk(scenario, estimator, size, child)
            latency.observe(time.perf_counter() - start)
            futures.append(_ImmediateFuture(result))
        return futures

    def close(self) -> None:
        """Nothing to tear down (uniform ``make_backend`` lifecycle)."""

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcessBackend:
    """A reusable pool of worker processes evaluating chunks.

    The pool is started lazily on first use and torn down by
    :meth:`close` (or the context-manager exit).  One backend can serve
    many runs — the sweep orchestrator opens a single backend for a
    whole grid and keeps chunks from *all* points in flight at once, so
    workers never idle at point boundaries and any per-process startup
    cost is paid once.  (The pool uses the platform's default start
    method: ``fork`` on typical Linux/CPython — workers inherit the
    parent cheaply — and ``spawn`` on macOS/Windows, where workers
    re-import the interpreter and NumPy; everything shipped to a worker
    pickles under either.)
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be positive")
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def submit_task(self, function, /, *args) -> Future:
        """Submit an arbitrary pure task to the pool; its future.

        ``function`` must be a top-level (picklable) callable and the
        task deterministic — results may be collected in any order.
        Used by the settlement-oracle builder to fan independent
        exact-DP cells across the same pool its Monte-Carlo sweeps run
        on.
        """
        return self._pool().submit(function, *args)

    def submit_chunks(
        self,
        scenario: Scenario,
        estimator: Estimator,
        sizes: list[int],
        children: list[np.random.SeedSequence],
    ) -> list[Future]:
        """Submit every chunk to the pool; futures in chunk order.

        Non-blocking: callers may submit the chunks of many runs before
        collecting any result, which is how the sweep orchestrator keeps
        all workers busy across point boundaries.  An empty submission
        (a run served entirely from the chunk ledger) never starts the
        pool.
        """
        if len(sizes) != len(children):
            raise ValueError("one SeedSequence child per chunk required")
        if not sizes:
            return []
        pool = self._pool()
        futures = [
            pool.submit(run_chunk, scenario, estimator, size, child)
            for size, child in zip(sizes, children)
        ]
        if metrics.active() is not None:
            # Latency includes queue wait (submit -> completion): that is
            # the number an operator watching pool saturation wants.  The
            # callback fires in this process, so the observation lands in
            # the caller's registry, not a worker's.
            latency = metrics.histogram(
                "repro_chunk_seconds", backend="process"
            )
            submitted = time.perf_counter()
            for future in futures:
                future.add_done_callback(
                    lambda _f, _t0=submitted: latency.observe(
                        time.perf_counter() - _t0
                    )
                )
        return futures

    def map_chunks(
        self,
        scenario: Scenario,
        estimator: Estimator,
        sizes: list[int],
        children: list[np.random.SeedSequence],
    ) -> list:
        """Evaluate every chunk on the pool; accumulators in chunk order.

        Blocking form of :meth:`submit_chunks` — the returned list of
        :class:`~repro.engine.runner.ChunkAccumulator` is positionally
        aligned with ``sizes`` and ``children`` regardless of completion
        order.  An estimator exception in any worker propagates to the
        caller.
        """
        return [
            future.result()
            for future in self.submit_chunks(
                scenario, estimator, sizes, children
            )
        ]

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
