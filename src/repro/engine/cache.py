"""Content-addressed on-disk cache for Monte-Carlo estimates and chunks.

The cache has two granularities:

* **Estimate entries** — a whole run.  Every point a sweep (or a
  benchmark, or an example) estimates is fully determined by five
  values: the frozen :class:`~repro.engine.scenarios.Scenario`, the
  estimator, the integer seed, the trial count, and the chunk size
  (which fixes the spawned seed tree — see the
  :mod:`repro.engine.runner` reproducibility contract).  This module
  turns that 5-tuple into a canonical JSON *key*, addresses it by its
  SHA-256 digest, and stores the resulting
  :class:`~repro.engine.runner.Estimate` as one small JSON file per
  point.
* **The chunk ledger** — per-chunk weighted accumulators, keyed by
  ``(scenario, estimator, seed, chunk_size)`` with one
  ``(sum_w, sum_w2, trials)`` triple per *full* chunk index (schema
  v2; v1 files stored a bare hit count per index and are read-migrated
  transparently — an integer ``h`` is exactly the degenerate triple
  ``(h, h, chunk_size)``).  Because the runner's spawned
  ``SeedSequence`` children form a prefix-stable stream (chunk ``i`` is
  seeded by ``SeedSequence(seed, spawn_key=(i,))`` regardless of how
  many chunks a run needs), ``trials`` is merely a *prefix length* of
  the chunk stream: extending a run reuses every previously computed
  full chunk bit-identically, and only the new chunks (plus the
  never-ledgered ragged remainder) are sampled.  One ledger file holds
  all chunks of a run configuration; the runner merges new chunks in as
  it computes them.

Invalidation rule: **any key component changes ⇒ miss.**  There is no
TTL, no versioning, no partial matching — a cache entry is exactly the
bit-reproducible output of one run configuration, so it can only ever be
reused for that same configuration.  Deleting the cache directory is
always safe (everything regenerates).

Estimators are identified by a *token*: module-level functions by their
qualified name, frozen-dataclass estimators (the window estimators) by
their qualified class name plus field values.  Lambdas and closures have
no stable identity and are rejected — give the estimator a name (a
``def`` or a frozen dataclass) to make it cacheable.

Layout: ``<directory>/<sha256-prefix>.json`` per estimate and
``<directory>/<sha256-prefix>.ledger.json`` per chunk ledger, each file
carrying both the human-readable key and the payload, so a cache
directory doubles as a tidy record of every point ever computed::

    {"key": {"scenario": {...}, "estimator": "...", "seed": 7,
             "trials": 100000, "chunk_size": 4096},
     "estimate": {"value": 0.0123, "standard_error": 0.00035,
                  "trials": 100000}}

    {"key": {"kind": "chunk-ledger", "scenario": {...},
             "estimator": "...", "seed": 7, "chunk_size": 4096},
     "version": 2,
     "chunks": {"0": [51.0, 51.0, 4096], "1": [47.0, 47.0, 4096]}}
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import math
import os
import pathlib
import tempfile

from repro.engine.runner import (
    ChunkAccumulator,
    Estimate,
    Estimator,
    as_accumulator,
)
from repro.engine.scenarios import Scenario
from repro.obs import metrics

__all__ = [
    "ResultCache",
    "cache_from_env",
    "estimator_token",
    "format_stats",
    "scenario_fingerprint",
    "CACHE_DIR_ENV",
    "LEDGER_VERSION",
]

#: Current on-disk chunk-ledger schema.  v1 stored one integer hit
#: count per chunk index; v2 stores the ``[sum_w, sum_w2, trials]``
#: accumulator triple.  Readers accept both (see ``_load_ledger``).
LEDGER_VERSION = 2


def format_stats(stats: dict) -> str:
    """One-line rendering of :meth:`ResultCache.stats` for run footers.

    Shared by the sweep CLI and the oracle builder log so the two
    surfaces cannot drift apart.  Chunk-ledger traffic is appended so a
    trials-extension run can show *how much* of its sampling was served
    from previously ledgered chunks.
    """
    rate = stats["hit_rate"]
    rendered = "n/a" if rate is None else f"{100.0 * rate:.1f}%"
    return (
        f"cache: {stats['hits']} hits / {stats['misses']} misses / "
        f"{stats['stores']} stores ({rendered} hit rate); "
        f"ledger: {stats['chunk_hits']} chunk hits / "
        f"{stats['chunk_misses']} chunk misses / "
        f"{stats['chunk_stores']} chunk stores"
    )

#: Environment variable naming a cache directory; ``cache_from_env``
#: (used by the benchmarks) returns a cache there when it is set.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE"


def scenario_fingerprint(scenario: Scenario) -> dict:
    """A JSON-ready dict of every field that defines the scenario.

    ``dataclasses.asdict`` recurses into the nested
    ``SlotProbabilities``, so the fingerprint covers the full slot
    distribution; floats round-trip at full precision through JSON.
    """
    return dataclasses.asdict(scenario)


def estimator_token(estimator: Estimator) -> str:
    """A stable string identity for a cacheable estimator.

    Raises ``ValueError`` for lambdas, closures, and other anonymous
    callables — they have no identity that survives a process restart,
    so caching them would silently conflate different estimators.
    """
    if dataclasses.is_dataclass(estimator) and not isinstance(
        estimator, type
    ):
        fields = dataclasses.asdict(estimator)
        rendered = ",".join(f"{k}={fields[k]!r}" for k in sorted(fields))
        cls = type(estimator)
        return f"{cls.__module__}.{cls.__qualname__}({rendered})"
    qualname = getattr(estimator, "__qualname__", None)
    module = getattr(estimator, "__module__", None)
    if (
        qualname is None
        or module is None
        or "<lambda>" in qualname
        or "<locals>" in qualname
        or getattr(estimator, "__closure__", None)
    ):
        raise ValueError(
            f"estimator {estimator!r} has no stable identity for caching; "
            "use a module-level function or a frozen-dataclass estimator"
        )
    return f"{module}.{qualname}"


class ResultCache:
    """A directory of content-addressed estimate files and chunk ledgers.

    The cache counts its traffic — estimate-level (``hits``, ``misses``,
    ``stores``) and chunk-level (``chunk_hits``, ``chunk_misses``,
    ``chunk_stores``) — so orchestrators can report *zero re-estimation*
    on warm reruns and *only the new chunks sampled* on trials
    extensions.  Corrupt or truncated entries are treated as misses and
    overwritten on the next store — the cache is disposable by design.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.chunk_hits = 0
        self.chunk_misses = 0
        self.chunk_stores = 0

    # -- keys ----------------------------------------------------------

    def key(
        self,
        scenario: Scenario,
        estimator: Estimator,
        seed: int,
        trials: int,
        chunk_size: int,
    ) -> dict:
        """The canonical (JSON-ready) key of one run configuration."""
        return {
            "scenario": scenario_fingerprint(scenario),
            "estimator": estimator_token(estimator),
            "seed": int(seed),
            "trials": int(trials),
            "chunk_size": int(chunk_size),
        }

    @staticmethod
    def digest(key: dict) -> str:
        """SHA-256 of the canonical serialization of ``key``."""
        canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def path(self, key: dict) -> pathlib.Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.directory / f"{self.digest(key)[:32]}.json"

    def ledger_key(
        self,
        scenario: Scenario,
        estimator: Estimator,
        seed: int,
        chunk_size: int,
    ) -> dict:
        """The canonical key of one run configuration's chunk ledger.

        Deliberately *without* ``trials``: the ledger is the prefix-
        stable chunk stream itself, and a trial count merely selects a
        prefix of it.  The ``kind`` marker keeps ledger digests disjoint
        from estimate digests by construction.
        """
        return {
            "kind": "chunk-ledger",
            "scenario": scenario_fingerprint(scenario),
            "estimator": estimator_token(estimator),
            "seed": int(seed),
            "chunk_size": int(chunk_size),
        }

    def ledger_path(self, key: dict) -> pathlib.Path:
        """Where the ledger for ``key`` lives (whether or not it exists)."""
        return self.directory / f"{self.digest(key)[:32]}.ledger.json"

    # -- traffic -------------------------------------------------------

    def contains(self, key: dict) -> bool:
        """Is there a (well-formed) entry for ``key``?  Does not count
        toward hit/miss statistics."""
        return self._load(self.path(key)) is not None

    def get(self, key: dict) -> Estimate | None:
        """Look ``key`` up; ``None`` (and a counted miss) when absent."""
        entry = self._load(self.path(key))
        if entry is None:
            self.misses += 1
            metrics.counter(
                "repro_cache_requests_total",
                "estimate-level cache lookups by outcome",
                kind="estimate",
                result="miss",
            ).inc()
            return None
        self.hits += 1
        metrics.counter(
            "repro_cache_requests_total", kind="estimate", result="hit"
        ).inc()
        stored = entry["estimate"]
        return Estimate(
            value=stored["value"],
            standard_error=stored["standard_error"],
            trials=stored["trials"],
        )

    def put(self, key: dict, estimate: Estimate) -> pathlib.Path:
        """Store ``estimate`` under ``key``; returns the entry path.

        The write goes through a uniquely-named same-directory temporary
        file and an atomic rename, so a crashed run can leave at worst
        an orphan temporary, never a truncated entry — and concurrent
        processes storing the same key (the runs are bit-identical, so
        either entry is correct) cannot trip over each other's
        temporaries.
        """
        path = self.path(key)
        payload = {
            "key": key,
            "estimate": {
                "value": estimate.value,
                "standard_error": estimate.standard_error,
                "trials": estimate.trials,
            },
        }
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(json.dumps(payload, indent=2) + "\n")
            os.replace(temp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp_name)
            raise
        self.stores += 1
        metrics.counter(
            "repro_cache_stores_total",
            "cache writes by granularity",
            kind="estimate",
        ).inc()
        return path

    # -- chunk ledger --------------------------------------------------

    def get_chunks(self, key: dict, indices) -> dict[int, ChunkAccumulator]:
        """Ledgered accumulators for the requested chunk ``indices``.

        Returns ``{index: ChunkAccumulator}`` for every requested index
        present in the ledger; absent indices are simply missing from
        the result.  v1 ledgers (bare integer hit counts) are migrated
        on read — an integer ``h`` *is* the degenerate triple
        ``(h, h, chunk_size)`` — so warm pre-v2 ledgers are reused
        without resampling.  Found and absent indices count toward
        ``chunk_hits`` / ``chunk_misses``.  A corrupt or type-invalid
        ledger file is an all-miss (and is healed by the next
        :meth:`put_chunks`).
        """
        wanted = list(indices)
        stored = self._load_ledger(
            self.ledger_path(key), int(key["chunk_size"])
        )
        found = {i: stored[i] for i in wanted if i in stored}
        self.chunk_hits += len(found)
        self.chunk_misses += len(wanted) - len(found)
        if metrics.active() is not None:
            metrics.counter(
                "repro_cache_requests_total", kind="chunk", result="hit"
            ).inc(len(found))
            metrics.counter(
                "repro_cache_requests_total", kind="chunk", result="miss"
            ).inc(len(wanted) - len(found))
        return found

    def put_chunks(
        self, key: dict, chunks: dict[int, ChunkAccumulator]
    ) -> pathlib.Path:
        """Merge ``chunks`` (``{index: accumulator}``) into the ledger.

        Values may be :class:`~repro.engine.runner.ChunkAccumulator`
        instances, plain triples, or legacy integer hit counts — all are
        normalised before writing, and the file is always written in the
        v2 triple schema (so one extension run upgrades a v1 ledger in
        place).  Existing entries are kept (they are bit-identical to
        whatever a re-computation would produce, by the reproducibility
        contract); the merged ledger is rewritten through the same
        atomic-rename discipline as :meth:`put`.  Returns the ledger
        path.

        Concurrency: the read-merge-rewrite is not locked, so two
        processes extending the same configuration simultaneously can
        each persist a merge that lacks the other's newest chunks
        (last writer wins).  That never affects correctness — a dropped
        entry just recomputes bit-identically on the next run — it only
        weakens the no-resampling guarantee, which assumes one writer
        per configuration at a time (as the orchestrators provide).
        """
        path = self.ledger_path(key)
        chunk_size = int(key["chunk_size"])
        merged = self._load_ledger(path, chunk_size)
        fresh = {
            int(index): as_accumulator(value, chunk_size)
            for index, value in chunks.items()
            if int(index) not in merged
        }
        merged.update(fresh)
        payload = {
            "key": key,
            "version": LEDGER_VERSION,
            "chunks": {
                str(i): list(merged[i].as_triple()) for i in sorted(merged)
            },
        }
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(json.dumps(payload, indent=2) + "\n")
            os.replace(temp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp_name)
            raise
        self.chunk_stores += len(fresh)
        if fresh:
            metrics.counter(
                "repro_cache_stores_total", kind="chunk"
            ).inc(len(fresh))
        return path

    # -- statistics ----------------------------------------------------

    def stats(self) -> dict:
        """Traffic counters for this cache *instance* (not the directory).

        ``hit_rate`` is over lookups (``get`` calls) only and ``None``
        before the first lookup — orchestrators print it in their run
        footers, so it must distinguish "no traffic" from "0% hits".
        """
        lookups = self.hits + self.misses
        chunk_lookups = self.chunk_hits + self.chunk_misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "lookups": lookups,
            "hit_rate": (self.hits / lookups) if lookups else None,
            "chunk_hits": self.chunk_hits,
            "chunk_misses": self.chunk_misses,
            "chunk_stores": self.chunk_stores,
            "chunk_lookups": chunk_lookups,
            "chunk_hit_rate": (
                (self.chunk_hits / chunk_lookups) if chunk_lookups else None
            ),
        }

    @staticmethod
    def _is_real(value) -> bool:
        """A finite JSON number that is not a bool (JSON has no separate
        integer/float estimate fields, but strings and booleans would
        load fine and crash — or silently miscompare — much later)."""
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value)
        )

    @classmethod
    def _load(cls, path: pathlib.Path) -> dict | None:
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        estimate = entry.get("estimate") if isinstance(entry, dict) else None
        if not isinstance(estimate, dict) or not {
            "value",
            "standard_error",
            "trials",
        } <= estimate.keys():
            return None
        # Type-validate the payload: a hand-edited entry (string value,
        # float trials, ...) must count as a corrupt-entry miss here, not
        # crash arithmetic somewhere downstream.
        if not cls._is_real(estimate["value"]) or not cls._is_real(
            estimate["standard_error"]
        ):
            return None
        trials = estimate["trials"]
        if not isinstance(trials, int) or isinstance(trials, bool):
            return None
        if trials < 1 or estimate["standard_error"] < 0:
            return None
        return entry

    @classmethod
    def _load_ledger(
        cls, path: pathlib.Path, chunk_size: int
    ) -> dict[int, ChunkAccumulator]:
        """The validated ``{index: accumulator}`` map of one ledger file.

        Two entry shapes are accepted per index: a bare integer hit
        count (schema v1, migrated to the degenerate triple
        ``(h, h, chunk_size)``) and a ``[sum_w, sum_w2, trials]`` triple
        (schema v2).  Anything malformed — non-integer indices, v1
        counts outside ``[0, chunk_size]``, v2 triples with non-finite
        moments, negative ``sum_w2``, or a trial count other than
        ``chunk_size`` — degrades to an empty ledger (an all-miss): the
        ledger is as disposable as every other entry.
        """
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        chunks = entry.get("chunks") if isinstance(entry, dict) else None
        if not isinstance(chunks, dict):
            return {}
        validated: dict[int, ChunkAccumulator] = {}
        migrated = 0
        for index, stored in chunks.items():
            if not isinstance(index, str) or not index.isdigit():
                return {}
            if isinstance(stored, int) and not isinstance(stored, bool):
                # v1: a bare hit count.
                if not 0 <= stored <= chunk_size:
                    return {}
                validated[int(index)] = ChunkAccumulator.from_hits(
                    stored, chunk_size
                )
                migrated += 1
                continue
            if not isinstance(stored, list) or len(stored) != 3:
                return {}
            sum_w, sum_w2, trials = stored
            if not cls._is_real(sum_w) or not cls._is_real(sum_w2):
                return {}
            if isinstance(trials, bool) or trials != chunk_size:
                return {}
            if sum_w2 < 0:
                return {}
            validated[int(index)] = ChunkAccumulator(
                float(sum_w), float(sum_w2), chunk_size
            )
        if migrated:
            metrics.counter(
                "repro_cache_ledger_migrations_total",
                "v1 ledger entries migrated to accumulator triples on read",
            ).inc(migrated)
        return validated

    def __len__(self) -> int:
        """Estimate entries only (ledger files are not 'points')."""
        return sum(
            1
            for entry in self.directory.glob("*.json")
            if not entry.name.endswith(".ledger.json")
        )


def cache_from_env(default: str | os.PathLike | None = None) -> ResultCache | None:
    """A :class:`ResultCache` at ``$REPRO_SWEEP_CACHE`` (or ``default``).

    Returns ``None`` when neither is set — callers can sprinkle this at
    entry points and get caching exactly when the orchestrator (for
    example ``benchmarks/run_all.py``) opted the process in.
    """
    directory = os.environ.get(CACHE_DIR_ENV) or default
    return ResultCache(directory) if directory else None
