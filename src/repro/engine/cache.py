"""Content-addressed on-disk cache for Monte-Carlo estimates.

Every point a sweep (or a benchmark, or an example) estimates is fully
determined by five values: the frozen :class:`~repro.engine.scenarios.
Scenario`, the estimator, the integer seed, the trial count, and the
chunk size (which fixes the spawned seed tree — see the
:mod:`repro.engine.runner` reproducibility contract).  This module turns
that 5-tuple into a canonical JSON *key*, addresses it by its SHA-256
digest, and stores the resulting :class:`~repro.engine.runner.Estimate`
as one small JSON file per point.

Invalidation rule: **any key component changes ⇒ miss.**  There is no
TTL, no versioning, no partial matching — a cache entry is exactly the
bit-reproducible output of one run configuration, so it can only ever be
reused for that same configuration.  Deleting the cache directory is
always safe (everything regenerates).

Estimators are identified by a *token*: module-level functions by their
qualified name, frozen-dataclass estimators (the window estimators) by
their qualified class name plus field values.  Lambdas and closures have
no stable identity and are rejected — give the estimator a name (a
``def`` or a frozen dataclass) to make it cacheable.

Layout: ``<directory>/<sha256-prefix>.json``, each file carrying both
the human-readable key and the estimate, so a cache directory doubles as
a tidy record of every point ever computed::

    {"key": {"scenario": {...}, "estimator": "...", "seed": 7,
             "trials": 100000, "chunk_size": 4096},
     "estimate": {"value": 0.0123, "standard_error": 0.00035,
                  "trials": 100000}}
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile

from repro.engine.runner import Estimate, Estimator
from repro.engine.scenarios import Scenario

__all__ = [
    "ResultCache",
    "cache_from_env",
    "estimator_token",
    "format_stats",
    "scenario_fingerprint",
    "CACHE_DIR_ENV",
]


def format_stats(stats: dict) -> str:
    """One-line rendering of :meth:`ResultCache.stats` for run footers.

    Shared by the sweep CLI and the oracle builder log so the two
    surfaces cannot drift apart.
    """
    rate = stats["hit_rate"]
    rendered = "n/a" if rate is None else f"{100.0 * rate:.1f}%"
    return (
        f"cache: {stats['hits']} hits / {stats['misses']} misses / "
        f"{stats['stores']} stores ({rendered} hit rate)"
    )

#: Environment variable naming a cache directory; ``cache_from_env``
#: (used by the benchmarks) returns a cache there when it is set.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE"


def scenario_fingerprint(scenario: Scenario) -> dict:
    """A JSON-ready dict of every field that defines the scenario.

    ``dataclasses.asdict`` recurses into the nested
    ``SlotProbabilities``, so the fingerprint covers the full slot
    distribution; floats round-trip at full precision through JSON.
    """
    return dataclasses.asdict(scenario)


def estimator_token(estimator: Estimator) -> str:
    """A stable string identity for a cacheable estimator.

    Raises ``ValueError`` for lambdas, closures, and other anonymous
    callables — they have no identity that survives a process restart,
    so caching them would silently conflate different estimators.
    """
    if dataclasses.is_dataclass(estimator) and not isinstance(
        estimator, type
    ):
        fields = dataclasses.asdict(estimator)
        rendered = ",".join(f"{k}={fields[k]!r}" for k in sorted(fields))
        cls = type(estimator)
        return f"{cls.__module__}.{cls.__qualname__}({rendered})"
    qualname = getattr(estimator, "__qualname__", None)
    module = getattr(estimator, "__module__", None)
    if (
        qualname is None
        or module is None
        or "<lambda>" in qualname
        or "<locals>" in qualname
        or getattr(estimator, "__closure__", None)
    ):
        raise ValueError(
            f"estimator {estimator!r} has no stable identity for caching; "
            "use a module-level function or a frozen-dataclass estimator"
        )
    return f"{module}.{qualname}"


class ResultCache:
    """A directory of content-addressed estimate files.

    The cache counts its traffic (``hits``, ``misses``, ``stores``) so
    orchestrators can report *zero re-estimation* on warm reruns.
    Corrupt or truncated entries are treated as misses and overwritten on
    the next store — the cache is disposable by design.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ----------------------------------------------------------

    def key(
        self,
        scenario: Scenario,
        estimator: Estimator,
        seed: int,
        trials: int,
        chunk_size: int,
    ) -> dict:
        """The canonical (JSON-ready) key of one run configuration."""
        return {
            "scenario": scenario_fingerprint(scenario),
            "estimator": estimator_token(estimator),
            "seed": int(seed),
            "trials": int(trials),
            "chunk_size": int(chunk_size),
        }

    @staticmethod
    def digest(key: dict) -> str:
        """SHA-256 of the canonical serialization of ``key``."""
        canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def path(self, key: dict) -> pathlib.Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.directory / f"{self.digest(key)[:32]}.json"

    # -- traffic -------------------------------------------------------

    def contains(self, key: dict) -> bool:
        """Is there a (well-formed) entry for ``key``?  Does not count
        toward hit/miss statistics."""
        return self._load(self.path(key)) is not None

    def get(self, key: dict) -> Estimate | None:
        """Look ``key`` up; ``None`` (and a counted miss) when absent."""
        entry = self._load(self.path(key))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        stored = entry["estimate"]
        return Estimate(
            value=stored["value"],
            standard_error=stored["standard_error"],
            trials=stored["trials"],
        )

    def put(self, key: dict, estimate: Estimate) -> pathlib.Path:
        """Store ``estimate`` under ``key``; returns the entry path.

        The write goes through a uniquely-named same-directory temporary
        file and an atomic rename, so a crashed run can leave at worst
        an orphan temporary, never a truncated entry — and concurrent
        processes storing the same key (the runs are bit-identical, so
        either entry is correct) cannot trip over each other's
        temporaries.
        """
        path = self.path(key)
        payload = {
            "key": key,
            "estimate": {
                "value": estimate.value,
                "standard_error": estimate.standard_error,
                "trials": estimate.trials,
            },
        }
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(json.dumps(payload, indent=2) + "\n")
            os.replace(temp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp_name)
            raise
        self.stores += 1
        return path

    # -- statistics ----------------------------------------------------

    def stats(self) -> dict:
        """Traffic counters for this cache *instance* (not the directory).

        ``hit_rate`` is over lookups (``get`` calls) only and ``None``
        before the first lookup — orchestrators print it in their run
        footers, so it must distinguish "no traffic" from "0% hits".
        """
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "lookups": lookups,
            "hit_rate": (self.hits / lookups) if lookups else None,
        }

    @staticmethod
    def _load(path: pathlib.Path) -> dict | None:
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        estimate = entry.get("estimate") if isinstance(entry, dict) else None
        if not isinstance(estimate, dict) or not {
            "value",
            "standard_error",
            "trials",
        } <= estimate.keys():
            return None
        return entry

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


def cache_from_env(default: str | os.PathLike | None = None) -> ResultCache | None:
    """A :class:`ResultCache` at ``$REPRO_SWEEP_CACHE`` (or ``default``).

    Returns ``None`` when neither is set — callers can sprinkle this at
    entry points and get caching exactly when the orchestrator (for
    example ``benchmarks/run_all.py``) opted the process in.
    """
    directory = os.environ.get(CACHE_DIR_ENV) or default
    return ResultCache(directory) if directory else None
