"""Chunked scenario execution: ExperimentRunner and Estimate aggregation.

The runner is the engine's third layer: it takes a declarative
:class:`repro.engine.scenarios.Scenario`, an *estimator* (a callable
mapping one sampled :class:`~repro.engine.scenarios.Batch` to a boolean
hit vector), and executes the requested number of trials in fixed-size
chunks against a single seeded ``numpy.random.Generator``.

Reproducibility contract
------------------------

For a fixed ``(seed, chunk_size)`` pair the run is bit-reproducible: the
generator is created from the seed and consumed strictly sequentially,
one chunk at a time, with the randomness phases documented on
``Scenario.sample_batch``.  (Changing ``chunk_size`` re-partitions the
uniform stream between phases and may therefore change individual
samples — the estimate remains statistically identical, but not
bit-identical.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.engine import kernels
from repro.engine.scenarios import Batch, Scenario

#: An estimator maps (scenario, batch) to a boolean hit vector.
Estimator = Callable[[Scenario, Batch], np.ndarray]


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with its standard error."""

    value: float
    standard_error: float
    trials: int

    def within(self, target: float, sigmas: float = 4.0) -> bool:
        """Is ``target`` within ``sigmas`` standard errors of the estimate?"""
        slack = sigmas * self.standard_error + 1e-12
        return abs(self.value - target) <= slack


def estimate_from_hits(hits: int, trials: int) -> Estimate:
    """Wrap a Bernoulli hit count in an :class:`Estimate`."""
    rate = hits / trials
    se = math.sqrt(max(rate * (1.0 - rate), 1e-12) / trials)
    return Estimate(rate, se, trials)


# ----------------------------------------------------------------------
# Built-in estimators
# ----------------------------------------------------------------------


def settlement_violation(scenario: Scenario, batch: Batch) -> np.ndarray:
    """``μ_x(y) ≥ 0`` at suffix length exactly ``depth`` (Fact 6 / Lemma 1).

    The per-batch indicator behind Table 1: for synchronous scenarios the
    sampled width is ``|x| + depth``, so the final joint state *is* the
    read-out at the checkpoint.
    """
    _rho, mu = kernels.joint_final_states(
        batch.symbols, batch.start_columns, batch.initial_reaches
    )
    return mu >= 0


def delta_settlement_violation(scenario: Scenario, batch: Batch) -> np.ndarray:
    """(k, Δ)-settlement failure on reduced strings (Definition 23 via Lemma 1).

    A row is a violation when its reduced margin is non-negative at *some*
    suffix length ≥ ``depth`` — the batched complement of
    :func:`repro.delta.settlement.is_k_delta_settled`.  Rows whose target
    slot was empty (start column ``−1``) are vacuously settled.
    """
    starts = batch.start_columns
    margins = kernels.margin_trajectories(
        batch.symbols, np.maximum(starts, 0), batch.initial_reaches
    )
    columns = np.arange(margins.shape[1])[None, :]
    in_window = (columns >= (starts + scenario.depth)[:, None]) & (
        columns <= batch.lengths[:, None]
    )
    violated = ((margins >= 0) & in_window).any(axis=1)
    return violated & (starts >= 0)


def no_unique_catalan_in_window(
    window_start: int, window_length: int
) -> Estimator:
    """Estimator factory: no uniquely honest Catalan slot in the window.

    The event of Bound 1, evaluated on the whole sampled string (boundary
    effects included, as in the scalar estimator).
    """

    def estimator(scenario: Scenario, batch: Batch) -> np.ndarray:
        mask = kernels.uniquely_honest_catalan_mask(batch.symbols)
        window = mask[:, window_start - 1 : window_start - 1 + window_length]
        return ~window.any(axis=1)

    return estimator


def no_consecutive_catalan_in_window(
    window_start: int, window_length: int
) -> Estimator:
    """Estimator factory: no two consecutive Catalan slots starting in
    the window (the event of Bound 2)."""

    def estimator(scenario: Scenario, batch: Batch) -> np.ndarray:
        pairs = kernels.consecutive_catalan_mask(batch.symbols)
        window = pairs[:, window_start - 1 : window_start - 1 + window_length]
        return ~window.any(axis=1)

    return estimator


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------


class ExperimentRunner:
    """Execute a scenario against an estimator with chunked batching.

    ``chunk_size`` bounds peak memory (a chunk materialises a
    ``(chunk, horizon)`` symbol matrix plus the estimator's temporaries);
    the default keeps chunks comfortably inside cache for typical
    horizons while amortising NumPy dispatch.
    """

    def __init__(
        self,
        scenario: Scenario,
        estimator: Estimator | None = None,
        chunk_size: int = 4096,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.scenario = scenario
        self.estimator = estimator or self._default_estimator(scenario)
        self.chunk_size = chunk_size

    @staticmethod
    def _default_estimator(scenario: Scenario) -> Estimator:
        return (
            delta_settlement_violation
            if scenario.reduced
            else settlement_violation
        )

    def run(self, trials: int, seed: int | np.random.Generator) -> Estimate:
        """Run ``trials`` trials and aggregate into an :class:`Estimate`.

        ``seed`` is an integer (preferred: the run is then self-contained
        and bit-reproducible) or an existing generator to continue.
        """
        if trials < 1:
            raise ValueError("trials must be positive")
        generator = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        hits = 0
        remaining = trials
        while remaining > 0:
            chunk = min(self.chunk_size, remaining)
            batch = self.scenario.sample_batch(chunk, generator)
            chunk_hits = np.asarray(self.estimator(self.scenario, batch))
            if chunk_hits.shape != (chunk,):
                raise ValueError(
                    "estimator must return one boolean per trial, got shape "
                    f"{chunk_hits.shape} for chunk of {chunk}"
                )
            hits += int(chunk_hits.sum())
            remaining -= chunk
        return estimate_from_hits(hits, trials)


def run_scenario(
    name: str,
    trials: int,
    seed: int,
    estimator: Estimator | None = None,
    chunk_size: int = 4096,
    **overrides,
) -> Estimate:
    """One-call convenience: look up, override, run.

    ``run_scenario("iid-settlement", 100_000, seed=7, depth=200)`` is the
    whole Monte-Carlo pipeline for a Table 1 cell.
    """
    from repro.engine.scenarios import get_scenario

    scenario = get_scenario(name, **overrides)
    return ExperimentRunner(scenario, estimator, chunk_size).run(trials, seed)
