"""Chunked scenario execution: ExperimentRunner and Estimate aggregation.

The runner is the engine's third layer: it takes a declarative
:class:`repro.engine.scenarios.Scenario`, an *estimator* (a callable
mapping one sampled :class:`~repro.engine.scenarios.Batch` to a boolean
hit vector), and executes the requested number of trials in fixed-size
chunks.

Reproducibility contract
------------------------

For an integer ``seed`` the run is bit-reproducible and **independent of
the execution backend**: the trial count is partitioned into chunks of
``chunk_size`` (last chunk ragged), a ``numpy.random.SeedSequence(seed)``
is spawned into one child per chunk, and chunk ``i`` is always sampled
from ``default_rng(child_i)`` — whether the chunks run in-process or are
fanned out across a :class:`repro.engine.parallel.ProcessBackend` with
any number of workers.  Per-chunk hit counts are therefore bit-identical
between serial and parallel runs, and so are the aggregated
:class:`Estimate` values.  (Changing ``chunk_size`` re-partitions the
trial stream and changes individual samples — the estimate remains
statistically identical, but not bit-identical.)

Passing an existing ``numpy.random.Generator`` instead of an integer
selects the legacy *streaming* path: the generator is consumed strictly
sequentially, one chunk at a time, which lets callers continue an
existing stream but is serial-only and never cached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.engine import kernels
from repro.engine.scenarios import Batch, Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.cache import ResultCache
    from repro.engine.parallel import ProcessBackend, SerialBackend

#: An estimator maps (scenario, batch) to a boolean hit vector.
Estimator = Callable[[Scenario, Batch], np.ndarray]


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with its standard error."""

    value: float
    standard_error: float
    trials: int

    def within(self, target: float, sigmas: float = 4.0) -> bool:
        """Is ``target`` within ``sigmas`` standard errors of the estimate?"""
        slack = sigmas * self.standard_error + 1e-12
        return abs(self.value - target) <= slack


def estimate_from_hits(hits: int, trials: int) -> Estimate:
    """Wrap a Bernoulli hit count in an :class:`Estimate`.

    ``trials`` must be positive — merging an *empty* partial result (for
    example a cache shard that contributed no trials) is a caller bug and
    raises instead of fabricating a 0/0 estimate.

    At the boundary ``hits ∈ {0, trials}`` the plug-in standard error
    ``sqrt(p(1−p)/n)`` collapses to zero, which would make
    :meth:`Estimate.within` accept only targets within ``1e-12`` — a
    false *positive* for "the estimate resolves the target" whenever the
    true probability is merely below the sampling resolution.  We instead
    report the Laplace-smoothed error ``sqrt(p̃(1−p̃)/n)`` with
    ``p̃ = (hits+1)/(trials+2)`` (≈ ``1/n`` at the boundary, the same
    scale as the rule-of-three bound), so boundary estimates advertise
    their genuine ``O(1/n)`` uncertainty.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= hits <= trials:
        raise ValueError(f"hits = {hits} outside [0, {trials}]")
    rate = hits / trials
    if hits == 0 or hits == trials:
        smoothed = (hits + 1.0) / (trials + 2.0)
        se = math.sqrt(smoothed * (1.0 - smoothed) / trials)
    else:
        se = math.sqrt(rate * (1.0 - rate) / trials)
    return Estimate(rate, se, trials)


# ----------------------------------------------------------------------
# Built-in estimators
# ----------------------------------------------------------------------


def settlement_violation(scenario: Scenario, batch: Batch) -> np.ndarray:
    """``μ_x(y) ≥ 0`` at suffix length exactly ``depth`` (Fact 6 / Lemma 1).

    The per-batch indicator behind Table 1: for synchronous scenarios the
    sampled width is ``|x| + depth``, so the final joint state *is* the
    read-out at the checkpoint.
    """
    _rho, mu = kernels.joint_final_states(
        batch.symbols, batch.start_columns, batch.initial_reaches
    )
    return mu >= 0


def delta_settlement_violation(scenario: Scenario, batch: Batch) -> np.ndarray:
    """(k, Δ)-settlement failure on reduced strings (Definition 23 via Lemma 1).

    A row is a violation when its reduced margin is non-negative at *some*
    suffix length ≥ ``depth`` — the batched complement of
    :func:`repro.delta.settlement.is_k_delta_settled`.  Rows whose target
    slot was empty (start column ``−1``) are vacuously settled.
    """
    starts = batch.start_columns
    margins = kernels.margin_trajectories(
        batch.symbols, np.maximum(starts, 0), batch.initial_reaches
    )
    columns = np.arange(margins.shape[1])[None, :]
    in_window = (columns >= (starts + scenario.depth)[:, None]) & (
        columns <= batch.lengths[:, None]
    )
    violated = ((margins >= 0) & in_window).any(axis=1)
    return violated & (starts >= 0)


def _validate_window(window_start: int, window_length: int) -> None:
    """Slots are 1-indexed: a start below 1 would silently slice an
    empty (or wrapped) window and report probability 1."""
    if window_start < 1:
        raise ValueError(f"window_start must be >= 1, got {window_start}")
    if window_length < 1:
        raise ValueError(f"window_length must be >= 1, got {window_length}")


@dataclass(frozen=True)
class NoUniqueCatalanInWindow:
    """Estimator: no uniquely honest Catalan slot in the window.

    The event of Bound 1, evaluated on the whole sampled string (boundary
    effects included, as in the scalar estimator).  A frozen dataclass
    rather than a closure so instances pickle across process-pool workers
    and fingerprint deterministically for the result cache.
    """

    window_start: int
    window_length: int

    def __post_init__(self) -> None:
        _validate_window(self.window_start, self.window_length)

    def __call__(self, scenario: Scenario, batch: Batch) -> np.ndarray:
        mask = kernels.uniquely_honest_catalan_mask(batch.symbols)
        start = self.window_start
        window = mask[:, start - 1 : start - 1 + self.window_length]
        return ~window.any(axis=1)


@dataclass(frozen=True)
class NoConsecutiveCatalanInWindow:
    """Estimator: no two consecutive Catalan slots starting in the window
    (the event of Bound 2).  Picklable and cache-fingerprintable like
    :class:`NoUniqueCatalanInWindow`."""

    window_start: int
    window_length: int

    def __post_init__(self) -> None:
        _validate_window(self.window_start, self.window_length)

    def __call__(self, scenario: Scenario, batch: Batch) -> np.ndarray:
        pairs = kernels.consecutive_catalan_mask(batch.symbols)
        start = self.window_start
        window = pairs[:, start - 1 : start - 1 + self.window_length]
        return ~window.any(axis=1)


def no_unique_catalan_in_window(
    window_start: int, window_length: int
) -> Estimator:
    """Estimator factory kept for API compatibility; returns the picklable
    :class:`NoUniqueCatalanInWindow` instance."""
    return NoUniqueCatalanInWindow(window_start, window_length)


def no_consecutive_catalan_in_window(
    window_start: int, window_length: int
) -> Estimator:
    """Estimator factory kept for API compatibility; returns the picklable
    :class:`NoConsecutiveCatalanInWindow` instance."""
    return NoConsecutiveCatalanInWindow(window_start, window_length)


# ----------------------------------------------------------------------
# Chunk execution primitives (shared by the serial and process backends)
# ----------------------------------------------------------------------


def chunk_sizes(trials: int, chunk_size: int) -> list[int]:
    """The deterministic chunk partition of a run.

    ``trials // chunk_size`` full chunks followed by one ragged
    remainder — the partition (and hence the spawned seed tree) is a pure
    function of ``(trials, chunk_size)``.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    full, remainder = divmod(trials, chunk_size)
    return [chunk_size] * full + ([remainder] if remainder else [])


def run_chunk(
    scenario: Scenario,
    estimator: Estimator,
    size: int,
    seed_sequence: np.random.SeedSequence,
) -> int:
    """Sample and evaluate one chunk; returns its hit count.

    Top-level (picklable) on purpose: this is the unit of work shipped to
    :class:`repro.engine.parallel.ProcessBackend` workers.  Each chunk
    owns a fresh generator built from its spawned ``SeedSequence`` child,
    so the result is independent of where and in which order the chunk
    executes.
    """
    generator = np.random.default_rng(seed_sequence)
    batch = scenario.sample_batch(size, generator)
    hits = np.asarray(estimator(scenario, batch))
    if hits.shape != (size,):
        raise ValueError(
            "estimator must return one boolean per trial, got shape "
            f"{hits.shape} for chunk of {size}"
        )
    return int(hits.sum())


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------


@dataclass
class PendingEstimate:
    """A dispatched run: resolves to an :class:`Estimate` on demand.

    Produced by :meth:`ExperimentRunner.submit`.  ``from_cache`` marks a
    run served entirely from the cache (no chunks were submitted);
    otherwise :meth:`result` blocks on the chunk futures, aggregates,
    and stores the estimate under ``key`` when the runner has a cache.
    """

    runner: "ExperimentRunner"
    trials: int
    key: dict | None
    futures: list
    #: True when the run was served from the cache (no estimation at all).
    from_cache: bool = False
    _resolved: Estimate | None = None

    def result(self) -> Estimate:
        """Block until every chunk is done; the aggregated estimate."""
        if self._resolved is not None:
            return self._resolved
        hits = sum(future.result() for future in self.futures)
        estimate = estimate_from_hits(hits, self.trials)
        if self.key is not None:
            self.runner.cache.put(self.key, estimate)
        self._resolved = estimate
        self.futures = []
        return estimate


class ExperimentRunner:
    """Execute a scenario against an estimator with chunked batching.

    ``chunk_size`` bounds peak memory (a chunk materialises a
    ``(chunk, horizon)`` symbol matrix plus the estimator's temporaries);
    the default keeps chunks comfortably inside cache for typical
    horizons while amortising NumPy dispatch.

    ``workers`` selects the execution backend: ``1`` (default) runs the
    chunks in-process; ``> 1`` fans them out across a
    :class:`repro.engine.parallel.ProcessBackend` with that many
    processes.  Because every chunk is seeded from its own spawned
    ``SeedSequence`` child, the returned :class:`Estimate` is identical
    for every worker count (see the module docstring).

    ``cache`` is an optional :class:`repro.engine.cache.ResultCache`;
    when set, integer-seeded runs are looked up by their
    ``(scenario, estimator, seed, trials, chunk_size)`` key before any
    sampling happens and stored after.
    """

    def __init__(
        self,
        scenario: Scenario,
        estimator: Estimator | None = None,
        chunk_size: int = 4096,
        workers: int = 1,
        cache: "ResultCache | None" = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.scenario = scenario
        self.estimator = estimator or self._default_estimator(scenario)
        self.chunk_size = chunk_size
        self.workers = workers
        self.cache = cache

    @staticmethod
    def _default_estimator(scenario: Scenario) -> Estimator:
        # A scenario may supply its own default (the protocol workloads
        # of repro.engine.protocol do); analytical scenarios fall back
        # to the settlement pair.
        factory = getattr(scenario, "default_estimator", None)
        if factory is not None:
            return factory()
        return (
            delta_settlement_violation
            if scenario.reduced
            else settlement_violation
        )

    def run(
        self,
        trials: int,
        seed: int | np.random.Generator,
        backend: "ProcessBackend | None" = None,
    ) -> Estimate:
        """Run ``trials`` trials and aggregate into an :class:`Estimate`.

        ``seed`` is an integer (preferred: the run is then self-contained,
        cacheable, and bit-reproducible across backends) or an existing
        generator to continue a stream (serial-only, never cached).

        ``backend`` optionally supplies an already-running
        :class:`~repro.engine.parallel.ProcessBackend` to reuse across
        many runs (as the sweep orchestrator does); otherwise
        ``workers > 1`` starts an ephemeral pool for this run only.
        """
        if trials < 1:
            raise ValueError("trials must be positive")
        if isinstance(seed, np.random.Generator):
            if backend is not None or self.workers > 1:
                raise ValueError(
                    "generator continuation is serial-only; pass an "
                    "integer seed to use the process backend"
                )
            return self._run_streaming(trials, seed)

        if backend is not None:
            return self.submit(trials, seed, backend).result()
        if self.workers > 1:
            from repro.engine.parallel import ProcessBackend

            with ProcessBackend(self.workers) as pool:
                return self.submit(trials, seed, pool).result()
        from repro.engine.parallel import SerialBackend

        return self.submit(trials, seed, SerialBackend()).result()

    def submit(
        self, trials: int, seed: int, backend: "ProcessBackend | SerialBackend"
    ) -> "PendingEstimate":
        """Dispatch a run to ``backend`` without waiting for it.

        Cache lookups still happen immediately (a hit returns an
        already-resolved pending); on a miss every chunk is submitted to
        the pool and the returned :class:`PendingEstimate` aggregates —
        and stores to the cache — when :meth:`~PendingEstimate.result`
        is called.  Submitting many runs before collecting any result is
        what keeps pool workers busy across sweep-point boundaries.
        """
        if trials < 1:
            raise ValueError("trials must be positive")
        key = None
        if self.cache is not None:
            key = self.cache.key(
                self.scenario, self.estimator, seed, trials, self.chunk_size
            )
            cached = self.cache.get(key)
            if cached is not None:
                return PendingEstimate(
                    self, trials, None, [], from_cache=True, _resolved=cached
                )
        sizes = chunk_sizes(trials, self.chunk_size)
        children = np.random.SeedSequence(seed).spawn(len(sizes))
        futures = backend.submit_chunks(
            self.scenario, self.estimator, sizes, children
        )
        return PendingEstimate(self, trials, key, futures)

    def _run_streaming(
        self, trials: int, generator: np.random.Generator
    ) -> Estimate:
        """Legacy sequential path: consume an existing generator in order."""
        hits = 0
        remaining = trials
        while remaining > 0:
            chunk = min(self.chunk_size, remaining)
            batch = self.scenario.sample_batch(chunk, generator)
            chunk_hits = np.asarray(self.estimator(self.scenario, batch))
            if chunk_hits.shape != (chunk,):
                raise ValueError(
                    "estimator must return one boolean per trial, got shape "
                    f"{chunk_hits.shape} for chunk of {chunk}"
                )
            hits += int(chunk_hits.sum())
            remaining -= chunk
        return estimate_from_hits(hits, trials)


def run_scenario(
    name: str,
    trials: int,
    seed: int,
    estimator: Estimator | None = None,
    chunk_size: int = 4096,
    workers: int = 1,
    cache: "ResultCache | None" = None,
    **overrides,
) -> Estimate:
    """One-call convenience: look up, override, run.

    ``run_scenario("iid-settlement", 100_000, seed=7, depth=200)`` is the
    whole Monte-Carlo pipeline for a Table 1 cell; add ``workers=8`` to
    fan the chunks across cores (same estimate, less wall-clock).
    """
    from repro.engine.scenarios import get_scenario

    scenario = get_scenario(name, **overrides)
    runner = ExperimentRunner(scenario, estimator, chunk_size, workers, cache)
    return runner.run(trials, seed)
