"""Chunked scenario execution: ExperimentRunner and Estimate aggregation.

The runner is the engine's third layer: it takes a declarative
:class:`repro.engine.scenarios.Scenario`, an *estimator* (a callable
mapping one sampled :class:`~repro.engine.scenarios.Batch` to a per-trial
weight vector — a boolean hit vector in the common Bernoulli case, a
non-negative float likelihood-ratio vector for importance-sampling
estimators), and executes the requested number of trials in fixed-size
chunks.

Weighted-accumulator contract
-----------------------------

Every chunk reduces to a :class:`ChunkAccumulator` — the moment triple
``(sum_w, sum_w2, trials)`` — and every aggregate (ledger entries, wire
payloads, wave totals) is a sum of such triples.  A boolean hit vector
is the degenerate weight vector ``w ∈ {0, 1}``, for which
``sum_w == sum_w2 == hits`` exactly; :func:`estimate_from_moments`
detects this and delegates to :func:`estimate_from_hits` so weight-1
runs reproduce the historical hit-count results **bit-identically**
(the plug-in variance ``p(1−p)`` and the moment form ``m₂ − p̂²`` differ
in the last float bits, so the degenerate path must not go through the
general formula).

Reproducibility contract
------------------------

For an integer ``seed`` the run is bit-reproducible and **independent of
the execution backend**: the trial count is partitioned into chunks of
``chunk_size`` (last chunk ragged), a ``numpy.random.SeedSequence(seed)``
is spawned into one child per chunk, and chunk ``i`` is always sampled
from ``default_rng(child_i)`` — whether the chunks run in-process or are
fanned out across a :class:`repro.engine.parallel.ProcessBackend` with
any number of workers.  Per-chunk hit counts are therefore bit-identical
between serial and parallel runs, and so are the aggregated
:class:`Estimate` values.  (Changing ``chunk_size`` re-partitions the
trial stream and changes individual samples — the estimate remains
statistically identical, but not bit-identical.)

Because spawned children form a *prefix-stable* stream (child ``i`` is
``SeedSequence(seed, spawn_key=(i,))`` no matter how many children a
run spawns), ``trials`` is just a prefix length of one infinite chunk
stream.  The runner exploits this through the cache's **chunk ledger**:
every *full* chunk's accumulator triple is stored under
``(scenario, estimator, seed, chunk_size, chunk_index)``, so extending
a run (say 10k → 50k trials) re-samples only the new chunks and the
ragged remainder — previously computed full chunks are reused
bit-identically.  The ragged remainder is computed, never ledgered: a
shorter chunk drawn from the same child consumes its generator in
different phase widths, so its hits are not a prefix of the full
chunk's.  Whole-run :class:`Estimate` entries remain in the cache as a
fast path (and for compatibility with entries written before the
ledger existed).

:meth:`ExperimentRunner.run_until` adds **adaptive precision
targeting** on top of the same chunk stream: waves of full chunks are
dispatched (doubling per wave) until the estimate's standard error
meets ``target_se`` / ``rel_se`` or ``max_trials`` is exhausted.  The
stopping decision is evaluated only at wave boundaries on aggregated
weighted moments (the weighted SE for importance-sampling estimators),
so the realized trial count is a deterministic function of
``(seed, stopping rule)`` — identical for every backend and worker
count, and fully ledger-cacheable.

Passing an existing ``numpy.random.Generator`` instead of an integer
selects the legacy *streaming* path: the generator is consumed strictly
sequentially, one chunk at a time, which lets callers continue an
existing stream but is serial-only and never cached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.engine import kernels
from repro.engine.scenarios import Batch, Scenario
from repro.obs import metrics
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.cache import ResultCache
    from repro.engine.parallel import Backend, ProcessBackend

#: An estimator maps (scenario, batch) to a per-trial weight vector:
#: boolean hits for plain Monte Carlo, non-negative float likelihood
#: ratios for importance-sampling estimators.
Estimator = Callable[[Scenario, Batch], np.ndarray]


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with its standard error."""

    value: float
    standard_error: float
    trials: int

    def within(self, target: float, sigmas: float = 4.0) -> bool:
        """Is ``target`` within ``sigmas`` standard errors of the estimate?

        A zero ``standard_error`` only leaves the ``1e-12`` slack, so
        estimate constructors must never report ``se == 0`` for a sample
        that carries genuine uncertainty: :func:`estimate_from_hits`
        Laplace-smooths the all-hit/all-miss boundary and
        :func:`estimate_from_moments` floors the degenerate
        all-equal-weight case at ``|p̂| / sqrt(n)``.
        """
        slack = sigmas * self.standard_error + 1e-12
        return abs(self.value - target) <= slack


@dataclass(frozen=True)
class ChunkAccumulator:
    """The weighted moment triple one chunk (or any union of chunks)
    reduces to: ``sum_w = Σ wᵢ``, ``sum_w2 = Σ wᵢ²`` over ``trials``
    per-trial weights.

    This is the engine's estimation currency: chunk workers return it,
    the chunk ledger stores it (schema v2), the distributed wire carries
    it as a plain ``(sum_w, sum_w2, trials)`` triple, and
    :func:`estimate_from_moments` turns an aggregate into an
    :class:`Estimate`.  Addition merges disjoint trial sets; ``0`` is
    accepted as the additive identity so built-in :func:`sum` works.
    """

    sum_w: float
    sum_w2: float
    trials: int

    def __post_init__(self) -> None:
        if self.trials < 0:
            raise ValueError(f"trials must be >= 0, got {self.trials}")
        if not (math.isfinite(self.sum_w) and math.isfinite(self.sum_w2)):
            raise ValueError(
                f"accumulator moments must be finite, got "
                f"({self.sum_w}, {self.sum_w2})"
            )
        if self.sum_w2 < 0:
            raise ValueError(f"sum_w2 must be >= 0, got {self.sum_w2}")

    @classmethod
    def zero(cls) -> "ChunkAccumulator":
        return cls(0.0, 0.0, 0)

    @classmethod
    def from_hits(cls, hits: int, trials: int) -> "ChunkAccumulator":
        """The degenerate (0/1-weight) triple: ``sum_w == sum_w2 == hits``."""
        if not 0 <= hits <= trials:
            raise ValueError(f"hits = {hits} outside [0, {trials}]")
        return cls(float(hits), float(hits), int(trials))

    @property
    def degenerate(self) -> bool:
        """True when the triple is consistent with 0/1 weights — the
        exact condition under which :func:`estimate_from_moments`
        delegates to :func:`estimate_from_hits`."""
        return (
            self.sum_w == self.sum_w2
            and float(self.sum_w).is_integer()
            and 0.0 <= self.sum_w <= self.trials
        )

    def as_triple(self) -> tuple[float, float, int]:
        """The plain-data wire/ledger form."""
        return (self.sum_w, self.sum_w2, self.trials)

    def __add__(self, other: "ChunkAccumulator") -> "ChunkAccumulator":
        if isinstance(other, int) and other == 0:
            return self
        if not isinstance(other, ChunkAccumulator):
            return NotImplemented
        return ChunkAccumulator(
            self.sum_w + other.sum_w,
            self.sum_w2 + other.sum_w2,
            self.trials + other.trials,
        )

    __radd__ = __add__


def as_accumulator(value, size: int) -> ChunkAccumulator:
    """Normalise a chunk result to a :class:`ChunkAccumulator`.

    Accepts the accumulator itself, the plain ``(sum_w, sum_w2, trials)``
    triple the distributed wire and the v2 ledger carry, or a bare
    integer hit count — the v1 wire/ledger form, kept so mixed-version
    clusters and warm v1 ledgers keep working (``size`` supplies the
    trial count those legacy payloads omitted).
    """
    if isinstance(value, ChunkAccumulator):
        return value
    if isinstance(value, (tuple, list)) and len(value) == 3:
        return ChunkAccumulator(
            float(value[0]), float(value[1]), int(value[2])
        )
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return ChunkAccumulator.from_hits(int(value), size)
    raise TypeError(
        f"cannot interpret chunk result {value!r} as an accumulator"
    )


def accumulate_weights(weights: np.ndarray, size: int) -> ChunkAccumulator:
    """Reduce one chunk's per-trial weight vector to its moment triple.

    Boolean vectors take the exact integer path (``sum_w == sum_w2 ==
    hits``, bit-identical to the historical hit count); anything else is
    treated as non-negative float weights.
    """
    if weights.shape != (size,):
        raise ValueError(
            "estimator must return one weight per trial, got shape "
            f"{weights.shape} for chunk of {size}"
        )
    if weights.dtype == np.bool_:
        return ChunkAccumulator.from_hits(int(weights.sum()), size)
    flat = np.asarray(weights, dtype=np.float64)
    if not np.all(np.isfinite(flat)):
        raise ValueError("estimator weights must be finite")
    if flat.size and float(flat.min()) < 0.0:
        raise ValueError("estimator weights must be non-negative")
    return ChunkAccumulator(
        float(flat.sum()), float(np.square(flat).sum()), size
    )


def estimate_from_hits(hits: int, trials: int) -> Estimate:
    """Wrap a Bernoulli hit count in an :class:`Estimate`.

    ``trials`` must be positive — merging an *empty* partial result (for
    example a cache shard that contributed no trials) is a caller bug and
    raises instead of fabricating a 0/0 estimate.

    At the boundary ``hits ∈ {0, trials}`` the plug-in standard error
    ``sqrt(p(1−p)/n)`` collapses to zero, which would make
    :meth:`Estimate.within` accept only targets within ``1e-12`` — a
    false *positive* for "the estimate resolves the target" whenever the
    true probability is merely below the sampling resolution.  We instead
    report the Laplace-smoothed error ``sqrt(p̃(1−p̃)/n)`` with
    ``p̃ = (hits+1)/(trials+2)`` (≈ ``1/n`` at the boundary, the same
    scale as the rule-of-three bound), so boundary estimates advertise
    their genuine ``O(1/n)`` uncertainty.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= hits <= trials:
        raise ValueError(f"hits = {hits} outside [0, {trials}]")
    rate = hits / trials
    if hits == 0 or hits == trials:
        smoothed = (hits + 1.0) / (trials + 2.0)
        se = math.sqrt(smoothed * (1.0 - smoothed) / trials)
    else:
        se = math.sqrt(rate * (1.0 - rate) / trials)
    return Estimate(rate, se, trials)


def estimate_from_moments(accumulator: ChunkAccumulator) -> Estimate:
    """Turn an aggregated weighted-moment triple into an :class:`Estimate`.

    The mean is ``p̂ = sum_w / n`` and the standard error the plug-in
    ``sqrt((sum_w2/n − p̂²) / n)``.  Two guards:

    * **Degenerate triples** (consistent with 0/1 weights —
      ``sum_w == sum_w2``, integral, within ``[0, n]``) delegate to
      :func:`estimate_from_hits` wholesale.  This is the bit-identity
      guarantee: weight-1 runs reproduce the historical hit-count
      estimates exactly, including the Laplace-smoothed boundary SE —
      the moment-form variance ``m₂ − p̂²`` differs from ``p(1−p)`` in
      the last float bits, so it must not be used here.
    * **All-equal non-unit weights** make the moment variance collapse
      to zero even though the weighted sample carries genuine ``O(1/√n)``
      uncertainty (e.g. an importance-sampling chunk where every trial
      hit with the same likelihood ratio).  A zero SE would let
      :meth:`Estimate.within` and the adaptive ``run_until`` stopping
      rule terminate on a spuriously exact estimate, so the SE is
      floored at ``|p̂| / sqrt(n)`` — one trial's worth of relative
      uncertainty.
    """
    trials = accumulator.trials
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if accumulator.degenerate:
        return estimate_from_hits(int(accumulator.sum_w), trials)
    value = accumulator.sum_w / trials
    variance = max(accumulator.sum_w2 / trials - value * value, 0.0)
    se = math.sqrt(variance / trials)
    if se == 0.0 and accumulator.sum_w != 0.0:
        se = abs(value) / math.sqrt(trials)
    return Estimate(value, se, trials)


# ----------------------------------------------------------------------
# Built-in estimators
# ----------------------------------------------------------------------


def settlement_violation(scenario: Scenario, batch: Batch) -> np.ndarray:
    """``μ_x(y) ≥ 0`` at suffix length exactly ``depth`` (Fact 6 / Lemma 1).

    The per-batch indicator behind Table 1: for synchronous scenarios the
    sampled width is ``|x| + depth``, so the final joint state *is* the
    read-out at the checkpoint.
    """
    _rho, mu = kernels.joint_final_states(
        batch.symbols, batch.start_columns, batch.initial_reaches
    )
    return mu >= 0


def delta_settlement_violation(scenario: Scenario, batch: Batch) -> np.ndarray:
    """(k, Δ)-settlement failure on reduced strings (Definition 23 via Lemma 1).

    A row is a violation when its reduced margin is non-negative at *some*
    suffix length ≥ ``depth`` — the batched complement of
    :func:`repro.delta.settlement.is_k_delta_settled`.  Rows whose target
    slot was empty (start column ``−1``) are vacuously settled.
    """
    xp = kernels.array_namespace(batch.symbols)
    starts = batch.start_columns
    margins = kernels.margin_trajectories(
        batch.symbols, xp.maximum(starts, 0), batch.initial_reaches
    )
    columns = xp.arange(margins.shape[1])[None, :]
    in_window = (columns >= (starts + scenario.depth)[:, None]) & (
        columns <= batch.lengths[:, None]
    )
    violated = ((margins >= 0) & in_window).any(axis=1)
    return violated & (starts >= 0)


def _validate_window(window_start: int, window_length: int) -> None:
    """Slots are 1-indexed: a start below 1 would silently slice an
    empty (or wrapped) window and report probability 1."""
    if window_start < 1:
        raise ValueError(f"window_start must be >= 1, got {window_start}")
    if window_length < 1:
        raise ValueError(f"window_length must be >= 1, got {window_length}")


@dataclass(frozen=True)
class NoUniqueCatalanInWindow:
    """Estimator: no uniquely honest Catalan slot in the window.

    The event of Bound 1, evaluated on the whole sampled string (boundary
    effects included, as in the scalar estimator).  A frozen dataclass
    rather than a closure so instances pickle across process-pool workers
    and fingerprint deterministically for the result cache.
    """

    window_start: int
    window_length: int

    def __post_init__(self) -> None:
        _validate_window(self.window_start, self.window_length)

    def __call__(self, scenario: Scenario, batch: Batch) -> np.ndarray:
        mask = kernels.uniquely_honest_catalan_mask(batch.symbols)
        start = self.window_start
        window = mask[:, start - 1 : start - 1 + self.window_length]
        return ~window.any(axis=1)


@dataclass(frozen=True)
class NoConsecutiveCatalanInWindow:
    """Estimator: no two consecutive Catalan slots starting in the window
    (the event of Bound 2).  Picklable and cache-fingerprintable like
    :class:`NoUniqueCatalanInWindow`."""

    window_start: int
    window_length: int

    def __post_init__(self) -> None:
        _validate_window(self.window_start, self.window_length)

    def __call__(self, scenario: Scenario, batch: Batch) -> np.ndarray:
        pairs = kernels.consecutive_catalan_mask(batch.symbols)
        start = self.window_start
        window = pairs[:, start - 1 : start - 1 + self.window_length]
        return ~window.any(axis=1)


def no_unique_catalan_in_window(
    window_start: int, window_length: int
) -> Estimator:
    """Estimator factory kept for API compatibility; returns the picklable
    :class:`NoUniqueCatalanInWindow` instance."""
    return NoUniqueCatalanInWindow(window_start, window_length)


def no_consecutive_catalan_in_window(
    window_start: int, window_length: int
) -> Estimator:
    """Estimator factory kept for API compatibility; returns the picklable
    :class:`NoConsecutiveCatalanInWindow` instance."""
    return NoConsecutiveCatalanInWindow(window_start, window_length)


# ----------------------------------------------------------------------
# Chunk execution primitives (shared by the serial and process backends)
# ----------------------------------------------------------------------


def chunk_sizes(trials: int, chunk_size: int) -> list[int]:
    """The deterministic chunk partition of a run.

    ``trials // chunk_size`` full chunks followed by one ragged
    remainder — the partition (and hence the spawned seed tree) is a pure
    function of ``(trials, chunk_size)``.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    full, remainder = divmod(trials, chunk_size)
    return [chunk_size] * full + ([remainder] if remainder else [])


def run_chunk(
    scenario: Scenario,
    estimator: Estimator,
    size: int,
    seed_sequence: np.random.SeedSequence,
) -> ChunkAccumulator:
    """Sample and evaluate one chunk; returns its moment triple.

    Top-level (picklable) on purpose: this is the unit of work shipped to
    :class:`repro.engine.parallel.ProcessBackend` workers.  Each chunk
    owns a fresh generator built from its spawned ``SeedSequence`` child,
    so the result is independent of where and in which order the chunk
    executes.
    """
    with span("runner.chunk", size=size, scenario=scenario.name):
        generator = np.random.default_rng(seed_sequence)
        batch = scenario.sample_batch(size, generator)
        weights = np.asarray(estimator(scenario, batch))
        return accumulate_weights(weights, size)


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------


def _record_report(report: "RunReport") -> None:
    """Mirror one resolved run's :class:`RunReport` into the metrics
    registry (no-op while metrics are disabled).  Write-only telemetry:
    nothing here feeds back into estimates, keys, or ledgers."""
    if metrics.active() is None:
        return
    metrics.counter(
        "repro_runner_trials_total", "trials by origin", source="sampled"
    ).inc(report.sampled_trials)
    metrics.counter(
        "repro_runner_trials_total", source="ledger"
    ).inc(report.reused_trials)
    metrics.counter(
        "repro_runner_chunks_total", "chunks by origin", source="sampled"
    ).inc(report.sampled_chunks)
    metrics.counter(
        "repro_runner_chunks_total", source="ledger"
    ).inc(report.reused_chunks)
    metrics.counter(
        "repro_runner_runs_total",
        "resolved runs by whole-run cache outcome",
        cache="hit" if report.from_cache else "miss",
    ).inc()


@dataclass(frozen=True)
class RunReport:
    """Where one resolved run's trials came from.

    ``reused_trials`` were served from the cache — whole-run estimate
    entries and ledgered full chunks alike — and ``sampled_trials``
    were freshly computed; the two always sum to the realized trial
    count.  ``from_cache`` is true when *nothing* was sampled.  The
    sweep layer copies these numbers into its tidy rows, which is how
    the CLI's realized-trials and ledger-reuse columns are fed.
    """

    trials: int
    reused_trials: int
    sampled_trials: int
    reused_chunks: int
    sampled_chunks: int
    waves: int
    from_cache: bool


@dataclass
class PendingEstimate:
    """A dispatched run: resolves to an :class:`Estimate` on demand.

    Produced by :meth:`ExperimentRunner.submit`.  ``from_cache`` marks a
    run served entirely from the whole-run cache (no chunks were
    submitted); otherwise :meth:`result` blocks on the chunk futures —
    only the ones the chunk ledger could not serve — aggregates, stores
    new full-chunk hits into the ledger, and stores the estimate under
    ``key`` when the runner has a cache.
    """

    runner: "ExperimentRunner"
    trials: int
    key: dict | None
    futures: list
    #: True when the run was served from the cache (no estimation at all).
    from_cache: bool = False
    #: Ledger key of the run configuration (``None`` without a cache).
    ledger_key: dict | None = None
    #: Chunk indices the futures correspond to, positionally aligned.
    submitted: tuple[int, ...] = ()
    #: Number of *full* chunks in the partition (ragged excluded).
    full_chunks: int = 0
    #: Aggregate accumulator of the ledger-served chunks.
    reused: ChunkAccumulator | None = None
    #: Trials served by the ledger (``reused_chunks * chunk_size``).
    reused_trials: int = 0
    _resolved: Estimate | None = None
    report: RunReport | None = None

    def _chunk_trials(self, index: int) -> int:
        """The trial count of chunk ``index`` in this run's partition."""
        if index < self.full_chunks:
            return self.runner.chunk_size
        return self.trials - self.full_chunks * self.runner.chunk_size

    def result(self) -> Estimate:
        """Block until every submitted chunk is done; the aggregate."""
        if self._resolved is not None:
            if self.report is not None:
                self.runner.last_report = self.report
            return self._resolved
        total = self.reused or ChunkAccumulator.zero()
        new_chunks: dict[int, ChunkAccumulator] = {}
        with span(
            "runner.run",
            scenario=self.runner.scenario.name,
            trials=self.trials,
            submitted=len(self.submitted),
        ):
            for index, future in zip(self.submitted, self.futures):
                chunk = as_accumulator(
                    future.result(), self._chunk_trials(index)
                )
                total += chunk
                if index < self.full_chunks:
                    new_chunks[index] = chunk
            estimate = estimate_from_moments(total)
        if self.ledger_key is not None and new_chunks:
            self.runner.cache.put_chunks(self.ledger_key, new_chunks)
        if self.key is not None:
            self.runner.cache.put(self.key, estimate)
        sampled = self.trials - self.reused_trials
        self.report = RunReport(
            trials=self.trials,
            reused_trials=self.reused_trials,
            sampled_trials=sampled,
            reused_chunks=self.full_chunks - len(new_chunks),
            sampled_chunks=len(self.submitted),
            waves=1,
            from_cache=sampled == 0,
        )
        _record_report(self.report)
        self.runner.last_report = self.report
        self._resolved = estimate
        self.futures = []
        return estimate


class ExperimentRunner:
    """Execute a scenario against an estimator with chunked batching.

    ``chunk_size`` bounds peak memory (a chunk materialises a
    ``(chunk, horizon)`` symbol matrix plus the estimator's temporaries);
    the default keeps chunks comfortably inside cache for typical
    horizons while amortising NumPy dispatch.

    ``workers`` selects the execution backend: ``1`` (default) runs the
    chunks in-process; ``> 1`` fans them out across a
    :class:`repro.engine.parallel.ProcessBackend` with that many
    processes.  Because every chunk is seeded from its own spawned
    ``SeedSequence`` child, the returned :class:`Estimate` is identical
    for every worker count (see the module docstring).

    ``cache`` is an optional :class:`repro.engine.cache.ResultCache`;
    when set, integer-seeded runs are looked up by their
    ``(scenario, estimator, seed, trials, chunk_size)`` key before any
    sampling happens and stored after.
    """

    def __init__(
        self,
        scenario: Scenario,
        estimator: Estimator | None = None,
        chunk_size: int = 4096,
        workers: int = 1,
        cache: "ResultCache | None" = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.scenario = scenario
        self.estimator = estimator or self._default_estimator(scenario)
        self.chunk_size = chunk_size
        self.workers = workers
        self.cache = cache
        #: The :class:`RunReport` of the most recently resolved run on
        #: this runner (``None`` before the first); orchestrators read
        #: it to fill their realized-trials / ledger-reuse columns.
        self.last_report: RunReport | None = None

    @staticmethod
    def _default_estimator(scenario: Scenario) -> Estimator:
        # A scenario may supply its own default (the protocol workloads
        # of repro.engine.protocol do); analytical scenarios fall back
        # to the settlement pair.
        factory = getattr(scenario, "default_estimator", None)
        if factory is not None:
            return factory()
        return (
            delta_settlement_violation
            if scenario.reduced
            else settlement_violation
        )

    def run(
        self,
        trials: int,
        seed: int | np.random.Generator,
        backend: "ProcessBackend | None" = None,
    ) -> Estimate:
        """Run ``trials`` trials and aggregate into an :class:`Estimate`.

        ``seed`` is an integer (preferred: the run is then self-contained,
        cacheable, and bit-reproducible across backends) or an existing
        generator to continue a stream (serial-only, never cached).

        ``backend`` optionally supplies an already-running
        :class:`~repro.engine.parallel.ProcessBackend` to reuse across
        many runs (as the sweep orchestrator does); otherwise
        ``workers > 1`` starts an ephemeral pool for this run only.
        """
        if trials < 1:
            raise ValueError("trials must be positive")
        if isinstance(seed, np.random.Generator):
            if backend is not None or self.workers > 1:
                raise ValueError(
                    "generator continuation is serial-only; pass an "
                    "integer seed to use the process backend"
                )
            return self._run_streaming(trials, seed)

        if backend is not None:
            return self.submit(trials, seed, backend).result()
        if self.workers > 1:
            from repro.engine.parallel import ProcessBackend

            with ProcessBackend(self.workers) as pool:
                return self.submit(trials, seed, pool).result()
        from repro.engine.parallel import SerialBackend

        return self.submit(trials, seed, SerialBackend()).result()

    def submit(
        self, trials: int, seed: int, backend: "Backend"
    ) -> "PendingEstimate":
        """Dispatch a run to ``backend`` without waiting for it.

        Cache lookups still happen immediately: a whole-run estimate hit
        returns an already-resolved pending, and on a miss the chunk
        ledger is consulted — full chunks it already holds are reused
        bit-identically (the prefix property) and only the missing full
        chunks plus the ragged remainder are submitted to the pool.  The
        returned :class:`PendingEstimate` aggregates — and stores new
        chunks and the estimate back to the cache — when
        :meth:`~PendingEstimate.result` is called.  Submitting many runs
        before collecting any result is what keeps pool workers busy
        across sweep-point boundaries.
        """
        if trials < 1:
            raise ValueError("trials must be positive")
        key = ledger_key = None
        reused: dict[int, ChunkAccumulator] = {}
        full = trials // self.chunk_size
        if self.cache is not None:
            key = self.cache.key(
                self.scenario, self.estimator, seed, trials, self.chunk_size
            )
            cached = self.cache.get(key)
            if cached is not None:
                report = RunReport(
                    trials=trials,
                    reused_trials=trials,
                    sampled_trials=0,
                    reused_chunks=full,
                    sampled_chunks=0,
                    waves=0,
                    from_cache=True,
                )
                _record_report(report)
                return PendingEstimate(
                    self,
                    trials,
                    None,
                    [],
                    from_cache=True,
                    _resolved=cached,
                    report=report,
                )
            ledger_key = self.cache.ledger_key(
                self.scenario, self.estimator, seed, self.chunk_size
            )
            reused = self.cache.get_chunks(ledger_key, range(full))
        sizes = chunk_sizes(trials, self.chunk_size)
        children = np.random.SeedSequence(seed).spawn(len(sizes))
        submitted = tuple(
            index for index in range(len(sizes)) if index not in reused
        )
        futures = backend.submit_chunks(
            self.scenario,
            self.estimator,
            [sizes[index] for index in submitted],
            [children[index] for index in submitted],
        )
        return PendingEstimate(
            self,
            trials,
            key,
            futures,
            ledger_key=ledger_key,
            submitted=submitted,
            full_chunks=full,
            reused=sum(reused.values(), ChunkAccumulator.zero()),
            reused_trials=len(reused) * self.chunk_size,
        )

    def run_until(
        self,
        seed: int,
        *,
        target_se: float | None = None,
        rel_se: float | None = None,
        max_trials: int,
        initial_chunks: int = 4,
        backend: "Backend | None" = None,
    ) -> Estimate:
        """Run until the standard-error target is met (or the budget is).

        The adaptive mode of the chunk-stream contract: full chunks are
        dispatched in **waves** — ``initial_chunks`` first, then the
        total at most doubles each wave, clipped to the *projected*
        requirement ``n · (se / target)²`` from the current aggregate
        (so a point that clearly needs 1.3× more trials does not jump
        to 2×) — and after every wave the aggregated estimate is
        checked against the stopping rule:

        * ``target_se`` — stop once ``standard_error <= target_se``;
        * ``rel_se`` — stop once ``standard_error <= rel_se * value``
          (checked only when ``value > 0``; an all-miss estimate cannot
          certify a relative error).

        At least one of the two must be given; either alone or both
        together (stop at the first that holds).  When every full chunk
        under ``max_trials`` is spent and the target is still unmet, the
        ragged remainder runs last and the final estimate — at exactly
        ``max_trials`` trials, bit-identical to
        ``run(max_trials, seed)`` — is returned regardless.

        Because per-chunk accumulators are backend-independent and each
        wave's size is a pure function of the aggregated moments so far
        (which are themselves bit-identical on every backend) plus
        ``(chunk_size, initial_chunks, max_trials)``, the realized
        trial count is a deterministic function of
        ``(seed, stopping rule)``: 1, 2, and 4 workers return
        bit-identical estimates with identical trial counts.
        Full chunks read and write the cache's chunk ledger exactly as
        fixed-budget runs do — a warm adaptive rerun samples nothing,
        and a later ``run(realized_trials, seed)`` reuses every chunk.
        """
        if target_se is None and rel_se is None:
            raise ValueError("run_until needs target_se and/or rel_se")
        if target_se is not None and not target_se > 0:
            raise ValueError(f"target_se must be positive, got {target_se}")
        if rel_se is not None and not rel_se > 0:
            raise ValueError(f"rel_se must be positive, got {rel_se}")
        if max_trials < 1:
            raise ValueError("max_trials must be positive")
        if initial_chunks < 1:
            raise ValueError("initial_chunks must be positive")
        if isinstance(seed, np.random.Generator):
            raise ValueError(
                "adaptive runs need an integer seed (the stopping rule "
                "must be replayable); generator continuation is the "
                "fixed-budget streaming path only"
            )
        if backend is None:
            if self.workers > 1:
                from repro.engine.parallel import ProcessBackend

                with ProcessBackend(self.workers) as pool:
                    return self.run_until(
                        seed,
                        target_se=target_se,
                        rel_se=rel_se,
                        max_trials=max_trials,
                        initial_chunks=initial_chunks,
                        backend=pool,
                    )
            from repro.engine.parallel import SerialBackend

            backend = SerialBackend()

        def met(estimate: Estimate) -> bool:
            if (
                target_se is not None
                and estimate.standard_error <= target_se
            ):
                return True
            return (
                rel_se is not None
                and estimate.value > 0
                and estimate.standard_error <= rel_se * estimate.value
            )

        full_max, ragged = divmod(max_trials, self.chunk_size)
        ledger_key = None
        if self.cache is not None:
            ledger_key = self.cache.ledger_key(
                self.scenario, self.estimator, seed, self.chunk_size
            )
        total = ChunkAccumulator.zero()
        chunks_done = 0
        reused_trials = sampled_trials = 0
        reused_chunks = sampled_chunks = waves = 0
        estimate: Estimate | None = None
        while chunks_done < full_max:
            if chunks_done == 0:
                goal = min(full_max, initial_chunks)
            else:
                # The largest active threshold at the current value is
                # the easiest target to meet; project the trials needed
                # to reach it from the aggregate so far, and grow by at
                # most 2x but never (knowingly) past the projection.
                threshold = max(
                    target_se if target_se is not None else 0.0,
                    rel_se * estimate.value if rel_se is not None else 0.0,
                )
                if threshold > 0:
                    projected = math.ceil(
                        estimate.trials
                        * (estimate.standard_error / threshold) ** 2
                        / self.chunk_size
                    )
                else:  # rel-only rule while value == 0: no signal yet
                    projected = 2 * chunks_done
                goal = min(
                    full_max,
                    max(chunks_done + 1, min(2 * chunks_done, projected)),
                )
            wave = range(chunks_done, goal)
            with span(
                "runner.wave",
                scenario=self.scenario.name,
                wave=waves,
                chunks=len(wave),
            ):
                children = np.random.SeedSequence(seed).spawn(goal)
                reused: dict[int, ChunkAccumulator] = {}
                if ledger_key is not None:
                    reused = self.cache.get_chunks(ledger_key, wave)
                to_sample = [index for index in wave if index not in reused]
                futures = backend.submit_chunks(
                    self.scenario,
                    self.estimator,
                    [self.chunk_size] * len(to_sample),
                    [children[index] for index in to_sample],
                )
                fresh = {
                    index: as_accumulator(future.result(), self.chunk_size)
                    for index, future in zip(to_sample, futures)
                }
                if ledger_key is not None and fresh:
                    self.cache.put_chunks(ledger_key, fresh)
                total += sum(reused.values(), ChunkAccumulator.zero())
                total += sum(fresh.values(), ChunkAccumulator.zero())
                reused_trials += len(reused) * self.chunk_size
                sampled_trials += len(fresh) * self.chunk_size
                reused_chunks += len(reused)
                sampled_chunks += len(fresh)
                chunks_done = goal
                waves += 1
                estimate = estimate_from_moments(total)
            metrics.gauge(
                "repro_runner_standard_error",
                "SE trajectory of the current adaptive run",
            ).set(estimate.standard_error)
            if met(estimate):
                break
        else:
            # Every full chunk is spent (or none fits): the ragged
            # remainder — computed, never ledgered — tops the run up to
            # exactly max_trials.
            if ragged:
                children = np.random.SeedSequence(seed).spawn(full_max + 1)
                (future,) = backend.submit_chunks(
                    self.scenario,
                    self.estimator,
                    [ragged],
                    [children[full_max]],
                )
                total += as_accumulator(future.result(), ragged)
                sampled_trials += ragged
                sampled_chunks += 1
                waves += 1
                estimate = estimate_from_moments(total)
        assert estimate is not None  # max_trials >= 1 guarantees a wave
        if self.cache is not None:
            key = self.cache.key(
                self.scenario,
                self.estimator,
                seed,
                estimate.trials,
                self.chunk_size,
            )
            if not self.cache.contains(key):
                self.cache.put(key, estimate)
        self.last_report = RunReport(
            trials=estimate.trials,
            reused_trials=reused_trials,
            sampled_trials=sampled_trials,
            reused_chunks=reused_chunks,
            sampled_chunks=sampled_chunks,
            waves=waves,
            from_cache=sampled_trials == 0,
        )
        _record_report(self.last_report)
        return estimate

    def _run_streaming(
        self, trials: int, generator: np.random.Generator
    ) -> Estimate:
        """Legacy sequential path: consume an existing generator in order."""
        total = ChunkAccumulator.zero()
        remaining = trials
        while remaining > 0:
            chunk = min(self.chunk_size, remaining)
            batch = self.scenario.sample_batch(chunk, generator)
            weights = np.asarray(self.estimator(self.scenario, batch))
            total += accumulate_weights(weights, chunk)
            remaining -= chunk
        return estimate_from_moments(total)


def run_scenario(
    name: str,
    trials: int,
    seed: int,
    estimator: Estimator | None = None,
    chunk_size: int = 4096,
    workers: int = 1,
    cache: "ResultCache | None" = None,
    **overrides,
) -> Estimate:
    """One-call convenience: look up, override, run.

    ``run_scenario("iid-settlement", 100_000, seed=7, depth=200)`` is the
    whole Monte-Carlo pipeline for a Table 1 cell; add ``workers=8`` to
    fan the chunks across cores (same estimate, less wall-clock).
    """
    from repro.engine.scenarios import get_scenario

    scenario = get_scenario(name, **overrides)
    runner = ExperimentRunner(scenario, estimator, chunk_size, workers, cache)
    return runner.run(trials, seed)
