"""Declarative scenario registry for the batched experiment engine.

A :class:`Scenario` is a frozen description of one Monte-Carlo workload:
which slot distribution to draw from, how the initial state is modelled
(the |x| → ∞ stationary law of Table 1 or an explicit finite prefix),
which sampler to use (i.i.d. or martingale-damped), whether the strings
pass through the Δ-synchronous reduction first, and the settlement
horizon.  Scenarios carry *no* code — :class:`repro.engine.runner.
ExperimentRunner` interprets them against the batched kernels — so a new
workload is one :func:`register` call (or one ``dataclasses.replace``)
away.

Built-in scenarios cover the paper's four workload families:

* ``iid-settlement`` — i.i.d. symbols, stationary initial reach
  (the Table 1 measurement);
* ``iid-finite-prefix`` — i.i.d. symbols with an explicit prefix
  (the ``|x| = L`` variant of the Section 6.6 DP);
* ``martingale-damped`` — adversarially correlated sampler dominated by
  the i.i.d. law (the Theorem 1 dominance check);
* ``delta-synchronous`` — semi-synchronous strings pushed through ρ_Δ
  (the Theorem 7 measurement);
* ``stake-sweep/…`` — a family over adversarial-stake points α
  (the Table 1 column sweep).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.distributions import (
    SlotProbabilities,
    bernoulli_condition,
    from_adversarial_stake,
    semi_synchronous_condition,
)
from repro.engine import kernels

#: Initial-reach model: draw ρ(x) from the stationary X_∞ law of Eq. (9).
PREFIX_STATIONARY = "stationary"

#: Sampler kinds.
SAMPLER_IID = "iid"
SAMPLER_MARTINGALE = "martingale"


@dataclass(frozen=True, eq=False)
class Batch:
    """One sampled batch, ready for an estimator.

    ``symbols`` is a ``(trials, T)`` uint8 code matrix (already reduced
    and ⊥-padded for Δ-scenarios); ``start_columns`` holds each row's
    prefix length ``|x|`` (sentinel ``−1``: the target slot has no image
    in the reduced string and is vacuously settled); ``initial_reaches``
    seeds ρ when the stationary model is used; ``lengths`` is each row's
    true (unpadded) length.
    """

    symbols: np.ndarray
    start_columns: np.ndarray
    initial_reaches: np.ndarray | None
    lengths: np.ndarray

    @property
    def trials(self) -> int:
        return self.symbols.shape[0]


@dataclass(frozen=True)
class Scenario:
    """A declarative Monte-Carlo workload (see module docstring).

    ``depth`` is the settlement depth k.  For synchronous scenarios
    (``total_length == 0``) the sampled suffix has exactly ``depth``
    symbols and the prefix is either ``PREFIX_STATIONARY`` (initial reach
    ~ X_∞) or an explicit integer length.  Setting ``total_length`` makes
    the scenario Δ-reduced: a semi-synchronous string of that many
    symbols is sampled and pushed through ρ_Δ (``delta`` may be 0 — the
    reduction then only deletes empty slots); ``target_slot`` is the
    source slot under study.
    """

    name: str
    probabilities: SlotProbabilities
    depth: int
    prefix_model: str | int = PREFIX_STATIONARY
    sampler: str = SAMPLER_IID
    correlation: float = 1.0
    delta: int = 0
    reduction_mode: str = kernels.MODE_EMPTY_RUN
    target_slot: int = 1
    total_length: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("depth must be a positive settlement depth")
        if self.sampler not in (SAMPLER_IID, SAMPLER_MARTINGALE):
            raise ValueError(f"unknown sampler {self.sampler!r}")
        if self.delta < 0:
            raise ValueError("delta must be non-negative")
        if self.reduced:
            if self.total_length < self.target_slot:
                raise ValueError(
                    "reduced scenarios need total_length >= target_slot"
                )
            if self.sampler != SAMPLER_IID:
                raise ValueError(
                    "reduced scenarios support the iid sampler only"
                )
            if self.prefix_model != PREFIX_STATIONARY or self.correlation != 1.0:
                raise ValueError(
                    "reduced scenarios ignore prefix_model/correlation; "
                    "leave them at their defaults (the prefix is the part "
                    "of the reduced string before the target slot's image)"
                )
        elif self.delta > 0:
            raise ValueError(
                "delta > 0 requires a reduced scenario (set total_length)"
            )
        elif self.prefix_model != PREFIX_STATIONARY:
            if not isinstance(self.prefix_model, int) or self.prefix_model < 0:
                raise ValueError(
                    "prefix_model must be 'stationary' or a length >= 0"
                )
        elif self.sampler == SAMPLER_MARTINGALE:
            raise ValueError(
                "the martingale sampler needs an explicit prefix length "
                "(the stationary reach law assumes i.i.d. history)"
            )

    @property
    def reduced(self) -> bool:
        """Does this workload pass through the ρ_Δ reduction first?"""
        return self.total_length > 0

    @property
    def horizon(self) -> int:
        """Total symbols sampled per trial."""
        if self.reduced:
            return self.total_length
        if self.prefix_model == PREFIX_STATIONARY:
            return self.depth
        return int(self.prefix_model) + self.depth

    def sample_batch(
        self, trials: int, generator: np.random.Generator
    ) -> Batch:
        """Draw one batch.  Randomness phases (the documented discipline):

        1. stationary scenarios first consume one ``(trials,)`` uniform
           block for the initial reaches;
        2. then one ``(trials, horizon)`` uniform block, row-major, for
           the symbols (column-major state updates for the martingale
           sampler, but the block itself is drawn in one call).
        """
        initial = None
        starts = np.zeros(trials, dtype=np.int64)
        if not self.reduced and self.prefix_model == PREFIX_STATIONARY:
            initial = kernels.sample_initial_reaches(
                self.probabilities.epsilon, trials, generator
            )
        elif not self.reduced:
            starts = np.full(trials, int(self.prefix_model), dtype=np.int64)

        if self.sampler == SAMPLER_MARTINGALE:
            symbols = kernels.sample_martingale_matrix(
                self.probabilities,
                trials,
                self.horizon,
                generator,
                self.correlation,
            )
        else:
            symbols = kernels.sample_characteristic_matrix(
                self.probabilities, trials, self.horizon, generator
            )

        if self.reduced:
            starts = kernels.reduced_slot_columns(symbols, self.target_slot)
            symbols, lengths = kernels.reduce_matrix(
                symbols, self.delta, self.reduction_mode
            )
        else:
            lengths = np.full(trials, self.horizon, dtype=np.int64)
        return Batch(symbols, starts, initial, lengths)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Name → workload.  Holds the analytical :class:`Scenario` entries
#: defined below *and* the protocol-execution workloads
#: (:class:`repro.engine.protocol.ProtocolScenario`) — anything frozen,
#: named, and replaceable via ``dataclasses.replace`` registers here.
_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario, overwrite: bool = False) -> Scenario:
    """Add a scenario to the registry (keyed by its name)."""
    if scenario.name in _REGISTRY and not overwrite:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str, **overrides) -> Scenario:
    """Look up a registered scenario, optionally overriding fields.

    ``get_scenario("iid-settlement", depth=200)`` returns a copy with a
    new depth — the registry entry itself is never mutated (scenarios are
    frozen).
    """
    try:
        scenario = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}")
    if overrides:
        scenario = dataclasses.replace(scenario, **overrides)
    return scenario


def scenario_names() -> list[str]:
    """Names of all registered scenarios, sorted."""
    return sorted(_REGISTRY)


def adversarial_stake_sweep(
    alphas: tuple[float, ...],
    unique_fraction: float = 1.0,
    depth: int = 100,
) -> list[Scenario]:
    """Build (and register, if new) one scenario per stake point α.

    The Table 1 column sweep as a scenario family: names are
    ``stake-sweep/alpha=<α>/frac=<fraction>``.
    """
    scenarios = []
    for alpha in alphas:
        name = f"stake-sweep/alpha={alpha:g}/frac={unique_fraction:g}"
        if name in _REGISTRY:
            scenarios.append(get_scenario(name, depth=depth))
            continue
        scenarios.append(
            register(
                Scenario(
                    name=name,
                    probabilities=from_adversarial_stake(
                        alpha, unique_fraction
                    ),
                    depth=depth,
                    description=(
                        f"i.i.d. stationary settlement at adversarial "
                        f"stake alpha={alpha:g}, unique fraction "
                        f"{unique_fraction:g}"
                    ),
                )
            )
        )
    return scenarios


# Built-in workloads --------------------------------------------------------

register(
    Scenario(
        name="iid-settlement",
        probabilities=from_adversarial_stake(0.20, 0.8),
        depth=100,
        description=(
            "Table 1 measurement: i.i.d. symbols, stationary initial "
            "reach, violation read at suffix length k"
        ),
    )
)

register(
    Scenario(
        name="iid-finite-prefix",
        probabilities=bernoulli_condition(0.4, 0.3),
        depth=15,
        prefix_model=10,
        description=(
            "finite-|x| variant: explicit i.i.d. prefix of 10 slots, "
            "margin seeded by its exact reach"
        ),
    )
)

register(
    Scenario(
        name="martingale-damped",
        probabilities=bernoulli_condition(0.2, 0.3),
        depth=15,
        prefix_model=5,
        sampler=SAMPLER_MARTINGALE,
        correlation=0.2,
        description=(
            "adversarially correlated sampler dominated by the i.i.d. "
            "law (Theorem 1 dominance check)"
        ),
    )
)

register(
    Scenario(
        name="delta-synchronous",
        probabilities=semi_synchronous_condition(0.08, 0.004, 0.06),
        depth=80,
        delta=4,
        target_slot=50,
        total_length=250,
        description=(
            "Theorem 7 measurement: semi-synchronous strings through "
            "rho_Delta, (k, Delta)-settlement of the target slot"
        ),
    )
)

adversarial_stake_sweep((0.10, 0.20, 0.30))
