"""Layer 5: the executable protocol as a batched engine workload.

PRs 1–2 put every *analytical* measurement — reach/margin recurrences,
settlement DPs, Catalan masks — behind the scenario → runner → sweep
pipeline.  This module does the same for the *executable protocol* of
Section 2: a frozen :class:`ProtocolScenario` describes one protocol
configuration (stake split, activity, Δ, tie-break rule, adversary
strategy) in plain JSON-serialisable fields, samples batches of
independent :class:`~repro.protocol.simulation.Simulation` runs, and
plugs into the *unchanged* upper layers — ``ExperimentRunner`` chunking,
``ProcessBackend`` fan-out, ``ResultCache`` content addressing, and
``run_grid`` sweeps.

Seed discipline (the runner contract, extended): the runner spawns one
``SeedSequence`` child per chunk exactly as for analytical scenarios;
:meth:`ProtocolScenario.sample_batch` then draws one uint64 per trial
from the chunk's generator and derives each run's randomness string from
it.  A trial's execution is therefore a pure function of its chunk child
and position — bit-identical for every backend and worker count.

Batched execution runs simulations in ``shared_validation`` mode (pure
cryptographic checks computed once per block, shared across the node
set) and evaluates the violation predicates through the block trees'
hash indexes.  :func:`run_protocol_scalar` is the per-run reference
oracle: the same seed tree, but reference-mode simulations and the
``*_scalar`` chain-walking predicates.  The two are bit-identical on
equal seeds; ``benchmarks/run_all.py`` records their throughput ratio.

The violation estimators return boolean flag vectors — under the
runner's accumulator contract these reduce to *degenerate* per-chunk
triples, so the scalar oracle's ``estimate_from_hits`` aggregation
stays bit-identical to the batched path by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.runner import (
    Estimate,
    Estimator,
    ExperimentRunner,
    chunk_sizes,
    estimate_from_hits,
)
from repro.engine.scenarios import register
from repro.protocol.adversary import (
    Adversary,
    MaxDelayAdversary,
    NullAdversary,
    PrivateChainAdversary,
    SplitAdversary,
)
from repro.protocol.leader import StakeDistribution
from repro.protocol.simulation import Simulation, SimulationResult
from repro.protocol.tiebreak import (
    TieBreakRule,
    adversarial_order_rule,
    consistent_hash_rule,
)
from repro.protocol.transport import TransportConfig

__all__ = [
    "NETWORKS",
    "PROTOCOL_CHUNK_SIZE",
    "ProtocolBatch",
    "ProtocolRunner",
    "ProtocolScenario",
    "protocol_cp_violation",
    "protocol_deep_reorg",
    "protocol_settlement_violation",
    "run_protocol_scalar",
]

#: Tie-break rules addressable from a frozen scenario (axioms A0 / A0′).
TIE_BREAK_RULES: dict[str, TieBreakRule] = {
    "adversarial": adversarial_order_rule,
    "consistent": consistent_hash_rule,
}

#: Adversary strategies addressable from a frozen scenario.
ADVERSARIES = ("null", "private-chain", "split", "max-delay")

#: Network models addressable from a frozen scenario: the slot-quantized
#: Δ model of the paper, or the continuous-time WAN transport.
NETWORKS = ("slot", "wan")

#: Default chunk size for protocol runs: one trial is a whole simulated
#: execution (milliseconds, not microseconds), so chunks are small
#: enough that a process pool has work to interleave.
PROTOCOL_CHUNK_SIZE = 8


@dataclass(frozen=True, eq=False)
class ProtocolBatch:
    """One executed batch: a simulation result per trial, ready for a
    violation estimator."""

    results: tuple[SimulationResult, ...]
    seeds: np.ndarray

    @property
    def trials(self) -> int:
        return len(self.results)


@dataclass(frozen=True)
class ProtocolScenario:
    """A declarative protocol-execution workload.

    All fields are JSON-serialisable primitives, so
    ``dataclasses.asdict`` is a complete cache fingerprint and instances
    pickle across process boundaries — exactly the properties the upper
    engine layers assume of a scenario.

    ``parties`` equal-stake participants, of which
    ``round(parties * adversary_fraction)`` are corrupted.  ``depth`` is
    the settlement/common-prefix parameter k read by the estimators;
    ``target_slot`` the attacked slot.  ``hold`` (private-chain only)
    defaults to ``depth`` — the double-spend must outwait the
    confirmation depth it attacks.
    """

    name: str
    parties: int = 10
    adversary_fraction: float = 0.0
    activity: float = 0.3
    total_slots: int = 100
    delta: int = 0
    tie_break: str = "adversarial"
    adversary: str = "null"
    target_slot: int = 10
    depth: int = 4
    patience: int = 60
    lead: int = 1
    hold: int | None = None
    # -- network axes (PR 7).  ``network="slot"`` is the paper's
    # slot-quantized Δ model; ``"wan"`` swaps in the continuous-time
    # Transport, parameterised by the remaining fields (slot units /
    # bytes-per-slot; see repro.protocol.transport.TransportConfig).
    network: str = "slot"
    latency: float = 0.0
    bandwidth: float = 0.0
    jitter: str = "fixed"
    jitter_scale: float = 0.0
    jitter_cap: float = 0.0
    topology: str = "complete"
    edge_probability: float = 0.5
    topology_seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.parties < 2:
            raise ValueError("parties must be >= 2 (at least one honest node)")
        if not 0.0 <= self.adversary_fraction < 1.0:
            raise ValueError("adversary_fraction must lie in [0, 1)")
        if self.corrupted >= self.parties:
            raise ValueError("at least one party must remain honest")
        if not 0.0 < self.activity <= 1.0:
            raise ValueError("activity must lie in (0, 1]")
        if self.total_slots < 1:
            raise ValueError("total_slots must be positive")
        if self.delta < 0:
            raise ValueError("delta must be non-negative")
        if self.tie_break not in TIE_BREAK_RULES:
            known = ", ".join(sorted(TIE_BREAK_RULES))
            raise ValueError(
                f"unknown tie_break {self.tie_break!r}; known: {known}"
            )
        if self.adversary not in ADVERSARIES:
            known = ", ".join(ADVERSARIES)
            raise ValueError(
                f"unknown adversary {self.adversary!r}; known: {known}"
            )
        if not 1 <= self.target_slot <= self.total_slots:
            raise ValueError("target_slot must lie in [1, total_slots]")
        if self.depth < 1:
            raise ValueError("depth must be a positive settlement depth")
        if self.network not in NETWORKS:
            known = ", ".join(NETWORKS)
            raise ValueError(
                f"unknown network {self.network!r}; known: {known}"
            )
        # Delegate range/name validation of the transport fields (and
        # reject malformed values even on slot scenarios, where they
        # would otherwise lie dormant in cache fingerprints).
        config = self._transport_config()
        if self.network == "slot" and config != TransportConfig():
            raise ValueError(
                "transport fields (latency/bandwidth/jitter*/topology*/"
                'edge_probability) require network="wan"; '
                'network="slot" is the quantized model and ignores them'
            )

    def _transport_config(self) -> TransportConfig:
        return TransportConfig(
            latency=self.latency,
            bandwidth=self.bandwidth,
            jitter=self.jitter,
            jitter_scale=self.jitter_scale,
            jitter_cap=self.jitter_cap,
            topology=self.topology,
            edge_probability=self.edge_probability,
            topology_seed=self.topology_seed,
        )

    # -- derived configuration -----------------------------------------

    @property
    def corrupted(self) -> int:
        """Number of corrupted parties."""
        return round(self.parties * self.adversary_fraction)

    @property
    def honest(self) -> int:
        """Number of honest parties."""
        return self.parties - self.corrupted

    def build_adversary(self) -> Adversary:
        """A fresh adversary strategy instance for one run."""
        if self.adversary == "private-chain":
            return PrivateChainAdversary(
                target_slot=self.target_slot,
                patience=self.patience,
                lead=self.lead,
                hold=self.depth if self.hold is None else self.hold,
            )
        if self.adversary == "split":
            return SplitAdversary(max_delay=self.delta)
        if self.adversary == "max-delay":
            return MaxDelayAdversary(max_delay=self.delta)
        return NullAdversary()

    def build_transport(self) -> TransportConfig | None:
        """The WAN description, or ``None`` for the slot-quantized model."""
        if self.network == "slot":
            return None
        return self._transport_config()

    def build_simulation(
        self, randomness: str, shared_validation: bool = True
    ) -> Simulation:
        """A fully configured :class:`Simulation` for one run."""
        return Simulation(
            StakeDistribution.uniform(self.honest, self.corrupted),
            activity=self.activity,
            total_slots=self.total_slots,
            delta=self.delta,
            tie_break=TIE_BREAK_RULES[self.tie_break],
            adversary=self.build_adversary(),
            randomness=randomness,
            shared_validation=shared_validation,
            transport=self.build_transport(),
        )

    # -- engine integration --------------------------------------------

    def sample_batch(
        self, trials: int, generator: np.random.Generator
    ) -> ProtocolBatch:
        """Execute ``trials`` independent runs seeded from ``generator``.

        One ``(trials,)`` uint64 block is drawn first (the documented
        randomness phase), then run ``i`` executes with randomness
        string ``protocol-<seed_i>`` in shared-validation mode.
        """
        seeds = generator.integers(0, 2**63, size=trials, dtype=np.uint64)
        results = tuple(
            self.build_simulation(f"protocol-{int(seed)}").run()
            for seed in seeds
        )
        return ProtocolBatch(results, seeds)

    def default_estimator(self) -> Estimator:
        """Settlement failure, except for the split attack whose signal
        is reorganisation depth (the Theorem 2 ablation measure)."""
        if self.adversary == "split":
            return protocol_deep_reorg
        return protocol_settlement_violation


# ----------------------------------------------------------------------
# Violation estimators (batched) and their scalar twins
# ----------------------------------------------------------------------


def _hits(flags, trials: int) -> np.ndarray:
    return np.fromiter(flags, dtype=bool, count=trials)


def protocol_settlement_violation(
    scenario: ProtocolScenario, batch: ProtocolBatch
) -> np.ndarray:
    """k-settlement failure of the target slot (Definition 3) per run."""
    return _hits(
        (
            r.settlement_violation(scenario.target_slot, scenario.depth)
            for r in batch.results
        ),
        batch.trials,
    )


def protocol_cp_violation(
    scenario: ProtocolScenario, batch: ProtocolBatch
) -> np.ndarray:
    """k-CP^slot failure (Definition 24) per run."""
    return _hits(
        (r.cp_slot_violation(scenario.depth) for r in batch.results),
        batch.trials,
    )


def protocol_deep_reorg(
    scenario: ProtocolScenario, batch: ProtocolBatch
) -> np.ndarray:
    """Did any honest node reorganise ≥ depth blocks?  The tie-break
    ablation signal: deep under A0 + split scheduling, trivial under A0′."""
    return _hits(
        (r.max_reorg_depth() >= scenario.depth for r in batch.results),
        batch.trials,
    )


def _scalar_settlement(scenario, result) -> bool:
    return result.settlement_violation_scalar(
        scenario.target_slot, scenario.depth
    )


def _scalar_cp(scenario, result) -> bool:
    return result.cp_slot_violation_scalar(scenario.depth)


def _scalar_deep_reorg(scenario, result) -> bool:
    return result.max_reorg_depth_scalar() >= scenario.depth


#: batched estimator → per-result scalar predicate (the oracle pairing).
_SCALAR_TWINS = {
    protocol_settlement_violation: _scalar_settlement,
    protocol_cp_violation: _scalar_cp,
    protocol_deep_reorg: _scalar_deep_reorg,
}


def run_protocol_scalar(
    scenario: ProtocolScenario,
    trials: int,
    seed: int,
    chunk_size: int = PROTOCOL_CHUNK_SIZE,
    estimator: Estimator | None = None,
) -> Estimate:
    """Per-run reference execution of a protocol scenario.

    Walks the *same* spawned seed tree as :class:`ProtocolRunner` (same
    chunk partition, same per-trial uint64 draws) but executes each run
    in reference mode — every node performs its own cryptographic checks
    — and evaluates the ``*_scalar`` chain-walking predicates.  The
    returned estimate is bit-identical to the batched path on equal
    ``(trials, seed, chunk_size)``; only the wall-clock differs.  This
    is the oracle and the baseline of the ``protocol`` record in
    ``BENCH_engine.json``.
    """
    if estimator is None:
        estimator = scenario.default_estimator()
    try:
        predicate = _SCALAR_TWINS[estimator]
    except KeyError:
        raise ValueError(
            f"estimator {estimator!r} has no scalar twin; use one of the "
            "protocol_* estimators"
        )
    sizes = chunk_sizes(trials, chunk_size)
    children = np.random.SeedSequence(seed).spawn(len(sizes))
    hits = 0
    for size, child in zip(sizes, children):
        generator = np.random.default_rng(child)
        seeds = generator.integers(0, 2**63, size=size, dtype=np.uint64)
        for run_seed in seeds:
            simulation = scenario.build_simulation(
                f"protocol-{int(run_seed)}", shared_validation=False
            )
            hits += bool(predicate(scenario, simulation.run()))
    return estimate_from_hits(hits, trials)


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------


class ProtocolRunner(ExperimentRunner):
    """:class:`ExperimentRunner` specialised for protocol scenarios.

    Nothing in the execution path changes — chunked submission, the
    spawned seed tree, backend independence, cache/ledger integration,
    and the adaptive :meth:`~repro.engine.runner.ExperimentRunner.
    run_until` stopping mode are inherited verbatim.  Adaptive stopping
    matters most here: a protocol trial is a whole simulated execution
    (milliseconds, not microseconds), so stopping a rare-violation
    workload the moment its standard error resolves — and ledgering
    every completed chunk of simulations for later budget extensions —
    saves real wall-clock.  The specialisation is the default chunk
    size (:data:`PROTOCOL_CHUNK_SIZE`: small, so a pool has work to
    interleave) and a type check that catches analytical scenarios
    passed by mistake.
    """

    def __init__(
        self,
        scenario: ProtocolScenario,
        estimator: Estimator | None = None,
        chunk_size: int = PROTOCOL_CHUNK_SIZE,
        workers: int = 1,
        cache=None,
    ) -> None:
        if not isinstance(scenario, ProtocolScenario):
            raise TypeError(
                "ProtocolRunner needs a ProtocolScenario; use "
                "ExperimentRunner for analytical scenarios"
            )
        super().__init__(scenario, estimator, chunk_size, workers, cache)


# ----------------------------------------------------------------------
# Built-in protocol workloads (registered alongside the analytical ones)
# ----------------------------------------------------------------------

register(
    ProtocolScenario(
        name="protocol-honest",
        parties=10,
        adversary_fraction=0.0,
        activity=0.3,
        total_slots=200,
        target_slot=10,
        depth=30,
        description=(
            "E10 throughput workload: 10 honest equal-stake nodes, "
            "synchronous delivery, no adversary; settlement of slot 10 "
            "at depth 30 must never fail"
        ),
    )
)

register(
    ProtocolScenario(
        name="protocol-private-chain",
        parties=10,
        adversary_fraction=0.4,
        activity=0.4,
        total_slots=90,
        adversary="private-chain",
        target_slot=10,
        depth=4,
        patience=60,
        description=(
            "E10 settlement game: private-chain double-spend against "
            "slot 10 at depth 4 with 40% corrupted stake (the concrete "
            "attacker measured against the Section 6.6 optimum)"
        ),
    )
)

register(
    ProtocolScenario(
        name="protocol-split",
        parties=10,
        adversary_fraction=0.0,
        activity=0.8,
        total_slots=70,
        adversary="split",
        target_slot=5,
        depth=3,
        description=(
            "E7 ablation workload: stakeless split scheduling of "
            "concurrent honest blocks; reorgs >= 3 deep under A0, "
            "collapse to 1 under A0' (Theorem 2)"
        ),
    )
)

register(
    ProtocolScenario(
        name="protocol-wan",
        parties=8,
        adversary_fraction=0.0,
        activity=0.5,
        total_slots=60,
        delta=2,
        adversary="max-delay",
        target_slot=10,
        depth=8,
        network="wan",
        topology="random",
        latency=0.4,
        bandwidth=4096.0,
        jitter="exponential",
        jitter_scale=0.5,
        jitter_cap=3.0,
        description=(
            "Realistic-WAN settlement workload: random gossip graph with "
            "relay hops, 0.4-slot link latency, bandwidth-limited "
            "transfer, capped-exponential jitter, and a max-delay "
            "adversary spending its full Delta=2 hold on top — the "
            "measured-delay regime the slot model cannot express"
        ),
    )
)

register(
    ProtocolScenario(
        name="protocol-delta",
        parties=8,
        adversary_fraction=0.0,
        activity=0.5,
        total_slots=100,
        delta=3,
        adversary="max-delay",
        target_slot=20,
        depth=10,
        description=(
            "Section 8 stressor: every honest broadcast held the full "
            "Delta budget, manufacturing de-facto concurrent leaders"
        ),
    )
)
