"""Accelerator execution backend: chunk estimation through an array namespace.

:class:`ArrayBackend` implements the :class:`repro.engine.parallel.Backend`
protocol but, instead of shipping chunks to other processes, evaluates
them in-process through a chosen array namespace — NumPy (the default,
making it an alternative :class:`~repro.engine.parallel.SerialBackend`),
CuPy on a GPU, or any NumPy-compatible namespace (see
:mod:`repro.engine.array_api` for the required subset).

Boundary discipline
-------------------

Each chunk is sampled on the **host**: the chunk's spawned
``SeedSequence`` child feeds a ``numpy.random.Generator`` exactly as on
every other backend, so the uniform bit stream is identical everywhere.
The sampled :class:`~repro.engine.scenarios.Batch` is then converted
into the namespace, the estimator runs entirely inside it (the kernels
dispatch off their inputs), and only the per-trial weight vector (a
boolean hit vector for plain Monte-Carlo estimators, float likelihood
ratios for importance-sampling ones) crosses back to the host to be
reduced into the chunk's accumulator.  Per-chunk traffic is therefore
one device upload of the symbol matrix and one download of ``trials``
weights.

Parity contract
---------------

``parity`` controls the backend's self-check against the NumPy path:

* ``"bitwise"`` (the default for non-NumPy namespaces) — every chunk is
  *also* evaluated with NumPy on the same sampled batch and the two hit
  vectors must agree element-for-element.  This is the right mode for
  namespaces with IEEE-754 double semantics (CuPy): the integer
  recurrences are exact and the float threshold comparisons bit-identical,
  so any mismatch is a real bug, not noise.
* an integer ``n ≥ 0`` — ulp-tolerance fallback for namespaces *without*
  IEEE guarantees: per-chunk weight **sums** may differ by at most ``n``
  (a threshold comparison can flip only for uniforms within an ulp of a
  boundary, so the honest bound is tiny; for boolean estimators the
  weight-sum drift is exactly the hit-count drift).  The backend's
  result is still the namespace's own accumulator — the tolerance only
  bounds the drift.
* ``None`` — trust the namespace, skip the shadow evaluation (what a
  production GPU run uses once the namespace has been validated; also
  the automatic mode when the namespace *is* NumPy, where the shadow
  would literally re-run the same code).

Scenarios whose batches are not array batches (the protocol workloads
sample ``Simulation`` objects) fall back to the plain NumPy path — the
backend never changes a result, only where it is computed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.array_api import to_namespace, to_numpy, use_namespace
from repro.engine.runner import (
    ChunkAccumulator,
    Estimator,
    accumulate_weights,
)
from repro.engine.scenarios import Batch, Scenario
from repro.obs import metrics

__all__ = ["ArrayBackend", "run_chunk_array"]


class _ImmediateFuture:
    """A pre-resolved stand-in for ``concurrent.futures.Future``."""

    def __init__(self, value) -> None:
        self._value = value

    def result(self):
        return self._value


def _namespace_batch(namespace, batch: Batch) -> Batch:
    """Upload a host batch into ``namespace`` (field-for-field)."""
    return Batch(
        symbols=to_namespace(namespace, batch.symbols),
        start_columns=to_namespace(namespace, batch.start_columns),
        initial_reaches=(
            None
            if batch.initial_reaches is None
            else to_namespace(namespace, batch.initial_reaches)
        ),
        lengths=to_namespace(namespace, batch.lengths),
    )


def run_chunk_array(
    scenario: Scenario,
    estimator: Estimator,
    size: int,
    seed_sequence: np.random.SeedSequence,
    namespace,
    parity: str | int | None = "bitwise",
) -> ChunkAccumulator:
    """Sample one chunk on the host, evaluate it in ``namespace``.

    The namespace sibling of :func:`repro.engine.runner.run_chunk`:
    same seed discipline, same accumulator return, with the estimator's
    array work routed through ``namespace`` and the parity contract of
    the module docstring enforced against the NumPy path.
    """
    generator = np.random.default_rng(seed_sequence)
    batch = scenario.sample_batch(size, generator)
    if not isinstance(batch, Batch):
        # Non-array workloads (protocol simulations): nothing for the
        # namespace to accelerate, evaluate exactly as run_chunk would.
        weights = np.asarray(estimator(scenario, batch))
        return accumulate_weights(weights, size)

    if namespace is np:
        weights = np.asarray(estimator(scenario, batch))
        return accumulate_weights(weights, size)

    with use_namespace(namespace):
        device_weights = estimator(
            scenario, _namespace_batch(namespace, batch)
        )
    weights = to_numpy(device_weights)
    accumulator = accumulate_weights(weights, size)

    if parity is not None:
        reference = np.asarray(estimator(scenario, batch))
        reference_accumulator = accumulate_weights(reference, size)
        if parity == "bitwise":
            if not np.array_equal(weights, reference):
                diverged = int(np.sum(weights != reference))
                raise AssertionError(
                    f"namespace {namespace.__name__!r} diverged from the "
                    f"NumPy path on {diverged}/{size} trials of a chunk; "
                    "if the namespace does not guarantee IEEE-754 double "
                    "semantics, run with an integer ulp tolerance "
                    "(parity=<max hit drift>) instead of 'bitwise'"
                )
        else:
            drift = abs(accumulator.sum_w - reference_accumulator.sum_w)
            if drift > int(parity):
                raise AssertionError(
                    f"namespace {namespace.__name__!r} weight sum drifted "
                    f"by {drift} > tolerance {parity} on a chunk of {size}"
                )
    return accumulator


class ArrayBackend:
    """In-process backend evaluating chunks through an array namespace.

    ``namespace`` defaults to NumPy (useful as a drop-in
    :class:`~repro.engine.parallel.SerialBackend` that exercises the
    dispatch path); pass ``cupy`` — or any NumPy-compatible namespace —
    to run the kernels on an accelerator.  ``parity`` is the self-check
    mode documented in the module docstring; the default ``"bitwise"``
    is automatically skipped when the namespace is NumPy itself.

    Satisfies the full :class:`~repro.engine.parallel.Backend` protocol:
    ``submit_chunks`` for estimation fan-out and ``submit_task`` for
    generic pure tasks (evaluated eagerly on the host — DP cells and
    other non-array work gain nothing from the namespace).
    """

    def __init__(
        self, namespace=None, parity: str | int | None = "bitwise"
    ) -> None:
        self.namespace = np if namespace is None else namespace
        if parity is not None and parity != "bitwise":
            parity = int(parity)
            if parity < 0:
                raise ValueError("ulp tolerance must be >= 0")
        self.parity = parity

    def submit_task(self, function, /, *args) -> _ImmediateFuture:
        """Evaluate an arbitrary pure task now; a resolved future."""
        return _ImmediateFuture(function(*args))

    def submit_chunks(
        self,
        scenario: Scenario,
        estimator: Estimator,
        sizes: list[int],
        children: list[np.random.SeedSequence],
    ) -> list[_ImmediateFuture]:
        """Evaluate every chunk in the namespace; resolved futures."""
        if len(sizes) != len(children):
            raise ValueError("one SeedSequence child per chunk required")
        instrumented = metrics.active() is not None
        latency = (
            metrics.histogram(
                "repro_chunk_seconds",
                "chunk evaluation latency by backend",
                backend="array",
            )
            if instrumented
            else None
        )
        futures = []
        for size, child in zip(sizes, children):
            start = time.perf_counter() if instrumented else 0.0
            result = run_chunk_array(
                scenario, estimator, size, child, self.namespace, self.parity
            )
            if instrumented:
                latency.observe(time.perf_counter() - start)
            futures.append(_ImmediateFuture(result))
        return futures

    def close(self) -> None:
        """Nothing to tear down (interface parity with the pool backends)."""

    def __enter__(self) -> "ArrayBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
