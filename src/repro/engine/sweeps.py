"""Declarative parameter sweeps: grids of scenarios, run as one unit.

Every figure and table in the paper is a *sweep* — settlement error over
grids of adversarial stake α, uniquely-honest fraction p_h/(1−α),
confirmation depth k, and delay bound Δ.  This module is the engine's
fourth layer: a :class:`SweepGrid` names a registered base scenario and
a list of axes, expands their Cartesian product into concrete
:class:`~repro.engine.scenarios.Scenario` points, and :func:`run_grid`
executes every point through :class:`~repro.engine.runner.
ExperimentRunner` — serially, or fanned across a shared
:class:`~repro.engine.parallel.ProcessBackend`, with an optional
:class:`~repro.engine.cache.ResultCache` so a point is never estimated
twice (and, through the chunk ledger, so no *full chunk* is ever
sampled twice even when trial budgets change).  Grids may declare
per-point precision targets (``target_se`` / ``rel_se`` /
``max_trials``): the run then goes through the adaptive
:meth:`~repro.engine.runner.ExperimentRunner.run_until` path and rare
cells automatically receive more trials than easy ones.  Estimators may
return boolean *or* float weight vectors (the accumulator contract of
:mod:`repro.engine.runner`); the tidy rows carry the weighted value and
standard error either way, so importance-sampled workloads sweep
exactly like indicator ones.

Axes come in two kinds:

* **field axes** — any :class:`Scenario` field name (``depth``,
  ``delta``, ``target_slot``, …); the value is applied as a
  ``dataclasses.replace`` override;
* **virtual axes** — ``alpha`` and ``unique_fraction``, the Table 1
  coordinates, which resolve *jointly* to a ``probabilities`` override
  via :func:`repro.core.distributions.from_adversarial_stake`.

Per-point seeding: point ``i`` (in expansion order — the product of the
axes in declared order, last axis fastest) runs with seed
``grid.seed + i``.  The seed is part of the cache key, so reordering or
resizing axes re-keys downstream points — by design: *any* key component
change is a miss.

The registered grids double as the CLI surface: ``python -m repro.sweep
<grid>`` runs any of them (see :mod:`repro.sweep`).
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass

from repro.core.distributions import (
    bernoulli_condition,
    from_adversarial_stake,
)
from repro.engine.cache import ResultCache
from repro.engine.parallel import Backend, ProcessBackend, SerialBackend
from repro.engine.protocol import (
    PROTOCOL_CHUNK_SIZE,
    protocol_cp_violation,
    protocol_deep_reorg,
    protocol_settlement_violation,
)
from repro.engine.runner import (
    Estimator,
    ExperimentRunner,
    delta_settlement_violation,
    settlement_violation,
)
from repro.engine.scenarios import Scenario, get_scenario

__all__ = [
    "SweepGrid",
    "SweepPoint",
    "ESTIMATORS",
    "get_grid",
    "grid_names",
    "register_grid",
    "run_grid",
    "select_points",
]

#: Axes resolved through ``from_adversarial_stake`` instead of a
#: Scenario field.  ``unique_fraction`` requires an ``alpha`` axis (or a
#: fixed ``alpha`` override) — the two only mean anything jointly.
VIRTUAL_AXES = ("alpha", "unique_fraction")

#: Named estimators a grid may reference (``None`` ⇒ the scenario's
#: default: Δ-settlement for reduced scenarios, plain settlement else).
ESTIMATORS: dict[str, Estimator] = {
    "settlement-violation": settlement_violation,
    "delta-settlement-violation": delta_settlement_violation,
    "protocol-settlement-violation": protocol_settlement_violation,
    "protocol-cp-violation": protocol_cp_violation,
    "protocol-deep-reorg": protocol_deep_reorg,
}


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point: its coordinates, scenario, and seed."""

    index: int
    params: dict
    scenario: Scenario
    seed: int


@dataclass(frozen=True)
class SweepGrid:
    """A declarative parameter grid over a registered base scenario.

    ``axes`` is an ordered tuple of ``(name, values)`` pairs;
    ``overrides`` are fixed scenario-field overrides applied to every
    point (for example a non-default ``probabilities``).  ``estimator``
    names an entry of :data:`ESTIMATORS` or is ``None`` for the
    scenario default.  ``trials`` and ``seed`` are defaults the caller
    (and the CLI) can override at run time.
    """

    name: str
    base: str
    axes: tuple[tuple[str, tuple], ...]
    trials: int
    seed: int
    estimator: str | None = None
    chunk_size: int = 4096
    overrides: tuple[tuple[str, object], ...] = ()
    description: str = ""
    #: Per-point precision targets (the adaptive defaults — any of them
    #: set makes ``run_grid`` run the grid through ``run_until``):
    #: stop each point once its standard error is <= ``target_se``
    #: and/or <= ``rel_se * value``, spending at most ``max_trials``
    #: trials (default: the grid's ``trials`` budget).  Rare cells
    #: automatically receive more trials than easy ones.
    target_se: float | None = None
    rel_se: float | None = None
    max_trials: int | None = None

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a grid needs at least one axis")
        if self.target_se is not None and not self.target_se > 0:
            raise ValueError("target_se must be positive")
        if self.rel_se is not None and not self.rel_se > 0:
            raise ValueError("rel_se must be positive")
        if self.max_trials is not None and self.max_trials < 1:
            raise ValueError("max_trials must be positive")
        # Normalize axis values to tuples once: a generator passed as an
        # axis would otherwise survive validation and expand to nothing.
        object.__setattr__(
            self,
            "axes",
            tuple((name, tuple(values)) for name, values in self.axes),
        )
        names = [name for name, _ in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis in {names}")
        for name, values in self.axes:
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        if self.estimator is not None and self.estimator not in ESTIMATORS:
            known = ", ".join(sorted(ESTIMATORS))
            raise ValueError(
                f"unknown estimator {self.estimator!r}; known: {known}"
            )

    @property
    def axis_names(self) -> list[str]:
        """Axis names in declared (expansion) order."""
        return [name for name, _ in self.axes]

    def size(self) -> int:
        """Number of points in the grid."""
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def points(self) -> list[SweepPoint]:
        """Expand the Cartesian product into concrete scenario points."""
        expanded = []
        names = self.axis_names
        for index, combo in enumerate(
            itertools.product(*(values for _, values in self.axes))
        ):
            params = dict(zip(names, combo))
            expanded.append(
                SweepPoint(
                    index=index,
                    params=params,
                    scenario=self._resolve(params),
                    seed=self.seed + index,
                )
            )
        return expanded

    def _resolve(self, params: dict) -> Scenario:
        overrides = dict(self.overrides)
        virtual = {k: overrides.pop(k) for k in VIRTUAL_AXES if k in overrides}
        virtual.update({k: params[k] for k in VIRTUAL_AXES if k in params})
        if "unique_fraction" in virtual and "alpha" not in virtual:
            raise ValueError(
                "a unique_fraction axis needs an alpha axis or a fixed "
                "alpha override"
            )
        if virtual:
            overrides["probabilities"] = from_adversarial_stake(
                virtual["alpha"], virtual.get("unique_fraction", 1.0)
            )
        overrides.update(
            {k: v for k, v in params.items() if k not in VIRTUAL_AXES}
        )
        return get_scenario(self.base, **overrides)

    def resolve_estimator(self) -> Estimator | None:
        """The concrete estimator, or ``None`` for the scenario default."""
        return ESTIMATORS[self.estimator] if self.estimator else None


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def select_points(
    grid: SweepGrid, points: list[SweepPoint], only: dict
) -> list[SweepPoint]:
    """Restrict expanded ``points`` to the ``only`` coordinate filter.

    ``only`` maps axis names to collections of admitted values; a point
    survives when every filtered axis takes one of its admitted values.
    The filter runs *after* expansion, so surviving points keep the
    ``index`` and ``seed`` they have in the full grid — a filtered
    debugging run estimates exactly the same numbers (and hits exactly
    the same cache entries) as the full run does for those points.

    Unknown axis names and values that match no point are rejected —
    both would otherwise silently filter everything away.
    """
    for name, values in only.items():
        if name not in grid.axis_names:
            known = ", ".join(grid.axis_names)
            raise ValueError(f"unknown axis {name!r}; grid axes: {known}")
        if not tuple(values):
            raise ValueError(f"empty value filter for axis {name!r}")
    selected = [
        point
        for point in points
        if all(point.params[name] in values for name, values in only.items())
    ]
    if not selected:
        raise ValueError(f"point filter {only!r} matches no grid point")
    return selected


def _row(point: SweepPoint, estimate, report) -> dict:
    """One tidy result row: coordinates, estimate, provenance."""
    return {
        **point.params,
        "value": estimate.value,
        "standard_error": estimate.standard_error,
        "trials": estimate.trials,
        "seed": point.seed,
        "cached": report.from_cache,
        "reused_trials": report.reused_trials,
        "sampled_trials": report.sampled_trials,
    }


def run_grid(
    grid: SweepGrid,
    trials: int | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
    backend: Backend | None = None,
    seed: int | None = None,
    only: dict | None = None,
    target_se: float | None = None,
    rel_se: float | None = None,
    max_trials: int | None = None,
) -> list[dict]:
    """Estimate every point of ``grid``; returns one tidy row per point.

    Rows carry the axis coordinates plus ``value`` / ``standard_error``
    / ``trials`` (realized — fixed budget, or whatever the adaptive
    stopping rule spent) / ``seed`` / ``cached`` (served without any
    sampling) / ``reused_trials`` / ``sampled_trials`` (the chunk-ledger
    split of where the trials came from), in expansion order — ready
    for ``json.dump`` or a CSV writer.

    ``workers > 1`` opens one shared :class:`ProcessBackend` for the
    whole grid (per-point estimates are bit-identical to a serial run —
    the runner's per-chunk seed tree does not depend on the backend).
    An already-open ``backend`` — *any*
    :class:`~repro.engine.parallel.Backend`: process pool,
    :class:`~repro.engine.array_backend.ArrayBackend`, or
    :class:`~repro.engine.distributed.DistributedBackend` — is reused
    and left running; it takes precedence over ``workers``.

    ``seed`` overrides the grid's base seed (point ``i`` then runs with
    ``seed + i`` — a different seed is a different run and re-keys every
    cache entry).  ``only`` restricts execution to a subset of points by
    axis value (see :func:`select_points`); filtered runs keep the full
    grid's per-point seeds, so their rows — and cache entries — agree
    with the full run.

    ``target_se`` / ``rel_se`` (falling back to the grid's declared
    precision targets) switch every point to the adaptive
    :meth:`~repro.engine.runner.ExperimentRunner.run_until` path: rare
    cells run until their standard error meets the target (up to
    ``max_trials``, default the fixed ``trials`` budget) while easy
    cells stop after the first waves — realized trials vary per row.
    Adaptive points execute in expansion order (chunk waves still fan
    out across the backend); fixed-budget grids keep the fully
    pipelined submit-everything-first dispatch.
    """
    trials = grid.trials if trials is None else trials
    target_se = grid.target_se if target_se is None else target_se
    rel_se = grid.rel_se if rel_se is None else rel_se
    if max_trials is None:
        max_trials = grid.max_trials if grid.max_trials is not None else trials
    if seed is not None:
        grid = dataclasses.replace(grid, seed=seed)
    adaptive = target_se is not None or rel_se is not None
    estimator = grid.resolve_estimator()
    owned = None
    if backend is None and workers > 1:
        owned = backend = ProcessBackend(workers)
    try:
        points = grid.points()
        if only:
            points = select_points(grid, points, only)
        runners = [
            ExperimentRunner(
                point.scenario,
                estimator,
                chunk_size=grid.chunk_size,
                cache=cache,
            )
            for point in points
        ]
        active = backend if backend is not None else SerialBackend()
        if adaptive:
            # Adaptive points are sequential by construction: each wave's
            # stopping decision needs the previous wave's aggregated
            # moments.  Chunk waves still spread across the shared
            # backend.
            rows = []
            for runner, point in zip(runners, points):
                estimate = runner.run_until(
                    point.seed,
                    target_se=target_se,
                    rel_se=rel_se,
                    max_trials=max_trials,
                    backend=active,
                )
                rows.append(_row(point, estimate, runner.last_report))
            return rows
        # Submit every point's chunks before collecting anything: on a
        # process backend the pool pipelines across point boundaries, so
        # workers never idle while one point's last chunk finishes.  The
        # serial backend evaluates eagerly through the same code path.
        pending = [
            runner.submit(trials, point.seed, active)
            for runner, point in zip(runners, points)
        ]
        results = [(p.result(), p.report) for p in pending]
        return [
            _row(point, estimate, report)
            for point, (estimate, report) in zip(points, results)
        ]
    finally:
        if owned is not None:
            owned.close()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_GRIDS: dict[str, SweepGrid] = {}


def register_grid(grid: SweepGrid, overwrite: bool = False) -> SweepGrid:
    """Add a grid to the registry (keyed by its name)."""
    if grid.name in _GRIDS and not overwrite:
        raise ValueError(f"grid {grid.name!r} already registered")
    _GRIDS[grid.name] = grid
    return grid


def get_grid(name: str) -> SweepGrid:
    """Look a registered grid up by name."""
    try:
        return _GRIDS[name]
    except KeyError:
        known = ", ".join(sorted(_GRIDS))
        raise KeyError(f"unknown grid {name!r}; registered: {known}")


def grid_names() -> list[str]:
    """Names of all registered grids, sorted."""
    return sorted(_GRIDS)


# Built-in grids — one per paper artefact (see EXPERIMENTS.md "Sweeps").

register_grid(
    SweepGrid(
        name="table1",
        base="iid-settlement",
        axes=(
            ("alpha", (0.10, 0.20, 0.30)),
            ("unique_fraction", (1.0, 0.8, 0.5)),
            ("depth", (10, 20, 40)),
        ),
        trials=100_000,
        seed=1020,
        description=(
            "Table 1 structure (alpha x p_h/(1-alpha) x k) at Monte-Carlo-"
            "resolvable depths; the exact-DP table itself is "
            "examples/generate_table1.py"
        ),
    )
)

register_grid(
    SweepGrid(
        name="stake",
        base="iid-settlement",
        axes=(("alpha", (0.10, 0.20, 0.30)),),
        trials=100_000,
        seed=11,
        overrides=(("depth", 20),),
        description=(
            "adversarial-stake sweep at k = 20, where 100k trials resolve "
            "the violation rate (examples/settlement_security_analysis.py)"
        ),
    )
)

register_grid(
    SweepGrid(
        name="delta",
        base="delta-synchronous",
        axes=(("delta", (0, 2, 4, 8)),),
        trials=1_000,
        seed=12345,
        description=(
            "Theorem 7 delay sweep: (k, Delta)-settlement failure on "
            "rho_Delta-reduced semi-synchronous strings"
        ),
    )
)

register_grid(
    SweepGrid(
        name="protocol",
        base="protocol-split",
        axes=(
            ("adversary_fraction", (0.0, 0.2)),
            ("activity", (0.5, 0.8)),
            ("delta", (0, 2)),
            ("tie_break", ("adversarial", "consistent")),
        ),
        trials=24,
        seed=30303,
        estimator="protocol-deep-reorg",
        chunk_size=PROTOCOL_CHUNK_SIZE,
        description=(
            "protocol-level Theorem 2 ablation: split-attack deep-reorg "
            "rate across stake fraction x activity x Delta x tie-break "
            "rule, executed as batches of full Simulation runs.  The "
            "split attacker spends no corrupted wins, so the stake axis "
            "measures abstention (corrupted slots produce nothing, "
            "thinning honest production), not active adversarial mining"
        ),
    )
)

register_grid(
    SweepGrid(
        name="protocol_wan",
        base="protocol-wan",
        axes=(
            ("topology", ("complete", "star", "ring", "random")),
            ("latency", (0.25, 0.75)),
            ("jitter_scale", (0.0, 0.5)),
        ),
        trials=16,
        seed=51515,
        estimator="protocol-settlement-violation",
        chunk_size=PROTOCOL_CHUNK_SIZE,
        description=(
            "settlement risk on a realistic WAN: gossip topology x "
            "per-link latency x exponential-jitter scale over the "
            "continuous-time Transport (bandwidth-limited links, "
            "max-delay adversary composing its Delta=2 hold on top of "
            "the physical transit).  The slot model cannot express any "
            "point of this grid except the degenerate corner"
        ),
    )
)

register_grid(
    SweepGrid(
        name="bounds-vs-exact",
        base="iid-settlement",
        axes=(("depth", (20, 30, 40)),),
        trials=20_000,
        seed=99,
        overrides=(("probabilities", bernoulli_condition(0.35, 0.3)),),
        description=(
            "Theorem 1 depth sweep: Monte-Carlo violation rate at the "
            "depths the exact DP and Bound 1 are compared on"
        ),
    )
)
