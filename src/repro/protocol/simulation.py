"""The slot-driven protocol engine and execution measurements.

:class:`Simulation` wires the pieces together — election, honest nodes,
network, adversary — and runs the round structure of Section 2:

1. at the start of slot ``t`` every node ingests the messages the network
   scheduled for it (everything due by ``t − 1``);
2. honest leaders of slot ``t`` mint on their adopted chains and
   broadcast; the rushing adversary observes each block immediately and
   chooses per-recipient delays (≤ Δ) and ordering;
3. the adversary acts: mints with its corrupted wins, injects anything it
   has, to whomever it likes.

:class:`SimulationResult` records every adopted chain per (slot, node)
and exposes the paper's consistency predicates — settlement violations
(Definition 3), k-CP^slot violations (Definition 24) — plus the
execution→fork extraction that converts the run into an abstract fork
``F ⊢ w`` for cross-validation against the combinatorial theory.

Execution modes
---------------

``shared_validation=False`` (default) is the *reference* cost model:
every node hashes, verifies, and judges eligibility for every block it
receives, exactly as independent deployments would.  With
``shared_validation=True`` — the mode the batched engine workload
(:mod:`repro.engine.protocol`) runs in — those pure functions are
computed once per block and shared across the node set: block hashes
are interned, signature checks and eligibility verdicts memoised, and
redundant adversary observations skipped.  Results are bit-identical in
both modes (asserted by ``tests/protocol/test_determinism.py``); only
wall-clock differs.

Each consistency predicate likewise has two implementations: the public
methods resolve through the block trees' hash indexes with memoised
divergence checks, while the ``*_scalar`` twins preserve the original
chain-walking algorithms (recomputing block hashes along every
comparison, as a verifier would).  The scalar forms are the
cross-validation oracles and the per-run baseline the protocol
throughput benchmark measures against.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.core.alphabet import EMPTY
from repro.core.forks import Fork
from repro.delta.forks import DeltaFork
from repro.protocol.adversary import Adversary, NullAdversary
from repro.protocol.block import GENESIS_SLOT, Block, BlockTree
from repro.protocol.crypto import IdealSignatureScheme, IdealVrf
from repro.protocol.leader import (
    LeaderSchedule,
    StakeDistribution,
    VrfLeaderElection,
    phi,
)
from repro.protocol.network import NetworkModel
from repro.protocol.node import HonestNode
from repro.protocol.tiebreak import TieBreakRule, adversarial_order_rule
from repro.protocol.transport import Transport, TransportConfig, transport_seed


@dataclass
class SlotRecord:
    """What happened in one slot: symbol, minted blocks, adopted tips."""

    slot: int
    symbol: str
    honest_blocks: list[Block] = field(default_factory=list)
    adopted_tips: dict[str, str] = field(default_factory=dict)


class Simulation:
    """A complete configured protocol run."""

    def __init__(
        self,
        stakes: StakeDistribution,
        activity: float,
        total_slots: int,
        delta: int = 0,
        tie_break: TieBreakRule = adversarial_order_rule,
        adversary: Adversary | None = None,
        randomness: str = "epoch-0",
        shared_validation: bool = False,
        transport: TransportConfig | None = None,
    ) -> None:
        self.stakes = stakes
        self.activity = activity
        self.total_slots = total_slots
        self.delta = delta
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.shared_validation = shared_validation

        self.signatures = IdealSignatureScheme(seed=f"sig|{randomness}")
        self.election = VrfLeaderElection(
            stakes, activity, IdealVrf(seed=f"vrf|{randomness}"), randomness
        )
        self._signing_keys = {
            party.name: self.signatures.generate_keypair()
            for party in stakes.parties
        }
        self._public_to_party = {
            keypair.public: name
            for name, keypair in self._signing_keys.items()
        }
        self._party_by_name = {party.name: party for party in stakes.parties}

        # Shared-validation state: pure-function results computed once
        # per block and reused across every node (and every redundant
        # adversary observation).  ``None`` in reference mode.
        self._hash_intern: dict[Block, str] | None = None
        self._signature_results: dict[Block, bool] | None = None
        self._eligibility_results: dict[tuple[str, int, str], bool] | None = None
        self._observed: set[Block] | None = None
        if shared_validation:
            self._hash_intern = {}
            self._signature_results = {}
            self._eligibility_results = {}
            self._observed = set()

        honest_parties = [p for p in stakes.parties if not p.corrupted]
        self.nodes: dict[str, HonestNode] = {
            party.name: HonestNode(
                party.name,
                self._signing_keys[party.name],
                self.signatures,
                tie_break,
                self._check_eligibility,
                verify_signature=(
                    self._verify_block_signature if shared_validation else None
                ),
                hash_block=self._intern_hash if shared_validation else None,
            )
            for party in honest_parties
        }
        # ``transport=None`` keeps the paper's slot-quantized model;
        # a config swaps in the continuous-time WAN, whose jitter seed
        # derives from the same randomness string as the VRF — the
        # schedule stays a pure function of the trial's randomness.
        if transport is None:
            self.network: NetworkModel = NetworkModel(
                list(self.nodes), delta=delta
            )
        else:
            self.network = Transport(
                list(self.nodes),
                delta=delta,
                config=transport,
                seed=transport_seed(randomness),
            )
        self.adversary.attach(
            self.signatures,
            {
                p.name: self._signing_keys[p.name]
                for p in stakes.parties
                if p.corrupted
            },
            list(self.nodes),
        )

    # ------------------------------------------------------------------
    # validation (per-node in reference mode, shared in batched mode)
    # ------------------------------------------------------------------

    def _check_eligibility(self, issuer: str, slot: int, proof: str) -> bool:
        """Verify the issuer's VRF proof and threshold for the slot."""
        cache = self._eligibility_results
        if cache is not None:
            key = (issuer, slot, proof)
            hit = cache.get(key)
            if hit is not None:
                return hit
            result = self._check_eligibility_uncached(issuer, slot, proof)
            cache[key] = result
            return result
        return self._check_eligibility_uncached(issuer, slot, proof)

    def _check_eligibility_uncached(
        self, issuer: str, slot: int, proof: str
    ) -> bool:
        party_name = self._public_to_party.get(issuer)
        if party_name is None:
            return False
        party = self._party_by_name[party_name]
        vrf_key = self.election.keypair(party)
        vrf_input = f"{self.election.randomness}|slot-{slot}"
        value = self._proof_value(proof)
        if not self.election.vrf.verify(vrf_key.public, vrf_input, value, proof):
            return False
        threshold = phi(self.activity, self.stakes.relative_stake(party))
        return value < threshold

    def _verify_block_signature(self, block: Block) -> bool:
        """Shared signature check: one header hash + verify per block."""
        assert self._signature_results is not None
        hit = self._signature_results.get(block)
        if hit is None:
            hit = self.signatures.verify(
                block.issuer, block.header(), block.signature
            )
            self._signature_results[block] = hit
        return hit

    def _intern_hash(self, block: Block) -> str:
        """Shared hash: each distinct block is hashed exactly once."""
        assert self._hash_intern is not None
        cached = self._hash_intern.get(block)
        if cached is None:
            cached = block.block_hash
            self._hash_intern[block] = cached
        return cached

    @staticmethod
    def _proof_value(proof: str) -> float:
        from repro.protocol.crypto import _digest_to_unit

        return _digest_to_unit(proof)

    def _observe(self, block: Block) -> None:
        """Adversary observation, deduplicated in shared mode.

        ``observe_block`` is idempotent for every provided strategy
        (block trees and slot registries dedupe by hash), so skipping a
        repeat observation never changes behaviour — it only skips the
        repeated hash computation.
        """
        if self._observed is not None:
            if block in self._observed:
                return
            self._observed.add(block)
        self.adversary.observe_block(block)

    # ------------------------------------------------------------------

    def run(self) -> "SimulationResult":
        """Execute all slots and return the recorded result."""
        schedule = self.election.schedule(self.total_slots)
        records: list[SlotRecord] = []

        for slot in range(1, self.total_slots + 1):
            for name, node in self.nodes.items():
                for block in self.network.due(name, slot - 1):
                    node.receive(block)
                    self._observe(block)

            record = SlotRecord(slot=slot, symbol=schedule.symbol(slot))
            leaders = schedule.leaders(slot)

            honest_blocks: list[Block] = []
            for party in leaders:
                if party.corrupted:
                    continue
                _eligible, _value, proof = self.election.eligibility(party, slot)
                node = self.nodes[party.name]
                block = node.mint_block(slot, proof)
                honest_blocks.append(block)
                self._observe(block)
            for block in honest_blocks:
                delays, priorities = self.adversary.honest_delays(slot, block)
                self.network.broadcast(
                    block,
                    slot,
                    delays,
                    priorities,
                    sender=self._public_to_party.get(block.issuer),
                )

            corrupted_leaders = [
                (party, self.election.eligibility(party, slot)[2])
                for party in leaders
                if party.corrupted
            ]
            self.adversary.act(slot, corrupted_leaders, self.network)

            record.honest_blocks = honest_blocks
            record.adopted_tips = {
                name: node.best_tip() for name, node in self.nodes.items()
            }
            records.append(record)

        # Final drain so end-of-run views include the last slot's
        # messages.  The network names the slot: ``total + Δ`` for the
        # slot model, its scheduling horizon for the transport (physical
        # transit may legitimately outlast the Δ budget).
        final_slot = self.network.final_drain_slot(self.total_slots)
        for name, node in self.nodes.items():
            for block in self.network.due(name, final_slot):
                node.receive(block)

        return SimulationResult(self, schedule, records)


@dataclass(frozen=True)
class DelayDistribution:
    """Summary of the realized per-message honest delivery delays.

    The sample is every honest broadcast delivery to a party other than
    the sender: the adversarial hold in the slot model, hold + physical
    transit under a :class:`~repro.protocol.transport.Transport`.  The
    ``exceedance_rate`` is the fraction of deliveries whose realized
    delay exceeds the configured Δ — zero by construction in the slot
    model (the A4Δ deadline is enforced), and the measured "effective-Δ
    overshoot" on a WAN where physics is not budget-bound.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float
    delta: int
    exceedance_rate: float


class SimulationResult:
    """Recorded execution with the paper's consistency measurements.

    Every predicate exists twice: the public method (hash-index walks,
    memoised pair checks, snapshot deduplication — the engine path) and
    a ``*_scalar`` twin that preserves the original chain-walking
    algorithm, recomputing block hashes along every comparison.  The
    pairs are asserted equal on adversarial executions by
    ``tests/protocol/test_determinism.py``; benchmarks measure the
    batched path against the scalar one.
    """

    def __init__(
        self,
        simulation: Simulation,
        schedule: LeaderSchedule,
        records: list[SlotRecord],
    ) -> None:
        self.simulation = simulation
        self.schedule = schedule
        self.records = records
        #: (tip_a, tip_b, target_slot) → divergence verdict.  A block
        #: hash pins its whole prefix, so the verdict is a pure function
        #: of the two hash chains — tree-independent and safely shared
        #: across records and node pairs.
        self._diverge_cache: dict[tuple[str, str, int], bool] = {}
        #: tip hash → (slots, hashes, hash set) along its chain; chains
        #: are immutable and identical in every tree containing the tip.
        self._tip_index: dict[str, tuple[list[int], list[str], frozenset]] = {}
        self._reorg_cache: dict[tuple[str, str], int] = {}

    @property
    def characteristic_string(self) -> str:
        """The execution's characteristic string (Definitions 1/20)."""
        return self.schedule.characteristic_string()

    def union_tree(self) -> BlockTree:
        """All blocks any honest node ever accepted (the public record).

        Slots strictly increase along chains, so inserting the deduped
        block set in slot order adds every block whose full ancestry was
        accepted — one pass instead of the quadratic retry loop.
        """
        union = BlockTree()
        unique: set[Block] = set()
        for node in self.simulation.nodes.values():
            unique.update(node.tree.all_blocks())
        for block in sorted(
            (b for b in unique if b.parent_hash != ""),
            key=lambda b: (b.slot, b.block_hash),
        ):
            union.add_block(block)
        return union

    # ------------------------------------------------------------------
    # consistency predicates — batched (hash-index) implementations
    # ------------------------------------------------------------------

    def settlement_violation(self, target_slot: int, depth: int) -> bool:
        """Did any honest observer at time ≥ target+depth see history before
        ``target_slot`` change or disagree? (Definition 3, operationally.)

        Two witnesses count: (a) two honest nodes' adopted chains at the
        same slot ``t ≥ target + depth`` diverging before ``target_slot``;
        (b) one node's adopted chain at ``t₂ > t₁ ≥ target + depth``
        diverging before ``target_slot`` from its chain at ``t₁`` (a deep
        reorg past the confirmation depth).

        Identical tip snapshots (the common case once chains stabilise)
        are checked once; each distinct (tip, tip) divergence is resolved
        once via the trees' parent index and memoised.
        """
        interesting = [
            r for r in self.records if r.slot >= target_slot + depth
        ]
        trees = {
            name: node.tree for name, node in self.simulation.nodes.items()
        }
        seen_snapshots: set[tuple] = set()
        for record in interesting:
            snapshot = tuple(record.adopted_tips.items())
            if snapshot in seen_snapshots:
                continue
            seen_snapshots.add(snapshot)
            for i, (name_a, tip_a) in enumerate(snapshot):
                tree = trees[name_a]
                for _name_b, tip_b in snapshot[i + 1 :]:
                    if self._diverge_before(tree, tip_a, tip_b, target_slot):
                        return True
        for name, tree in trees.items():
            previous: str | None = None
            for record in interesting:
                tip = record.adopted_tips[name]
                if (
                    previous is not None
                    and previous != tip
                    and self._diverge_before(tree, previous, tip, target_slot)
                ):
                    return True
                previous = tip
        return False

    def _diverge_before(
        self, tree: BlockTree, tip_a: str, tip_b: str, slot: int
    ) -> bool:
        if tip_a == tip_b:
            return False
        if tip_a not in tree or tip_b not in tree:
            return False
        key = (tip_a, tip_b, slot)
        cached = self._diverge_cache.get(key)
        if cached is not None:
            return cached
        meet = tree.common_prefix_slot(tip_a, tip_b)
        prefix_a = tree.prefix_hash_at_slot(tip_a, slot)
        prefix_b = tree.prefix_hash_at_slot(tip_b, slot)
        verdict = meet < slot and prefix_a != prefix_b
        self._diverge_cache[key] = verdict
        return verdict

    def cp_slot_violation(self, depth: int) -> bool:
        """k-CP^slot check across nodes and across time (Definition 24)."""
        trees = {
            name: node.tree for name, node in self.simulation.nodes.items()
        }
        for record in self.records:
            cutoff = record.slot - depth
            if cutoff <= 0:
                continue
            tips = list(record.adopted_tips.items())
            for i, (name_a, tip_a) in enumerate(tips):
                tree = trees[name_a]
                for name_b, tip_b in tips:
                    if name_a == name_b:
                        continue
                    if tip_b not in tree or tip_a not in tree:
                        continue
                    if not self._is_slot_prefix(tree, tip_a, cutoff, tip_b):
                        return True
        for name, tree in trees.items():
            previous: str | None = None
            previous_slot = 0
            for record in self.records:
                tip = record.adopted_tips[name]
                cutoff = previous_slot - depth
                if previous is not None and cutoff > 0:
                    if not self._is_slot_prefix(tree, previous, cutoff, tip):
                        return True
                previous, previous_slot = tip, record.slot
        return False

    def _chain_index(
        self, tree: BlockTree, tip: str
    ) -> tuple[list[int], list[str], frozenset]:
        entry = self._tip_index.get(tip)
        if entry is None:
            hashes = tree.chain_hashes(tip)
            slots = [tree.slot_of(h) for h in hashes]
            entry = (slots, hashes, frozenset(hashes))
            self._tip_index[tip] = entry
        return entry

    def _is_slot_prefix(
        self, tree: BlockTree, tip_a: str, cutoff: int, tip_b: str
    ) -> bool:
        """Is ``chain(tip_a)[0 : cutoff]`` a prefix of ``chain(tip_b)``?

        The anchor lookup is a bisection over the chain's (sorted) slot
        labels; membership is a set probe — both on per-tip indexes
        built once per distinct tip.
        """
        slots_a, hashes_a, _ = self._chain_index(tree, tip_a)
        anchor = hashes_a[bisect_right(slots_a, cutoff) - 1]
        _slots_b, _hashes_b, members_b = self._chain_index(tree, tip_b)
        return anchor in members_b

    def max_reorg_depth(self) -> int:
        """Deepest observed chain reorganisation (blocks discarded)."""
        deepest = 0
        trees = {
            name: node.tree for name, node in self.simulation.nodes.items()
        }
        for name, tree in trees.items():
            previous: str | None = None
            for record in self.records:
                tip = record.adopted_tips[name]
                if (
                    previous is not None
                    and previous != tip
                    and previous in tree
                    and tip in tree
                ):
                    key = (previous, tip)
                    discarded = self._reorg_cache.get(key)
                    if discarded is None:
                        meet_slot = tree.common_prefix_slot(previous, tip)
                        meet_hash = tree.prefix_hash_at_slot(previous, meet_slot)
                        discarded = tree.depth(previous) - tree.depth(meet_hash)
                        self._reorg_cache[key] = discarded
                    deepest = max(deepest, discarded)
                previous = tip
        return deepest

    # ------------------------------------------------------------------
    # consistency predicates — scalar oracles (the reference algorithms)
    # ------------------------------------------------------------------

    @staticmethod
    def _common_prefix_slot_scalar(tree: BlockTree, first: str, second: str) -> int:
        """Original algorithm: materialise both chains, compare by hash."""
        chain_a = tree.chain(first)
        chain_b = tree.chain(second)
        last_common = GENESIS_SLOT
        for block_a, block_b in zip(chain_a, chain_b):
            if block_a.block_hash != block_b.block_hash:
                break
            last_common = block_a.slot
        return last_common

    @staticmethod
    def _prefix_hash_at_slot_scalar(
        tree: BlockTree, block_hash: str, slot: int
    ) -> str:
        """Original algorithm: walk the chain from genesis, rehashing."""
        chosen = tree.genesis_hash
        for block in tree.chain(block_hash):
            if block.slot <= slot:
                chosen = block.block_hash
            else:
                break
        return chosen

    def _diverge_before_scalar(
        self, tree: BlockTree, tip_a: str, tip_b: str, slot: int
    ) -> bool:
        if tip_a == tip_b:
            return False
        if tip_a not in tree or tip_b not in tree:
            return False
        meet = self._common_prefix_slot_scalar(tree, tip_a, tip_b)
        prefix_a = self._prefix_hash_at_slot_scalar(tree, tip_a, slot)
        prefix_b = self._prefix_hash_at_slot_scalar(tree, tip_b, slot)
        return meet < slot and prefix_a != prefix_b

    def settlement_violation_scalar(self, target_slot: int, depth: int) -> bool:
        """Reference implementation of :meth:`settlement_violation`."""
        interesting = [
            r for r in self.records if r.slot >= target_slot + depth
        ]
        trees = {
            name: node.tree for name, node in self.simulation.nodes.items()
        }
        for record in interesting:
            tips = list(record.adopted_tips.items())
            for i, (name_a, tip_a) in enumerate(tips):
                for _name_b, tip_b in tips[i + 1 :]:
                    if self._diverge_before_scalar(
                        trees[name_a], tip_a, tip_b, target_slot
                    ):
                        return True
        for name in trees:
            previous: str | None = None
            for record in interesting:
                tip = record.adopted_tips[name]
                if previous is not None and self._diverge_before_scalar(
                    trees[name], previous, tip, target_slot
                ):
                    return True
                previous = tip
        return False

    def _is_slot_prefix_scalar(
        self, tree: BlockTree, tip_a: str, cutoff: int, tip_b: str
    ) -> bool:
        anchor = self._prefix_hash_at_slot_scalar(tree, tip_a, cutoff)
        chain_b = {block.block_hash for block in tree.chain(tip_b)}
        return anchor in chain_b

    def cp_slot_violation_scalar(self, depth: int) -> bool:
        """Reference implementation of :meth:`cp_slot_violation`."""
        trees = {
            name: node.tree for name, node in self.simulation.nodes.items()
        }
        for record in self.records:
            cutoff = record.slot - depth
            if cutoff <= 0:
                continue
            tips = list(record.adopted_tips.items())
            for i, (name_a, tip_a) in enumerate(tips):
                tree = trees[name_a]
                for name_b, tip_b in tips:
                    if name_a == name_b:
                        continue
                    if tip_b not in tree or tip_a not in tree:
                        continue
                    if not self._is_slot_prefix_scalar(
                        tree, tip_a, cutoff, tip_b
                    ):
                        return True
        for name, tree in trees.items():
            previous: str | None = None
            previous_slot = 0
            for record in self.records:
                tip = record.adopted_tips[name]
                cutoff = previous_slot - depth
                if previous is not None and cutoff > 0:
                    if not self._is_slot_prefix_scalar(
                        tree, previous, cutoff, tip
                    ):
                        return True
                previous, previous_slot = tip, record.slot
        return False

    def max_reorg_depth_scalar(self) -> int:
        """Reference implementation of :meth:`max_reorg_depth`."""
        deepest = 0
        trees = {
            name: node.tree for name, node in self.simulation.nodes.items()
        }
        for name, tree in trees.items():
            previous: str | None = None
            for record in self.records:
                tip = record.adopted_tips[name]
                if previous is not None and previous in tree and tip in tree:
                    meet_slot = self._common_prefix_slot_scalar(
                        tree, previous, tip
                    )
                    meet_hash = self._prefix_hash_at_slot_scalar(
                        tree, previous, meet_slot
                    )
                    discarded = tree.depth(previous) - tree.depth(meet_hash)
                    deepest = max(deepest, discarded)
                previous = tip
        return deepest

    # ------------------------------------------------------------------
    # network observables
    # ------------------------------------------------------------------

    def delay_distribution(self) -> DelayDistribution:
        """Quantiles + effective-Δ exceedance of realized honest delays.

        An empty sample (no honest broadcast reached another party)
        collapses to all-zero statistics."""
        sample = self.simulation.network.realized_delays
        delta = self.simulation.delta
        if not sample:
            return DelayDistribution(0, 0.0, 0.0, 0.0, 0.0, 0.0, delta, 0.0)
        delays = np.asarray(sample, dtype=np.float64)
        p50, p90, p99 = np.quantile(delays, (0.5, 0.9, 0.99))
        return DelayDistribution(
            count=int(delays.size),
            mean=float(delays.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
            maximum=float(delays.max()),
            delta=delta,
            exceedance_rate=float((delays > delta).mean()),
        )

    # ------------------------------------------------------------------
    # execution → abstract fork
    # ------------------------------------------------------------------

    def execution_fork(self) -> Fork:
        """Convert the public record into a fork ``F ⊢ w`` (or Δ-fork).

        Every block any honest node accepted becomes a vertex labelled by
        its slot.  The tests validate the result against axioms F1–F4
        (F4Δ when Δ > 0), closing the loop between the executable
        protocol and the combinatorial model.
        """
        word = self.characteristic_string
        union = self.union_tree()
        if self.simulation.delta > 0:
            fork: Fork = DeltaFork(word, self.simulation.delta)
        else:
            fork = Fork(word)
        by_hash = {union.genesis_hash: fork.root}
        blocks = sorted(
            (b for b in union.all_blocks() if b.parent_hash != ""),
            key=lambda b: (b.slot, b.block_hash),
        )
        for block in blocks:
            parent_vertex = by_hash[block.parent_hash]
            by_hash[block.block_hash] = fork.add_vertex(
                parent_vertex, block.slot
            )
        return fork
