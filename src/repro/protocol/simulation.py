"""The slot-driven protocol engine and execution measurements.

:class:`Simulation` wires the pieces together — election, honest nodes,
network, adversary — and runs the round structure of Section 2:

1. at the start of slot ``t`` every node ingests the messages the network
   scheduled for it (everything due by ``t − 1``);
2. honest leaders of slot ``t`` mint on their adopted chains and
   broadcast; the rushing adversary observes each block immediately and
   chooses per-recipient delays (≤ Δ) and ordering;
3. the adversary acts: mints with its corrupted wins, injects anything it
   has, to whomever it likes.

:class:`SimulationResult` records every adopted chain per (slot, node)
and exposes the paper's consistency predicates — settlement violations
(Definition 3), k-CP^slot violations (Definition 24) — plus the
execution→fork extraction that converts the run into an abstract fork
``F ⊢ w`` for cross-validation against the combinatorial theory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.alphabet import EMPTY
from repro.core.forks import Fork
from repro.delta.forks import DeltaFork
from repro.protocol.adversary import Adversary, NullAdversary
from repro.protocol.block import Block, BlockTree
from repro.protocol.crypto import IdealSignatureScheme, IdealVrf
from repro.protocol.leader import (
    LeaderSchedule,
    StakeDistribution,
    VrfLeaderElection,
    phi,
)
from repro.protocol.network import NetworkModel
from repro.protocol.node import HonestNode
from repro.protocol.tiebreak import TieBreakRule, adversarial_order_rule


@dataclass
class SlotRecord:
    """What happened in one slot: symbol, minted blocks, adopted tips."""

    slot: int
    symbol: str
    honest_blocks: list[Block] = field(default_factory=list)
    adopted_tips: dict[str, str] = field(default_factory=dict)


class Simulation:
    """A complete configured protocol run."""

    def __init__(
        self,
        stakes: StakeDistribution,
        activity: float,
        total_slots: int,
        delta: int = 0,
        tie_break: TieBreakRule = adversarial_order_rule,
        adversary: Adversary | None = None,
        randomness: str = "epoch-0",
    ) -> None:
        self.stakes = stakes
        self.activity = activity
        self.total_slots = total_slots
        self.delta = delta
        self.adversary = adversary if adversary is not None else NullAdversary()

        self.signatures = IdealSignatureScheme(seed=f"sig|{randomness}")
        self.election = VrfLeaderElection(
            stakes, activity, IdealVrf(seed=f"vrf|{randomness}"), randomness
        )
        self._signing_keys = {
            party.name: self.signatures.generate_keypair()
            for party in stakes.parties
        }
        self._public_to_party = {
            keypair.public: name
            for name, keypair in self._signing_keys.items()
        }

        honest_parties = [p for p in stakes.parties if not p.corrupted]
        self.nodes: dict[str, HonestNode] = {
            party.name: HonestNode(
                party.name,
                self._signing_keys[party.name],
                self.signatures,
                tie_break,
                self._check_eligibility,
            )
            for party in honest_parties
        }
        self.network = NetworkModel(list(self.nodes), delta=delta)
        self.adversary.attach(
            self.signatures,
            {
                p.name: self._signing_keys[p.name]
                for p in stakes.parties
                if p.corrupted
            },
            list(self.nodes),
        )

    # ------------------------------------------------------------------

    def _check_eligibility(self, issuer: str, slot: int, proof: str) -> bool:
        """Verify the issuer's VRF proof and threshold for the slot."""
        party_name = self._public_to_party.get(issuer)
        if party_name is None:
            return False
        party = next(p for p in self.stakes.parties if p.name == party_name)
        vrf_key = self.election.keypair(party)
        vrf_input = f"{self.election.randomness}|slot-{slot}"
        value = self._proof_value(proof)
        if not self.election.vrf.verify(vrf_key.public, vrf_input, value, proof):
            return False
        threshold = phi(self.activity, self.stakes.relative_stake(party))
        return value < threshold

    @staticmethod
    def _proof_value(proof: str) -> float:
        from repro.protocol.crypto import _digest_to_unit

        return _digest_to_unit(proof)

    # ------------------------------------------------------------------

    def run(self) -> "SimulationResult":
        """Execute all slots and return the recorded result."""
        schedule = self.election.schedule(self.total_slots)
        records: list[SlotRecord] = []

        for slot in range(1, self.total_slots + 1):
            for name, node in self.nodes.items():
                for block in self.network.due(name, slot - 1):
                    node.receive(block)
                    self.adversary.observe_block(block)

            record = SlotRecord(slot=slot, symbol=schedule.symbol(slot))
            leaders = schedule.leaders(slot)

            honest_blocks: list[Block] = []
            for party in leaders:
                if party.corrupted:
                    continue
                _eligible, _value, proof = self.election.eligibility(party, slot)
                node = self.nodes[party.name]
                block = node.mint_block(slot, proof)
                honest_blocks.append(block)
                self.adversary.observe_block(block)
            for block in honest_blocks:
                delays, priorities = self.adversary.honest_delays(slot, block)
                self.network.broadcast(block, slot, delays, priorities)

            corrupted_leaders = [
                (party, self.election.eligibility(party, slot)[2])
                for party in leaders
                if party.corrupted
            ]
            self.adversary.act(slot, corrupted_leaders, self.network)

            record.honest_blocks = honest_blocks
            record.adopted_tips = {
                name: node.best_tip() for name, node in self.nodes.items()
            }
            records.append(record)

        # Final drain so end-of-run views include the last slot's messages.
        for name, node in self.nodes.items():
            for block in self.network.due(name, self.total_slots + self.delta):
                node.receive(block)

        return SimulationResult(self, schedule, records)


class SimulationResult:
    """Recorded execution with the paper's consistency measurements."""

    def __init__(
        self,
        simulation: Simulation,
        schedule: LeaderSchedule,
        records: list[SlotRecord],
    ) -> None:
        self.simulation = simulation
        self.schedule = schedule
        self.records = records

    @property
    def characteristic_string(self) -> str:
        """The execution's characteristic string (Definitions 1/20)."""
        return self.schedule.characteristic_string()

    def union_tree(self) -> BlockTree:
        """All blocks any honest node ever accepted (the public record)."""
        union = BlockTree()
        pending: list[Block] = []
        for node in self.simulation.nodes.values():
            pending.extend(node.tree.all_blocks())
        progress = True
        while progress and pending:
            progress = False
            for block in list(pending):
                if block.parent_hash == "" or union.add_block(block):
                    pending.remove(block)
                    progress = True
        return union

    # ------------------------------------------------------------------
    # consistency predicates
    # ------------------------------------------------------------------

    def settlement_violation(self, target_slot: int, depth: int) -> bool:
        """Did any honest observer at time ≥ target+depth see history before
        ``target_slot`` change or disagree? (Definition 3, operationally.)

        Two witnesses count: (a) two honest nodes' adopted chains at the
        same slot ``t ≥ target + depth`` diverging before ``target_slot``;
        (b) one node's adopted chain at ``t₂ > t₁ ≥ target + depth``
        diverging before ``target_slot`` from its chain at ``t₁`` (a deep
        reorg past the confirmation depth).
        """
        interesting = [
            r for r in self.records if r.slot >= target_slot + depth
        ]
        trees = {
            name: node.tree for name, node in self.simulation.nodes.items()
        }
        for record in interesting:
            tips = list(record.adopted_tips.items())
            for i, (name_a, tip_a) in enumerate(tips):
                for name_b, tip_b in tips[i + 1 :]:
                    if self._diverge_before(
                        trees[name_a], tip_a, tip_b, target_slot
                    ):
                        return True
        for name in trees:
            previous: str | None = None
            for record in interesting:
                tip = record.adopted_tips[name]
                if previous is not None and self._diverge_before(
                    trees[name], previous, tip, target_slot
                ):
                    return True
                previous = tip
        return False

    def _diverge_before(
        self, tree: BlockTree, tip_a: str, tip_b: str, slot: int
    ) -> bool:
        if tip_a == tip_b:
            return False
        if tip_a not in tree or tip_b not in tree:
            return False
        meet = tree.common_prefix_slot(tip_a, tip_b)
        prefix_a = tree.prefix_hash_at_slot(tip_a, slot)
        prefix_b = tree.prefix_hash_at_slot(tip_b, slot)
        return meet < slot and prefix_a != prefix_b

    def cp_slot_violation(self, depth: int) -> bool:
        """k-CP^slot check across nodes and across time (Definition 24)."""
        trees = {
            name: node.tree for name, node in self.simulation.nodes.items()
        }
        for record in self.records:
            cutoff = record.slot - depth
            if cutoff <= 0:
                continue
            tips = list(record.adopted_tips.items())
            for i, (name_a, tip_a) in enumerate(tips):
                tree = trees[name_a]
                for name_b, tip_b in tips:
                    if name_a == name_b:
                        continue
                    if tip_b not in tree or tip_a not in tree:
                        continue
                    if not self._is_slot_prefix(tree, tip_a, cutoff, tip_b):
                        return True
        for name, tree in trees.items():
            previous: str | None = None
            previous_slot = 0
            for record in self.records:
                tip = record.adopted_tips[name]
                cutoff = previous_slot - depth
                if previous is not None and cutoff > 0:
                    if not self._is_slot_prefix(tree, previous, cutoff, tip):
                        return True
                previous, previous_slot = tip, record.slot
        return False

    @staticmethod
    def _is_slot_prefix(
        tree: BlockTree, tip_a: str, cutoff: int, tip_b: str
    ) -> bool:
        """Is ``chain(tip_a)[0 : cutoff]`` a prefix of ``chain(tip_b)``?"""
        anchor = tree.prefix_hash_at_slot(tip_a, cutoff)
        chain_b = {block.block_hash for block in tree.chain(tip_b)}
        return anchor in chain_b

    def max_reorg_depth(self) -> int:
        """Deepest observed chain reorganisation (blocks discarded)."""
        deepest = 0
        trees = {
            name: node.tree for name, node in self.simulation.nodes.items()
        }
        for name, tree in trees.items():
            previous: str | None = None
            for record in self.records:
                tip = record.adopted_tips[name]
                if previous is not None and previous in tree and tip in tree:
                    meet_slot = tree.common_prefix_slot(previous, tip)
                    meet_hash = tree.prefix_hash_at_slot(previous, meet_slot)
                    discarded = tree.depth(previous) - tree.depth(meet_hash)
                    deepest = max(deepest, discarded)
                previous = tip
        return deepest

    # ------------------------------------------------------------------
    # execution → abstract fork
    # ------------------------------------------------------------------

    def execution_fork(self) -> Fork:
        """Convert the public record into a fork ``F ⊢ w`` (or Δ-fork).

        Every block any honest node accepted becomes a vertex labelled by
        its slot.  The tests validate the result against axioms F1–F4
        (F4Δ when Δ > 0), closing the loop between the executable
        protocol and the combinatorial model.
        """
        word = self.characteristic_string
        union = self.union_tree()
        if self.simulation.delta > 0:
            fork: Fork = DeltaFork(word, self.simulation.delta)
        else:
            fork = Fork(word)
        by_hash = {union.genesis_hash: fork.root}
        blocks = sorted(
            (b for b in union.all_blocks() if b.parent_hash != ""),
            key=lambda b: (b.slot, b.block_hash),
        )
        for block in blocks:
            parent_vertex = by_hash[block.parent_hash]
            by_hash[block.block_hash] = fork.add_vertex(
                parent_vertex, block.slot
            )
        return fork
