"""Protocol-level adversary strategies (the attacker the model quantifies over).

An adversary in this simulation owns the corrupted parties' keys, sees
every honest block the moment it is broadcast (rushing), fully controls
per-recipient delivery order and (up to Δ) delay, and may extend any
chain it knows with blocks for slots where a corrupted party is elected.

Strategies provided:

* :class:`NullAdversary` — does nothing; the honest baseline.
* :class:`PrivateChainAdversary` — the classic settlement attack: fork
  privately before a target slot, extend in secret with every corrupted
  win, release when the private chain can compete at depth ≥ k.
* :class:`SplitAdversary` — exploits multiply honest slots under
  adversarial tie-breaking (axiom A0): delivers concurrent honest blocks
  in opposite orders to two halves of the network, keeping two equal
  branches alive without spending any adversarial block.  Under the
  consistent rule A0′ the same schedule is harmless — the Theorem 2
  ablation.
"""

from __future__ import annotations

from repro.protocol.block import Block, BlockTree
from repro.protocol.crypto import IdealSignatureScheme, KeyPair
from repro.protocol.leader import Party
from repro.protocol.network import NetworkModel


class Adversary:
    """Base strategy: observes everything, does nothing.

    The simulation calls, in slot order:

    1. :meth:`observe_block` for every block created in the slot (honest
       blocks arrive here before any honest party sees them — rushing);
    2. :meth:`honest_delays` to choose delays/ordering for each honest
       broadcast (the network clamps delays to [0, Δ]);
    3. :meth:`act` after honest production, with the corrupted parties
       elected this slot — the strategy mints and injects here.
    """

    def __init__(self) -> None:
        self.tree = BlockTree()
        self.signatures: IdealSignatureScheme | None = None
        self.keys: dict[str, KeyPair] = {}
        self.recipients: list[str] = []

    def attach(
        self,
        signatures: IdealSignatureScheme,
        keys: dict[str, KeyPair],
        recipients: list[str],
    ) -> None:
        """Wire the strategy to the simulation's primitives."""
        self.signatures = signatures
        self.keys = keys
        self.recipients = list(recipients)

    def observe_block(self, block: Block) -> None:
        """Rushing: record a block the instant it exists."""
        self.tree.add_block(block)

    def honest_delays(
        self, slot: int, block: Block
    ) -> tuple[dict[str, int], dict[str, int]]:
        """``(delays, priorities)`` per recipient for one honest broadcast."""
        return {}, {}

    def act(
        self,
        slot: int,
        corrupted_leaders: list[tuple[Party, str]],
        network: NetworkModel,
    ) -> None:
        """Mint and inject adversarial blocks (default: none)."""

    # ------------------------------------------------------------------

    def _mint(
        self, party: Party, slot: int, parent_hash: str, vrf_proof: str
    ) -> tuple[Block, str]:
        """Create a signed adversarial block on an arbitrary parent.

        Returns ``(block, block_hash)`` — the hash is computed exactly
        once here, so callers never re-derive it.
        """
        assert self.signatures is not None, "adversary not attached"
        keypair = self.keys[party.name]
        draft = Block(
            slot=slot,
            parent_hash=parent_hash,
            issuer=keypair.public,
            payload=f"adv:{party.name}",
            vrf_proof=vrf_proof,
        )
        signature = self.signatures.sign(keypair, draft.header())
        block = Block(
            slot=slot,
            parent_hash=parent_hash,
            issuer=keypair.public,
            payload=f"adv:{party.name}",
            vrf_proof=vrf_proof,
            signature=signature,
        )
        block_hash = block.block_hash
        self.tree.add_block(block, block_hash=block_hash)
        return block, block_hash


class NullAdversary(Adversary):
    """No adversarial blocks, immediate honest delivery."""


class PrivateChainAdversary(Adversary):
    """Fork privately before ``target_slot``; release when competitive.

    Parameters
    ----------
    target_slot:
        The slot whose settlement is attacked (a transaction in this
        slot's block is the double-spend victim).
    patience:
        Maximum slots after the target to keep extending privately; the
        chain is released as soon as it leads the public height by
        ``lead``, or abandoned (released anyway, for observability) when
        patience runs out.
    lead:
        Required advantage over the public chain before release.  The
        default 1 forces every honest node to reorganise; 0 releases on
        ties, which only bites observers whose tie-break the adversary
        controls.
    hold:
        Minimum number of slots past the target before releasing — the
        double-spend must outwait the victim's confirmation depth k, or
        the reorg happens before anyone relied on the target block and
        no k-settlement violation occurs.  Set this to the attacked k.
    """

    def __init__(
        self,
        target_slot: int,
        patience: int = 50,
        lead: int = 1,
        hold: int = 0,
    ) -> None:
        super().__init__()
        self.target_slot = target_slot
        self.patience = patience
        self.lead = lead
        self.hold = hold
        self._fork_point: str | None = None
        self._private_tip: str | None = None
        self._released = False

    def act(
        self,
        slot: int,
        corrupted_leaders: list[tuple[Party, str]],
        network: NetworkModel,
    ) -> None:
        # A chain carries at most one block per slot (axiom A2/F2), so only
        # the first corrupted leader of a slot can extend a given chain.
        extender = corrupted_leaders[0] if corrupted_leaders else None

        if self._released:
            # After release, behave greedily: extend the longest chain
            # (longest_tips lists maximal-depth tips in insertion order,
            # so the first entry is the earliest-observed longest chain).
            if extender is not None:
                party, proof = extender
                tip = self.tree.longest_tips()[0]
                block, _ = self._mint(party, slot, tip, proof)
                for recipient in self.recipients:
                    network.inject(block, recipient, slot)
            return

        if slot >= self.target_slot and self._fork_point is None:
            self._fork_point = self._public_block_before_target()
            self._private_tip = self._fork_point

        if self._fork_point is not None and extender is not None:
            party, proof = extender
            assert self._private_tip is not None
            _block, self._private_tip = self._mint(
                party, slot, self._private_tip, proof
            )

        if self._should_release(slot):
            self._release(slot, network)

    def _public_block_before_target(self) -> str:
        """Deepest observed block strictly before the target slot."""
        return max(
            (
                h
                for h in self.tree.hashes()
                if self.tree.slot_of(h) < self.target_slot
            ),
            key=self.tree.depth,
        )

    def _public_height(self) -> int:
        """Height of the observed network excluding the private branch."""
        private: set[str] = set()
        cursor = self._private_tip
        while cursor is not None and cursor != self._fork_point:
            private.add(cursor)
            cursor = self.tree.parent_of(cursor)
        return max(
            self.tree.depth(h)
            for h in self.tree.hashes()
            if h not in private
        )

    def _should_release(self, slot: int) -> bool:
        if self._private_tip is None or self._private_tip == self._fork_point:
            return False
        if slot < self.target_slot + self.hold:
            return False
        private_depth = self.tree.depth(self._private_tip)
        if private_depth >= self._public_height() + self.lead:
            return True
        return slot >= self.target_slot + self.patience

    def _release(self, slot: int, network: NetworkModel) -> None:
        """Publish the private branch, rushing ahead of honest messages."""
        chain: list[str] = []
        cursor = self._private_tip
        while cursor is not None and cursor != self._fork_point:
            chain.append(cursor)
            cursor = self.tree.parent_of(cursor)
        for recipient in self.recipients:
            for block_hash in reversed(chain):
                network.inject(self.tree.block(block_hash), recipient, slot)
        self._released = True

    @property
    def released(self) -> bool:
        """Whether the private chain has been published."""
        return self._released


class MaxDelayAdversary(Adversary):
    """Delay every honest broadcast by the full Δ budget (Section 8).

    The simplest Δ-synchronous stressor: late delivery manufactures
    de-facto concurrent honest leaders (an honest leader within Δ of a
    predecessor does not see its block), which is exactly the effect the
    reduction map ρ_Δ charges to the adversary.
    """

    def honest_delays(
        self, slot: int, block: Block
    ) -> tuple[dict[str, int], dict[str, int]]:
        assert self.signatures is not None, "adversary not attached"
        delta = self.max_delay
        return {recipient: delta for recipient in self.recipients}, {}

    def __init__(self, max_delay: int) -> None:
        super().__init__()
        self.max_delay = max_delay


class SplitAdversary(Adversary):
    """Keep the network split using concurrent honest blocks and A0 ordering.

    Recipients are partitioned into two groups.  When a slot produces two
    or more honest blocks (a multiply honest slot), group 0 receives one
    block first and group 1 a different one first; under the
    first-arrival tie-breaking rule each group then extends its own
    branch.  No adversarial stake is needed — this is exactly the
    phenomenon that makes ``p_H`` appear *negatively* in the Praos-style
    threshold ``p_h − p_H > p_A``, and the attack that the consistent
    rule A0′ (Theorem 2) neutralises.

    ``max_delay`` additionally holds every honest broadcast back by that
    many slots, composing the split schedule with the Section 8 delay
    stressor — the protocol sweep grid uses this to cross A0/A0′ with Δ.
    It must not exceed the network's Δ budget: the network *enforces*
    A4Δ rather than trusting adversary implementations, so an
    out-of-budget delay raises at broadcast time (as with
    :class:`MaxDelayAdversary`).
    """

    def __init__(self, max_delay: int = 0) -> None:
        super().__init__()
        if max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        self.max_delay = max_delay
        self._slot_blocks: dict[int, list[str]] = {}

    def observe_block(self, block: Block) -> None:
        block_hash = block.block_hash
        self.tree.add_block(block, block_hash=block_hash)
        hashes = self._slot_blocks.setdefault(block.slot, [])
        if block_hash not in hashes:
            hashes.append(block_hash)

    def honest_delays(
        self, slot: int, block: Block
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Order concurrent honest blocks oppositely for the two halves."""
        peers = self._slot_blocks.get(slot, [])
        block_hash = block.block_hash
        try:
            index = next(i for i, h in enumerate(peers) if h == block_hash)
        except StopIteration:
            index = 0
        half = len(self.recipients) // 2
        priorities: dict[str, int] = {}
        for position, recipient in enumerate(self.recipients):
            group = 0 if position < half else 1
            # Group 0 sees even-indexed blocks first, group 1 odd-indexed.
            favoured = (index % 2) == group
            priorities[recipient] = 0 if favoured else 1
        delays = (
            {recipient: self.max_delay for recipient in self.recipients}
            if self.max_delay
            else {}
        )
        return delays, priorities
