"""Stake-weighted leader election (the lottery behind the leader schedule).

Ouroboros Praos elects each party independently per slot with probability
``φ_f(σ) = 1 − (1 − f)^σ`` where σ is the party's relative stake and
``f`` the active-slot coefficient.  Independent per-party coins make
*concurrent* leaders possible — exactly the multiply honest slots whose
effect the paper analyses.  This module provides:

* :class:`StakeDistribution` — named parties with stakes and corruption
  flags;
* :class:`VrfLeaderElection` — the Praos lottery via the ideal VRF;
* :class:`LeaderSchedule` — a materialised slot→leaders map with its
  induced characteristic string;
* exact formulas for the induced symbol probabilities ``(p_h, p_H, p_A,
  p_⊥)`` given stakes, used to connect protocol parameters to the
  analytical machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.alphabet import ADVERSARIAL, EMPTY, HONEST_MULTI, HONEST_UNIQUE
from repro.core.distributions import SlotProbabilities
from repro.protocol.crypto import IdealVrf, KeyPair


@dataclass(frozen=True)
class Party:
    """One protocol participant."""

    name: str
    stake: float
    corrupted: bool = False


class StakeDistribution:
    """A fixed stake distribution over named parties."""

    def __init__(self, parties: list[Party]) -> None:
        if not parties:
            raise ValueError("at least one party is required")
        total = sum(party.stake for party in parties)
        if total <= 0:
            raise ValueError("total stake must be positive")
        names = [party.name for party in parties]
        if len(set(names)) != len(names):
            raise ValueError("party names must be unique")
        self.parties = list(parties)
        self.total_stake = total

    def relative_stake(self, party: Party) -> float:
        """σ — the party's fraction of total stake."""
        return party.stake / self.total_stake

    def adversarial_stake_fraction(self) -> float:
        """Combined relative stake of corrupted parties."""
        return sum(
            self.relative_stake(party)
            for party in self.parties
            if party.corrupted
        )

    @staticmethod
    def uniform(
        honest_count: int, corrupted_count: int, stake: float = 1.0
    ) -> "StakeDistribution":
        """Equal-stake distribution with the given party counts."""
        parties = [
            Party(f"honest-{i}", stake) for i in range(honest_count)
        ] + [
            Party(f"corrupt-{i}", stake, corrupted=True)
            for i in range(corrupted_count)
        ]
        return StakeDistribution(parties)


def phi(activity: float, relative_stake: float) -> float:
    """The Praos election probability ``φ_f(σ) = 1 − (1 − f)^σ``.

    Independent aggregation: a coalition's success probability depends
    only on its combined stake, which is what makes the analysis robust
    to how the adversary splits its stake across keys.
    """
    if not 0 < activity <= 1:
        raise ValueError(f"activity must lie in (0, 1], got {activity}")
    if not 0 <= relative_stake <= 1:
        raise ValueError(f"relative stake must lie in [0, 1], got {relative_stake}")
    return 1.0 - (1.0 - activity) ** relative_stake


class VrfLeaderElection:
    """The Praos lottery: party leads slot t iff ``VRF(sk, t) < φ_f(σ)``."""

    def __init__(
        self,
        stakes: StakeDistribution,
        activity: float,
        vrf: IdealVrf | None = None,
        randomness: str = "epoch-0",
    ) -> None:
        self.stakes = stakes
        self.activity = activity
        self.vrf = vrf if vrf is not None else IdealVrf()
        self.randomness = randomness
        self._keys: dict[str, KeyPair] = {
            party.name: self.vrf.generate_keypair() for party in stakes.parties
        }
        #: (party, slot) → eligibility result.  The VRF is deterministic,
        #: so the lottery for a slot is evaluated exactly once even though
        #: the simulation asks again when the elected party mints.
        self._eligibility_cache: dict[tuple[str, int], tuple[bool, float, str]] = {}

    def keypair(self, party: Party) -> KeyPair:
        """The party's VRF key pair."""
        return self._keys[party.name]

    def eligibility(self, party: Party, slot: int) -> tuple[bool, float, str]:
        """``(is_leader, vrf_value, proof)`` for one party and slot."""
        key = (party.name, slot)
        cached = self._eligibility_cache.get(key)
        if cached is not None:
            return cached
        keypair = self._keys[party.name]
        vrf_input = f"{self.randomness}|slot-{slot}"
        value, proof = self.vrf.evaluate(keypair, vrf_input)
        threshold = phi(self.activity, self.stakes.relative_stake(party))
        result = (value < threshold, value, proof)
        self._eligibility_cache[key] = result
        return result

    def leaders(self, slot: int) -> list[Party]:
        """All parties elected in ``slot`` (possibly none or several)."""
        return [
            party
            for party in self.stakes.parties
            if self.eligibility(party, slot)[0]
        ]

    def schedule(self, total_slots: int) -> "LeaderSchedule":
        """Materialise the slot→leaders map for slots 1..total_slots."""
        return LeaderSchedule(
            {slot: self.leaders(slot) for slot in range(1, total_slots + 1)}
        )


class LeaderSchedule:
    """A materialised leader schedule and its characteristic string."""

    def __init__(self, leaders_by_slot: dict[int, list[Party]]) -> None:
        self.leaders_by_slot = leaders_by_slot

    def __len__(self) -> int:
        return len(self.leaders_by_slot)

    def leaders(self, slot: int) -> list[Party]:
        """Leaders of ``slot`` (empty list for an empty slot)."""
        return self.leaders_by_slot.get(slot, [])

    def symbol(self, slot: int) -> str:
        """The slot's characteristic symbol per Definitions 1 and 20."""
        leaders = self.leaders(slot)
        if not leaders:
            return EMPTY
        if any(party.corrupted for party in leaders):
            return ADVERSARIAL
        return HONEST_UNIQUE if len(leaders) == 1 else HONEST_MULTI

    def characteristic_string(self) -> str:
        """The execution's characteristic string ``w``."""
        return "".join(
            self.symbol(slot) for slot in sorted(self.leaders_by_slot)
        )


def induced_slot_probabilities(
    stakes: StakeDistribution, activity: float
) -> SlotProbabilities:
    """Exact ``(p_h, p_H, p_A, p_⊥)`` induced by independent VRF lotteries.

    With per-party success ``φ_f(σ_i)`` independent across parties:

    * ``p_⊥ = Π_i (1 − φ_i)`` — nobody elected; by the φ aggregation
      property this equals ``(1 − f)`` exactly;
    * ``p_A = 1 − Π_{i corrupt} (1 − φ_i)`` — some corrupted leader;
    * ``p_h = (Π_corrupt (1−φ)) · Σ_{j honest} φ_j Π_{i honest, i≠j} (1−φ_i)``;
    * ``p_H = 1 − p_⊥ − p_A − p_h``.
    """
    honest = [p for p in stakes.parties if not p.corrupted]
    corrupt = [p for p in stakes.parties if p.corrupted]

    def miss(party: Party) -> float:
        return 1.0 - phi(activity, stakes.relative_stake(party))

    none_at_all = math.prod(miss(p) for p in stakes.parties)
    no_corrupt = math.prod(miss(p) for p in corrupt)
    p_adversarial = 1.0 - no_corrupt

    no_honest = math.prod(miss(p) for p in honest)
    exactly_one_honest = 0.0
    for j in honest:
        others = math.prod(miss(p) for p in honest if p is not j)
        exactly_one_honest += (1.0 - miss(j)) * others
    p_unique = no_corrupt * exactly_one_honest
    p_empty = none_at_all
    p_multi = 1.0 - p_empty - p_adversarial - p_unique
    return SlotProbabilities(p_unique, p_multi, p_adversarial, p_empty)
