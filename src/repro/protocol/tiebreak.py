"""Chain-selection tie-breaking rules (axioms A0 and A0′).

Under the longest-chain rule a node may face several maximal-length
chains.  The paper analyses two regimes:

* **A0 (adversarial tie-breaking)** — the rushing adversary controls
  message order, so ties resolve in the adversary's favour; modelled by
  ranking tied chains by arrival order (earliest first), which the
  adversary manipulates through delivery scheduling;
* **A0′ (consistent tie-breaking)** — all honest parties apply the same
  deterministic rule; any such rule works, and we use the minimal block
  hash, so two honest parties seeing the same tie set always pick the
  same chain (Theorem 2's setting).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.protocol.block import BlockTree

#: A tie-breaking rule maps (tree, tied tips, arrival ranks) to the chosen tip.
TieBreakRule = Callable[[BlockTree, list[str], dict[str, int]], str]


def adversarial_order_rule(
    tree: BlockTree, tips: list[str], arrival_rank: dict[str, int]
) -> str:
    """Axiom A0: prefer the tip whose block arrived first.

    Honest nodes keep their current chain on ties with equally long
    later arrivals, which is exactly what lets the adversary steer ties
    by delivering its preferred block first.
    """
    return min(tips, key=lambda h: (arrival_rank.get(h, 1 << 60), h))


def consistent_hash_rule(
    tree: BlockTree, tips: list[str], arrival_rank: dict[str, int]
) -> str:
    """Axiom A0′: a fixed global rule — the lexicographically least hash."""
    return min(tips)


def select_chain(
    tree: BlockTree,
    rule: TieBreakRule,
    arrival_rank: dict[str, int],
) -> str:
    """Longest-chain selection with the supplied tie-breaking rule."""
    tips = tree.longest_tips()
    if len(tips) == 1:
        return tips[0]
    return rule(tree, tips, arrival_rank)
