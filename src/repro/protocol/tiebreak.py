"""Chain-selection tie-breaking rules (axioms A0 and A0′).

Under the longest-chain rule a node may face several maximal-length
chains.  The paper analyses two regimes:

* **A0 (adversarial tie-breaking)** — the rushing adversary controls
  message order, so ties resolve in the adversary's favour; modelled by
  ranking tied chains by arrival order (earliest first), which the
  adversary manipulates through delivery scheduling.  A node that
  already adopted one of the tied chains *keeps it* when the challenger
  arrived no earlier — an equally long later arrival never displaces the
  current chain;
* **A0′ (consistent tie-breaking)** — all honest parties apply the same
  deterministic rule; any such rule works, and we use the minimal block
  hash, so two honest parties seeing the same tie set always pick the
  same chain (Theorem 2's setting).

Every rule receives the node's currently adopted tip (``None`` for a
stateless query); :func:`select_chain` threads it through.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.protocol.block import BlockTree

#: A tie-breaking rule maps (tree, tied tips, arrival ranks, current tip)
#: to the chosen tip.
TieBreakRule = Callable[[BlockTree, list[str], dict[str, int], "str | None"], str]

#: Arrival rank assigned to a tip the node never recorded an arrival
#: for: later than anything real, so known arrivals always win first.
_UNSEEN_RANK = 1 << 60


def adversarial_order_rule(
    tree: BlockTree,
    tips: list[str],
    arrival_rank: dict[str, int],
    current_tip: str | None = None,
) -> str:
    """Axiom A0: prefer the tip whose block arrived first.

    Honest nodes keep their current chain on ties with equally long
    later arrivals, which is exactly what lets the adversary steer ties
    by delivering its preferred block first: to displace an adopted
    chain the adversary must get its challenger in *earlier*, not merely
    at the same rank.  Inside a simulation per-node arrival ranks are
    unique, so the earlier-arrival comparison already decides every
    tie there; the keep-current clause binds for direct API queries
    with equal or unrecorded ranks, where the old sentinel-plus-hash
    fallback could switch a node off its adopted chain.  The hash
    comparison remains as a last-resort total order for stateless
    queries with no current tip.
    """
    def key(tip: str) -> tuple[int, int, str]:
        keep = 0 if tip == current_tip else 1
        return (arrival_rank.get(tip, _UNSEEN_RANK), keep, tip)

    return min(tips, key=key)


def consistent_hash_rule(
    tree: BlockTree,
    tips: list[str],
    arrival_rank: dict[str, int],
    current_tip: str | None = None,
) -> str:
    """Axiom A0′: a fixed global rule — the lexicographically least hash."""
    return min(tips)


def select_chain(
    tree: BlockTree,
    rule: TieBreakRule,
    arrival_rank: dict[str, int],
    current_tip: str | None = None,
) -> str:
    """Longest-chain selection with the supplied tie-breaking rule.

    ``current_tip`` is the node's adopted chain before this selection;
    rules may prefer it on ties (axiom A0's "keep your chain" clause).
    """
    tips = tree.longest_tips()
    if len(tips) == 1:
        return tips[0]
    return rule(tree, tips, arrival_rank, current_tip)
