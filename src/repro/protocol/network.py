"""Round-based networks with a rushing adversary (axioms A0 and A4Δ).

The paper's network is not packets-and-sockets; it is a scheduling
adversary.  Honest broadcasts made in slot ``t`` must reach every honest
party by the end of slot ``t + Δ`` (Δ = 0 in the synchronous model); the
adversary sees every broadcast first ("rushing"), chooses per-recipient
delivery slots within the deadline, chooses per-recipient *order* (which
drives A0 tie-breaking), and may inject its own blocks to any subset of
recipients at any time.

:class:`NetworkModel` implements exactly that contract; the simulation
engine asks it, per slot and per recipient, which messages fall due.
Adversary strategies interact with the network only through
:meth:`NetworkModel.broadcast` (honest, deadline-bound) and
:meth:`NetworkModel.inject` (adversarial, unconstrained).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocol.block import Block


@dataclass
class Delivery:
    """One scheduled message: ``block`` reaches ``recipient`` in ``slot``."""

    recipient: str
    block: Block
    slot: int
    #: Within-slot delivery order (lower = earlier), adversary-chosen.
    priority: int = 0


class NetworkModel:
    """Message scheduling under a Δ-bounded rushing adversary.

    ``delta = 0`` gives the synchronous model of Section 2 (axiom A0):
    slot-``t`` broadcasts are delivered before slot ``t + 1``.  The
    adversary may *accelerate* or *reorder* within the allowed window but
    never suppress an honest broadcast past its deadline — that invariant
    is enforced here rather than trusted to adversary implementations.
    """

    def __init__(self, recipients: list[str], delta: int = 0) -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self.recipients = list(recipients)
        self.delta = delta
        self._queue: list[Delivery] = []
        self._sequence = 0

    def broadcast(
        self,
        block: Block,
        sent_slot: int,
        delays: dict[str, int] | None = None,
        priorities: dict[str, int] | None = None,
    ) -> None:
        """Honest broadcast: deliver to everyone within the Δ deadline.

        ``delays[name] ∈ [0, Δ]`` is the adversary's per-recipient delay
        choice (default: maximal allowed delay 0 in the synchronous
        model, Δ otherwise must be chosen explicitly — the default here
        is immediate delivery, the honest-friendly schedule).
        """
        delays = delays or {}
        priorities = priorities or {}
        for recipient in self.recipients:
            delay = delays.get(recipient, 0)
            if not 0 <= delay <= self.delta:
                raise ValueError(
                    f"delay {delay} outside [0, {self.delta}] for honest "
                    f"broadcast (axiom A0/A4Δ violation)"
                )
            self._push(recipient, block, sent_slot + delay,
                       priorities.get(recipient, 0))

    def inject(
        self,
        block: Block,
        recipient: str,
        deliver_slot: int,
        priority: int = -1,
    ) -> None:
        """Adversarial injection: any block, any recipient, any time.

        Default priority −1 delivers *before* the slot's honest messages,
        modelling the rushing adversary's head start.
        """
        self._push(recipient, block, deliver_slot, priority)

    def _push(
        self, recipient: str, block: Block, slot: int, priority: int
    ) -> None:
        self._sequence += 1
        delivery = Delivery(recipient, block, slot, priority)
        # Stable sequence preserves broadcast order among equal priorities.
        delivery.priority = priority
        self._queue.append(delivery)

    def due(self, recipient: str, slot: int) -> list[Block]:
        """Messages for ``recipient`` due at the end of ``slot``, in order.

        Delivery order is (priority, enqueue order); the adversary sets
        priorities, so it fully controls per-recipient ordering (A0).
        """
        due_now = [
            d for d in self._queue if d.recipient == recipient and d.slot <= slot
        ]
        due_now.sort(key=lambda d: (d.priority, self._queue.index(d)))
        for delivery in due_now:
            self._queue.remove(delivery)
        return [d.block for d in due_now]

    def pending_count(self) -> int:
        """Undelivered messages (used by tests to check A0 compliance)."""
        return len(self._queue)
