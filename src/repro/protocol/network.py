"""Round-based networks with a rushing adversary (axioms A0 and A4Δ).

The paper's network is not packets-and-sockets; it is a scheduling
adversary.  Honest broadcasts made in slot ``t`` must reach every honest
party by the end of slot ``t + Δ`` (Δ = 0 in the synchronous model); the
adversary sees every broadcast first ("rushing"), chooses per-recipient
delivery slots within the deadline, chooses per-recipient *order* (which
drives A0 tie-breaking), and may inject its own blocks to any subset of
recipients at any time.

:class:`NetworkModel` implements exactly that contract; the simulation
engine asks it, per slot and per recipient, which messages fall due.
Adversary strategies interact with the network only through
:meth:`NetworkModel.broadcast` (honest, deadline-bound) and
:meth:`NetworkModel.inject` (adversarial, unconstrained).

Delivery order is the documented ``(priority, enqueue order)`` contract:
every :class:`Delivery` carries a monotone sequence number stamped at
enqueue time, so two *value-equal* messages (same block, recipient,
slot, and priority — which the adversary can manufacture at will) are
still distinct schedule entries and drain in exact enqueue order.  The
queue is bucketed per recipient and per delivery slot; :meth:`due` pops
whole buckets, so one call costs O(m log m) in the m messages actually
due rather than rescanning the global queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.protocol.block import Block


@dataclass
class Delivery:
    """One scheduled message: ``block`` reaches ``recipient`` in ``slot``."""

    recipient: str
    block: Block
    slot: int
    #: Within-slot delivery order (lower = earlier), adversary-chosen.
    priority: int = 0
    #: Monotone enqueue stamp; breaks priority ties in enqueue order and
    #: keeps value-equal duplicates apart (they are distinct deliveries).
    sequence: int = 0


class NetworkModel:
    """Message scheduling under a Δ-bounded rushing adversary.

    ``delta = 0`` gives the synchronous model of Section 2 (axiom A0):
    slot-``t`` broadcasts are delivered before slot ``t + 1``.  The
    adversary may *accelerate* or *reorder* within the allowed window but
    never suppress an honest broadcast past its deadline — that invariant
    is enforced here rather than trusted to adversary implementations.
    """

    def __init__(self, recipients: list[str], delta: int = 0) -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self.recipients = list(recipients)
        self.delta = delta
        #: recipient → delivery slot → deliveries, in enqueue order.
        self._buckets: dict[str, dict[int, list[Delivery]]] = {
            name: {} for name in self.recipients
        }
        #: recipient → min-heap of that recipient's pending slot keys.
        #: A slot appears exactly once: pushed when its bucket is
        #: created, popped when :meth:`due` drains it.
        self._slot_heaps: dict[str, list[int]] = {
            name: [] for name in self.recipients
        }
        self._sequence = 0
        self._pending = 0
        #: Realized end-to-end delay (in slot units) of every honest
        #: broadcast delivery to a party other than the sender — the
        #: sample behind ``SimulationResult.delay_distribution()``.  In
        #: the slot-quantized model this is just the adversary's hold;
        #: the continuous-time :class:`~repro.protocol.transport.
        #: Transport` adds the physical transit on top.
        self.realized_delays: list[float] = []

    def broadcast(
        self,
        block: Block,
        sent_slot: int,
        delays: dict[str, int] | None = None,
        priorities: dict[str, int] | None = None,
        sender: str | None = None,
    ) -> None:
        """Honest broadcast: deliver to everyone within the Δ deadline.

        ``delays[name] ∈ [0, Δ]`` is the adversary's per-recipient delay
        choice (default: maximal allowed delay 0 in the synchronous
        model, Δ otherwise must be chosen explicitly — the default here
        is immediate delivery, the honest-friendly schedule).

        ``sender`` names the broadcasting party; the slot model ignores
        it for scheduling (the graph is complete and links are free) but
        uses it to exclude the sender's own loopback delivery from the
        realized-delay sample.  Transport subclasses additionally route
        by it.
        """
        delays = delays or {}
        priorities = priorities or {}
        for recipient in self.recipients:
            delay = delays.get(recipient, 0)
            if not 0 <= delay <= self.delta:
                raise ValueError(
                    f"delay {delay} outside [0, {self.delta}] for honest "
                    f"broadcast (axiom A0/A4Δ violation)"
                )
            self._push(recipient, block, sent_slot + delay,
                       priorities.get(recipient, 0))
            if recipient != sender:
                self.realized_delays.append(float(delay))

    def inject(
        self,
        block: Block,
        recipient: str,
        deliver_slot: int,
        priority: int = -1,
    ) -> None:
        """Adversarial injection: any block, any recipient, any time.

        Default priority −1 delivers *before* the slot's honest messages,
        modelling the rushing adversary's head start.
        """
        self._push(recipient, block, deliver_slot, priority)

    def _push(
        self, recipient: str, block: Block, slot: int, priority: int
    ) -> None:
        self._sequence += 1
        bucket = self._buckets.setdefault(recipient, {})
        deliveries = bucket.get(slot)
        if deliveries is None:
            deliveries = bucket[slot] = []
            heapq.heappush(
                self._slot_heaps.setdefault(recipient, []), slot
            )
        deliveries.append(
            Delivery(recipient, block, slot, priority, self._sequence)
        )
        self._pending += 1

    def due(self, recipient: str, slot: int) -> list[Block]:
        """Messages for ``recipient`` due at the end of ``slot``, in order.

        Delivery order is (priority, enqueue order); the adversary sets
        priorities, so it fully controls per-recipient ordering (A0).
        Each call drains exactly the due buckets: cost is O(m log m) in
        the m returned messages, independent of everything still queued.
        """
        heap = self._slot_heaps.get(recipient)
        if not heap or heap[0] > slot:
            return []
        bucket = self._buckets[recipient]
        due_now: list[Delivery] = []
        while heap and heap[0] <= slot:
            due_now.extend(bucket.pop(heapq.heappop(heap)))
        due_now.sort(key=lambda d: (d.priority, d.sequence))
        self._pending -= len(due_now)
        return [d.block for d in due_now]

    def pending_count(self) -> int:
        """Undelivered messages (used by tests to check A0 compliance)."""
        return self._pending

    def final_drain_slot(self, total_slots: int) -> int:
        """The slot whose drain empties every deadline-bound message.

        The slot model's deadline is ``total_slots + Δ`` (axiom A4Δ).
        Transport subclasses override this with their scheduling
        horizon: physical transit may legitimately outlast the Δ budget,
        and the end-of-run views must still include those messages.
        """
        return total_slots + self.delta
