"""Continuous-time heterogeneous transport (the WAN behind the Δ axiom).

The paper's network model quantizes delivery into slots under a single
worst-case Δ; its guarantees hold against *any* schedule the adversary
realizes within that budget.  A real WAN produces a distribution of
effective delays instead of a constant — per-link latency, bandwidth,
message size, gossip relay hops, and jitter.  :class:`Transport` models
exactly that, following hydrachain's transport cost model (per-link
base latency + bandwidth, message-size-dependent transfer time), while
keeping the paper's adversary intact:

* the **adversarial hold** (``delays[recipient]``, slot-granular,
  enforced ≤ Δ) *composes* with the physical transit — the adversary
  delays the hand-off to the network, then physics takes over.  It
  never overwrites or clamps the transit;
* **per-recipient ordering** within one ingestion batch stays the
  documented ``(priority, enqueue order)`` contract of
  :class:`~repro.protocol.network.NetworkModel` — the rushing adversary
  still controls A0 tie-break order; physics only decides *which slot*
  a message becomes available in;
* **injection** stays out-of-band: the adversary delivers its own
  blocks on its own channel at whatever slot it names, unconstrained by
  topology or bandwidth (exactly the slot model's ``inject``).

Delay model (slot units, hydrachain §1 generalized to relays)::

    transit(sender → recipient) =
        hops · (latency + size / bandwidth) + jitter_draw

where ``hops`` is the gossip-relay path length in the configured
topology (store-and-forward: every hop pays latency and transfer),
``size`` is :func:`message_size` bytes, ``bandwidth = 0`` means
infinite, and ``jitter_draw`` is one seeded draw per (message,
recipient) from the configured distribution (fixed / uniform /
exponential-with-cap; scale 0 never touches the generator).  A message
broadcast in slot ``t`` with hold ``h`` is available to its recipient
in slot ``⌊t + h + transit⌋``.

**Degenerate-case guarantee** (pinned by ``tests/protocol/
test_transport.py``): with a uniform sub-slot link latency, infinite
bandwidth, a complete graph, and no jitter — the default
:class:`TransportConfig` — every delivery lands in exactly the slot the
slot-quantized :class:`~repro.protocol.network.NetworkModel` assigns,
with identical ``(priority, sequence)`` ordering, so whole
``SimulationResult``s are bit-identical.  The paper's model is the
special case, not a parallel code path.
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.protocol.block import Block
from repro.protocol.events import EventScheduler
from repro.protocol.network import Delivery, NetworkModel

__all__ = [
    "BLOCK_HEADER_BYTES",
    "JITTERS",
    "TOPOLOGIES",
    "Transport",
    "TransportConfig",
    "build_adjacency",
    "hop_counts",
    "message_size",
    "sample_jitter",
    "transport_seed",
]

#: Nominal wire size of a block header + signature + VRF proof, in
#: bytes; the payload rides on top (see :func:`message_size`).
BLOCK_HEADER_BYTES = 512

#: Supported jitter distributions.
JITTERS = ("fixed", "uniform", "exponential")

#: Supported gossip-relay topologies.
TOPOLOGIES = ("complete", "star", "ring", "random")


@dataclass(frozen=True)
class TransportConfig:
    """Frozen description of one WAN: links, topology, jitter.

    All fields are JSON-serialisable primitives (mirroring the scenario
    contract).  The default instance is the degenerate case — free
    links, complete graph, no jitter — under which :class:`Transport`
    is bit-identical to the slot-quantized model.

    ``latency`` and all derived delays are measured in *slot units*
    (fractions allowed); ``bandwidth`` is bytes per slot per link, with
    ``0`` meaning infinite; ``jitter_scale`` is the uniform upper bound
    or the exponential mean, and ``jitter_cap`` the exponential
    truncation point (``0`` defaults to ``8 × jitter_scale``).
    ``edge_probability`` and ``topology_seed`` parameterise the random
    topology: a ring backbone (connectivity is guaranteed — honest
    messages must reach everyone) plus seeded random chords.
    """

    latency: float = 0.0
    bandwidth: float = 0.0
    jitter: str = "fixed"
    jitter_scale: float = 0.0
    jitter_cap: float = 0.0
    topology: str = "complete"
    edge_probability: float = 0.5
    topology_seed: int = 0

    def __post_init__(self) -> None:
        if not self.latency >= 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if not self.bandwidth >= 0:
            raise ValueError(
                f"bandwidth must be >= 0 (0 = infinite), got {self.bandwidth}"
            )
        if self.jitter not in JITTERS:
            known = ", ".join(JITTERS)
            raise ValueError(f"unknown jitter {self.jitter!r}; known: {known}")
        if not self.jitter_scale >= 0:
            raise ValueError(
                f"jitter_scale must be >= 0, got {self.jitter_scale}"
            )
        if not self.jitter_cap >= 0:
            raise ValueError(f"jitter_cap must be >= 0, got {self.jitter_cap}")
        if self.topology not in TOPOLOGIES:
            known = ", ".join(TOPOLOGIES)
            raise ValueError(
                f"unknown topology {self.topology!r}; known: {known}"
            )
        if not 0.0 <= self.edge_probability <= 1.0:
            raise ValueError(
                f"edge_probability must lie in [0, 1], "
                f"got {self.edge_probability}"
            )

    @property
    def exponential_cap(self) -> float:
        """The effective truncation point of the exponential jitter."""
        return self.jitter_cap if self.jitter_cap > 0 else 8 * self.jitter_scale


def message_size(block: Block) -> int:
    """Wire size of one block message, in bytes."""
    return BLOCK_HEADER_BYTES + len(block.payload.encode("utf-8"))


def sample_jitter(config: TransportConfig, generator: np.random.Generator) -> float:
    """One jitter draw from the configured distribution.

    ``fixed`` is a constant offset of ``jitter_scale``; ``uniform``
    draws from ``[0, jitter_scale)``; ``exponential`` draws with mean
    ``jitter_scale`` truncated at :attr:`TransportConfig.
    exponential_cap`.  A scale of 0 returns 0.0 *without consuming the
    generator* — the degenerate configuration leaves the seeded stream
    untouched, so enabling jitter later never silently re-keys
    anything else.
    """
    scale = config.jitter_scale
    if scale == 0 or config.jitter == "fixed":
        return scale
    if config.jitter == "uniform":
        return float(generator.uniform(0.0, scale))
    return float(min(generator.exponential(scale), config.exponential_cap))


def transport_seed(randomness: str) -> int:
    """Derive the transport's jitter seed from a run's randomness string.

    Platform-stable (SHA-256, not ``hash()``), and domain-separated from
    the VRF/signature seeds the same string feeds.
    """
    digest = hashlib.sha256(f"transport|{randomness}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------


def build_adjacency(
    nodes: list[str], config: TransportConfig
) -> dict[str, list[str]]:
    """The gossip graph: node → neighbours, in deterministic order.

    * ``complete`` — every pair linked (the paper's implicit graph);
    * ``star`` — the first node is the hub, everyone else a leaf;
    * ``ring`` — a cycle in list order;
    * ``random`` — a ring backbone (guaranteeing connectivity: honest
      messages must reach every party) plus chords drawn with
      ``edge_probability`` from a generator seeded by
      ``topology_seed``.  The wiring is a pure function of
      ``(nodes, config)`` — every trial of a scenario point shares it.
    """
    adjacency: dict[str, list[str]] = {name: [] for name in nodes}

    def link(a: str, b: str) -> None:
        if b not in adjacency[a]:
            adjacency[a].append(b)
            adjacency[b].append(a)

    if config.topology == "complete":
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                link(a, b)
    elif config.topology == "star":
        hub = nodes[0]
        for leaf in nodes[1:]:
            link(hub, leaf)
    elif config.topology == "ring":
        if len(nodes) == 2:
            link(nodes[0], nodes[1])
        else:
            for i, a in enumerate(nodes):
                link(a, nodes[(i + 1) % len(nodes)])
    else:  # random: ring backbone + seeded chords
        if len(nodes) == 2:
            link(nodes[0], nodes[1])
        else:
            for i, a in enumerate(nodes):
                link(a, nodes[(i + 1) % len(nodes)])
        rng = np.random.default_rng(config.topology_seed)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if b in adjacency[a]:
                    continue
                if rng.random() < config.edge_probability:
                    link(a, b)
    return adjacency


def hop_counts(adjacency: dict[str, list[str]], source: str) -> dict[str, int]:
    """BFS hop distance from ``source`` to every reachable node."""
    hops = {source: 0}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        for neighbour in adjacency[current]:
            if neighbour not in hops:
                hops[neighbour] = hops[current] + 1
                frontier.append(neighbour)
    return hops


# ----------------------------------------------------------------------
# The transport
# ----------------------------------------------------------------------


class Transport(NetworkModel):
    """Continuous-time message delivery with the slot model's adversary.

    A :class:`~repro.protocol.network.NetworkModel` whose delivery times
    live on the continuous line: one :class:`~repro.protocol.events.
    EventScheduler` per recipient holds ``(time, sequence)``-ordered
    deliveries, and :meth:`due` drains everything landing inside the
    asked slot (``time < slot + 1``), then sorts the batch by the
    inherited ``(priority, sequence)`` contract.  See the module
    docstring for the delay model and the degenerate-case guarantee.

    ``seed`` keys the jitter generator; simulations derive it from
    their randomness string via :func:`transport_seed`, so a trial's
    schedule is a pure function of its per-chunk seed — the engine's
    reproducibility contract holds unchanged.
    """

    def __init__(
        self,
        recipients: list[str],
        delta: int = 0,
        config: TransportConfig | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(recipients, delta)
        self.config = config if config is not None else TransportConfig()
        self._rng = np.random.default_rng(seed)
        self._schedulers = {name: EventScheduler() for name in self.recipients}
        self._adjacency = build_adjacency(self.recipients, self.config)
        self._hops: dict[str, dict[str, int]] = {}
        self._horizon = 0

    # -- routing -------------------------------------------------------

    def hops_from(self, sender: str | None) -> dict[str, int]:
        """Relay hop counts from ``sender`` to every recipient.

        An unknown (or ``None``) sender is treated as directly linked to
        everyone — one hop, no relays — so direct library use without a
        named sender still pays exactly one link.
        """
        if sender is None or sender not in self._adjacency:
            return {name: 1 for name in self.recipients}
        cached = self._hops.get(sender)
        if cached is None:
            cached = hop_counts(self._adjacency, sender)
            self._hops[sender] = cached
        return cached

    def link_delay(self, hops: int, size: int) -> float:
        """Physical transit over ``hops`` store-and-forward links."""
        if hops == 0:
            return 0.0
        per_hop = self.config.latency
        if self.config.bandwidth > 0:
            per_hop += size / self.config.bandwidth
        return hops * per_hop + sample_jitter(self.config, self._rng)

    # -- NetworkModel interface ----------------------------------------

    def broadcast(
        self,
        block: Block,
        sent_slot: int,
        delays: dict[str, int] | None = None,
        priorities: dict[str, int] | None = None,
        sender: str | None = None,
    ) -> None:
        """Honest broadcast: adversarial hold, then physics.

        The hold (``delays[recipient]``) is still enforced within the Δ
        budget — A4Δ bounds the *adversary*, not the network fabric.
        The physical transit composes on top and may legitimately
        exceed Δ; :meth:`~NetworkModel.final_drain_slot` and the
        realized-delay sample make that excess observable instead of
        silently clamping it.
        """
        delays = delays or {}
        priorities = priorities or {}
        size = message_size(block)
        hops = self.hops_from(sender)
        for recipient in self.recipients:
            hold = delays.get(recipient, 0)
            if not 0 <= hold <= self.delta:
                raise ValueError(
                    f"delay {hold} outside [0, {self.delta}] for honest "
                    f"broadcast (axiom A0/A4Δ violation)"
                )
            transit = self.link_delay(hops.get(recipient, 1), size)
            self._schedule(
                recipient,
                block,
                sent_slot + hold + transit,
                priorities.get(recipient, 0),
            )
            if recipient != sender:
                self.realized_delays.append(hold + transit)

    def inject(
        self,
        block: Block,
        recipient: str,
        deliver_slot: int,
        priority: int = -1,
    ) -> None:
        """Adversarial injection: the adversary's own channel.

        Lands at the start of the named slot, untouched by topology,
        bandwidth, or jitter — the slot model's unconstrained delivery,
        preserved verbatim (and excluded from the honest realized-delay
        sample)."""
        self._schedule(recipient, block, float(deliver_slot), priority)

    def _schedule(
        self, recipient: str, block: Block, time: float, priority: int
    ) -> None:
        self._sequence += 1
        scheduler = self._schedulers[recipient]
        event = scheduler.schedule(
            time, Delivery(recipient, block, 0, priority, self._sequence)
        )
        # The scheduler may have clamped a behind-the-clock time; the
        # delivery's quantized slot reflects what was actually booked.
        slot = math.floor(event.time)
        event.payload.slot = slot
        self._horizon = max(self._horizon, slot)
        self._pending += 1

    def due(self, recipient: str, slot: int) -> list[Block]:
        """Messages landing by the end of ``slot``, in contract order.

        Drains every event with ``time < slot + 1`` (i.e. quantized
        delivery slot ≤ ``slot``), then sorts the batch by
        ``(priority, sequence)`` — physics picks the batch, the rushing
        adversary still picks the order within it (A0)."""
        scheduler = self._schedulers.get(recipient)
        if scheduler is None:
            return []
        drained = [event.payload for event in scheduler.pop_until(slot + 1)]
        drained.sort(key=lambda d: (d.priority, d.sequence))
        self._pending -= len(drained)
        return [d.block for d in drained]

    def pending_count(self) -> int:
        return self._pending

    def final_drain_slot(self, total_slots: int) -> int:
        """The transport's horizon: physics may outlast the Δ deadline."""
        return max(total_slots + self.delta, self._horizon)
