"""Deterministic discrete-event core for the continuous-time network.

PR 3 established that the event queue is where subtle ordering bugs
live (the equality-aliased ``(priority, list.index)`` regression), so
the continuous-time scheduler is specified — and property-tested — as
its own tiny module with an explicit contract:

* **Stable ordering.**  Events are served in ``(time, sequence)`` order,
  where ``sequence`` is a monotone stamp assigned at schedule time.
  Two events at the same instant therefore drain in exact insertion
  order, and value-equal payloads are still distinct schedule entries.
* **Monotone event clock.**  ``now`` never decreases: popping an event
  advances the clock to its time, draining up to a bound advances the
  clock to the bound, and scheduling *behind* the clock is clamped to
  ``now`` (a message cannot be delivered in the past — it is delivered
  at the next opportunity instead, exactly the behaviour of the
  slot-bucketed :class:`~repro.protocol.network.NetworkModel` when the
  adversary injects into an already-drained slot).
* **Determinism.**  The scheduler itself draws no randomness.
  Stochastic delays are sampled by the caller (the transport layer)
  from seeded generators *before* scheduling, so a schedule is a pure
  function of the call sequence — bit-identical under re-run with the
  same seed, which is what lets the engine's per-chunk ``SeedSequence``
  contract extend to continuous-time networks unchanged.

``tests/protocol/test_events.py`` pins all of this down with
hypothesis-generated workloads: no event is ever lost or duplicated,
pop times are monotone non-decreasing, equal-time events preserve
insertion order, and schedules replay bit-identically.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

__all__ = ["Event", "EventScheduler"]


@dataclass(frozen=True)
class Event:
    """One scheduled event: ``payload`` fires at ``time``.

    ``sequence`` is the scheduler's monotone insertion stamp — the
    tie-break that keeps equal-time events in insertion order and
    value-equal payloads apart.
    """

    time: float
    sequence: int
    payload: object


class EventScheduler:
    """A deterministic event queue with a monotone clock.

    The heap is keyed by ``(time, sequence)`` only — payloads are never
    compared, so any object (including unorderable ones) can be
    scheduled.  See the module docstring for the full contract.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """The event clock: the latest time served so far."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, payload: object) -> Event:
        """Enqueue ``payload`` at ``time``; returns the stamped event.

        ``time`` must be finite.  Times behind the clock are clamped to
        ``now`` (delivery at the next opportunity, never in the past).
        """
        time = float(time)
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self._now:
            time = self._now
        self._sequence += 1
        event = Event(time, self._sequence, payload)
        heapq.heappush(self._heap, (time, self._sequence, event))
        return event

    def peek_time(self) -> float | None:
        """The earliest pending event time, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event:
        """Serve the earliest event and advance the clock to its time."""
        if not self._heap:
            raise IndexError("pop from an empty EventScheduler")
        _time, _sequence, event = heapq.heappop(self._heap)
        self._now = max(self._now, event.time)
        return event

    def pop_until(self, bound: float) -> list[Event]:
        """Serve every event with ``time < bound``, in schedule order.

        Advances the clock to ``bound`` even when nothing is due —
        draining *is* observing the interval, so later schedules cannot
        slip behind it.  The bound is exclusive: an event at exactly
        ``bound`` stays pending (slot semantics — the transport drains
        slot ``t`` with bound ``t + 1``).
        """
        bound = float(bound)
        if not math.isfinite(bound):
            raise ValueError(f"drain bound must be finite, got {bound!r}")
        served: list[Event] = []
        while self._heap and self._heap[0][0] < bound:
            served.append(heapq.heappop(self._heap)[2])
        self._now = max(self._now, bound)
        return served
