"""Hash-chained blocks and block trees (the protocol's ledger layer).

A :class:`Block` commits to its parent by hash (immutability: a block
pins its entire prefix — the property behind fork axiom A2/F2) and
carries the slot number, the issuer's verification key, the VRF
eligibility proof, an opaque payload, and the issuer's signature.

A :class:`BlockTree` is a node's local view: all valid blocks received so
far, indexed by hash, rooted at genesis.  It answers longest-chain
queries and converts executions into the paper's abstract forks (see
:func:`repro.protocol.simulation.execution_fork`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocol.crypto import hash_data

#: Slot number carried by the genesis block.
GENESIS_SLOT = 0


@dataclass(frozen=True)
class Block:
    """One immutable block.

    ``parent_hash`` is ``""`` only for genesis.  ``issuer`` is the
    issuing party's verification key (empty for genesis); ``signature``
    and ``vrf_proof`` are the ideal-functionality tags checked by
    :meth:`BlockTree.validate_block`.
    """

    slot: int
    parent_hash: str
    issuer: str
    payload: str = ""
    vrf_proof: str = ""
    signature: str = ""

    @property
    def block_hash(self) -> str:
        """Commitment to the full content (and, transitively, the prefix)."""
        return hash_data(
            "block",
            self.slot,
            self.parent_hash,
            self.issuer,
            self.payload,
            self.vrf_proof,
        )

    def header(self) -> str:
        """The signed portion of the block."""
        return hash_data(
            "header", self.slot, self.parent_hash, self.issuer, self.payload
        )


def genesis_block() -> Block:
    """The common genesis block (slot 0), shared by every party."""
    return Block(slot=GENESIS_SLOT, parent_hash="", issuer="")


class BlockTree:
    """A party's local set of valid blocks, rooted at genesis.

    Provides chain queries used by the longest-chain rule.  Validation is
    structural here (parent known, slot increasing); leader-eligibility
    and signature checks are injected by the simulation via a callback so
    the tree stays independent of the election mechanism.
    """

    def __init__(self) -> None:
        root = genesis_block()
        self._blocks: dict[str, Block] = {root.block_hash: root}
        self._children: dict[str, list[str]] = {root.block_hash: []}
        self._depths: dict[str, int] = {root.block_hash: 0}
        self.genesis_hash = root.block_hash

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def block(self, block_hash: str) -> Block:
        """Look a block up by hash."""
        return self._blocks[block_hash]

    def depth(self, block_hash: str) -> int:
        """Chain length (number of non-genesis ancestors, inclusive)."""
        return self._depths[block_hash]

    def can_accept(self, block: Block) -> bool:
        """Structural validity: known parent, strictly increasing slot."""
        if block.parent_hash not in self._blocks:
            return False
        parent = self._blocks[block.parent_hash]
        return block.slot > parent.slot

    def add_block(self, block: Block) -> bool:
        """Insert a structurally valid block; idempotent.

        Returns ``True`` when the block is (now) present, ``False`` when
        rejected (unknown parent or non-increasing slot).
        """
        block_hash = block.block_hash
        if block_hash in self._blocks:
            return True
        if not self.can_accept(block):
            return False
        self._blocks[block_hash] = block
        self._children[block_hash] = []
        self._children[block.parent_hash].append(block_hash)
        self._depths[block_hash] = self._depths[block.parent_hash] + 1
        return True

    def tips(self) -> list[str]:
        """Hashes of leaf blocks (chains not extended by anything known)."""
        return [h for h, children in self._children.items() if not children]

    def max_depth(self) -> int:
        """Length of the longest known chain."""
        return max(self._depths.values())

    def longest_tips(self) -> list[str]:
        """All block hashes at maximal depth (the LCR tie set)."""
        best = self.max_depth()
        return [h for h, d in self._depths.items() if d == best]

    def chain(self, block_hash: str) -> list[Block]:
        """The chain from genesis to ``block_hash`` (inclusive)."""
        chain: list[Block] = []
        cursor = block_hash
        while True:
            block = self._blocks[cursor]
            chain.append(block)
            if block.parent_hash == "":
                break
            cursor = block.parent_hash
        chain.reverse()
        return chain

    def chain_slots(self, block_hash: str) -> list[int]:
        """Slot labels along the chain, genesis first."""
        return [block.slot for block in self.chain(block_hash)]

    def common_prefix_slot(self, first: str, second: str) -> int:
        """Slot of the deepest common ancestor of two chains."""
        chain_a = self.chain(first)
        chain_b = self.chain(second)
        last_common = GENESIS_SLOT
        for block_a, block_b in zip(chain_a, chain_b):
            if block_a.block_hash != block_b.block_hash:
                break
            last_common = block_a.slot
        return last_common

    def prefix_hash_at_slot(self, block_hash: str, slot: int) -> str:
        """Hash of the last block with slot ≤ ``slot`` on the given chain.

        The k-CP comparison primitive: ``C[0 : s]`` of Section 9.
        """
        chosen = self.genesis_hash
        for block in self.chain(block_hash):
            if block.slot <= slot:
                chosen = block.block_hash
            else:
                break
        return chosen

    def all_blocks(self) -> list[Block]:
        """All blocks, genesis included, in insertion order."""
        return list(self._blocks.values())
