"""Hash-chained blocks and block trees (the protocol's ledger layer).

A :class:`Block` commits to its parent by hash (immutability: a block
pins its entire prefix — the property behind fork axiom A2/F2) and
carries the slot number, the issuer's verification key, the VRF
eligibility proof, an opaque payload, and the issuer's signature.
``Block.block_hash`` *recomputes* the SHA-256 commitment on every access
— that is the reference cost model (a verifier hashes what it checks);
hot paths avoid it by construction, see below.

A :class:`BlockTree` is a node's local view: all valid blocks received
so far, indexed by hash, rooted at genesis.  Beyond the block map it
maintains parent, slot, depth, and depth-bucket indexes keyed by hash,
so every chain query the protocol layer needs — longest tips, common
prefix, prefix-at-slot — resolves through dictionary walks without
recomputing a single block hash.  The batched protocol measurements
(:mod:`repro.protocol.simulation`, :mod:`repro.engine.protocol`) lean on
these indexes; the ``*_scalar`` measurement oracles deliberately walk
:meth:`chain` and recompute hashes, preserving the original cost model
for the scalar-vs-batched benchmark comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocol.crypto import hash_data

#: Slot number carried by the genesis block.
GENESIS_SLOT = 0


@dataclass(frozen=True)
class Block:
    """One immutable block.

    ``parent_hash`` is ``""`` only for genesis.  ``issuer`` is the
    issuing party's verification key (empty for genesis); ``signature``
    and ``vrf_proof`` are the ideal-functionality tags checked by
    :meth:`BlockTree.validate_block`.
    """

    slot: int
    parent_hash: str
    issuer: str
    payload: str = ""
    vrf_proof: str = ""
    signature: str = ""

    @property
    def block_hash(self) -> str:
        """Commitment to the full content (and, transitively, the prefix)."""
        return hash_data(
            "block",
            self.slot,
            self.parent_hash,
            self.issuer,
            self.payload,
            self.vrf_proof,
        )

    def header(self) -> str:
        """The signed portion of the block."""
        return hash_data(
            "header", self.slot, self.parent_hash, self.issuer, self.payload
        )


def genesis_block() -> Block:
    """The common genesis block (slot 0), shared by every party."""
    return Block(slot=GENESIS_SLOT, parent_hash="", issuer="")


class BlockTree:
    """A party's local set of valid blocks, rooted at genesis.

    Provides chain queries used by the longest-chain rule.  Validation is
    structural here (parent known, slot increasing); leader-eligibility
    and signature checks are injected by the simulation via a callback so
    the tree stays independent of the election mechanism.
    """

    def __init__(self) -> None:
        root = genesis_block()
        root_hash = root.block_hash
        self._blocks: dict[str, Block] = {root_hash: root}
        self._children: dict[str, list[str]] = {root_hash: []}
        self._depths: dict[str, int] = {root_hash: 0}
        self._parents: dict[str, str] = {root_hash: ""}
        self._slots: dict[str, int] = {root_hash: GENESIS_SLOT}
        #: depth → hashes at that depth, in insertion order.
        self._by_depth: dict[int, list[str]] = {0: [root_hash]}
        self._max_depth = 0
        self.genesis_hash = root_hash

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def block(self, block_hash: str) -> Block:
        """Look a block up by hash."""
        return self._blocks[block_hash]

    def depth(self, block_hash: str) -> int:
        """Chain length (number of non-genesis ancestors, inclusive)."""
        return self._depths[block_hash]

    def parent_of(self, block_hash: str) -> str:
        """Parent hash (``""`` for genesis) without touching the block."""
        return self._parents[block_hash]

    def slot_of(self, block_hash: str) -> int:
        """Slot label without touching the block."""
        return self._slots[block_hash]

    def hashes(self) -> list[str]:
        """All block hashes, genesis included, in insertion order."""
        return list(self._blocks)

    def can_accept(self, block: Block) -> bool:
        """Structural validity: known parent, strictly increasing slot."""
        parent_slot = self._slots.get(block.parent_hash)
        return parent_slot is not None and block.slot > parent_slot

    def add_block(self, block: Block, block_hash: str | None = None) -> bool:
        """Insert a structurally valid block; idempotent.

        Returns ``True`` when the block is (now) present, ``False`` when
        rejected (unknown parent or non-increasing slot).  Callers that
        already know the hash (the simulation's shared-validation path
        interns it once per block) pass it as ``block_hash`` to skip the
        recomputation; when omitted it is derived here.
        """
        if block_hash is None:
            block_hash = block.block_hash
        if block_hash in self._blocks:
            return True
        if not self.can_accept(block):
            return False
        self._blocks[block_hash] = block
        self._children[block_hash] = []
        self._children[block.parent_hash].append(block_hash)
        depth = self._depths[block.parent_hash] + 1
        self._depths[block_hash] = depth
        self._parents[block_hash] = block.parent_hash
        self._slots[block_hash] = block.slot
        self._by_depth.setdefault(depth, []).append(block_hash)
        if depth > self._max_depth:
            self._max_depth = depth
        return True

    def tips(self) -> list[str]:
        """Hashes of leaf blocks (chains not extended by anything known)."""
        return [h for h, children in self._children.items() if not children]

    def max_depth(self) -> int:
        """Length of the longest known chain."""
        return self._max_depth

    def longest_tips(self) -> list[str]:
        """All block hashes at maximal depth (the LCR tie set)."""
        return list(self._by_depth[self._max_depth])

    def chain(self, block_hash: str) -> list[Block]:
        """The chain from genesis to ``block_hash`` (inclusive)."""
        chain: list[Block] = []
        cursor = block_hash
        while True:
            block = self._blocks[cursor]
            chain.append(block)
            if block.parent_hash == "":
                break
            cursor = block.parent_hash
        chain.reverse()
        return chain

    def chain_hashes(self, block_hash: str) -> list[str]:
        """Hashes along the chain, genesis first — pure index walk."""
        hashes: list[str] = []
        cursor = block_hash
        while cursor != "":
            hashes.append(cursor)
            cursor = self._parents[cursor]
        hashes.reverse()
        return hashes

    def chain_slots(self, block_hash: str) -> list[int]:
        """Slot labels along the chain, genesis first."""
        return [self._slots[h] for h in self.chain_hashes(block_hash)]

    def common_prefix_slot(self, first: str, second: str) -> int:
        """Slot of the deepest common ancestor of two chains.

        Resolved by lifting the deeper chain to equal depth and walking
        both up in lockstep over the parent index — O(depth), no hash
        recomputation.
        """
        a, b = first, second
        depth_a, depth_b = self._depths[a], self._depths[b]
        while depth_a > depth_b:
            a = self._parents[a]
            depth_a -= 1
        while depth_b > depth_a:
            b = self._parents[b]
            depth_b -= 1
        while a != b:
            a = self._parents[a]
            b = self._parents[b]
        return self._slots[a]

    def prefix_hash_at_slot(self, block_hash: str, slot: int) -> str:
        """Hash of the last block with slot ≤ ``slot`` on the given chain.

        The k-CP comparison primitive: ``C[0 : s]`` of Section 9.  Slots
        strictly increase along a chain, so walking up from the tip until
        the label fits is exact.
        """
        cursor = block_hash
        while self._slots[cursor] > slot:
            cursor = self._parents[cursor]
        return cursor

    def all_blocks(self) -> list[Block]:
        """All blocks, genesis included, in insertion order."""
        return list(self._blocks.values())
