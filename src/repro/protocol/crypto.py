"""Ideal cryptographic functionalities for the protocol simulation.

The paper's axioms assume cryptography works perfectly: blocks carry
unforgeable slot labels (A1–A3, "guaranteed with digital signatures") and
leader election is an ideal lottery.  Following the standard
ideal-functionality methodology, this module implements the *interfaces*
of a hash, a signature scheme and a VRF with perfect security inside the
simulation:

* hashing is real SHA-256 (collision resistance is inherited);
* :class:`IdealSignatureScheme` keeps a private registry of issued keys —
  verification consults the registry, so forging a signature for a key
  the scheme issued is impossible by construction;
* :class:`IdealVrf` derives outputs by hashing (seed, secret, input), so
  evaluations are deterministic, uniformly distributed, and only the key
  holder can produce them; proofs verify through the same registry.

These are *simulated* primitives: the substitution (documented in
DESIGN.md) preserves exactly the properties the analysis consumes and
nothing else.  Do not use them outside a simulation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def hash_data(*parts: bytes | str | int) -> str:
    """SHA-256 over a canonical encoding of the parts (hex digest)."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, int):
            encoded = str(part).encode()
        elif isinstance(part, str):
            encoded = part.encode()
        else:
            encoded = part
        hasher.update(len(encoded).to_bytes(8, "big"))
        hasher.update(encoded)
    return hasher.hexdigest()


@dataclass(frozen=True)
class KeyPair:
    """A verification/signing key pair issued by an ideal scheme."""

    public: str
    secret: str


class IdealSignatureScheme:
    """EUF-CMA "by construction": verification consults the key registry.

    ``sign`` derives a deterministic tag from (secret, message); ``verify``
    recomputes it from the registry entry for the public key.  Signatures
    by unregistered keys or on altered messages never verify.
    """

    def __init__(self, seed: str = "repro-signatures") -> None:
        self._seed = seed
        self._registry: dict[str, str] = {}
        self._counter = 0

    def generate_keypair(self) -> KeyPair:
        """Issue a fresh key pair and record it in the registry."""
        self._counter += 1
        secret = hash_data(self._seed, "secret", self._counter)
        public = hash_data(self._seed, "public", secret)
        self._registry[public] = secret
        return KeyPair(public, secret)

    def sign(self, keypair: KeyPair, message: str) -> str:
        """Deterministic signature of ``message`` under ``keypair``."""
        if self._registry.get(keypair.public) != keypair.secret:
            raise ValueError("signing key was not issued by this scheme")
        return hash_data("sig", keypair.secret, message)

    def verify(self, public: str, message: str, signature: str) -> bool:
        """True iff ``signature`` is the registered key's tag on ``message``."""
        secret = self._registry.get(public)
        if secret is None:
            return False
        return signature == hash_data("sig", secret, message)


class IdealVrf:
    """A verifiable random function with ideal uniqueness and uniformity.

    ``evaluate(keypair, input)`` returns ``(value, proof)`` where ``value``
    is a float in [0, 1) deterministic in (scheme seed, secret, input).
    The seed separates independent lotteries (e.g. per-epoch randomness).
    """

    def __init__(self, seed: str = "repro-vrf") -> None:
        self._seed = seed
        self._registry: dict[str, str] = {}
        self._counter = 0

    def generate_keypair(self) -> KeyPair:
        """Issue a fresh VRF key pair."""
        self._counter += 1
        secret = hash_data(self._seed, "vrf-secret", self._counter)
        public = hash_data(self._seed, "vrf-public", secret)
        self._registry[public] = secret
        return KeyPair(public, secret)

    def evaluate(self, keypair: KeyPair, vrf_input: str) -> tuple[float, str]:
        """``(value, proof)`` for the key holder; value uniform in [0, 1)."""
        if self._registry.get(keypair.public) != keypair.secret:
            raise ValueError("VRF key was not issued by this scheme")
        proof = hash_data("vrf", keypair.secret, vrf_input)
        return _digest_to_unit(proof), proof

    def verify(
        self, public: str, vrf_input: str, value: float, proof: str
    ) -> bool:
        """Check the proof against the registry and the claimed value."""
        secret = self._registry.get(public)
        if secret is None:
            return False
        expected = hash_data("vrf", secret, vrf_input)
        return proof == expected and value == _digest_to_unit(expected)


def _digest_to_unit(digest: str) -> float:
    """Map a hex digest to [0, 1) with 53 bits of precision."""
    return int(digest[:16], 16) / float(1 << 64)
