"""Honest longest-chain nodes (the protocol loop of Section 2).

Each honest party runs the elementary algorithm verbatim: *"In each
round, each participant collects all valid blockchains from the network;
if a participant is a leader in the round, he adds a block to the longest
chain and broadcasts the result."*

A node keeps its own :class:`~repro.protocol.block.BlockTree`, validates
incoming blocks (structure, signature, leader eligibility), tracks
arrival order (which feeds the A0 tie-breaking rule), remembers its
currently adopted tip (which A0 prefers on rank ties), and mints blocks
on the selected chain when elected.

By default every node performs its own cryptographic checks — the
reference cost model of a real deployment.  The simulation may inject
``verify_signature`` / ``hash_block`` callbacks that share those pure
functions across the whole node set (the engine's batched execution
mode); results are identical either way.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.protocol.block import Block, BlockTree
from repro.protocol.crypto import IdealSignatureScheme, KeyPair
from repro.protocol.tiebreak import TieBreakRule, select_chain

#: Callback checking leader eligibility: (issuer key, slot, proof) → bool.
EligibilityCheck = Callable[[str, int, str], bool]


class HonestNode:
    """One honest participant: validates, selects, extends, broadcasts."""

    def __init__(
        self,
        name: str,
        keypair: KeyPair,
        signatures: IdealSignatureScheme,
        tie_break: TieBreakRule,
        check_eligibility: EligibilityCheck,
        verify_signature: Callable[[Block], bool] | None = None,
        hash_block: Callable[[Block], str] | None = None,
    ) -> None:
        self.name = name
        self.keypair = keypair
        self.signatures = signatures
        self.tie_break = tie_break
        self.check_eligibility = check_eligibility
        self._verify_signature = verify_signature
        self._hash_block = hash_block
        self.tree = BlockTree()
        self._arrival_rank: dict[str, int] = {self.tree.genesis_hash: 0}
        self._arrival_counter = 0
        #: The adopted chain's tip after the last selection (axiom A0's
        #: "keep your current chain" input; starts at genesis).
        self._current_tip = self.tree.genesis_hash
        #: Blocks whose parents have not arrived yet (the network is
        #: allowed to reorder, so children can precede parents in a slot).
        self._orphans: list[Block] = []

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def receive(self, block: Block) -> bool:
        """Validate and store one incoming block.

        Returns ``True`` when the block (or a previously orphaned
        descendant chain) was added.  Invalid blocks — bad signature or
        ineligible issuer — are dropped, never orphaned.
        """
        if not self._is_intrinsically_valid(block):
            return False
        if not self.tree.can_accept(block):
            self._orphans.append(block)
            return False
        self._insert(block)
        self._drain_orphans()
        return True

    def _is_intrinsically_valid(self, block: Block) -> bool:
        if block.parent_hash == "":
            return False  # a second genesis is never valid
        if self._verify_signature is not None:
            if not self._verify_signature(block):
                return False
        elif not self.signatures.verify(
            block.issuer, block.header(), block.signature
        ):
            return False
        return self.check_eligibility(block.issuer, block.slot, block.vrf_proof)

    def _insert(self, block: Block) -> str:
        block_hash = (
            self._hash_block(block)
            if self._hash_block is not None
            else block.block_hash
        )
        if self.tree.add_block(block, block_hash=block_hash):
            self._arrival_counter += 1
            self._arrival_rank.setdefault(block_hash, self._arrival_counter)
        return block_hash

    def _drain_orphans(self) -> None:
        progress = True
        while progress:
            progress = False
            for orphan in list(self._orphans):
                if self.tree.can_accept(orphan):
                    self._orphans.remove(orphan)
                    self._insert(orphan)
                    progress = True

    # ------------------------------------------------------------------
    # chain selection and block production
    # ------------------------------------------------------------------

    def best_tip(self) -> str:
        """The adopted chain's tip under LCR + the node's tie-break rule."""
        tip = select_chain(
            self.tree, self.tie_break, self._arrival_rank, self._current_tip
        )
        self._current_tip = tip
        return tip

    def best_chain_depth(self) -> int:
        """Length of the adopted chain."""
        return self.tree.depth(self.best_tip())

    def mint_block(self, slot: int, vrf_proof: str, payload: str = "") -> Block:
        """Create and sign a block extending the adopted chain."""
        parent = self.best_tip()
        draft = Block(
            slot=slot,
            parent_hash=parent,
            issuer=self.keypair.public,
            payload=payload,
            vrf_proof=vrf_proof,
        )
        signature = self.signatures.sign(self.keypair, draft.header())
        block = Block(
            slot=slot,
            parent_hash=parent,
            issuer=self.keypair.public,
            payload=payload,
            vrf_proof=vrf_proof,
            signature=signature,
        )
        # A leader adopts its own block immediately.
        self._current_tip = self._insert(block)
        return block
