"""Executable PoS longest-chain protocol (the system the paper analyses).

The combinatorial model of Section 2 abstracts a concrete protocol:
parties hold stake, a VRF-based lottery elects slot leaders, leaders sign
blocks extending the longest chain they know, and a (possibly delayed,
adversarially scheduled) network carries the blocks.  This subpackage
implements that protocol end to end:

* :mod:`repro.protocol.crypto` — ideal hash/signature/VRF functionalities;
* :mod:`repro.protocol.block` — hash-chained blocks and block trees;
* :mod:`repro.protocol.leader` — stake-weighted leader election;
* :mod:`repro.protocol.tiebreak` — the A0 and A0′ chain-selection rules;
* :mod:`repro.protocol.network` — synchronous and Δ-bounded networks with
  a rushing adversary;
* :mod:`repro.protocol.events` — the deterministic discrete-event core
  (monotone clock, stable ``(time, sequence)`` ordering);
* :mod:`repro.protocol.transport` — continuous-time WAN delivery
  (per-link latency + bandwidth, gossip topologies, seeded jitter) with
  the slot model as its degenerate case;
* :mod:`repro.protocol.node` — honest longest-chain nodes;
* :mod:`repro.protocol.adversary` — protocol-level attack strategies;
* :mod:`repro.protocol.simulation` — the slot-driven engine and the
  execution→fork extractor that closes the loop with the paper's model.
"""

from repro.protocol.block import Block, BlockTree, genesis_block
from repro.protocol.crypto import IdealSignatureScheme, IdealVrf, hash_data
from repro.protocol.leader import (
    LeaderSchedule,
    StakeDistribution,
    VrfLeaderElection,
)
from repro.protocol.events import Event, EventScheduler
from repro.protocol.network import NetworkModel
from repro.protocol.node import HonestNode
from repro.protocol.simulation import (
    DelayDistribution,
    Simulation,
    SimulationResult,
)
from repro.protocol.transport import Transport, TransportConfig

__all__ = [
    "Block",
    "BlockTree",
    "DelayDistribution",
    "Event",
    "EventScheduler",
    "HonestNode",
    "IdealSignatureScheme",
    "IdealVrf",
    "LeaderSchedule",
    "NetworkModel",
    "Simulation",
    "SimulationResult",
    "StakeDistribution",
    "Transport",
    "TransportConfig",
    "VrfLeaderElection",
    "genesis_block",
    "hash_data",
]
