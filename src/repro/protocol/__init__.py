"""Executable PoS longest-chain protocol (the system the paper analyses).

The combinatorial model of Section 2 abstracts a concrete protocol:
parties hold stake, a VRF-based lottery elects slot leaders, leaders sign
blocks extending the longest chain they know, and a (possibly delayed,
adversarially scheduled) network carries the blocks.  This subpackage
implements that protocol end to end:

* :mod:`repro.protocol.crypto` — ideal hash/signature/VRF functionalities;
* :mod:`repro.protocol.block` — hash-chained blocks and block trees;
* :mod:`repro.protocol.leader` — stake-weighted leader election;
* :mod:`repro.protocol.tiebreak` — the A0 and A0′ chain-selection rules;
* :mod:`repro.protocol.network` — synchronous and Δ-bounded networks with
  a rushing adversary;
* :mod:`repro.protocol.node` — honest longest-chain nodes;
* :mod:`repro.protocol.adversary` — protocol-level attack strategies;
* :mod:`repro.protocol.simulation` — the slot-driven engine and the
  execution→fork extractor that closes the loop with the paper's model.
"""

from repro.protocol.block import Block, BlockTree, genesis_block
from repro.protocol.crypto import IdealSignatureScheme, IdealVrf, hash_data
from repro.protocol.leader import (
    LeaderSchedule,
    StakeDistribution,
    VrfLeaderElection,
)
from repro.protocol.node import HonestNode
from repro.protocol.simulation import Simulation, SimulationResult

__all__ = [
    "Block",
    "BlockTree",
    "HonestNode",
    "IdealSignatureScheme",
    "IdealVrf",
    "LeaderSchedule",
    "Simulation",
    "SimulationResult",
    "StakeDistribution",
    "VrfLeaderElection",
    "genesis_block",
    "hash_data",
]
