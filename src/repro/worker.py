"""Chunk-execution worker host: ``python -m repro.worker``.

One worker process serves one host slot of a
:class:`repro.engine.distributed.DistributedBackend`.  It listens on a
TCP port, answers the wire protocol of :mod:`repro.engine.distributed`
(length-prefixed pickle frames; ops ``ping`` / ``chunk`` / ``task`` /
``shutdown``), and evaluates each chunk with the *same*
:func:`repro.engine.runner.run_chunk` the serial and process backends
use — reconstructing the chunk's spawned ``SeedSequence`` from the
shipped ``(entropy, spawn_key)`` pair, so per-chunk accumulators are
bit-identical to every other backend.  A chunk reply carries the plain
``(sum_w, sum_w2, trials)`` moment triple (clients also accept the v1
bare hit count, so mixed-version clusters keep working).

Usage::

    python -m repro.worker --port 9500            # fixed port
    python -m repro.worker --port 0               # OS-assigned port

The worker prints ``listening on HOST:PORT`` once bound (so scripts
using ``--port 0`` can scrape the assigned port) and exits gracefully on
SIGTERM/SIGINT or a ``shutdown`` request: in-flight requests finish,
then the listener closes.  Concurrency: one thread per connection;
point ``$REPRO_WORKERS`` at the host's core budget if chunk evaluation
itself should be bounded (see
:func:`repro.engine.parallel.default_workers`).

Security: the protocol is pickle over plain TCP with no authentication —
bind to loopback or a trusted private network only.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import socketserver
import sys
import threading
import time
import traceback

import numpy as np

from repro.engine.distributed import recv_message, send_message
from repro.engine.runner import run_chunk

__all__ = ["WorkerServer", "handle_request", "serve", "main"]


def handle_request(request: dict) -> dict:
    """Evaluate one wire request; the reply frame (never raises).

    ``chunk`` rebuilds the spawned seed as
    ``SeedSequence(entropy, spawn_key=spawn_key)`` — NumPy's documented
    spawn contract makes that child identical to the one the client
    spawned, which is what keeps distributed accumulators bit-identical
    to serial ones.  The reply's ``result`` is the chunk's plain
    ``(sum_w, sum_w2, trials)`` triple — plain data rather than the
    :class:`~repro.engine.runner.ChunkAccumulator` class so the frame
    does not pin the client to this worker's class layout.
    """
    try:
        op = request.get("op") if isinstance(request, dict) else None
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "chunk":
            child = np.random.SeedSequence(
                request["entropy"], spawn_key=tuple(request["spawn_key"])
            )
            accumulator = run_chunk(
                request["scenario"],
                request["estimator"],
                request["size"],
                child,
            )
            return {"ok": True, "result": accumulator.as_triple()}
        if op == "task":
            result = request["function"](*request["args"])
            return {"ok": True, "result": result}
        if op == "shutdown":
            return {"ok": True, "result": "bye"}
        return {"ok": False, "error": f"unknown op {op!r}"}
    except Exception:  # noqa: BLE001 - every failure must cross the wire.
        return {"ok": False, "error": traceback.format_exc()}


class _ConnectionHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        while True:
            try:
                request = recv_message(self.request)
            except Exception:  # truncated frame / peer reset: drop quietly.
                return
            if request is None:
                return  # clean end-of-stream.
            reply = handle_request(request)
            op = request.get("op") if isinstance(request, dict) else None
            self.server.record(op, reply.get("ok", False))
            # Piggyback the stats frame on every reply so the client can
            # attribute each chunk to the worker that served it (and log
            # the provenance when a later requeue fires).  handle_request
            # itself stays pure — tests drive it directly.
            reply = {**reply, "stats": self.server.stats_frame()}
            try:
                send_message(self.request, reply)
            except OSError:
                return
            if op == "shutdown":
                self.server.request_shutdown()
                return


class WorkerServer(socketserver.ThreadingTCPServer):
    """The worker's listener: threaded, address-reusable, stoppable."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str, port: int) -> None:
        super().__init__((host, port), _ConnectionHandler)
        #: Stable identity of this worker process: host name + PID —
        #: what clients log when attributing chunks to hosts.
        self.worker_id = f"{socket.gethostname()}-{os.getpid()}"
        self._started = time.monotonic()
        self._stats_lock = threading.Lock()
        self._served = {"ping": 0, "chunk": 0, "task": 0, "shutdown": 0}
        self._errors = 0

    def record(self, op: str | None, ok: bool) -> None:
        """Count one handled request toward the stats frame."""
        with self._stats_lock:
            if op in self._served:
                self._served[op] += 1
            if not ok:
                self._errors += 1

    def stats_frame(self) -> dict:
        """A point-in-time stats dict piggybacked on every reply.

        ``uptime`` is monotonic seconds since the server bound — a clock
        that cannot jump, so clients can order frames from the same
        worker and detect restarts (uptime reset ⇒ new process behind
        the same host:port).
        """
        with self._stats_lock:
            return {
                "worker": self.worker_id,
                "uptime": time.monotonic() - self._started,
                "served": dict(self._served),
                "errors": self._errors,
            }

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``--port 0``."""
        return self.server_address[0], self.server_address[1]

    def request_shutdown(self) -> None:
        """Stop ``serve_forever`` without deadlocking the caller.

        ``shutdown()`` blocks until the serve loop exits, so a handler
        thread (or a signal handler) must trigger it from a helper
        thread rather than calling it directly.
        """
        threading.Thread(target=self.shutdown, daemon=True).start()


def serve(host: str = "127.0.0.1", port: int = 0) -> WorkerServer:
    """Start a worker in a background thread; the bound server.

    The in-process form used by tests: call
    ``server.request_shutdown()`` (or ``server.shutdown()`` from
    another thread) to stop it.
    """
    server = WorkerServer(host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description="Serve chunk work items to DistributedBackend clients.",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default loopback; bind wider only on "
        "trusted networks — the protocol is unauthenticated pickle)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: OS-assigned, scrape it from the "
        "'listening on' line)",
    )
    parser.add_argument(
        "--stats-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="print a JSON stats line (worker id, uptime, served counts) "
        "every SECONDS; 0 disables (default)",
    )
    options = parser.parse_args(argv)

    server = WorkerServer(options.host, options.port)
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: server.request_shutdown())
    host, port = server.address
    print(f"listening on {host}:{port}", flush=True)
    stop_stats = threading.Event()
    if options.stats_interval > 0:

        def _report_stats() -> None:
            while not stop_stats.wait(options.stats_interval):
                print(json.dumps(server.stats_frame()), flush=True)

        threading.Thread(target=_report_stats, daemon=True).start()
    try:
        server.serve_forever()
    finally:
        stop_stats.set()
        server.server_close()
    print("worker shut down", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
