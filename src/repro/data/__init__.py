"""Reference data: the paper's published Table 1 and cached reproductions."""

from repro.data.table1 import PAPER_TABLE1, paper_table1_value

__all__ = ["PAPER_TABLE1", "paper_table1_value"]
