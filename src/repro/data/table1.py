"""Table 1 of the paper, transcribed verbatim.

"Exact probabilities of k-settlement violations where the symbols h, H, A
are independent and identically distributed as Pr[A] = α ∈ (0, 0.5) and
Pr[H] = 1 − α − Pr[h]."

Keys: ``(unique_fraction, alpha, k)`` where ``unique_fraction`` is the
row-group parameter ``Pr[h] / (1 − α)``, ``alpha`` the column parameter,
and ``k`` the settlement depth.  Values are as printed (3 significant
digits).

Reproduction note: our exact DP matches every k ≤ 400 cell to the printed
precision.  The paper's k = 500 rows sit systematically *below* the
geometric trend of their own k ≤ 400 rows (most visibly in the
``fraction = 0.01`` block, where the printed value drops by two orders of
magnitude against the block's ≈2.6×-per-100-slots trend); our k = 500
values continue the trend and agree with independent small-k brute force,
so we attribute the k = 500 rows to an artefact in the original
computation or transcription and exclude them from strict comparisons.
See EXPERIMENTS.md for the cell-by-cell account.
"""

PAPER_TABLE1: dict[tuple[float, float, int], float] = {}


def _block(fraction: float, rows: dict[int, tuple[float, ...]]) -> None:
    alphas = (0.01, 0.10, 0.20, 0.30, 0.40, 0.49)
    for k, values in rows.items():
        for alpha, value in zip(alphas, values):
            PAPER_TABLE1[(fraction, alpha, k)] = value


_block(1.0, {
    100: (5.70e-054, 5.10e-018, 2.28e-008, 8.00e-004, 1.37e-001, 9.05e-001),
    200: (1.64e-106, 9.82e-035, 1.61e-015, 1.60e-006, 3.36e-002, 8.73e-001),
    300: (4.70e-159, 1.89e-051, 1.14e-022, 3.25e-009, 8.52e-003, 8.50e-001),
    400: (1.35e-211, 3.64e-068, 8.02e-030, 6.59e-012, 2.18e-003, 8.29e-001),
    500: (1.02e-264, 3.90e-085, 4.00e-037, 1.10e-014, 5.16e-004, 8.05e-001),
})
_block(0.9, {
    100: (9.75e-052, 1.24e-017, 3.24e-008, 9.27e-004, 1.44e-001, 9.08e-001),
    200: (3.04e-102, 4.95e-034, 2.96e-015, 2.03e-006, 3.60e-002, 8.77e-001),
    300: (9.46e-153, 1.98e-050, 2.71e-022, 4.50e-009, 9.30e-003, 8.53e-001),
    400: (2.95e-203, 7.91e-067, 2.48e-029, 9.96e-012, 2.43e-003, 8.33e-001),
    500: (1.83e-254, 1.63e-083, 1.54e-036, 1.78e-014, 5.80e-004, 8.08e-001),
})
_block(0.8, {
    100: (6.16e-048, 4.13e-017, 5.10e-008, 1.11e-003, 1.53e-001, 9.11e-001),
    200: (7.58e-095, 4.61e-033, 6.58e-015, 2.73e-006, 3.91e-002, 8.81e-001),
    300: (9.32e-142, 5.14e-049, 8.48e-022, 6.78e-009, 1.04e-002, 8.57e-001),
    400: (1.15e-188, 5.74e-065, 1.09e-028, 1.68e-011, 2.77e-003, 8.38e-001),
    500: (1.94e-236, 3.02e-081, 9.16e-036, 3.28e-014, 6.70e-004, 8.12e-001),
})
_block(0.5, {
    100: (4.80e-028, 6.53e-014, 6.21e-007, 2.80e-003, 1.99e-001, 9.26e-001),
    200: (2.46e-055, 6.31e-027, 6.40e-013, 1.31e-005, 5.86e-002, 8.98e-001),
    300: (1.26e-082, 6.10e-040, 6.60e-019, 6.19e-008, 1.76e-002, 8.77e-001),
    400: (6.46e-110, 5.90e-053, 6.81e-025, 2.92e-010, 5.33e-003, 8.59e-001),
    500: (1.28e-138, 1.75e-066, 3.65e-031, 9.61e-013, 1.39e-003, 8.31e-001),
})
_block(0.25, {
    100: (1.22e-012, 3.13e-008, 8.94e-005, 1.65e-002, 3.17e-001, 9.48e-001),
    200: (1.51e-024, 1.06e-015, 9.36e-009, 3.36e-004, 1.25e-001, 9.27e-001),
    300: (1.86e-036, 3.62e-023, 9.80e-013, 6.86e-006, 4.94e-002, 9.10e-001),
    400: (2.30e-048, 1.23e-030, 1.03e-016, 1.40e-007, 1.96e-002, 8.96e-001),
    500: (5.06e-062, 7.72e-039, 4.06e-021, 1.66e-009, 6.20e-003, 8.65e-001),
})
_block(0.01, {
    100: (3.77e-001, 4.91e-001, 6.38e-001, 7.95e-001, 9.31e-001, 9.97e-001),
    200: (1.42e-001, 2.41e-001, 4.08e-001, 6.34e-001, 8.72e-001, 9.95e-001),
    300: (5.37e-002, 1.18e-001, 2.61e-001, 5.06e-001, 8.17e-001, 9.94e-001),
    400: (2.03e-002, 5.81e-002, 1.67e-001, 4.04e-001, 7.66e-001, 9.92e-001),
    500: (7.89e-005, 3.23e-003, 2.71e-002, 1.40e-001, 4.83e-001, 9.54e-001),
})


def paper_table1_value(unique_fraction: float, alpha: float, k: int) -> float:
    """Published Table 1 cell; raises ``KeyError`` for off-grid parameters."""
    return PAPER_TABLE1[(unique_fraction, alpha, k)]


#: Depths whose published rows our exact DP reproduces to printed precision.
VERIFIED_DEPTHS = (100, 200, 300, 400)
#: Depth rows affected by the trend anomaly described in the module docstring.
ANOMALOUS_DEPTHS = (500,)
