"""Deployment sizing: how many confirmation slots does your chain need?

The question every exchange, bridge and custodian asks: given an assumed
adversarial stake bound and a tolerated failure probability, how long
must a transaction wait before it is final for all practical purposes?

This example answers it three ways and shows where they disagree:

* the **exact** optimal-adversary probability (Section 6.6 DP) — the
  right answer inside the model;
* the **Theorem 1** generating-function bound — the provable guarantee,
  somewhat conservative;
* the effect of **concurrent honest leaders**: sweeping the uniquely
  honest fraction p_h/(1 − α) shows how multi-leader slots erode
  settlement under adversarial tie-breaking (the paper's motivation) and
  how the Theorem 2 consistent tie-breaking rule removes the erosion.

Run:  python examples/settlement_security_analysis.py
"""

from repro import from_adversarial_stake, settlement_violation_probability
from repro.analysis.bounds import (
    theorem1_settlement_bound,
    theorem2_settlement_bound,
)
from repro.analysis.exact import compute_settlement_probabilities
from repro.engine import cache_from_env, get_grid, run_grid


def required_depth(alpha: float, unique_fraction: float, target: float) -> int:
    """Smallest k with exact violation probability below ``target``."""
    params = from_adversarial_stake(alpha, unique_fraction)
    low, high = 1, 8
    while settlement_violation_probability(params, high) > target:
        low, high = high, high * 2
        if high > 4096:
            raise RuntimeError("target unreachable for these parameters")
    while low < high:
        mid = (low + high) // 2
        if settlement_violation_probability(params, mid) <= target:
            high = mid
        else:
            low = mid + 1
    return low


def sizing_table() -> None:
    print("=== Confirmation depth k for a 1e-9 failure budget ===")
    print("adversarial stake α | p_h/(1-α)=1.0 | 0.8 | 0.5")
    for alpha in (0.10, 0.20, 0.30):
        row = [
            required_depth(alpha, fraction, 1e-9)
            for fraction in (1.0, 0.8, 0.5)
        ]
        print(f"  α = {alpha:.2f}            | {row[0]:4d}          |"
              f" {row[1]:3d} | {row[2]:3d}")
    print()


def exact_vs_bound() -> None:
    print("=== Exact probability vs the Theorem 1 bound (α = 0.25) ===")
    params = from_adversarial_stake(0.25, 0.8)
    depths = [60, 120, 240]
    run = compute_settlement_probabilities(params, depths)
    for depth in depths:
        bound = theorem1_settlement_bound(
            params.epsilon, params.p_unique, depth
        )
        print(
            f"  k = {depth:3d}:  exact {run[depth]:.3E}   bound {bound:.3E}"
            f"   (bound/exact = {bound / run[depth]:8.1f}x)"
        )
    print()


def concurrent_leader_erosion() -> None:
    print("=== The cost of concurrent honest leaders (α = 0.30, k = 150) ===")
    depth = 150
    for fraction in (1.0, 0.5, 0.25, 0.05, 0.01):
        params = from_adversarial_stake(0.30, fraction)
        exact = settlement_violation_probability(params, depth)
        print(f"  p_h/(1-α) = {fraction:4.2f}:  Pr[violation] = {exact:.3E}")
    epsilon = 1.0 - 2 * 0.30
    consistent = theorem2_settlement_bound(epsilon, depth)
    print(
        f"  with consistent tie-breaking (Theorem 2, works even at p_h = 0):"
        f" <= {consistent:.3E}"
    )
    print()


def stake_sweep_monte_carlo() -> None:
    print("=== Empirical confirmation: the 'stake' sweep grid ===")
    print("  (batched Monte Carlo at k = 20, where 100k trials resolve it;")
    print("   set $REPRO_SWEEP_CACHE to make reruns instant)")
    grid = get_grid("stake")
    depth = dict(grid.overrides)["depth"]
    for row in run_grid(grid, cache=cache_from_env()):
        exact = settlement_violation_probability(
            from_adversarial_stake(row["alpha"]), depth
        )
        agrees = abs(row["value"] - exact) <= 4 * row["standard_error"] + 1e-12
        cached = "  [cached]" if row["cached"] else ""
        print(
            f"  alpha = {row['alpha']:.2f}   MC {row['value']:.5f}"
            f"   exact {exact:.5f}   agrees: {agrees}{cached}"
        )
    print()


if __name__ == "__main__":
    sizing_table()
    exact_vs_bound()
    concurrent_leader_erosion()
    stake_sweep_monte_carlo()
