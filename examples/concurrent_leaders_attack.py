"""Attacks that exploit concurrent honest slot leaders, live.

Two protocol-level demonstrations on the executable substrate:

* the **split attack** — with no adversarial stake at all, a rushing
  network scheduler uses multiply honest slots to keep the network in
  two equal-length branches under first-arrival tie-breaking (axiom A0),
  and fails to do so under the consistent rule (axiom A0′);
* the **private-chain double spend** — a 40%-stake coalition forks
  before a target slot, waits out the victim's confirmation depth and
  releases a longer chain; we measure the empirical success rate and
  compare with the exact optimal-adversary probability.

Run:  python examples/concurrent_leaders_attack.py
"""

from repro import Simulation, StakeDistribution
from repro.analysis.exact import settlement_violation_probability
from repro.core.distributions import SlotProbabilities
from repro.protocol.adversary import PrivateChainAdversary, SplitAdversary
from repro.protocol.leader import induced_slot_probabilities
from repro.protocol.tiebreak import consistent_hash_rule


def split_attack() -> None:
    print("=== Split attack: zero stake, pure message scheduling ===")
    stakes = StakeDistribution.uniform(10, 0)
    for label, rule in (
        ("A0  (first arrival — adversary breaks ties)", None),
        ("A0' (consistent hash rule)", consistent_hash_rule),
    ):
        reorgs = 0
        multi_slots = 0
        for seed in range(5):
            kwargs = dict(
                stakes=stakes,
                activity=0.8,
                total_slots=80,
                adversary=SplitAdversary(),
                randomness=f"split-{seed}",
            )
            if rule is not None:
                kwargs["tie_break"] = rule
            result = Simulation(**kwargs).run()
            reorgs += result.max_reorg_depth()
            multi_slots += result.characteristic_string.count("H")
        print(
            f"  {label}: cumulative max-reorg depth {reorgs:3d}"
            f"  (over {multi_slots} multiply honest slots)"
        )
    print("  -> consistent tie-breaking neutralises the H-slot attack\n")


def private_chain_double_spend() -> None:
    print("=== Private-chain double spend (40% stake, k = 4) ===")
    stakes = StakeDistribution.uniform(6, 4)
    activity = 0.4
    target, depth = 10, 4

    wins = 0
    trials = 20
    for seed in range(trials):
        adversary = PrivateChainAdversary(
            target_slot=target, hold=depth, patience=60
        )
        result = Simulation(
            stakes,
            activity,
            total_slots=90,
            adversary=adversary,
            randomness=f"double-spend-{seed}",
        ).run()
        if result.settlement_violation(target, depth):
            wins += 1
    observed = wins / trials

    induced = induced_slot_probabilities(stakes, activity)
    scale = 1.0 / induced.activity
    synchronous = SlotProbabilities(
        induced.p_unique * scale,
        induced.p_multi * scale,
        induced.p_adversarial * scale,
    )
    optimal = settlement_violation_probability(synchronous, depth)
    print(f"  induced per-active-slot law: p_h = {synchronous.p_unique:.3f},"
          f" p_H = {synchronous.p_multi:.3f}, p_A = {synchronous.p_adversarial:.3f}")
    print(f"  empirical success rate:      {observed:.2f}  ({wins}/{trials})")
    print(f"  optimal-adversary bound:     {optimal:.3f}")
    print("  -> the concrete attacker stays below the exact optimum\n")


if __name__ == "__main__":
    split_attack()
    private_chain_double_spend()
