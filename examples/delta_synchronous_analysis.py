"""Network delay and settlement: tuning a chain for the real world.

In deployment, block propagation takes time.  The Δ-synchronous analysis
(Section 8 of the paper) prices that delay: every honest slot followed by
another honest slot within Δ is charged to the adversary by the
reduction map ρ_Δ.  This example shows the whole pipeline:

1. how the induced synchronous parameters (ε′, p_h′) degrade with Δ;
2. the Theorem 7 settlement bound as a function of Δ and the activity
   coefficient f — exposing the design trade-off: busier chains make
   blocks faster but tolerate less delay;
3. an empirical check: Monte-Carlo violation rates on reduced strings.

Run:  python examples/delta_synchronous_analysis.py
"""

from repro.core.distributions import semi_synchronous_condition
from repro.delta.reduction import reduced_probabilities
from repro.delta.settlement import theorem7_error_bound
from repro.engine import ExperimentRunner, get_scenario


def parameter_degradation() -> None:
    print("=== ρ_Δ: induced synchronous parameters vs Δ ===")
    print("  (f = 0.05, p_A = 0.005, p_h = 0.040 — Praos-like)")
    probs = semi_synchronous_condition(0.05, 0.005, 0.040)
    print("   Δ | p'_h    | p'_A    | ε'")
    for delta in (0, 1, 2, 4, 8, 16):
        reduced = reduced_probabilities(probs, delta)
        print(
            f"  {delta:2d} | {reduced.p_unique:.4f}  |"
            f" {reduced.p_adversarial:.4f}  | {reduced.epsilon:+.4f}"
        )
    print("  -> every unit of delay transfers honest mass to the adversary\n")


def activity_tradeoff() -> None:
    print("=== The f-vs-Δ design trade-off (Theorem 7, k = 600) ===")
    print("  rows: activity f; columns: delay bound Δ")
    deltas = (0, 2, 4, 8)
    header = "   f    " + "".join(f"Δ={d:<10d}" for d in deltas)
    print(header)
    for activity in (0.03, 0.05, 0.10, 0.20):
        cells = []
        probs = semi_synchronous_condition(
            activity, 0.1 * activity, 0.8 * activity
        )
        for delta in deltas:
            bound = theorem7_error_bound(probs, 600, delta)
            cells.append(f"{bound:.2E}  ")
        print(f"  {activity:.2f}  " + "".join(cells))
    print("  -> denser chains (large f) stop settling once Δ grows\n")


def empirical_check() -> None:
    print("=== Monte-Carlo check of the Theorem 7 bound ===")
    # The registered Δ-synchronous workload: sample semi-synchronous
    # strings, push them through ρ_Δ, test (k, Δ)-settlement — all on the
    # batched engine, one registry lookup per Δ.
    base = get_scenario("delta-synchronous")
    probs = base.probabilities
    for delta in (0, 2, 4):
        estimate = ExperimentRunner(
            get_scenario("delta-synchronous", delta=delta)
        ).run(trials=4000, seed=2026 + delta)
        bound = theorem7_error_bound(probs, base.depth, delta)
        print(
            f"  Δ = {delta}:  measured rate {estimate.value:.4f}"
            f"   bound {bound:.4f}   dominated: {bound >= estimate.value}"
        )
    print()


if __name__ == "__main__":
    parameter_degradation()
    activity_tradeoff()
    empirical_check()
