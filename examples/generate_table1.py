"""Regenerate Table 1 of the paper in full and compare with the print.

Runs the exact Section 6.6 DP over the complete parameter grid —
α ∈ {0.01, 0.10, 0.20, 0.30, 0.40, 0.49},
p_h/(1 − α) ∈ {1.0, 0.9, 0.8, 0.5, 0.25, 0.01},
k ∈ {100, 200, 300, 400, 500} — and prints our value next to the paper's
for every cell with the relative deviation.

The full grid takes ~7 minutes; pass ``--fast`` to restrict to
k ∈ {100, 200} (~1 minute).

Run:  python examples/generate_table1.py [--fast]
"""

import sys
import time

from repro.analysis.exact import (
    TABLE1_ALPHAS,
    TABLE1_UNIQUE_FRACTIONS,
    compute_settlement_probabilities,
)
from repro.core.distributions import from_adversarial_stake
from repro.data.table1 import PAPER_TABLE1


def main() -> None:
    fast = "--fast" in sys.argv
    depths = (100, 200) if fast else (100, 200, 300, 400, 500)

    start = time.time()
    worst_by_depth: dict[int, float] = {k: 0.0 for k in depths}

    for fraction in TABLE1_UNIQUE_FRACTIONS:
        print(f"\n=== Pr[h] / (1 − α) = {fraction} ===")
        print("   k  " + "".join(f"α={a:<21.2f}" for a in TABLE1_ALPHAS))
        runs = {}
        for alpha in TABLE1_ALPHAS:
            params = from_adversarial_stake(alpha, fraction)
            runs[alpha] = compute_settlement_probabilities(
                params, list(depths)
            )
        for depth in depths:
            cells = []
            for alpha in TABLE1_ALPHAS:
                ours = runs[alpha][depth]
                paper = PAPER_TABLE1[(fraction, alpha, depth)]
                deviation = abs(ours - paper) / paper
                worst_by_depth[depth] = max(worst_by_depth[depth], deviation)
                cells.append(f"{ours:9.2E}/{paper:8.2E} ")
            print(f"  {depth:3d} " + "".join(cells))

    print(f"\nElapsed: {time.time() - start:.0f} s")
    print("Worst relative deviation from the printed table, by depth:")
    for depth in depths:
        note = ""
        if depth == 500:
            note = "  (printed k=500 rows are trend-anomalous; see EXPERIMENTS.md)"
        print(f"  k = {depth}: {worst_by_depth[depth]:.2%}{note}")


if __name__ == "__main__":
    main()
