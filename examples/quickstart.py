"""Quickstart: settlement security of a PoS chain in ten lines each.

Walks through the library's main entry points:

1. exact settlement-violation probabilities (the paper's Table 1 engine);
2. the combinatorial layer — characteristic strings, Catalan slots, UVP;
3. the optimal online adversary ``A*`` building a canonical fork;
4. a tiny end-to-end protocol simulation;
5. batched Monte Carlo through the scenario registry.

Run:  python examples/quickstart.py
"""

from repro import (
    Simulation,
    StakeDistribution,
    build_canonical_fork,
    catalan_slots,
    from_adversarial_stake,
    run_scenario,
    scenario_names,
    settlement_violation_probability,
    theorem1_settlement_bound,
    uvp_slots,
)
from repro.core.margin import margin_sequence
from repro.core.reach import max_reach


def exact_settlement_risk() -> None:
    print("=== 1. Exact settlement risk (Section 6.6 / Table 1) ===")
    # 20% adversarial stake; 80% of honest slots have a unique leader.
    params = from_adversarial_stake(alpha=0.20, unique_fraction=0.8)
    for depth in (50, 100, 200):
        risk = settlement_violation_probability(params, depth)
        bound = theorem1_settlement_bound(params.epsilon, params.p_unique, depth)
        print(
            f"  k = {depth:3d}:  exact Pr[not settled] = {risk:.3E}"
            f"   (Theorem 1 bound {bound:.3E})"
        )
    print()


def combinatorial_layer() -> None:
    print("=== 2. Characteristic strings, Catalan slots, UVP ===")
    word = "hAhhHAAhhHh"
    print(f"  w = {word}")
    print(f"  Catalan slots (barriers):      {catalan_slots(word)}")
    print(f"  UVP slots (uniquely honest):   {uvp_slots(word)}")
    margins = margin_sequence(word, 0)
    print(f"  margin trajectory for slot 1:  {margins}")
    settled = all(m < 0 for m in margins[1:])
    print(f"  slot 1 never violable (all margins < 0):     {settled}")
    print()


def optimal_adversary() -> None:
    print("=== 3. The optimal online adversary A* (Figure 4) ===")
    word = "hAhAhHAAH"  # the Figure 1 string
    fork = build_canonical_fork(word)
    print(f"  canonical fork for {word}: {len(fork.vertices())} vertices,"
          f" height {fork.height}, max reach {max_reach(fork)}")
    print(fork.to_ascii())
    print()


def protocol_simulation() -> None:
    print("=== 4. End-to-end protocol run (8 honest parties) ===")
    stakes = StakeDistribution.uniform(8, 0)
    result = Simulation(
        stakes, activity=0.3, total_slots=60, randomness="quickstart"
    ).run()
    word = result.characteristic_string
    print(f"  characteristic string: {word}")
    tips = set(result.records[-1].adopted_tips.values())
    print(f"  distinct adopted chains at the end: {len(tips)}")
    fork = result.execution_fork()
    fork.validate()
    print(f"  extracted fork valid: True ({len(fork.vertices())} blocks)")
    print()


def batched_monte_carlo() -> None:
    print("=== 5. Batched Monte Carlo via the scenario registry ===")
    print(f"  registered workloads: {', '.join(scenario_names())}")
    # The registered Table 1 workload, re-parameterised to a depth where
    # 200k trials resolve the probability; one call runs the whole
    # sample-and-evaluate pipeline on (trials, T) arrays.
    depth = 30
    estimate = run_scenario("iid-settlement", 200_000, seed=7, depth=depth)
    params = from_adversarial_stake(alpha=0.20, unique_fraction=0.8)
    exact = settlement_violation_probability(params, depth)
    print(f"  k = {depth}: MC {estimate.value:.5f} ± {estimate.standard_error:.5f}"
          f"   exact {exact:.5f}   agrees: {estimate.within(exact)}")


if __name__ == "__main__":
    exact_settlement_risk()
    combinatorial_layer()
    optimal_adversary()
    protocol_simulation()
    batched_monte_carlo()
