"""Closing the loop: the executable protocol versus the combinatorial theory.

These tests take real protocol executions and check them against the
paper's abstract machinery: extracted forks satisfy the axioms, observed
violations respect the optimal-adversary bounds, and the leader election
induces exactly the characteristic-string law the analysis assumes.
"""

import random

from repro.analysis.exact import settlement_violation_probability
from repro.core.catalan import catalan_slots
from repro.core.margin import relative_margin
from repro.core.settlement import is_k_settled
from repro.delta.reduction import reduce_string
from repro.protocol.adversary import PrivateChainAdversary
from repro.protocol.leader import (
    StakeDistribution,
    induced_slot_probabilities,
)
from repro.protocol.simulation import Simulation


class TestForkExtraction:
    def test_extracted_forks_satisfy_axioms_many_seeds(self):
        for seed in range(6):
            stakes = StakeDistribution.uniform(5, 2)
            simulation = Simulation(
                stakes,
                activity=0.4,
                total_slots=60,
                adversary=PrivateChainAdversary(target_slot=10, hold=5),
                randomness=f"loop-{seed}",
            )
            result = simulation.run()
            fork = result.execution_fork()
            fork.validate()

    def test_extracted_fork_word_matches_schedule(self):
        stakes = StakeDistribution.uniform(4, 1)
        result = Simulation(
            stakes, activity=0.5, total_slots=40, randomness="w"
        ).run()
        fork = result.execution_fork()
        assert fork.word == result.characteristic_string


class TestObservedViolationsRespectTheory:
    def test_protocol_violations_imply_margin_violations(self):
        """Any settlement violation observed in a run must be licensed by
        the combinatorial model: the margin for that slot (on the reduced
        string) must be non-negative at some point past the depth."""
        for seed in range(8):
            stakes = StakeDistribution.uniform(5, 5)
            target, depth = 12, 3
            simulation = Simulation(
                stakes,
                activity=0.4,
                total_slots=100,
                adversary=PrivateChainAdversary(
                    target_slot=target, hold=depth, patience=70
                ),
                randomness=f"viol-{seed}",
            )
            result = simulation.run()
            if not result.settlement_violation(target, depth):
                continue
            word = reduce_string(result.characteristic_string, 0)
            mapping_slot = sum(
                1
                for c in result.characteristic_string[:target]
                if c != "."
            )
            # margin-based settlement must also flag the slot (Fact 6)
            assert not is_k_settled(word, max(mapping_slot, 1), depth)

    def test_observed_rate_below_optimal_adversary_probability(self):
        """The private-chain attacker cannot beat the exact optimum."""
        stakes = StakeDistribution.uniform(6, 4)
        activity = 0.4
        induced = induced_slot_probabilities(stakes, activity)
        word_probs = reduce_string  # silence linters; not used directly
        # reduce to synchronous parameters (delta = 0 drops empty slots)
        from repro.core.distributions import SlotProbabilities

        scale = 1.0 / induced.activity
        synchronous = SlotProbabilities(
            induced.p_unique * scale,
            induced.p_multi * scale,
            induced.p_adversarial * scale,
        )
        depth = 4
        optimal = settlement_violation_probability(synchronous, depth)

        wins = 0
        trials = 12
        for seed in range(trials):
            simulation = Simulation(
                stakes,
                activity,
                total_slots=90,
                adversary=PrivateChainAdversary(
                    target_slot=10, hold=depth, patience=60
                ),
                randomness=f"rate-{seed}",
            )
            if simulation.run().settlement_violation(10, depth):
                wins += 1
        observed = wins / trials
        # generous slack: 12 trials of a suboptimal attacker
        assert observed <= optimal + 0.35


class TestInducedLawMatchesAnalysis:
    def test_catalan_slots_of_executions_settle_them(self):
        """Catalan slots of the reduced execution string really are
        barriers: the union block tree never forks across them."""
        for seed in range(4):
            stakes = StakeDistribution.uniform(6, 2)
            simulation = Simulation(
                stakes,
                activity=0.35,
                total_slots=80,
                adversary=PrivateChainAdversary(target_slot=20, hold=5),
                randomness=f"catalan-{seed}",
            )
            result = simulation.run()
            word = result.characteristic_string
            reduced = reduce_string(word, 0)
            mapping = {}
            position = 0
            for index, symbol in enumerate(word, start=1):
                if symbol != ".":
                    position += 1
                    mapping[position] = index
            union = result.union_tree()
            final_tips = result.records[-1].adopted_tips
            for reduced_slot in catalan_slots(reduced):
                source_slot = mapping[reduced_slot]
                anchors = {
                    union.prefix_hash_at_slot(tip, source_slot)
                    for tip in final_tips.values()
                    if tip in union
                }
                # every adopted chain commits to a common prefix at the
                # Catalan slot — margins for it are negative forever after
                assert relative_margin(reduced, reduced_slot - 1) < 0 or (
                    len(anchors) == 1
                )
