"""Bounds 1–3 and the theorem-level error estimates."""

import math

import pytest

from repro.analysis.bounds import (
    bound1_tail,
    bound2_tail,
    bound3_level_probability,
    bound3_return_mass,
    bound3_tail,
    nominal_rate_shape,
    theorem1_asymptotic_rate,
    theorem1_settlement_bound,
    theorem2_asymptotic_rate,
    theorem2_settlement_bound,
    theorem7_condition,
    theorem7_settlement_bound,
    theorem8_cp_bound,
    theorem8_cp_bound_consistent,
)
from repro.analysis.exact import settlement_violation_probability
from repro.core.distributions import bernoulli_condition


class TestBound1:
    def test_decreases_in_k(self):
        values = [bound1_tail(0.3, 0.4, k) for k in (5, 10, 20, 40, 80)]
        assert values == sorted(values, reverse=True)

    def test_probability_range(self):
        for k in (0, 1, 10, 100):
            assert 0.0 <= bound1_tail(0.3, 0.4, k) <= 1.0

    def test_zero_unique_mass_gives_trivial_bound(self):
        assert bound1_tail(0.3, 0.0, 50) == 1.0

    def test_prefix_correction_weakens_bound(self):
        with_prefix = bound1_tail(0.3, 0.4, 30, with_prefix=True)
        without = bound1_tail(0.3, 0.4, 30, with_prefix=False)
        assert with_prefix >= without

    def test_eventually_exponential(self):
        """tail(2k)/tail(k) ≈ e^{−rate·k} for large k."""
        epsilon, q_unique = 0.4, 0.4
        rate = theorem1_asymptotic_rate(epsilon, q_unique)
        t1 = bound1_tail(epsilon, q_unique, 200)
        t2 = bound1_tail(epsilon, q_unique, 400)
        observed = -(math.log(t2) - math.log(t1)) / 200
        assert observed == pytest.approx(rate, rel=0.2)


class TestBound2:
    def test_decreases_in_k(self):
        values = [bound2_tail(0.3, k) for k in (5, 10, 20, 40)]
        assert values == sorted(values, reverse=True)

    def test_nontrivial_even_without_unique_slots(self):
        """The headline of Theorem 2: consistency with p_h = 0."""
        assert bound2_tail(0.3, 120) < 0.5

    def test_monte_carlo_dominance(self, rng):
        """M̃ tail ≥ empirical no-consecutive-Catalan rate (corrected Eq. 10)."""
        from repro.analysis.montecarlo import (
            estimate_no_consecutive_catalan_in_window,
        )

        epsilon, k = 0.3, 25
        probs = bernoulli_condition(epsilon, 0.0)
        estimate = estimate_no_consecutive_catalan_in_window(
            probs, 300, k, 600, 1500, rng
        )
        bound = bound2_tail(epsilon, k)
        assert bound >= estimate.value - 4 * estimate.standard_error


class TestTheorem1:
    def test_bounds_exact_probability(self):
        """Theorem 1's bound dominates the exact DP value (Catalan route)."""
        for epsilon, p_unique in ((0.4, 0.4), (0.3, 0.6), (0.5, 0.2)):
            probs = bernoulli_condition(epsilon, p_unique)
            for k in (10, 30, 60):
                exact = settlement_violation_probability(probs, k)
                bound = theorem1_settlement_bound(epsilon, p_unique, k)
                assert bound >= exact, (epsilon, p_unique, k)

    def test_monte_carlo_dominance(self, rng):
        from repro.analysis.montecarlo import (
            estimate_no_unique_catalan_in_window,
        )

        epsilon, p_unique, k = 0.35, 0.4, 20
        probs = bernoulli_condition(epsilon, p_unique)
        estimate = estimate_no_unique_catalan_in_window(
            probs, 300, k, 600, 1500, rng
        )
        bound = bound1_tail(epsilon, p_unique, k)
        assert bound >= estimate.value - 4 * estimate.standard_error

    def test_rate_shape_small_epsilon(self):
        """rate = Θ(ε³) when p_h is a constant fraction of honest mass."""
        ratios = []
        for epsilon in (0.1, 0.2):
            rate = theorem1_asymptotic_rate(epsilon, (1 + epsilon) / 4)
            ratios.append(rate / epsilon**3)
        assert 0.05 < ratios[0] / ratios[1] < 20

    def test_rate_shape_small_unique_mass(self):
        """rate = Θ(ε² p_h) when p_h → 0 at fixed ε."""
        epsilon = 0.3
        rates = [
            theorem1_asymptotic_rate(epsilon, q) for q in (0.04, 0.02, 0.01)
        ]
        # halving p_h roughly halves the rate
        assert rates[0] / rates[1] == pytest.approx(2.0, rel=0.35)
        assert rates[1] / rates[2] == pytest.approx(2.0, rel=0.35)

    def test_nominal_shape_helper(self):
        assert nominal_rate_shape(0.1, 0.5) == pytest.approx(1e-3)
        assert nominal_rate_shape(0.5, 0.001) == pytest.approx(0.25 * 0.001)


class TestTheorem2:
    def test_beats_theorem1_at_vanishing_unique_mass(self):
        """Where Theorem 1 degrades (p_h → 0), Theorem 2 stays ε³-strong."""
        epsilon, k = 0.4, 150
        weak = theorem1_settlement_bound(epsilon, 0.005, k)
        strong = theorem2_settlement_bound(epsilon, k)
        assert strong < weak

    def test_rate_epsilon_cubed(self):
        rate = theorem2_asymptotic_rate(0.2)
        assert rate == pytest.approx(0.2**3 / 2, rel=0.3)


class TestBound3:
    def test_level_probability_parity(self):
        assert bound3_level_probability(0.3, 5, 2) == 0.0
        assert bound3_level_probability(0.3, 5, 1) > 0.0

    def test_level_probability_is_binomial(self):
        epsilon, k, level = 0.2, 6, 2
        p, q = (1 - epsilon) / 2, (1 + epsilon) / 2
        expected = math.comb(6, 4) * q**4 * p**2
        assert bound3_level_probability(epsilon, k, level) == pytest.approx(
            expected
        )

    def test_return_mass_increases_with_delta(self):
        masses = [bound3_return_mass(0.3, 10, d) for d in (0, 2, 4, 6)]
        assert masses == sorted(masses)

    def test_tail_decreases_in_k(self):
        values = [bound3_tail(0.3, k, 3) for k in (20, 40, 80)]
        assert values == sorted(values, reverse=True)

    def test_tail_increases_in_delta(self):
        values = [bound3_tail(0.3, 40, d) for d in (0, 2, 5, 10)]
        assert values == sorted(values)


class TestTheorem7:
    def test_condition_formula(self):
        value = theorem7_condition(0.02, 0.1, 4)
        beta = 0.9**4
        assert value == pytest.approx(0.02 * beta / 0.1 + (1 - beta))

    def test_bound_degrades_with_delta(self):
        values = [
            theorem7_settlement_bound(0.05, 0.005, 0.04, delta, 400)
            for delta in (0, 2, 4, 8)
        ]
        assert values == sorted(values)

    def test_bound_trivial_when_condition_fails(self):
        # huge delay: reduced adversarial mass > 1/2 -> no guarantee
        assert theorem7_settlement_bound(0.5, 0.1, 0.3, 20, 100) == 1.0

    def test_bound_nontrivial_for_praos_like_parameters(self):
        value = theorem7_settlement_bound(0.05, 0.005, 0.04, 2, 600)
        assert value < 0.1


class TestTheorem8:
    def test_union_bound_scales_with_length(self):
        single = bound1_tail(0.4, 0.5, 60)
        total = theorem8_cp_bound(1000, 0.4, 0.5, 60)
        assert total == pytest.approx(min(1000 * single, 1.0))

    def test_consistent_variant(self):
        value = theorem8_cp_bound_consistent(1000, 0.4, 200)
        assert 0.0 <= value <= 1.0
