"""Rare-event estimators vs the exact DP: the PR 8 validation suite.

The importance-sampling estimator must agree with
``settlement_violation_probability`` (the Section 6.6 exact DP) on
cells where both are computable, and it must keep resolving cells *far*
below direct Monte Carlo's reach — the acceptance cell here has true
probability ``8.45e-10``, where direct MC at any affordable budget
measures exactly zero.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.analysis.exact import settlement_violation_probability
from repro.analysis.rare_event import (
    SplittingEstimate,
    default_tilted_epsilon,
    direct_mc_projection,
    importance_scenario,
    settlement_is_estimate,
    splitting_settlement_estimate,
    tilt_parameter,
    tilted_probabilities,
)
from repro.core.distributions import (
    bernoulli_condition,
    from_adversarial_stake,
    semi_synchronous_condition,
)
from repro.engine import ExperimentRunner, get_scenario


def scenario_for(probabilities, depth):
    return dataclasses.replace(
        get_scenario("iid-settlement", depth=depth),
        probabilities=probabilities,
    )


class TestTiltAlgebra:
    def test_tilted_law_hits_the_target_epsilon(self):
        base = from_adversarial_stake(0.2, 1.0)
        for target in (0.05, 0.2, 0.5):
            theta = tilt_parameter(base, target)
            tilted = tilted_probabilities(base, theta)
            assert tilted.epsilon == pytest.approx(target)
            # A proper probability law, with unique:multi ratio intact.
            assert tilted.p_unique + tilted.p_multi + tilted.p_adversarial == (
                pytest.approx(1.0)
            )
            assert tilted.p_unique * base.p_multi == pytest.approx(
                tilted.p_multi * base.p_unique
            )

    def test_identity_tilt_is_theta_zero(self):
        base = from_adversarial_stake(0.25, 0.8)
        assert tilt_parameter(base, base.epsilon) == pytest.approx(0.0)
        assert tilted_probabilities(base, 0.0) == base

    def test_default_epsilon_scales_with_depth(self):
        # 1/sqrt(depth), clipped to [0.01, epsilon].
        assert default_tilted_epsilon(100, 0.6) == pytest.approx(0.1)
        assert default_tilted_epsilon(4, 0.6) == pytest.approx(0.5)
        assert default_tilted_epsilon(4, 0.3) == pytest.approx(0.3)  # cap
        assert default_tilted_epsilon(100_000, 0.6) == pytest.approx(0.01)

    def test_validation(self):
        base = from_adversarial_stake(0.2, 1.0)
        with pytest.raises(ValueError, match="depth"):
            default_tilted_epsilon(0, 0.5)
        with pytest.raises(ValueError, match="epsilon"):
            default_tilted_epsilon(10, 1.5)
        with pytest.raises(ValueError):
            tilt_parameter(base, 0.0)
        semi = semi_synchronous_condition(0.5, 0.1, 0.3)
        with pytest.raises(ValueError, match="synchronous"):
            importance_scenario(scenario_for(semi, 10))

    def test_reduced_scenarios_are_rejected(self):
        reduced = get_scenario(
            "delta-synchronous", total_length=60, target_slot=10, depth=8
        )
        with pytest.raises(ValueError, match="reduced"):
            importance_scenario(reduced)


class TestAgainstExactDP:
    @pytest.mark.parametrize(
        "alpha,fraction,depth",
        [(0.20, 1.0, 20), (0.25, 0.8, 20), (0.30, 1.0, 30)],
    )
    def test_table1_cells_within_six_sigma(self, alpha, fraction, depth):
        law = from_adversarial_stake(alpha, fraction)
        exact = settlement_violation_probability(law, depth)
        estimate = settlement_is_estimate(
            scenario_for(law, depth), seed=11, trials=20_000
        )
        assert abs(estimate.value - exact) <= 6.0 * estimate.standard_error

    def test_weights_are_nonnegative_and_finite(self):
        law = bernoulli_condition(0.4, 0.5)
        scenario = scenario_for(law, 15)
        tilted_scenario, estimator = importance_scenario(scenario)
        batch = tilted_scenario.sample_batch(
            256, np.random.default_rng(3)
        )
        weights = estimator(tilted_scenario, batch)
        assert np.all(np.isfinite(weights))
        assert np.all(weights >= 0.0)
        assert np.any(weights > 0.0)  # violations are common when tilted


class TestRareCell:
    """The acceptance criterion: a <= 1e-9 cell, resolved and certified."""

    ALPHA, FRACTION, DEPTH = 0.20, 1.0, 120

    @pytest.fixture(scope="class")
    def law(self):
        return from_adversarial_stake(self.ALPHA, self.FRACTION)

    @pytest.fixture(scope="class")
    def exact(self, law):
        return settlement_violation_probability(law, self.DEPTH)

    def test_cell_is_genuinely_rare(self, exact):
        assert 0.0 < exact <= 1e-9

    def test_direct_mc_measures_zero(self, law):
        runner = ExperimentRunner(
            scenario_for(law, self.DEPTH), chunk_size=4096
        )
        assert runner.run(20_000, seed=11).value == 0.0

    def test_is_resolves_it(self, law, exact):
        estimate = settlement_is_estimate(
            scenario_for(law, self.DEPTH),
            seed=7,
            rel_se=0.25,
            max_trials=150_000,
        )
        assert math.isfinite(estimate.value) and estimate.value > 0.0
        assert estimate.standard_error / estimate.value <= 0.3
        assert abs(estimate.value - exact) <= 6.0 * estimate.standard_error
        # The variance-reduction claim: direct MC would need ~3e10
        # trials for this resolution; IS used a few tens of thousands.
        projected = direct_mc_projection(exact, 0.3)
        assert estimate.trials <= 0.1 * projected


class TestSplitting:
    def test_agrees_with_exact_dp(self):
        law = from_adversarial_stake(0.20, 1.0)
        exact = settlement_violation_probability(law, 60)
        estimate = splitting_settlement_estimate(
            law, depth=60, particles=20_000, seed=5
        )
        assert isinstance(estimate, SplittingEstimate)
        assert estimate.value > 0.0
        # Fixed-effort splitting carries an O(1/N) resampling bias the
        # delta-method SE does not cover; allow one extra SE for it.
        assert abs(estimate.value - exact) <= 7.0 * estimate.standard_error
        assert estimate.as_estimate().trials == 20_000

    def test_stage_fractions_multiply_to_value(self):
        law = from_adversarial_stake(0.25, 1.0)
        estimate = splitting_settlement_estimate(
            law, depth=40, particles=5_000, seed=9
        )
        assert estimate.value == pytest.approx(
            float(np.prod(estimate.stage_fractions))
        )
        assert estimate.stage_times[-1] == 40

    def test_extinction_returns_zero_with_positive_se(self):
        law = from_adversarial_stake(0.05, 1.0)  # strong honest majority
        estimate = splitting_settlement_estimate(
            law, depth=200, particles=2, seed=1
        )
        assert estimate.value == 0.0
        assert estimate.standard_error > 0.0

    def test_validation(self):
        law = from_adversarial_stake(0.2, 1.0)
        with pytest.raises(ValueError, match="depth"):
            splitting_settlement_estimate(law, 0, 100, 1)
        with pytest.raises(ValueError, match="particles"):
            splitting_settlement_estimate(law, 10, 1, 1)
        with pytest.raises(ValueError, match="stage_length"):
            splitting_settlement_estimate(law, 10, 100, 1, stage_length=0)


class TestProjection:
    def test_projection_formula(self):
        assert direct_mc_projection(0.5, 1.0) == pytest.approx(1.0)
        assert direct_mc_projection(1e-9, 0.3) == pytest.approx(
            (1 - 1e-9) / (1e-9 * 0.09)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            direct_mc_projection(0.0, 0.3)
        with pytest.raises(ValueError):
            direct_mc_projection(0.5, 0.0)
