"""Monotonicity of the exact settlement violation probability.

These are the properties the settlement oracle's *conservative
interpolation* rests on (see ``repro.oracle.service``): snapping a
query coordinate toward the "worse" grid neighbour must never shrink
the reported violation probability.  Property-tested over the Table 1
coordinate grid (α × p_h/(1−α)) at DP-fast depths, plus the oracle's
Δ axis through the Proposition 4 reduction.

Each property is also the paper's stochastic-dominance intuition made
checkable: raising α (or Δ) / lowering the uniquely-honest fraction
moves the slot law down the Definition 6 partial order, and the
violation event is monotone.
"""

import math

import pytest

from repro.analysis.exact import (
    TABLE1_ALPHAS,
    TABLE1_UNIQUE_FRACTIONS,
    compute_settlement_probabilities,
    settlement_violation_probability,
)
from repro.core.distributions import from_adversarial_stake
from repro.oracle.tables import effective_probabilities

#: DP-fast depth grid the k-monotonicity is checked densely on.
DEPTHS = list(range(1, 41))
#: Spot depths for the cross-parameter comparisons.
SPOT_DEPTHS = (10, 25, 40)

# Table 1's alpha = 0.01 column is numerically degenerate at these tiny
# depths for the *strict* inequality variants (probabilities underflow
# toward 0), but the non-strict properties must hold everywhere.
GRID = [
    (alpha, fraction)
    for alpha in TABLE1_ALPHAS
    for fraction in TABLE1_UNIQUE_FRACTIONS
]


def at_most(smaller: float, larger: float) -> bool:
    """``smaller ≤ larger`` up to one-ulp float jitter.

    The mathematical quantities are exactly monotone; the float64 DP
    evaluates them with last-digit rounding, so adjacent values that
    are *equal* in exact arithmetic can land one ulp apart in either
    order (observed: 0.2 vs 0.19999999999999998 at α = 0.1, frac = 1).
    The oracle's conservative rounding is therefore exact up to the
    same one-ulp slack — which is also the slack the acceptance
    spot-checks allow.
    """
    return smaller <= larger or math.isclose(
        smaller, larger, rel_tol=1e-12, abs_tol=0.0
    )


@pytest.mark.parametrize("alpha,fraction", GRID)
def test_violation_probability_non_increasing_in_depth(alpha, fraction):
    """Deeper blocks never settle *less* reliably (oracle: k snaps down)."""
    probabilities = from_adversarial_stake(alpha, fraction)
    computation = compute_settlement_probabilities(probabilities, DEPTHS)
    values = [computation[k] for k in DEPTHS]
    for shallow, deep in zip(values, values[1:]):
        assert at_most(deep, shallow)


@pytest.mark.parametrize("fraction", TABLE1_UNIQUE_FRACTIONS)
@pytest.mark.parametrize("depth", SPOT_DEPTHS)
def test_violation_probability_non_decreasing_in_alpha(fraction, depth):
    """More adversarial stake never helps (oracle: α snaps up)."""
    values = [
        settlement_violation_probability(
            from_adversarial_stake(alpha, fraction), depth
        )
        for alpha in TABLE1_ALPHAS
    ]
    for weaker, stronger in zip(values, values[1:]):
        assert at_most(weaker, stronger)


@pytest.mark.parametrize("alpha", TABLE1_ALPHAS)
@pytest.mark.parametrize("depth", SPOT_DEPTHS)
def test_violation_probability_non_increasing_in_unique_fraction(alpha, depth):
    """More uniquely honest slots never hurt (oracle: fraction snaps down).

    TABLE1_UNIQUE_FRACTIONS is declared descending, so the violation
    probability must be non-*decreasing* along it.
    """
    values = [
        settlement_violation_probability(
            from_adversarial_stake(alpha, fraction), depth
        )
        for fraction in TABLE1_UNIQUE_FRACTIONS
    ]
    for richer, poorer in zip(values, values[1:]):
        assert at_most(richer, poorer)


@pytest.mark.parametrize("alpha", (0.1, 0.2, 0.3))
@pytest.mark.parametrize("depth", SPOT_DEPTHS)
def test_violation_probability_non_decreasing_in_delta(alpha, depth):
    """Longer delays never help (oracle: Δ snaps up).

    Checked through the same activity-thinned Proposition 4 reduction
    the oracle tabulates with.
    """
    values = [
        settlement_violation_probability(
            effective_probabilities(alpha, 0.9, delta, activity=0.05), depth
        )
        for delta in (0, 1, 2, 4)
    ]
    for faster, slower in zip(values, values[1:]):
        assert at_most(faster, slower)


@pytest.mark.parametrize("alpha,fraction", [(0.2, 0.9), (0.3, 0.5)])
def test_strict_decay_where_resolvable(alpha, fraction):
    """Away from underflow the k-decay is strict — the minimal-depth
    table is well-defined (no plateaus to tie-break) on real grids."""
    probabilities = from_adversarial_stake(alpha, fraction)
    computation = compute_settlement_probabilities(probabilities, DEPTHS)
    values = [computation[k] for k in DEPTHS]
    assert all(b < a for a, b in zip(values, values[1:]))
