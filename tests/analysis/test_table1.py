"""The headline reproduction: Table 1 of the paper.

The full 180-cell grid takes ~7 minutes, so the test-suite verifies a
representative 18-cell sample spanning every row group, every column and
depths 100–400 (the k = 500 rows of the printed table are anomalous
against their own trend; see repro.data.table1 and EXPERIMENTS.md).  The
benchmark ``bench_table1_settlement.py`` and the script
``examples/generate_table1.py`` cover the rest.
"""

import pytest

from repro.analysis.exact import settlement_violation_probability
from repro.core.distributions import from_adversarial_stake
from repro.data.table1 import PAPER_TABLE1

#: (fraction, alpha, k) sample covering all six blocks and all six columns.
SAMPLE_CELLS = [
    (1.0, 0.01, 100),
    (1.0, 0.10, 200),
    (1.0, 0.49, 100),
    (0.9, 0.20, 100),
    (0.9, 0.30, 400),
    (0.8, 0.01, 200),
    (0.8, 0.40, 300),
    (0.5, 0.10, 100),
    (0.5, 0.20, 300),
    (0.5, 0.49, 200),
    (0.25, 0.01, 100),
    (0.25, 0.30, 200),
    (0.25, 0.40, 400),
    (0.01, 0.01, 100),
    (0.01, 0.20, 300),
    (0.01, 0.30, 100),
    (0.01, 0.40, 200),
    (0.01, 0.49, 400),
]


@pytest.mark.parametrize("fraction,alpha,depth", SAMPLE_CELLS)
def test_table1_cell_reproduces_to_printed_precision(fraction, alpha, depth):
    """Each sampled cell matches the paper to its 3 printed digits.

    Printed values carry ≤ 0.5% rounding; we allow 0.6% relative error.
    """
    expected = PAPER_TABLE1[(fraction, alpha, depth)]
    probabilities = from_adversarial_stake(alpha, fraction)
    computed = settlement_violation_probability(probabilities, depth)
    assert computed == pytest.approx(expected, rel=6e-3), (
        f"cell (frac={fraction}, α={alpha}, k={depth}): "
        f"computed {computed:.4E}, paper {expected:.4E}"
    )


def test_one_dp_run_serves_all_depths():
    """Checkpoints of a single run equal independent runs (grid exactness)."""
    from repro.analysis.exact import compute_settlement_probabilities

    probabilities = from_adversarial_stake(0.30, 0.9)
    combined = compute_settlement_probabilities(probabilities, [100, 200])
    alone = settlement_violation_probability(probabilities, 100)
    assert combined[100] == pytest.approx(alone, rel=1e-12)


def test_table1_k500_trend_note():
    """Our k = 500 values continue each block's geometric trend.

    The printed k = 500 rows fall below the trend of their own blocks
    (by two orders of magnitude in the fraction-0.01 block); this test
    pins the *trend-consistency* of our values so the deviation from the
    printed row stays a documented property of the paper, not of us.
    """
    import math

    probabilities = from_adversarial_stake(0.01, 1.0)
    from repro.analysis.exact import compute_settlement_probabilities

    run = compute_settlement_probabilities(probabilities, [200, 300, 400, 500])
    step1 = math.log10(run[300]) - math.log10(run[200])
    step2 = math.log10(run[400]) - math.log10(run[300])
    step3 = math.log10(run[500]) - math.log10(run[400])
    assert abs(step1 - step2) < 0.05
    assert abs(step2 - step3) < 0.05
