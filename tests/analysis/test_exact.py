"""The exact settlement DP (Section 6.6): correctness and exactness."""

import math
import random

import pytest

from repro.analysis.exact import (
    compute_settlement_probabilities,
    settlement_table,
    settlement_violation_probability,
    format_table,
)
from repro.core.distributions import (
    bernoulli_condition,
    from_adversarial_stake,
    semi_synchronous_condition,
)
from repro.core.margin import margin_step
from repro.core.walks import stationary_reach_ratio


def brute_force_violation_probability(probs, depth, reach_cap=80):
    """Scalar-state reference implementation of the same Markov chain."""
    beta = stationary_reach_ratio(probs.epsilon)
    p_h, p_multi, p_adv, _ = probs.as_tuple()
    states = {}
    for r0 in range(reach_cap):
        states[(r0, r0)] = (1 - beta) * beta**r0
    tail = beta**reach_cap
    for _ in range(depth):
        nxt = {}
        for (r, m), mass in states.items():
            for symbol, weight in (("h", p_h), ("H", p_multi), ("A", p_adv)):
                if weight == 0:
                    continue
                nr, nm = margin_step(r, m, symbol)
                key = (nr, nm)
                nxt[key] = nxt.get(key, 0.0) + mass * weight
        states = nxt
    return sum(m for (r, mm), m in states.items() if mm >= 0) + tail


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "alpha,fraction",
        [(0.2, 0.8), (0.4, 0.5), (0.1, 1.0), (0.3, 0.01), (0.49, 0.25)],
    )
    def test_dp_matches_scalar_chain(self, alpha, fraction):
        probs = from_adversarial_stake(alpha, fraction)
        for depth in (1, 2, 3, 5, 8):
            dp = settlement_violation_probability(probs, depth)
            brute = brute_force_violation_probability(probs, depth)
            assert abs(dp - brute) < 1e-10, (alpha, fraction, depth)

    def test_depth_one_closed_form(self):
        """k = 1: violation iff the first symbol keeps the margin ≥ 0.

        From (r0, r0) with r0 ~ X_∞: an 'A' always violates; honest
        symbols violate unless r0 = 0 forces the margin negative, which
        only happens for 'h' at r0 = 0.
        """
        probs = bernoulli_condition(0.4, 0.3)
        beta = stationary_reach_ratio(0.4)
        expected = 1.0 - probs.p_unique * (1 - beta)
        value = settlement_violation_probability(probs, 1)
        assert math.isclose(value, expected, rel_tol=1e-12)


class TestMonteCarloAgreement:
    def test_dp_matches_monte_carlo(self, rng):
        from repro.analysis.montecarlo import estimate_settlement_violation

        probs = bernoulli_condition(0.3, 0.35)
        depth = 30
        estimate = estimate_settlement_violation(probs, depth, 4000, rng)
        exact = settlement_violation_probability(probs, depth)
        assert estimate.within(exact, sigmas=4), (estimate, exact)


class TestStructure:
    def test_probability_decreases_with_depth(self):
        probs = from_adversarial_stake(0.3, 0.8)
        computation = compute_settlement_probabilities(
            probs, [10, 20, 40, 80]
        )
        values = [computation[k] for k in (10, 20, 40, 80)]
        assert values == sorted(values, reverse=True)
        assert all(0 <= v <= 1 for v in values)

    def test_probability_increases_with_adversarial_stake(self):
        for k in (20, 60):
            values = [
                settlement_violation_probability(
                    from_adversarial_stake(alpha, 0.8), k
                )
                for alpha in (0.1, 0.2, 0.3, 0.4)
            ]
            assert values == sorted(values)

    def test_probability_decreases_with_unique_fraction(self):
        """More uniquely honest slots help under adversarial tie-breaking."""
        values = [
            settlement_violation_probability(
                from_adversarial_stake(0.3, fraction), 40
            )
            for fraction in (0.01, 0.25, 0.5, 0.9)
        ]
        assert values == sorted(values, reverse=True)

    def test_finite_prefix_dominated_by_stationary(self):
        """X_m ⪯ X_∞ ⇒ finite-|x| violation probability is smaller."""
        probs = from_adversarial_stake(0.3, 0.8)
        infinite = settlement_violation_probability(probs, 25)
        for prefix_length in (0, 5, 50, 400):
            finite = settlement_violation_probability(
                probs, 25, prefix_length=prefix_length
            )
            assert finite <= infinite + 1e-12

    def test_finite_prefix_converges_to_stationary(self):
        probs = from_adversarial_stake(0.35, 0.8)
        infinite = settlement_violation_probability(probs, 20)
        finite = settlement_violation_probability(probs, 20, prefix_length=600)
        # X_600 and X_∞ are distinct laws; their violation probabilities
        # differ by the (tiny) stationarity gap, not by solver error.
        assert math.isclose(finite, infinite, rel_tol=1e-4)

    def test_empty_prefix_brute_force(self):
        """|x| = 0: exhaustive sum over all suffixes of length 7."""
        import itertools

        probs = bernoulli_condition(0.2, 0.3)
        p = {"h": probs.p_unique, "H": probs.p_multi, "A": probs.p_adversarial}
        total = 0.0
        for symbols in itertools.product("hHA", repeat=7):
            r, m = 0, 0
            weight = 1.0
            for s in symbols:
                r, m = margin_step(r, m, s)
                weight *= p[s]
            if m >= 0:
                total += weight
        dp = settlement_violation_probability(probs, 7, prefix_length=0)
        assert math.isclose(dp, total, rel_tol=1e-12)


class TestValidation:
    def test_rejects_semi_synchronous_parameters(self):
        probs = semi_synchronous_condition(0.5, 0.1, 0.2)
        with pytest.raises(ValueError):
            settlement_violation_probability(probs, 10)

    def test_rejects_empty_checkpoints(self):
        probs = bernoulli_condition(0.3, 0.3)
        with pytest.raises(ValueError):
            compute_settlement_probabilities(probs, [])
        with pytest.raises(ValueError):
            compute_settlement_probabilities(probs, [0])


class TestTableGeneration:
    def test_small_table_shape(self):
        table = settlement_table(
            alphas=(0.2, 0.3), unique_fractions=(1.0, 0.5), depths=(10, 20)
        )
        assert len(table) == 8
        assert all(0 <= v <= 1 for v in table.values())

    def test_format_table_runs(self):
        table = settlement_table(
            alphas=(0.3,), unique_fractions=(0.5,), depths=(10,)
        )
        text = format_table(table)
        assert "α=0.30" in text
