"""Generating functions of Section 5: coefficients, identities, radii."""

import math

import numpy as np
import pytest

from repro.analysis import genfunc
from repro.core.walks import bias_probabilities


class TestSeriesArithmetic:
    def test_multiply(self):
        a = np.array([1.0, 1.0])
        b = np.array([1.0, 2.0, 1.0])
        product = genfunc.series_multiply(a, b, 4)
        assert list(product) == [1.0, 3.0, 3.0, 1.0, 0.0]

    def test_power(self):
        base = np.array([0.0, 1.0, 1.0])
        cube = genfunc.series_power(base, 3, 6)
        # (Z + Z^2)^3 = Z^3 + 3Z^4 + 3Z^5 + Z^6
        assert list(cube) == [0, 0, 0, 1, 3, 3, 1]

    def test_compose(self):
        outer = np.array([1.0, 1.0, 1.0])  # 1 + x + x^2
        inner = np.array([0.0, 2.0])  # 2Z
        composed = genfunc.series_compose(outer, inner, 3)
        assert list(composed) == [1.0, 2.0, 4.0, 0.0]

    def test_compose_requires_zero_constant(self):
        with pytest.raises(ValueError):
            genfunc.series_compose(
                np.array([1.0]), np.array([1.0, 1.0]), 3
            )

    def test_inverse_one_minus(self):
        f = np.array([0.0, 0.5])
        inv = genfunc.series_inverse_one_minus(f, 4)
        assert np.allclose(inv, [1, 0.5, 0.25, 0.125, 0.0625])

    def test_inverse_identity(self):
        f = np.array([0.0, 0.3, 0.2, 0.1])
        inv = genfunc.series_inverse_one_minus(f, 10)
        one_minus_f = -f.copy()
        one_minus_f[0] += 1.0
        product = genfunc.series_multiply(one_minus_f, inv, 10)
        assert math.isclose(product[0], 1.0)
        assert np.allclose(product[1:], 0.0, atol=1e-12)


class TestCatalanNumbers:
    def test_first_values(self):
        values = [genfunc.catalan_number(n) for n in range(6)]
        assert values == [1, 1, 2, 5, 14, 42]


class TestWalkSeries:
    def test_descent_is_probability_series(self):
        series = genfunc.descent_series(0.3, 400)
        assert series[0] == 0.0
        assert series.min() >= 0.0
        assert series.sum() == pytest.approx(1.0, abs=1e-6)

    def test_descent_satisfies_functional_equation(self):
        """D = qZ + pZ D² as truncated series."""
        epsilon = 0.25
        p, q = bias_probabilities(epsilon)
        order = 60
        descent = genfunc.descent_series(epsilon, order)
        squared = genfunc.series_multiply(descent, descent, order)
        rhs = p * genfunc.z_times(squared, order)
        rhs[1] += q
        assert np.allclose(descent, rhs, atol=1e-12)

    def test_ascent_mass_is_ruin_probability(self):
        epsilon = 0.3
        p, q = bias_probabilities(epsilon)
        series = genfunc.ascent_series(epsilon, 600)
        assert series.sum() == pytest.approx(p / q, abs=1e-6)

    def test_descent_coefficients_match_simulation(self, rng):
        from repro.core.walks import sample_descent_time

        epsilon = 0.3
        series = genfunc.descent_series(epsilon, 20)
        samples = [sample_descent_time(epsilon, rng) for _ in range(20000)]
        for t in (1, 3, 5, 7):
            empirical = sum(1 for s in samples if s == t) / len(samples)
            assert abs(empirical - series[t]) < 0.01


class TestDominatingSeries:
    def test_bound1_series_is_probability_series(self):
        series = genfunc.bound1_dominating_series(0.3, 0.4, 800)
        assert series.min() >= -1e-15
        assert series.sum() == pytest.approx(1.0, abs=1e-3)

    def test_bound1_leading_coefficient(self):
        """ĉ₁ = q_h ε / q — the first slot is an immediate success."""
        epsilon, q_unique = 0.3, 0.4
        _, q = bias_probabilities(epsilon)
        series = genfunc.bound1_dominating_series(epsilon, q_unique, 16)
        assert series[1] == pytest.approx(q_unique * epsilon / q, rel=1e-12)

    def test_bound2_series_is_probability_series(self):
        series = genfunc.bound2_dominating_series(0.3, 800)
        assert series.min() >= -1e-15
        assert series.sum() == pytest.approx(1.0, abs=1e-3)

    def test_bound2_leading_coefficients(self):
        """m̂₁ = εq (hand-computed); m̂₂ = 0; m̂₃ = εd₃ (the erratum check)."""
        epsilon = 0.3
        p, q = bias_probabilities(epsilon)
        series = genfunc.bound2_dominating_series(epsilon, 16)
        descent = genfunc.descent_series(epsilon, 16)
        assert series[1] == pytest.approx(epsilon * q, rel=1e-12)
        assert series[2] == pytest.approx(0.0, abs=1e-15)
        assert series[3] == pytest.approx(epsilon * descent[3], rel=1e-12)

    def test_prefix_correction_is_probability_series(self):
        series = genfunc.stationary_prefix_correction(0.3, 800)
        assert series.sum() == pytest.approx(1.0, abs=1e-6)

    def test_tail_sum(self):
        series = np.array([0.0, 0.5, 0.3, 0.2])
        assert genfunc.tail_sum(series, 2) == pytest.approx(0.5)
        assert genfunc.tail_sum(series, 0) == pytest.approx(1.0)
        assert genfunc.tail_sum(series, 10) == 0.0


class TestRadii:
    def test_r1_formula_asymptotics(self):
        """R₁ = 1 + ε³/2 + O(ε⁴) (Eq. (5))."""
        for epsilon in (0.05, 0.1, 0.2):
            r1 = genfunc.radius_bound_r1(epsilon)
            assert r1 == pytest.approx(1 + epsilon**3 / 2, abs=epsilon**4 * 4)

    def test_r2_below_r1_when_unique_mass_is_small(self):
        """With q_h small the denominator F reaches 1 inside the disc.

        (For moderate q_h — e.g. 0.1 at ε = 0.3 — F stays below 1 on the
        whole convergence interval and R = R₁ binds instead; both regimes
        are exercised.)
        """
        epsilon = 0.3
        r1 = genfunc.radius_bound_r1(epsilon)
        r2_small = genfunc.radius_bound_r2(epsilon, q_unique=0.02)
        assert 1.0 < r2_small < r1
        r2_moderate = genfunc.radius_bound_r2(epsilon, q_unique=0.1)
        assert r2_moderate == pytest.approx(r1)

    def test_r2_equals_r1_when_all_honest_unique(self):
        """q_H = 0: F(z) < 1 on the whole interval (the paper's special case)."""
        epsilon = 0.3
        _, q = bias_probabilities(epsilon)
        r2 = genfunc.radius_bound_r2(epsilon, q_unique=q)
        assert r2 == pytest.approx(genfunc.radius_bound_r1(epsilon))

    def test_decay_rate_shape(self):
        """rate ≈ Θ(min(ε³, ε²q_h)): ordering across parameter ranges."""
        # fixed epsilon, shrinking q_h: rate decreases
        rates = [
            genfunc.bound1_decay_rate(0.3, q_unique)
            for q_unique in (0.6, 0.3, 0.1, 0.02)
        ]
        assert rates == sorted(rates, reverse=True)
        # rate is positive whenever q_h > 0
        assert rates[-1] > 0

    def test_bound2_decay_rate_epsilon_cubed(self):
        for epsilon in (0.1, 0.2):
            rate = genfunc.bound2_decay_rate(epsilon)
            assert rate == pytest.approx(epsilon**3 / 2, rel=0.4)

    def test_series_tail_decays_at_radius_rate(self):
        """Coefficient tails of Ĉ decay like R^{-k} (Theorem 2.19 of [12])."""
        epsilon, q_unique = 0.4, 0.3
        series = genfunc.bound1_dominating_series(epsilon, q_unique, 3000)
        rate = genfunc.bound1_decay_rate(epsilon, q_unique)
        t1 = genfunc.tail_sum(series, 400)
        t2 = genfunc.tail_sum(series, 800)
        observed_rate = -(math.log(t2) - math.log(t1)) / 400
        assert observed_rate == pytest.approx(rate, rel=0.15)
