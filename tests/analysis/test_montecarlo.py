"""Monte-Carlo estimators: calibration and cross-checks."""

import random

from repro.analysis.exact import settlement_violation_probability
from repro.analysis.montecarlo import (
    Estimate,
    estimate_settlement_violation,
    estimate_violation_from_sampler,
    sample_initial_reach,
)
from repro.core.distributions import (
    bernoulli_condition,
    sample_characteristic_string,
    sample_martingale_string,
)
from repro.core.walks import stationary_reach_ratio


class TestEstimate:
    def test_within(self):
        estimate = Estimate(0.5, 0.01, 1000)
        assert estimate.within(0.52, sigmas=4)
        assert not estimate.within(0.60, sigmas=4)


class TestInitialReach:
    def test_matches_geometric_law(self, rng):
        epsilon = 0.3
        beta = stationary_reach_ratio(epsilon)
        samples = [sample_initial_reach(epsilon, rng) for _ in range(8000)]
        for k in (0, 1, 3):
            expected = (1 - beta) * beta**k
            observed = sum(1 for s in samples if s == k) / len(samples)
            assert abs(observed - expected) < 0.02


class TestSettlementEstimator:
    def test_agrees_with_exact_dp(self, rng):
        probs = bernoulli_condition(0.4, 0.3)
        estimate = estimate_settlement_violation(probs, 20, 4000, rng)
        exact = settlement_violation_probability(probs, 20)
        assert estimate.within(exact, sigmas=4)

    def test_finite_prefix_variant(self, rng):
        probs = bernoulli_condition(0.4, 0.3)
        estimate = estimate_settlement_violation(
            probs, 15, 3000, rng, prefix_length=10
        )
        exact = settlement_violation_probability(probs, 15, prefix_length=10)
        assert estimate.within(exact, sigmas=4)


class TestSamplerBridge:
    def test_iid_sampler_matches_exact_zero_prefix(self, rng):
        probs = bernoulli_condition(0.3, 0.4)
        slot, depth = 1, 18

        estimate = estimate_violation_from_sampler(
            lambda: sample_characteristic_string(probs, slot + depth, rng),
            slot,
            depth,
            3000,
        )
        exact = settlement_violation_probability(
            probs, depth, prefix_length=slot - 1
        )
        assert estimate.within(exact, sigmas=4)

    def test_martingale_sampler_is_dominated(self, rng):
        """Theorem 1's dominance: damped sampler ≤ i.i.d. probability."""
        probs = bernoulli_condition(0.2, 0.3)
        slot, depth = 6, 15
        length = slot + depth

        damped = estimate_violation_from_sampler(
            lambda: sample_martingale_string(probs, length, rng, 0.2),
            slot,
            depth,
            4000,
        )
        iid = estimate_violation_from_sampler(
            lambda: sample_characteristic_string(probs, length, rng),
            slot,
            depth,
            4000,
        )
        assert damped.value <= iid.value + 4 * (
            damped.standard_error + iid.standard_error
        )
