"""Common-prefix property analysis (Section 9)."""

from repro.analysis.cp import (
    estimate_cp_violation_rate,
    fork_violates_k_cp_slot,
    k_cp_slot_holds_exactly,
    satisfies_k_cp_slot,
    uvp_free_windows,
)
from repro.analysis.bounds import theorem8_cp_bound
from repro.core.balanced import figure_2_fork
from repro.core.distributions import bernoulli_condition
from repro.core.forks import Fork

from tests.conftest import random_strings


class TestWindows:
    def test_all_honest_has_no_uvp_free_windows(self):
        assert uvp_free_windows("hhhhhh", 2) == []

    def test_adversarial_run_is_uvp_free(self):
        windows = uvp_free_windows("AAAA", 2)
        assert windows == [1, 2, 3]

    def test_consistent_mode_weakly_fewer_windows(self):
        for word in random_strings("HA", 20, 10, 30, seed=81):
            strict = uvp_free_windows(word, 4, consistent=False)
            relaxed = uvp_free_windows(word, 4, consistent=True)
            assert set(relaxed) <= set(strict)


class TestCpPredicates:
    def test_certificate_implies_exact(self):
        """UVP windows certify k-CP^slot; the exact check must agree."""
        for word in random_strings("hHA", 50, 8, 30, seed=82):
            for depth in (3, 5):
                if satisfies_k_cp_slot(word, depth):
                    assert k_cp_slot_holds_exactly(word, depth), (word, depth)

    def test_all_honest_satisfies_cp(self):
        assert k_cp_slot_holds_exactly("hhhhhhhh", 2)

    def test_balanced_string_violates_cp(self):
        # hAhAhA keeps two diverging maximal chains alive for 6 slots
        assert not k_cp_slot_holds_exactly("hAhAhA", 3)

    def test_fork_level_violation(self):
        fork = figure_2_fork()
        assert fork_violates_k_cp_slot(fork, 3)

    def test_fork_level_no_violation_on_chain(self):
        fork = Fork("hhh")
        parent = fork.root
        for slot in (1, 2, 3):
            parent = fork.add_vertex(parent, slot)
        assert not fork_violates_k_cp_slot(fork, 1)


class TestTheorem8Comparison:
    def test_bound_dominates_empirical_rate(self, rng):
        epsilon, p_unique = 0.5, 0.5
        probs = bernoulli_condition(epsilon, p_unique)
        total_length, depth = 120, 25
        rate = estimate_cp_violation_rate(
            probs, total_length, depth, 800, rng
        )
        bound = theorem8_cp_bound(total_length, epsilon, p_unique, depth)
        assert bound >= rate - 0.05
