"""Span tracing: event schema, nesting, PID discipline, the report CLI."""

import json
import os
import threading
from unittest import mock

import pytest

from repro.obs import trace
from repro.obs.report import load_events, main, render_table, render_tree
from repro.obs.trace import is_tracing, span, tracing_to


def _events(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestSpan:
    def test_disabled_span_is_a_noop(self, tmp_path):
        assert not is_tracing()
        with span("anything"):  # must not raise or write anywhere
            pass

    def test_event_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing_to(path):
            with span("runner.wave", wave=3, chunks=8):
                pass
        (event,) = _events(path)
        assert event["name"] == "runner.wave"
        assert event["id"] == 0
        assert event["parent"] is None
        assert event["depth"] == 0
        assert event["start"] >= 0
        assert event["duration"] >= 0
        assert event["thread"] == threading.current_thread().name
        assert event["attrs"] == {"wave": 3, "chunks": 8}
        assert "error" not in event

    def test_nesting_links_parent_and_depth(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing_to(path):
            with span("outer"):
                with span("inner"):
                    pass
        inner, outer = _events(path)  # inner exits (and writes) first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1
        assert outer["parent"] is None

    def test_error_is_recorded_and_reraised(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing_to(path):
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        (event,) = _events(path)
        assert event["error"] == "ValueError"

    def test_non_json_attrs_are_stringified(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing_to(path):
            with span("odd", value={1, 2}):
                pass
        (event,) = _events(path)
        assert isinstance(event["attrs"]["value"], str)

    def test_forked_child_pid_never_writes(self, tmp_path):
        """A sink inherited across fork must not be written by the child."""
        path = tmp_path / "t.jsonl"
        with tracing_to(path):
            with mock.patch("repro.obs.trace.os.getpid",
                            return_value=os.getpid() + 1):
                assert not is_tracing()
                with span("child-side"):
                    pass
            with span("parent-side"):
                pass
        (event,) = _events(path)
        assert event["name"] == "parent-side"

    def test_threads_have_independent_stacks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing_to(path):
            with span("main-outer"):
                done = threading.Event()

                def worker():
                    with span("worker-root"):
                        pass
                    done.set()

                threading.Thread(target=worker).start()
                assert done.wait(5)
        events = {event["name"]: event for event in _events(path)}
        # The worker's span is a root in *its* thread, not a child of
        # the main thread's open span.
        assert events["worker-root"]["parent"] is None
        assert events["worker-root"]["depth"] == 0

    def test_tracing_to_restores_previous_sink(self, tmp_path):
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        with tracing_to(first):
            with tracing_to(second):
                with span("inner"):
                    pass
            with span("outer-resumed"):
                pass
        assert [e["name"] for e in _events(second)] == ["inner"]
        assert [e["name"] for e in _events(first)] == ["outer-resumed"]


class TestReport:
    def _write_trace(self, path):
        with tracing_to(path):
            with span("runner.run"):
                for _ in range(3):
                    with span("runner.chunk"):
                        pass

    def test_load_events_skips_torn_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        events = load_events(str(path))
        assert len(events) == 4

    def test_table_has_percentile_columns(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        table = render_table(load_events(str(path)))
        assert "p50_ms" in table and "p99_ms" in table
        assert "runner.chunk" in table and "runner.run" in table
        # chunk appears with its count of 3
        chunk_row = next(
            line for line in table.splitlines() if "runner.chunk" in line
        )
        assert " 3 " in f" {chunk_row} "

    def test_tree_indents_children(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        tree = render_tree(load_events(str(path)))
        assert "runner.run  x1" in tree
        assert "\n  runner.chunk  x3" in tree

    def test_main_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 0
        assert "no spans recorded" in capsys.readouterr().out

    def test_main_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_main_prints_table_and_tree(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "runner.chunk" in out
        assert main(["--tree", str(path)]) == 0
        out = capsys.readouterr().out
        assert "p50_ms" not in out and "runner.chunk" in out
