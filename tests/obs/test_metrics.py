"""Metrics registry: instruments, exposition format, thread safety."""

import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("x_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 4.0

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        cumulative, total, count = histogram.snapshot()
        assert cumulative == [1, 3, 4]  # le=0.1, le=1.0, +Inf
        assert total == pytest.approx(6.05)
        assert count == 4

    def test_histogram_boundary_value_counts_le(self):
        histogram = Histogram(bounds=(0.1, 1.0))
        histogram.observe(0.1)
        cumulative, _, _ = histogram.snapshot()
        assert cumulative[0] == 1  # 0.1 <= 0.1 lands in the first bucket

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(bounds=(1.0, 0.1))

    def test_same_name_same_labels_is_same_child(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total", x="1") is registry.counter(
            "a_total", x="1"
        )
        assert registry.counter("a_total", x="1") is not registry.counter(
            "a_total", x="2"
        )

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("a_total")

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", **{"bad-label": "x"})


class TestRender:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", route="/a").inc(3)
        text = registry.render()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="/a"} 3' in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 0' in text
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", path='a"b\\c').inc()
        assert r'odd_total{path="a\"b\\c"} 1' in registry.render()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""


class TestSwitchboard:
    def test_disabled_accessors_return_null_singletons(self):
        assert metrics.active() is None
        assert metrics.counter("x_total") is NULL_COUNTER
        assert metrics.gauge("x") is NULL_GAUGE
        assert metrics.histogram("x_seconds") is NULL_HISTOGRAM
        # The no-ops absorb updates without state.
        metrics.counter("x_total").inc(5)
        assert metrics.counter("x_total").value == 0

    def test_enabled_registry_routes_and_restores(self):
        with metrics.enabled_registry() as registry:
            metrics.counter("y_total").inc(2)
            assert registry.counter("y_total").value == 2
            assert metrics.active() is registry
        assert metrics.active() is None

    def test_nested_enable_restores_outer(self):
        with metrics.enabled_registry() as outer:
            with metrics.enabled_registry() as inner:
                assert metrics.active() is inner
            assert metrics.active() is outer

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 5.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestThreadSafety:
    def test_no_lost_increments_under_contention(self):
        """Concurrent chunk completions must never lose an increment."""
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        histogram = registry.histogram("lat_seconds", buckets=(0.5,))
        threads, per_thread = 8, 5_000

        def hammer():
            for _ in range(per_thread):
                counter.inc()
                histogram.observe(0.1)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == threads * per_thread
        cumulative, _, count = histogram.snapshot()
        assert count == threads * per_thread
        assert cumulative[-1] == threads * per_thread

    def test_concurrent_family_creation_is_safe(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)

        def create(i):
            barrier.wait()
            for j in range(200):
                registry.counter("shared_total", worker=str(j % 5)).inc()

        pool = [
            threading.Thread(target=create, args=(i,)) for i in range(8)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = sum(
            registry.counter("shared_total", worker=str(j)).value
            for j in range(5)
        )
        assert total == 8 * 200
