"""The telemetry contract: instrumentation never changes a result.

Metrics and tracing must consume zero RNG, never enter cache keys or
ledger schemas, and leave every estimate bit-identical to an
uninstrumented run — on all four backends.  These tests run the same
workload with telemetry off and fully on (metrics + tracing) and
require exact equality: values, standard errors, realized trial counts,
and the on-disk cache bytes.
"""

import pytest

from repro.engine import (
    ArrayBackend,
    DistributedBackend,
    ExperimentRunner,
    ProcessBackend,
    SerialBackend,
    get_grid,
    get_scenario,
    run_grid,
)
from repro.engine.cache import ResultCache
from repro.obs import metrics
from repro.obs.trace import tracing_to
from repro.worker import serve

SCENARIO = get_scenario("iid-settlement", depth=15)
TRIALS = 1_500
CHUNK = 256
SEED = 2020


def _instrumented(tmp_path, run):
    """Run ``run()`` with metrics and tracing both enabled."""
    with metrics.enabled_registry():
        with tracing_to(tmp_path / "overhead-trace.jsonl"):
            return run()


@pytest.fixture()
def backends():
    """One factory per backend name; distributed uses live workers."""
    servers = [serve(), serve()]

    def distributed():
        return DistributedBackend(
            [server.address for server in servers], timeout=30.0
        )

    yield {
        "serial": SerialBackend,
        "process": lambda: ProcessBackend(2),
        "array": ArrayBackend,
        "distributed": distributed,
    }
    for server in servers:
        server.shutdown()
        server.server_close()


@pytest.mark.parametrize(
    "name", ["serial", "process", "array", "distributed"]
)
class TestBitIdentity:
    def test_run_is_bit_identical(self, name, backends, tmp_path):
        with backends[name]() as backend:
            baseline = ExperimentRunner(SCENARIO, chunk_size=CHUNK).run(
                TRIALS, seed=SEED, backend=backend
            )
            traced = _instrumented(
                tmp_path,
                lambda: ExperimentRunner(SCENARIO, chunk_size=CHUNK).run(
                    TRIALS, seed=SEED, backend=backend
                ),
            )
        assert traced.value == baseline.value
        assert traced.standard_error == baseline.standard_error
        assert traced.trials == baseline.trials

    def test_run_until_is_bit_identical(self, name, backends, tmp_path):
        def adaptive(backend):
            runner = ExperimentRunner(SCENARIO, chunk_size=CHUNK)
            estimate = runner.run_until(
                seed=SEED,
                target_se=0.02,
                max_trials=4_000,
                backend=backend,
            )
            return estimate, runner.last_report

        with backends[name]() as backend:
            baseline, base_report = adaptive(backend)
            (traced, traced_report) = _instrumented(
                tmp_path, lambda: adaptive(backend)
            )
        assert traced.value == baseline.value
        assert traced.standard_error == baseline.standard_error
        # The adaptive wave schedule (and so the realized spend) must
        # not shift by a single trial under instrumentation.
        assert traced.trials == baseline.trials
        assert traced_report.sampled_trials == base_report.sampled_trials


class TestGridAndCache:
    def test_run_grid_rows_are_identical(self, tmp_path):
        grid = get_grid("delta")
        baseline = run_grid(grid, trials=600)
        traced = _instrumented(
            tmp_path, lambda: run_grid(grid, trials=600)
        )
        assert traced == baseline

    def test_cache_bytes_are_identical(self, tmp_path):
        """Estimate entries and chunk ledgers must not know whether the
        run that wrote them was instrumented."""

        def populate(directory):
            cache = ResultCache(directory)
            runner = ExperimentRunner(
                SCENARIO, chunk_size=CHUNK, cache=cache
            )
            runner.run(TRIALS, seed=SEED)
            runner.run_until(
                seed=SEED + 1,
                target_se=0.02,
                max_trials=4_000,
            )

        plain_dir = tmp_path / "plain"
        traced_dir = tmp_path / "traced"
        populate(plain_dir)
        _instrumented(tmp_path, lambda: populate(traced_dir))

        plain = {p.name: p.read_bytes() for p in plain_dir.iterdir()}
        traced = {p.name: p.read_bytes() for p in traced_dir.iterdir()}
        assert plain and plain == traced

    def test_warm_cache_replay_identical_under_instrumentation(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        runner = ExperimentRunner(SCENARIO, chunk_size=CHUNK, cache=cache)
        cold = runner.run(TRIALS, seed=SEED)
        warm = _instrumented(
            tmp_path, lambda: runner.run(TRIALS, seed=SEED)
        )
        assert warm.value == cold.value
        assert runner.last_report.reused_trials == TRIALS


class TestRecordedTelemetry:
    """The flip side: when enabled, the instrumentation does report."""

    def test_run_populates_runner_metrics(self, tmp_path):
        with metrics.enabled_registry() as registry:
            ExperimentRunner(SCENARIO, chunk_size=CHUNK).run(
                TRIALS, seed=SEED
            )
        text = registry.render()
        assert 'repro_runner_trials_total{source="sampled"} 1500' in text
        assert 'repro_chunk_seconds_count{backend="serial"}' in text
        assert 'repro_runner_runs_total{cache="miss"} 1' in text

    def test_cache_metrics_split_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ExperimentRunner(SCENARIO, chunk_size=CHUNK, cache=cache)
        with metrics.enabled_registry() as registry:
            runner.run(TRIALS, seed=SEED)
            runner.run(TRIALS, seed=SEED)
        text = registry.render()
        assert (
            'repro_cache_requests_total{kind="estimate",result="miss"} 1'
            in text
        )
        assert (
            'repro_cache_requests_total{kind="estimate",result="hit"} 1'
            in text
        )
        assert 'repro_cache_stores_total{kind="estimate"} 1' in text

    def test_traced_run_emits_runner_spans(self, tmp_path):
        from repro.obs.report import load_events

        path = tmp_path / "spans.jsonl"
        with tracing_to(path):
            ExperimentRunner(SCENARIO, chunk_size=CHUNK).run(
                TRIALS, seed=SEED
            )
        names = {event["name"] for event in load_events(str(path))}
        assert {"runner.run", "runner.chunk"} <= names

    def test_distributed_run_reports_rpc_and_worker_stats(self, tmp_path):
        servers = [serve()]
        try:
            with metrics.enabled_registry() as registry:
                with DistributedBackend(
                    [servers[0].address], timeout=30.0
                ) as backend:
                    ExperimentRunner(SCENARIO, chunk_size=CHUNK).run(
                        TRIALS, seed=SEED, backend=backend
                    )
                    stats = dict(backend.worker_stats)
        finally:
            for server in servers:
                server.shutdown()
                server.server_close()
        text = registry.render()
        assert 'repro_rpc_seconds_count{op="chunk"}' in text
        assert "repro_worker_uptime_seconds" in text
        (frame,) = stats.values()
        assert frame["worker"] == servers[0].worker_id
        assert frame["uptime"] >= 0
        assert frame["served"]["chunk"] >= 1
