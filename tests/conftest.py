"""Shared fixtures: deterministic RNGs and exhaustive string families."""

from __future__ import annotations

import itertools
import random

import pytest

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass
else:
    # Fixed, derandomized, CI-budgeted profile: property tests explore
    # the same example set on every run and every machine, so a failure
    # is a regression, never a flake.
    settings.register_profile(
        "repro-ci", derandomize=True, max_examples=50, deadline=None
    )
    settings.load_profile("repro-ci")


@pytest.fixture()
def rng() -> random.Random:
    """A deterministic RNG; tests must not depend on global random state."""
    return random.Random(0xC0FFEE)


def all_strings(alphabet: str, max_length: int, min_length: int = 0):
    """Every string over ``alphabet`` with length in [min_length, max_length]."""
    for length in range(min_length, max_length + 1):
        for symbols in itertools.product(alphabet, repeat=length):
            yield "".join(symbols)


def random_strings(
    alphabet: str,
    count: int,
    min_length: int,
    max_length: int,
    seed: int,
) -> list[str]:
    """A reproducible sample of random strings."""
    generator = random.Random(seed)
    words = []
    for _ in range(count):
        length = generator.randint(min_length, max_length)
        words.append(
            "".join(generator.choice(alphabet) for _ in range(length))
        )
    return words
