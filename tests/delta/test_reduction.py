"""The reduction map ρ_Δ (Definition 22) and Proposition 4."""

import collections
import math

import pytest

from repro.core.alphabet import string_leq
from repro.core.distributions import (
    sample_characteristic_string,
    semi_synchronous_condition,
)
from repro.delta.reduction import (
    MODE_EMPTY_RUN,
    MODE_QUIET_WINDOW,
    reduce_string,
    reduced_epsilon,
    reduced_probabilities,
    reduction_beta,
    slot_bijection,
    undistorted_length,
)


class TestReduceString:
    def test_delta_zero_drops_empty_slots_only(self):
        assert reduce_string("h.H.A", 0) == "hHA"
        assert reduce_string("h.H.A", 0, MODE_QUIET_WINDOW) == "hHA"

    def test_isolated_honest_slot_survives(self):
        assert reduce_string("h..h..", 2) == "hh"

    def test_crowded_honest_slot_demoted(self):
        assert reduce_string("hh", 1) == "AA"  # trailing distortion too
        assert reduce_string("h.h..", 1) == "hh"

    def test_trailing_distortion(self):
        # the final honest slot never has Δ successors in view
        assert reduce_string("..h", 2) == "A"

    def test_adversarial_slots_pass_through(self):
        assert reduce_string("A.A", 5) == "AA"

    def test_mode_difference(self):
        # 'A' inside the window: kept by quiet-window, demoted by empty-run
        word = "h.Ah.."
        assert reduce_string(word, 2, MODE_QUIET_WINDOW)[0] == "h"
        assert reduce_string(word, 2, MODE_EMPTY_RUN)[0] == "A"

    def test_empty_run_dominates_quiet_window(self):
        """The proof's semantics is the more adversarial of the two."""
        import random

        generator = random.Random(5)
        for _ in range(60):
            word = "".join(
                generator.choice("hHA...") for _ in range(40)
            )
            for delta in (0, 1, 3):
                strict = reduce_string(word, delta, MODE_EMPTY_RUN)
                loose = reduce_string(word, delta, MODE_QUIET_WINDOW)
                assert string_leq(loose, strict)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            reduce_string("h", 1, "bogus")

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            reduce_string("h", -1)


class TestBijection:
    def test_bijection_skips_empty_slots(self):
        mapping = slot_bijection("h.A.H", 2)
        assert mapping == {1: 1, 3: 2, 5: 3}

    def test_bijection_is_increasing(self):
        mapping = slot_bijection("hA..hH.A", 1)
        items = sorted(mapping.items())
        values = [v for _, v in items]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_undistorted_length(self):
        assert undistorted_length("h.h.h.", 1) == 2  # 3 active minus Δ=1


class TestProposition4:
    def test_beta_formula(self):
        assert reduction_beta(0.1, 3) == pytest.approx(0.9**3)

    def test_reduced_probabilities_formulas(self):
        probs = semi_synchronous_condition(0.2, 0.05, 0.10)
        reduced = reduced_probabilities(probs, 3)
        beta = 0.8**3
        assert reduced.p_unique == pytest.approx(0.10 * beta / 0.2)
        assert reduced.p_multi == pytest.approx(0.05 * beta / 0.2)
        assert reduced.p_adversarial == pytest.approx(
            1 - beta + 0.05 * beta / 0.2
        )
        assert reduced.p_empty == 0.0

    def test_full_activity_with_delay_rejected(self):
        probs = semi_synchronous_condition(1.0, 0.1, 0.5)
        with pytest.raises(ValueError):
            reduced_probabilities(probs, 2)

    def test_reduced_epsilon_decreases_with_delta(self):
        probs = semi_synchronous_condition(0.1, 0.01, 0.05)
        epsilons = [reduced_epsilon(probs, d) for d in (0, 1, 2, 4, 8)]
        assert epsilons == sorted(epsilons, reverse=True)

    def test_empirical_iid_frequencies(self, rng):
        """Sampled reduced strings match the Proposition 4 law."""
        probs = semi_synchronous_condition(0.2, 0.05, 0.10)
        delta = 4
        reduced = reduced_probabilities(probs, delta)
        counts = collections.Counter()
        total = 0
        for _ in range(300):
            word = sample_characteristic_string(probs, 400, rng)
            image = reduce_string(word, delta)
            image = image[: max(len(image) - delta, 0)]
            counts.update(image)
            total += len(image)
        assert abs(counts["h"] / total - reduced.p_unique) < 0.012
        assert abs(counts["H"] / total - reduced.p_multi) < 0.012
        assert abs(counts["A"] / total - reduced.p_adversarial) < 0.012

    def test_empirical_independence_of_adjacent_symbols(self, rng):
        """Adjacent reduced symbols are uncorrelated under empty-run mode.

        (Under the printed quiet-window rule they are not — the reason
        the proof uses the empty-run semantics.)
        """
        probs = semi_synchronous_condition(0.25, 0.05, 0.10)
        delta = 2
        reduced = reduced_probabilities(probs, delta)
        pairs = 0
        adjacent_hh = 0
        for _ in range(300):
            word = sample_characteristic_string(probs, 400, rng)
            image = reduce_string(word, delta)
            image = image[: max(len(image) - delta, 0)]
            for a, b in zip(image, image[1:]):
                pairs += 1
                if a != "A" and b != "A":
                    adjacent_hh += 1
        expected = (1 - reduced.p_adversarial) ** 2
        assert abs(adjacent_hh / pairs - expected) < 0.015
