"""(k, Δ)-settlement and the Theorem 7 machinery (Section 8)."""

import pytest

from repro.core.distributions import semi_synchronous_condition
from repro.delta.settlement import (
    estimate_violation_rate,
    is_k_delta_settled,
    lemma2_settles,
    theorem7_error_bound,
)


class TestDecisionProcedure:
    def test_empty_slot_vacuously_settled(self):
        assert is_k_delta_settled("h.h", 2, 1, 1)

    def test_all_honest_sparse_string_settles(self):
        word = "h..h..h..h..h..h.."
        assert is_k_delta_settled(word, 1, 3, 1)

    def test_dense_honest_with_delay_may_not_settle(self):
        """Adjacent honest slots under delay reduce to adversarial symbols,
        so even an honest-only execution can fail to settle quickly."""
        word = "hhhhhhhh"
        assert not is_k_delta_settled(word, 1, 3, 2)

    def test_delta_zero_matches_synchronous(self):
        from repro.core.settlement import is_k_settled

        words = ["hAhhA", "hhAAhh", "AhAhAh"]
        for word in words:
            for slot in range(1, len(word) + 1):
                for depth in (1, 2, 3):
                    assert is_k_delta_settled(
                        word, slot, depth, 0
                    ) == is_k_settled(word, slot, depth), (word, slot, depth)

    def test_slot_out_of_range(self):
        with pytest.raises(ValueError):
            is_k_delta_settled("h.h", 4, 1, 1)


class TestLemma2:
    def test_certificate_implies_settlement(self):
        """Lemma 2's sufficient condition never contradicts the margin rule."""
        import random

        generator = random.Random(17)
        checked = 0
        for _ in range(300):
            length = generator.randint(10, 30)
            word = "".join(generator.choice("hA...") for _ in range(length))
            delta = generator.randint(0, 2)
            for slot in range(1, length + 1):
                if word[slot - 1] == ".":
                    continue
                for depth in (2, 4):
                    if lemma2_settles(word, slot, depth, delta):
                        checked += 1
                        assert is_k_delta_settled(word, slot, depth, delta), (
                            word,
                            slot,
                            depth,
                            delta,
                        )
        assert checked > 10  # the certificate fired often enough to matter


class TestTheorem7:
    def test_bound_in_unit_interval(self):
        probs = semi_synchronous_condition(0.05, 0.005, 0.04)
        for depth in (50, 200, 600):
            value = theorem7_error_bound(probs, depth, 2)
            assert 0.0 <= value <= 1.0

    def test_bound_decreases_with_depth(self):
        probs = semi_synchronous_condition(0.05, 0.005, 0.04)
        values = [
            theorem7_error_bound(probs, depth, 2)
            for depth in (100, 300, 900)
        ]
        assert values == sorted(values, reverse=True)

    def test_bound_dominates_empirical_rate(self, rng):
        probs = semi_synchronous_condition(0.08, 0.004, 0.06)
        slot, depth, delta = 40, 60, 2
        rate = estimate_violation_rate(
            probs, slot, depth, delta, 200, 300, rng
        )
        bound = theorem7_error_bound(probs, depth, delta)
        assert bound >= rate - 0.05
