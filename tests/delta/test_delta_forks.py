"""Δ-forks (Definition 21) and the image isomorphism (Proposition 3)."""

import random

import pytest

from repro.core.forks import ForkAxiomViolation
from repro.delta.forks import DeltaFork, image_fork, max_honest_depth_before
from repro.delta.reduction import reduce_string


class TestDeltaForkValidation:
    def test_nearby_honest_vertices_may_tie_in_depth(self):
        fork = DeltaFork("h.h", delta=2)
        fork.add_vertex(fork.root, 1)
        fork.add_vertex(fork.root, 3)  # distance 2 ≤ Δ: tie allowed
        fork.validate()

    def test_distant_honest_vertices_must_increase(self):
        fork = DeltaFork("h..h", delta=2)
        fork.add_vertex(fork.root, 1)
        fork.add_vertex(fork.root, 4)  # distance 3 > Δ: F4Δ violated
        with pytest.raises(ForkAxiomViolation):
            fork.validate()

    def test_delta_zero_is_synchronous_f4(self):
        fork = DeltaFork("hh", delta=0)
        fork.add_vertex(fork.root, 1)
        fork.add_vertex(fork.root, 2)
        with pytest.raises(ForkAxiomViolation):
            fork.validate()

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            DeltaFork("h", delta=-1)

    def test_copy_preserves_delta(self):
        fork = DeltaFork("h.h", delta=2)
        fork.add_vertex(fork.root, 1)
        clone = fork.copy()
        assert isinstance(clone, DeltaFork)
        assert clone.delta == 2
        assert len(clone) == len(fork)

    def test_viability_threshold(self):
        fork = DeltaFork("h.hA", delta=2)
        v1 = fork.add_vertex(fork.root, 1)
        fork.add_vertex(v1, 3)
        assert max_honest_depth_before(fork, 4) == 1  # only slot ≤ 1 counts
        assert max_honest_depth_before(fork, 6) == 2


class TestImageFork:
    def build_random_delta_fork(self, seed: int) -> DeltaFork:
        """Grow a random valid Δ-fork mimicking a Δ-delayed execution."""
        generator = random.Random(seed)
        length = generator.randint(6, 14)
        delta = generator.randint(0, 3)
        word = "".join(generator.choice("hHA..") for _ in range(length))
        fork = DeltaFork(word, delta)
        for slot in range(1, length + 1):
            symbol = word[slot - 1]
            if symbol == ".":
                continue
            threshold = max_honest_depth_before(fork, slot)
            candidates = [
                v
                for v in fork.vertices()
                if v.label < slot and v.depth >= threshold
            ]
            if symbol == "A":
                if generator.random() < 0.5:
                    anyv = generator.choice(
                        [v for v in fork.vertices() if v.label < slot]
                    )
                    fork.add_vertex(anyv, slot)
                continue
            count = 2 if symbol == "H" and generator.random() < 0.5 else 1
            for _ in range(count):
                fork.add_vertex(generator.choice(candidates), slot)
        fork.validate()
        return fork

    def test_image_is_valid_synchronous_fork(self):
        """Proposition 3: the ρ_Δ image satisfies F1–F4 (30 random forks)."""
        for seed in range(30):
            fork = self.build_random_delta_fork(seed)
            image = image_fork(fork)
            image.validate()

    def test_image_preserves_structure(self):
        for seed in range(10):
            fork = self.build_random_delta_fork(seed)
            image = image_fork(fork)
            assert len(image) == len(fork)
            assert image.height == fork.height
            assert image.word == reduce_string(fork.word, fork.delta)

    def test_image_relabels_through_bijection(self):
        fork = DeltaFork("h.h", delta=0)
        fork.add_vertex(fork.root, 1)
        v3 = fork.add_vertex(fork.vertices()[1], 3)
        image = image_fork(fork)
        labels = sorted(v.label for v in image.vertices())
        assert labels == [0, 1, 2]  # slot 3 became reduced slot 2
