"""Refinement: quantization soundness, overlays, and the daemon.

The refinement tier's certificate rests on two dominations pinned
here: the quantized coordinates of a query dominate the query (so the
exact DP at the quantized cell upper-bounds the query's true value),
and the base grid corner dominates the quantized coordinates (so the
refined value never exceeds the base table's answer).  Serving
``min(base, overlay)`` therefore only ever *tightens* answers while
every reply remains a certified upper bound — asserted against the
direct Section 6.6 DP on a golden query set.
"""

import json

import pytest

from repro.analysis.exact import settlement_violation_probability
from repro.oracle.refine import (
    OverlayError,
    REFINE_SCALE,
    RefineDaemon,
    SnapTally,
    key_coordinates,
    load_overlay,
    quantize_columns,
    quantize_key,
    refine_once,
    save_overlay,
)
from repro.oracle.service import SettlementOracle
from repro.oracle.store import save_tables, spec_fingerprint
from repro.oracle.tables import (
    OracleSpec,
    build_tables,
    effective_probabilities,
)

SPEC = OracleSpec(
    alphas=(0.1, 0.2, 0.3),
    unique_fractions=(0.5, 1.0),
    deltas=(0, 2),
    depths=(5, 10, 20),
    targets=(1e-1, 1e-2),
    activity=0.05,
)

#: Off-grid, in-hull queries (α, fraction, Δ, k) — none lies on a grid
#: line of SPEC, so every base answer snaps conservatively.
GOLDEN_QUERIES = (
    (0.13, 0.83, 1, 7),
    (0.11, 0.97, 0, 6),
    (0.22, 0.71, 1, 12),
    (0.27, 0.55, 0, 9),
    (0.17, 0.64, 1, 17),
)


@pytest.fixture(scope="module")
def tables():
    return build_tables(SPEC).tables


@pytest.fixture()
def oracle(tables):
    return SettlementOracle(tables)


def _fed_tally(queries=GOLDEN_QUERIES):
    tally = SnapTally()
    for query in queries:
        tally.record(*query)
    return tally


class TestQuantization:
    @pytest.mark.parametrize("query", GOLDEN_QUERIES)
    def test_quantized_coordinates_dominate_query(self, query):
        alpha, fraction, delta, depth = query
        qalpha, qfraction, qdelta, qdepth = key_coordinates(
            quantize_key(*query)
        )
        assert qalpha >= alpha
        assert qfraction <= fraction
        assert qdelta >= delta
        assert qdepth <= depth

    @pytest.mark.parametrize("query", GOLDEN_QUERIES)
    def test_quantization_is_close(self, query):
        alpha, fraction, _, _ = query
        qalpha, qfraction, _, _ = key_coordinates(quantize_key(*query))
        assert qalpha - alpha <= 1.0 / REFINE_SCALE
        assert fraction - qfraction <= 1.0 / REFINE_SCALE

    def test_grid_points_are_fixed_points(self):
        key = quantize_key(8 / REFINE_SCALE, 40 / REFINE_SCALE, 2, 10)
        assert key == (8, 40, 2, 10)
        assert quantize_key(*key_coordinates(key)) == key

    def test_columns_agree_with_scalar(self):
        alphas, fractions, deltas, depths = zip(*GOLDEN_QUERIES)
        qa, qf, qd, qk = quantize_columns(alphas, fractions, deltas, depths)
        vectorized = list(zip(qa.tolist(), qf.tolist(), qd.tolist(), qk.tolist()))
        assert vectorized == [quantize_key(*query) for query in GOLDEN_QUERIES]

    def test_sub_ulp_products_still_dominate(self):
        # 0.29 * 64 = 18.56 is fine, but some floats land a hair under
        # their true multiple; sweep a dense range and demand exact
        # domination everywhere.
        for step in range(1, 3000):
            alpha = step / 6173.0  # irregular denominators
            qa, qf, _, _ = quantize_key(alpha, 1.0 - alpha, 0, 5)
            assert qa / REFINE_SCALE >= alpha
            assert qf / REFINE_SCALE <= 1.0 - alpha


class TestSnapTally:
    def test_hottest_orders_by_count(self):
        tally = SnapTally()
        for _ in range(3):
            tally.record(*GOLDEN_QUERIES[0])
        tally.record(*GOLDEN_QUERIES[1])
        hottest = tally.hottest(2)
        assert hottest[0] == quantize_key(*GOLDEN_QUERIES[0])
        assert hottest[1] == quantize_key(*GOLDEN_QUERIES[1])
        assert tally.total == 4

    def test_hottest_excludes_refined_keys(self):
        tally = _fed_tally()
        first = quantize_key(*GOLDEN_QUERIES[0])
        remaining = tally.hottest(10, exclude={first})
        assert first not in remaining
        assert len(remaining) == len(GOLDEN_QUERIES) - 1

    def test_batch_recording_matches_scalar(self):
        scalar, batch = SnapTally(), SnapTally()
        for query in GOLDEN_QUERIES:
            scalar.record(*query)
        batch.record_batch(*zip(*GOLDEN_QUERIES))
        assert scalar.snapshot() == batch.snapshot()


class TestRefineOnce:
    def test_refined_values_match_direct_dp(self, oracle):
        overlay = refine_once(oracle, _fed_tally(), top=len(GOLDEN_QUERIES))
        assert len(overlay) == len(GOLDEN_QUERIES)
        for key, value in overlay.items():
            alpha, fraction, delta, depth = key_coordinates(key)
            law = effective_probabilities(
                alpha, fraction, delta, SPEC.activity
            )
            assert value == settlement_violation_probability(law, depth)

    def test_existing_entries_are_kept_not_recomputed(self, oracle):
        tally = _fed_tally()
        first = refine_once(oracle, tally, top=2)
        second = refine_once(oracle, tally, top=10, overlay=first)
        assert set(first) <= set(second)
        assert all(second[key] == value for key, value in first.items())
        assert first is not second  # the serving copy is never mutated

    def test_unrefinable_cells_are_skipped(self, oracle):
        tally = SnapTally()
        tally.record(0.49, 0.5, 0, 5)  # honest majority lost after Δ=0 cut?
        tally.record(0.1, 1.0, 0, 0.4)  # depth quantizes to 0
        overlay = refine_once(oracle, tally, top=10)
        assert all(key[3] >= 1 for key in overlay)


class TestOverlayArtifact:
    def test_round_trip(self, oracle, tmp_path):
        entries = refine_once(oracle, _fed_tally(), top=3)
        fingerprint = spec_fingerprint(oracle.spec)
        path = save_overlay(tmp_path / "overlay.json", fingerprint, entries)
        assert load_overlay(path, fingerprint) == entries

    def test_tampered_overlay_is_rejected(self, oracle, tmp_path):
        entries = refine_once(oracle, _fed_tally(), top=1)
        path = save_overlay(
            tmp_path / "overlay.json", spec_fingerprint(oracle.spec), entries
        )
        payload = json.loads(path.read_text())
        key = next(iter(payload["entries"]))
        payload["entries"][key] = 0.0  # an attacker-tightened answer
        path.write_text(json.dumps(payload))
        with pytest.raises(OverlayError, match="fingerprint"):
            load_overlay(path)

    def test_foreign_base_is_rejected(self, oracle, tmp_path):
        entries = refine_once(oracle, _fed_tally(), top=1)
        path = save_overlay(
            tmp_path / "overlay.json", spec_fingerprint(oracle.spec), entries
        )
        with pytest.raises(OverlayError, match="base artifact"):
            load_overlay(path, "0" * 64)

    def test_missing_file_is_an_overlay_error(self, tmp_path):
        with pytest.raises(OverlayError, match="no readable overlay"):
            load_overlay(tmp_path / "absent.json")


class TestServingWithOverlay:
    def test_overlay_tightens_within_certified_bounds(self, oracle):
        base = [
            oracle.violation_probability(*query) for query in GOLDEN_QUERIES
        ]
        overlay = refine_once(oracle, _fed_tally(), top=len(GOLDEN_QUERIES))
        oracle.set_overlay(overlay)
        for query, base_value in zip(GOLDEN_QUERIES, base):
            refined = oracle.violation_probability(*query)
            law = effective_probabilities(
                query[0], query[1], query[2], SPEC.activity
            )
            exact = settlement_violation_probability(law, query[3])
            # Monotone tightening, still a certified upper bound.
            assert refined <= base_value
            assert refined >= exact
            assert refined < base_value  # off-grid: strictly tighter here

    def test_scalar_and_batch_agree_under_overlay(self, oracle):
        oracle.set_overlay(
            refine_once(oracle, _fed_tally(), top=len(GOLDEN_QUERIES))
        )
        batch = oracle.violation_probabilities(*zip(*GOLDEN_QUERIES))
        scalar = [
            oracle.violation_probability(*query) for query in GOLDEN_QUERIES
        ]
        assert batch.tolist() == scalar

    def test_grid_point_answers_are_untouched(self, oracle):
        on_grid = (0.2, 1.0, 0, 10)
        before = oracle.violation_probability(*on_grid)
        oracle.set_overlay(
            refine_once(oracle, _fed_tally(), top=len(GOLDEN_QUERIES))
        )
        assert oracle.violation_probability(*on_grid) == before

    def test_clearing_the_overlay_restores_base_answers(self, oracle):
        base = oracle.violation_probability(*GOLDEN_QUERIES[0])
        oracle.set_overlay(refine_once(oracle, _fed_tally(), top=1))
        oracle.set_overlay(None)
        assert oracle.overlay_size == 0
        assert oracle.violation_probability(*GOLDEN_QUERIES[0]) == base


class TestRefineDaemon:
    def test_leader_tick_publishes_and_installs(self, oracle, tmp_path):
        path = tmp_path / "overlay.json"
        daemon = RefineDaemon(oracle, _fed_tally(), path, leader=True, top=3)
        added = daemon.tick()
        assert added == 3
        assert oracle.overlay_size == 3
        assert path.is_file()
        # The cumulative tally keeps feeding later ticks until every
        # tallied cell is refined; then ticks become no-ops.
        assert daemon.tick() == len(GOLDEN_QUERIES) - 3
        assert daemon.tick() == 0
        assert oracle.overlay_size == len(GOLDEN_QUERIES)

    def test_leader_without_traffic_is_a_noop(self, oracle, tmp_path):
        daemon = RefineDaemon(
            oracle, SnapTally(), tmp_path / "overlay.json", leader=True
        )
        assert daemon.tick() == 0
        assert not (tmp_path / "overlay.json").exists()

    def test_leader_requires_a_tally(self, oracle, tmp_path):
        with pytest.raises(ValueError, match="tally"):
            RefineDaemon(oracle, None, tmp_path / "overlay.json", leader=True)

    def test_follower_hot_swaps_on_publish(self, tables, tmp_path):
        leader_oracle = SettlementOracle(tables)
        follower_oracle = SettlementOracle(tables)
        path = tmp_path / "overlay.json"
        leader = RefineDaemon(
            leader_oracle, _fed_tally(), path, leader=True, top=2
        )
        follower = RefineDaemon(follower_oracle, None, path, leader=False)
        assert follower.tick() == 0  # nothing published yet
        leader.tick()
        assert follower.tick() == 2
        query = GOLDEN_QUERIES[0]
        assert follower_oracle.violation_probability(*query) == (
            leader_oracle.violation_probability(*query)
        )
        # Same fingerprint again: no re-adoption.
        assert follower.tick() == 0

    def test_restart_adopts_published_overlay(self, tables, tmp_path):
        path = tmp_path / "overlay.json"
        first = SettlementOracle(tables)
        RefineDaemon(first, _fed_tally(), path, leader=True, top=2).tick()
        restarted = SettlementOracle(tables)
        RefineDaemon(restarted, SnapTally(), path, leader=True)
        assert restarted.overlay_size == 2

    def test_foreign_overlay_on_disk_is_ignored(self, tables, tmp_path):
        path = tmp_path / "overlay.json"
        path.write_text(json.dumps({"format": "something-else"}))
        restarted = SettlementOracle(tables)
        RefineDaemon(restarted, SnapTally(), path, leader=True)
        assert restarted.overlay_size == 0

    def test_overlay_survives_artifact_round_trip(self, tables, tmp_path):
        """The daemon binds overlays to the *spec* fingerprint, so an
        oracle re-loaded from a saved artifact adopts them too."""
        artifact = tmp_path / "artifact"
        save_tables(tables, artifact)
        loaded = SettlementOracle.load(artifact)
        path = tmp_path / "overlay.json"
        RefineDaemon(loaded, _fed_tally(), path, leader=True, top=1).tick()
        reloaded = SettlementOracle.load(artifact)
        RefineDaemon(reloaded, None, path, leader=False)
        assert reloaded.overlay_size == 1
