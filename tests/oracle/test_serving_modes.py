"""Cross-mode serving conformance: threaded, async, and pre-fork.

One parametrized fixture boots the same tiny artifact behind each
serving mode; every conformance test then runs against all three, so
the route surface, the structured error contract (including the 413
body-size limit and strict-boolean validation), keep-alive
pipelining, concurrency, and metrics accounting are pinned as
*mode-independent* behavior.  A separate test drives a golden request
set through all modes at once and asserts the response bodies are
byte-identical — the serving tier's core contract (the bodies are
produced once, in :class:`OracleApp`).
"""

import http.client
import json
import multiprocessing
import socket
import threading
import time

import pytest

from repro.analysis.exact import settlement_violation_probability
from repro.oracle.aioserver import AsyncHTTPServer
from repro.oracle.app import OracleApp
from repro.oracle.server import make_listening_socket, make_server
from repro.oracle.service import SettlementOracle
from repro.oracle.store import save_tables
from repro.oracle.tables import (
    OracleSpec,
    build_tables,
    effective_probabilities,
)

SPEC = OracleSpec(
    alphas=(0.1, 0.2),
    unique_fractions=(0.5, 1.0),
    deltas=(0, 2),
    depths=(5, 10),
    targets=(1e-1, 1e-2),
    activity=0.05,
)

#: Small cap so the 413 path is cheap to exercise.
SMALL_BODY_LIMIT = 64 * 1024

MODES = ("threaded", "async", "prefork")


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("serving-artifact")
    save_tables(build_tables(SPEC).tables, directory)
    return directory


@pytest.fixture(scope="module")
def oracle(artifact_dir):
    return SettlementOracle.load(artifact_dir)


def _prefork_worker(artifact_dir, sock, index):
    worker_oracle = SettlementOracle.load(str(artifact_dir))
    app = OracleApp(
        worker_oracle,
        worker_label=str(index),
        max_body_bytes=SMALL_BODY_LIMIT,
    )
    AsyncHTTPServer(app, sock=sock).run()


def _wait_ready(address, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            connection = http.client.HTTPConnection(*address, timeout=5)
            connection.request("GET", "/healthz")
            if connection.getresponse().status == 200:
                connection.close()
                return
        except OSError:
            time.sleep(0.05)
    raise RuntimeError(f"server at {address} never became ready")


def _boot(mode, oracle, artifact_dir):
    """Start one serving mode; returns ``(address, stop)``."""
    if mode == "threaded":
        server = make_server(oracle, max_body_bytes=SMALL_BODY_LIMIT)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()

        def stop():
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

        return server.server_address[:2], stop
    if mode == "async":
        server = AsyncHTTPServer(
            OracleApp(oracle, max_body_bytes=SMALL_BODY_LIMIT)
        ).start()
        return tuple(server.server_address[:2]), server.shutdown
    assert mode == "prefork"
    sock = make_listening_socket()
    address = sock.getsockname()[:2]
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(
            target=_prefork_worker,
            args=(artifact_dir, sock, index),
            daemon=True,
        )
        for index in range(2)
    ]
    for worker in workers:
        worker.start()
    sock.close()
    _wait_ready(address)

    def stop():
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.join(timeout=10)

    return address, stop


@pytest.fixture(scope="module", params=MODES)
def served(request, oracle, artifact_dir):
    address, stop = _boot(request.param, oracle, artifact_dir)
    yield request.param, address
    stop()


def _exchange(address, method, target, body=None, headers=()):
    """One request on a fresh connection; returns ``(status, bytes)``."""
    connection = http.client.HTTPConnection(*address, timeout=10)
    try:
        connection.request(method, target, body=body, headers=dict(headers))
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _get(address, target):
    return _exchange(address, "GET", target)


def _post(address, target, payload):
    return _exchange(
        address,
        "POST",
        target,
        body=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )


GOOD_BATCH = {
    "alpha": [0.1, 0.2, 0.13],
    "unique_fraction": [1.0, 0.5, 0.8],
    "delta": [0, 2, 1],
    "depth": [5, 10, 7],
}


class TestConformance:
    def test_healthz(self, served):
        _, address = served
        status, body = _get(address, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["cells"] == 16
        assert payload["overlay_cells"] == 0

    def test_scalar_violation_matches_dp(self, served):
        _, address = served
        status, body = _get(
            address,
            "/v1/violation?alpha=0.2&unique_fraction=1.0&delta=0&depth=10",
        )
        assert status == 200
        law = effective_probabilities(0.2, 1.0, 0, SPEC.activity)
        assert json.loads(body)["violation_probability"] == (
            settlement_violation_probability(law, 10)
        )

    def test_scalar_depth(self, served):
        _, address = served
        status, body = _get(
            address,
            "/v1/depth?alpha=0.1&unique_fraction=1.0&delta=0&target=0.1",
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["source"] in ("table", "analytic")
        assert payload["depth"] >= 1

    def test_batch_violation(self, served):
        _, address = served
        status, body = _post(address, "/v1/violation", GOOD_BATCH)
        assert status == 200
        values = json.loads(body)["violation_probability"]
        assert len(values) == 3
        assert all(0.0 <= value <= 1.0 for value in values)

    def test_batch_depth(self, served):
        _, address = served
        status, body = _post(
            address,
            "/v1/depth",
            {
                "alpha": [0.1],
                "unique_fraction": [1.0],
                "delta": [0],
                "target": [0.1],
            },
        )
        assert status == 200
        assert isinstance(json.loads(body)["depth"][0], int)

    def test_out_of_domain_is_400(self, served):
        _, address = served
        status, body = _get(
            address,
            "/v1/violation?alpha=0.49&unique_fraction=1.0&delta=0&depth=10",
        )
        assert status == 400
        assert json.loads(body)["error"] == "out-of-domain"

    def test_missing_parameter_is_400(self, served):
        _, address = served
        status, body = _get(address, "/v1/violation?alpha=0.1")
        assert status == 400
        assert json.loads(body)["error"] == "bad-request"

    def test_unknown_path_is_404(self, served):
        _, address = served
        status, body = _get(address, "/v2/nothing")
        assert status == 404
        assert json.loads(body)["error"] == "not-found"

    def test_malformed_json_is_400(self, served):
        _, address = served
        status, body = _exchange(
            address, "POST", "/v1/violation", body=b"{not json"
        )
        assert status == 400
        payload = json.loads(body)
        assert payload["error"] == "bad-request"
        assert "bad request body" in payload["detail"]

    def test_non_boolean_strict_is_400(self, served):
        _, address = served
        status, body = _post(
            address, "/v1/violation", {**GOOD_BATCH, "strict": "false"}
        )
        assert status == 400
        payload = json.loads(body)
        assert payload["error"] == "bad-request"
        assert "JSON boolean" in payload["detail"]

    def test_oversized_body_is_structured_413(self, served):
        """The limit is enforced on the Content-Length header *before*
        the body is read: the huge body is never sent, yet the 413
        arrives immediately and the connection closes."""
        _, address = served
        huge = SMALL_BODY_LIMIT * 64
        with socket.create_connection(address, timeout=10) as raw:
            raw.sendall(
                b"POST /v1/violation HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {huge}\r\n\r\n".encode()
            )
            raw.settimeout(10)
            data = b""
            while b"\r\n\r\n" not in data or not data.split(
                b"\r\n\r\n", 1
            )[1]:
                chunk = raw.recv(65536)
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        assert b" 413 " in head.split(b"\r\n", 1)[0]
        payload = json.loads(body)
        assert payload["error"] == "too-large"
        assert str(huge) in payload["detail"]

    def test_bad_content_length_is_400(self, served):
        _, address = served
        with socket.create_connection(address, timeout=10) as raw:
            raw.sendall(
                b"POST /v1/violation HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            raw.settimeout(10)
            data = b""
            while True:  # the server closes after responding
                chunk = raw.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert b" 400 " in data.split(b"\r\n", 1)[0]
        assert b'"bad-request"' in data

    def test_keep_alive_pipelining(self, served):
        """Two requests written back-to-back on one connection get two
        in-order responses on that same connection."""
        _, address = served
        request = (
            b"GET /v1/violation?alpha=0.2&unique_fraction=1.0&delta=0"
            b"&depth=10 HTTP/1.1\r\nHost: test\r\n\r\n"
        )
        with socket.create_connection(address, timeout=10) as raw:
            raw.sendall(request + request)
            raw.settimeout(10)
            data = b""
            deadline = time.monotonic() + 10
            while (
                data.count(b'"violation_probability"') < 2
                and time.monotonic() < deadline
            ):
                chunk = raw.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert data.count(b"HTTP/1.1 200") == 2
        assert data.count(b'"violation_probability"') == 2

    def test_concurrent_clients_agree(self, served):
        _, address = served
        expected = _get(
            address,
            "/v1/violation?alpha=0.2&unique_fraction=1.0&delta=0&depth=10",
        )
        results = []
        errors = []

        def client():
            try:
                results.append(
                    _get(
                        address,
                        "/v1/violation?alpha=0.2&unique_fraction=1.0"
                        "&delta=0&depth=10",
                    )
                )
            except Exception as error:  # surfaced below
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 8
        assert all(result == expected for result in results)

    def test_metrics_accounting(self, served):
        """Requests made on one keep-alive connection land in that
        process's registry; /metrics on the same connection shows them
        (and, in pre-fork mode, the worker label)."""
        mode, address = served
        connection = http.client.HTTPConnection(*address, timeout=10)
        try:
            connection.request(
                "GET",
                "/v1/violation?alpha=0.2&unique_fraction=1.0&delta=0"
                "&depth=10",
            )
            response = connection.getresponse()
            assert response.status == 200
            response.read()
            connection.request("GET", "/v1/violation?alpha=0.1")
            response = connection.getresponse()
            assert response.status == 400
            response.read()
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        finally:
            connection.close()
        assert "# TYPE repro_oracle_requests_total counter" in text
        assert 'route="/v1/violation"' in text
        assert 'repro_oracle_errors_total{code="400"' in text
        assert "# TYPE repro_oracle_request_seconds histogram" in text
        if mode == "prefork":
            assert 'worker="' in text


GOLDEN_REQUESTS = (
    ("GET", "/healthz", None),
    (
        "GET",
        "/v1/violation?alpha=0.2&unique_fraction=1.0&delta=0&depth=10",
        None,
    ),
    (
        "GET",
        "/v1/violation?alpha=0.13&unique_fraction=0.8&delta=1&depth=7",
        None,
    ),
    ("GET", "/v1/depth?alpha=0.1&unique_fraction=1.0&delta=0&target=0.1", None),
    ("GET", "/v1/violation?alpha=0.49&unique_fraction=1.0&delta=0&depth=10", None),
    ("GET", "/v1/violation?alpha=0.1", None),
    ("GET", "/v2/nothing", None),
    ("POST", "/v1/violation", GOOD_BATCH),
    (
        "POST",
        "/v1/depth",
        {
            "alpha": [0.1, 0.2],
            "unique_fraction": [1.0, 0.5],
            "delta": [0, 2],
            "target": [0.1, 0.01],
        },
    ),
    ("POST", "/v1/violation", {**GOOD_BATCH, "strict": "oops"}),
    ("POST", "/v1/violation", {"alpha": [0.1]}),
    ("POST", "/v1/violation", b"{broken"),
)


def test_golden_set_is_byte_identical_across_modes(oracle, artifact_dir):
    """Every serving mode returns the same bytes for the same request —
    successes and every error kind alike."""
    booted = {
        mode: _boot(mode, oracle, artifact_dir) for mode in MODES
    }
    try:
        transcripts = {}
        for mode, (address, _) in booted.items():
            exchanges = []
            for method, target, payload in GOLDEN_REQUESTS:
                if payload is None:
                    exchanges.append(_exchange(address, method, target))
                elif isinstance(payload, bytes):
                    exchanges.append(
                        _exchange(address, method, target, body=payload)
                    )
                else:
                    exchanges.append(_post(address, target, payload))
            transcripts[mode] = exchanges
    finally:
        for _, stop in booted.values():
            stop()
    threaded = transcripts["threaded"]
    for mode in ("async", "prefork"):
        assert transcripts[mode] == threaded, (
            f"{mode} responses diverge from threaded"
        )
