"""HTTP server round-trips and the ``python -m repro.oracle`` CLI."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.exact import settlement_violation_probability
from repro.oracle import app as app_module
from repro.oracle import cli
from repro.oracle.server import make_server
from repro.oracle.service import SettlementOracle
from repro.oracle.store import save_tables
from repro.oracle.tables import (
    OracleSpec,
    build_tables,
    effective_probabilities,
)

SPEC = OracleSpec(
    alphas=(0.1, 0.2),
    unique_fractions=(0.5, 1.0),
    deltas=(0, 2),
    depths=(5, 10),
    targets=(1e-1, 1e-2),
    activity=0.05,
)


@pytest.fixture(scope="module")
def tables():
    return build_tables(SPEC).tables


@pytest.fixture(scope="module")
def endpoint(tables):
    server = make_server(SettlementOracle(tables), port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _post(url, body):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestServer:
    def test_healthz(self, endpoint):
        health = _get(f"{endpoint}/healthz")
        assert health["status"] == "ok"
        assert health["cells"] == 2 * 2 * 2 * 2
        assert len(health["fingerprint"]) == 64

    def test_single_violation_matches_dp(self, endpoint):
        answer = _get(
            f"{endpoint}/v1/violation"
            "?alpha=0.2&unique_fraction=1.0&delta=0&depth=10"
        )
        law = effective_probabilities(0.2, 1.0, 0, SPEC.activity)
        assert answer["violation_probability"] == (
            settlement_violation_probability(law, 10)
        )

    def test_single_depth(self, endpoint, tables):
        answer = _get(
            f"{endpoint}/v1/depth"
            "?alpha=0.1&unique_fraction=1.0&delta=0&target=0.1"
        )
        assert answer["depth"] == int(tables.minimal_depth[0, 1, 0, 0])

    def test_batch_violation(self, endpoint):
        answer = _post(
            f"{endpoint}/v1/violation",
            {
                "alpha": [0.1, 0.2],
                "unique_fraction": [1.0, 0.5],
                "delta": [0, 2],
                "depth": [5, 10],
            },
        )
        assert len(answer["violation_probability"]) == 2
        assert all(0 <= p <= 1 for p in answer["violation_probability"])

    def test_batch_depth_with_sentinel(self, endpoint):
        answer = _post(
            f"{endpoint}/v1/depth",
            {
                "alpha": [0.1],
                "unique_fraction": [1.0],
                "delta": [0],
                "target": [0.1],
            },
        )
        assert isinstance(answer["depth"][0], int)

    def test_out_of_hull_is_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(
                f"{endpoint}/v1/violation"
                "?alpha=0.49&unique_fraction=1.0&delta=0&depth=10"
            )
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "out-of-domain"
        assert "conservative hull" in payload["detail"]

    def test_missing_parameter_is_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{endpoint}/v1/violation?alpha=0.1")
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"] == "bad-request"

    def test_unknown_path_is_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{endpoint}/v2/nothing")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"] == "not-found"

    def test_malformed_batch_is_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{endpoint}/v1/violation", {"alpha": [0.1]})
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"] == "bad-request"

    def test_malformed_json_body_is_400(self, endpoint):
        request = urllib.request.Request(
            f"{endpoint}/v1/violation",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "bad-request"
        assert "bad request body" in payload["detail"]

    def test_non_boolean_strict_is_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{endpoint}/v1/violation",
                {
                    "alpha": [0.1],
                    "unique_fraction": [1.0],
                    "delta": [0],
                    "depth": [5],
                    "strict": "false",  # truthy string, not a boolean
                },
            )
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "bad-request"
        assert "JSON boolean" in payload["detail"]

    def test_oversized_body_is_structured_413(self, endpoint):
        request = urllib.request.Request(
            f"{endpoint}/v1/violation",
            data=b"{}",
            headers={
                "Content-Type": "application/json",
                # Lie upward: the limit check runs on the header alone.
                "Content-Length": str(app_module.DEFAULT_MAX_BODY_BYTES + 1),
            },
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 413
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "too-large"
        assert str(app_module.DEFAULT_MAX_BODY_BYTES) in payload["detail"]

    def test_metrics_endpoint_counts_requests(self, endpoint):
        _get(f"{endpoint}/healthz")
        _get(
            f"{endpoint}/v1/violation"
            "?alpha=0.2&unique_fraction=1.0&delta=0&depth=10"
        )
        with pytest.raises(urllib.error.HTTPError):
            _get(f"{endpoint}/v1/violation?alpha=0.1")
        with urllib.request.urlopen(
            f"{endpoint}/metrics", timeout=10
        ) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        assert "# TYPE repro_oracle_requests_total counter" in text
        assert (
            'repro_oracle_requests_total{code="200",method="GET",'
            'route="/v1/violation"}' in text
        )
        assert 'repro_oracle_errors_total{code="400"}' in text
        assert "# TYPE repro_oracle_request_seconds histogram" in text
        assert 'repro_oracle_request_seconds_count{route="/v1/violation"}' in text


class TestCli:
    def test_build_query_info_round_trip(self, tmp_path, capsys):
        artifact = tmp_path / "artifact"
        code = cli.main(
            [
                "build",
                "--out",
                str(artifact),
                "--preset",
                "tiny",
                "--alphas",
                "0.1,0.2",
                "--fractions",
                "0.5,1.0",
                "--deltas",
                "0,2",
                "--depths",
                "5,10",
                "--targets",
                "0.1,0.01",
                "--mc-trials",
                "0",
            ]
        )
        assert code == 0
        assert "built" in capsys.readouterr().out

        assert cli.main(["info", str(artifact)]) == 0
        described = json.loads(capsys.readouterr().out)
        assert described["alphas"] == [0.1, 0.2]

        assert (
            cli.main(
                [
                    "query",
                    str(artifact),
                    "--alpha",
                    "0.2",
                    "--fraction",
                    "1.0",
                    "--delta",
                    "0",
                    "--depth",
                    "10",
                ]
            )
            == 0
        )
        answer = json.loads(capsys.readouterr().out)
        law = effective_probabilities(0.2, 1.0, 0, 0.05)
        assert answer["violation_probability"] == (
            settlement_violation_probability(law, 10)
        )

        # Identical rebuild: no-op.
        assert (
            cli.main(
                [
                    "build",
                    "--out",
                    str(artifact),
                    "--preset",
                    "tiny",
                    "--alphas",
                    "0.1,0.2",
                    "--fractions",
                    "0.5,1.0",
                    "--deltas",
                    "0,2",
                    "--depths",
                    "5,10",
                    "--targets",
                    "0.1,0.01",
                    "--mc-trials",
                    "0",
                ]
            )
            == 0
        )
        assert "no-op" in capsys.readouterr().out

    def test_query_needs_exactly_one_direction(self, tables, tmp_path, capsys):
        artifact = tmp_path / "artifact"
        save_tables(tables, artifact)
        code = cli.main(
            [
                "query",
                str(artifact),
                "--alpha",
                "0.1",
                "--fraction",
                "1.0",
                "--delta",
                "0",
            ]
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_info_on_missing_artifact(self, tmp_path, capsys):
        assert cli.main(["info", str(tmp_path / "missing")]) == 2
        assert "artifact" in capsys.readouterr().err

    def test_serve_flags_reach_serve_forever(
        self, tables, tmp_path, monkeypatch
    ):
        artifact = tmp_path / "artifact"
        save_tables(tables, artifact)
        captured = {}
        monkeypatch.setattr(
            cli,
            "serve_forever",
            lambda oracle, **kwargs: captured.update(kwargs),
        )
        assert (
            cli.main(
                [
                    "serve",
                    str(artifact),
                    "--port",
                    "0",
                    "--quiet",
                    "--mode",
                    "async",
                    "--workers",
                    "3",
                    "--max-body-bytes",
                    "1024",
                    "--refine",
                    "--refine-interval",
                    "0.5",
                    "--refine-top",
                    "4",
                ]
            )
            == 0
        )
        assert captured["mode"] == "async"
        assert captured["workers"] == 3
        assert captured["max_body_bytes"] == 1024
        assert captured["refine_path"] == str(artifact / "overlay.json")
        assert captured["refine_interval"] == 0.5
        assert captured["refine_top"] == 4

    def test_serve_refine_defaults_off(self, tables, tmp_path, monkeypatch):
        artifact = tmp_path / "artifact"
        save_tables(tables, artifact)
        captured = {}
        monkeypatch.setattr(
            cli,
            "serve_forever",
            lambda oracle, **kwargs: captured.update(kwargs),
        )
        assert cli.main(["serve", str(artifact), "--port", "0"]) == 0
        assert captured["mode"] == "threaded"
        assert captured["workers"] == 1
        assert captured["refine_path"] is None
