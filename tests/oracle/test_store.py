"""Artifact round-trip, fingerprint keying, corruption detection, no-op."""

import dataclasses
import json

import numpy as np
import pytest

from repro.oracle.store import (
    FORMAT,
    StoreError,
    load_tables,
    manifest_path,
    read_manifest,
    save_tables,
    spec_fingerprint,
)
from repro.oracle.tables import OracleSpec, build_tables

SPEC = OracleSpec(
    alphas=(0.1, 0.3),
    unique_fractions=(0.5, 1.0),
    deltas=(0, 2),
    depths=(4, 8),
    targets=(1e-1, 1e-2),
    activity=0.05,
)


@pytest.fixture(scope="module")
def tables():
    return build_tables(SPEC).tables


class TestRoundTrip:
    def test_save_load_identical(self, tables, tmp_path):
        save_tables(tables, tmp_path)
        loaded = load_tables(tmp_path)
        assert loaded.spec == SPEC
        assert np.array_equal(loaded.forward, tables.forward)
        assert np.array_equal(loaded.minimal_depth, tables.minimal_depth)

    def test_mmap_load_is_read_only(self, tables, tmp_path):
        save_tables(tables, tmp_path)
        loaded = load_tables(tmp_path, mmap=True)
        assert isinstance(loaded.forward, np.memmap)
        with pytest.raises(ValueError):
            loaded.forward[0, 0, 0, 0] = 0.5

    def test_manifest_is_self_describing(self, tables, tmp_path):
        save_tables(tables, tmp_path)
        manifest = read_manifest(tmp_path)
        assert manifest["format"] == FORMAT
        assert manifest["fingerprint"] == spec_fingerprint(SPEC)
        assert manifest["spec"]["alphas"] == [0.1, 0.3]
        assert set(manifest["arrays"]) == {
            "forward",
            "minimal_depth",
            "analytic_depth",
        }


class TestFingerprint:
    def test_identical_specs_collapse(self):
        clone = OracleSpec(**dataclasses.asdict(SPEC))
        assert spec_fingerprint(clone) == spec_fingerprint(SPEC)

    def test_any_component_change_rekeys(self):
        for change in (
            {"alphas": (0.1, 0.31)},
            {"depths": (4, 9)},
            {"targets": (1e-1, 1e-3)},
            {"activity": 0.06},
            {"mc_seed": 1},
        ):
            assert spec_fingerprint(
                dataclasses.replace(SPEC, **change)
            ) != spec_fingerprint(SPEC)


class TestCorruption:
    def test_missing_artifact(self, tmp_path):
        with pytest.raises(StoreError, match="no .* artifact"):
            load_tables(tmp_path / "nowhere")

    def test_truncated_array_rejected(self, tables, tmp_path):
        save_tables(tables, tmp_path)
        path = tmp_path / "forward.npy"
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(StoreError, match="checksum|shape"):
            load_tables(tmp_path)

    def test_edited_manifest_rejected(self, tables, tmp_path):
        save_tables(tables, tmp_path)
        manifest = json.loads(manifest_path(tmp_path).read_text())
        manifest["spec"]["alphas"] = [0.1, 0.25]  # lie about the grid
        manifest_path(tmp_path).write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="fingerprint"):
            load_tables(tmp_path)

    def test_foreign_version_rejected(self, tables, tmp_path):
        save_tables(tables, tmp_path)
        manifest = json.loads(manifest_path(tmp_path).read_text())
        manifest["format_version"] = 99
        manifest_path(tmp_path).write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="format_version"):
            load_tables(tmp_path)


class TestAtomicReplace:
    def test_rebuild_never_truncates_under_live_mmap_readers(
        self, tables, tmp_path
    ):
        """Arrays land by atomic rename: a rebuild into a directory a
        server has mmap-mapped must leave the old inode (and hence the
        old reader's view) intact, not truncate it in place."""
        save_tables(tables, tmp_path)
        live = load_tables(tmp_path, mmap=True)
        before = np.array(live.forward)  # snapshot of the mapped view
        changed = dataclasses.replace(SPEC, depths=(4, 8, 12))
        build_tables(changed, out_dir=tmp_path, force=True)
        # The old mapping still reads the original bytes...
        assert np.array_equal(np.asarray(live.forward), before)
        # ...while a fresh load sees the new artifact.
        assert load_tables(tmp_path).spec == changed

    def test_no_stray_temporaries_after_save(self, tables, tmp_path):
        save_tables(tables, tmp_path)
        assert not list(tmp_path.glob("*.tmp"))


class TestNoopRebuild:
    def test_matching_fingerprint_skips_build(self, tmp_path, monkeypatch):
        first = build_tables(SPEC, out_dir=tmp_path)
        assert first.rebuilt
        # A rebuild must not even enter the DP.
        import repro.oracle.tables as tables_module

        def exploding(*args):  # pragma: no cover - must not run
            raise AssertionError("no-op rebuild recomputed a DP cell")

        monkeypatch.setattr(tables_module, "_forward_cell", exploding)
        second = build_tables(SPEC, out_dir=tmp_path)
        assert not second.rebuilt
        assert np.array_equal(
            second.tables.forward, first.tables.forward
        )

    def test_spec_change_rebuilds(self, tmp_path):
        build_tables(SPEC, out_dir=tmp_path)
        changed = dataclasses.replace(SPEC, depths=(4, 8, 12))
        report = build_tables(changed, out_dir=tmp_path)
        assert report.rebuilt
        assert read_manifest(tmp_path)["fingerprint"] == spec_fingerprint(
            changed
        )

    def test_force_rebuilds(self, tmp_path):
        build_tables(SPEC, out_dir=tmp_path)
        assert build_tables(SPEC, out_dir=tmp_path, force=True).rebuilt
