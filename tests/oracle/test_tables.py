"""OracleSpec validation, effective laws, and the table builder."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.exact import settlement_violation_probability
from repro.core.distributions import from_adversarial_stake
from repro.engine.cache import ResultCache
from repro.oracle.tables import (
    OracleSpec,
    OracleTables,
    build_tables,
    effective_probabilities,
)

SPEC = OracleSpec(
    alphas=(0.1, 0.3),
    unique_fractions=(0.5, 1.0),
    deltas=(0, 2),
    depths=(4, 8, 16),
    targets=(1e-1, 1e-2),
    activity=0.05,
)

MC_SPEC = dataclasses.replace(
    SPEC, mc_depths=(4, 8), mc_trials=2_000, mc_seed=909
)


class TestSpecValidation:
    def test_axes_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            dataclasses.replace(SPEC, alphas=(0.3, 0.1))
        with pytest.raises(ValueError, match="strictly increasing"):
            dataclasses.replace(SPEC, depths=(8, 8))

    def test_targets_must_decrease(self):
        with pytest.raises(ValueError, match="strictly decreasing"):
            dataclasses.replace(SPEC, targets=(1e-2, 1e-1))

    def test_delta_needs_activity(self):
        with pytest.raises(ValueError, match="activity"):
            dataclasses.replace(SPEC, activity=1.0)

    def test_mc_depths_subset(self):
        with pytest.raises(ValueError, match="subset"):
            dataclasses.replace(MC_SPEC, mc_depths=(4, 9))

    def test_mc_trials_need_depths(self):
        with pytest.raises(ValueError, match="mc_depths"):
            dataclasses.replace(SPEC, mc_trials=100)

    def test_reduced_law_must_keep_honest_majority(self):
        # High delta at low activity pushes p'_A past 1/2.
        with pytest.raises(ValueError, match="honest majority"):
            dataclasses.replace(SPEC, deltas=(0, 40), alphas=(0.1, 0.45))


class TestEffectiveProbabilities:
    def test_synchronous_matches_table1_law(self):
        assert effective_probabilities(0.2, 0.8, 0) == from_adversarial_stake(
            0.2, 0.8
        )

    def test_delta_zero_with_activity_deletes_empties(self):
        law = effective_probabilities(0.2, 0.8, 0, activity=0.05)
        assert law.p_empty == 0.0
        assert law.p_adversarial == pytest.approx(0.2)
        assert law.p_unique == pytest.approx(0.8 * 0.8)

    def test_delta_strengthens_adversary(self):
        flat = effective_probabilities(0.2, 0.8, 0, activity=0.05)
        slow = effective_probabilities(0.2, 0.8, 2, activity=0.05)
        assert slow.p_adversarial > flat.p_adversarial
        assert slow.p_unique < flat.p_unique

    def test_fully_active_delta_rejected(self):
        with pytest.raises(ValueError, match="activity"):
            effective_probabilities(0.2, 0.8, 1, activity=1.0)


class TestBuild:
    def test_forward_cells_bit_identical_to_per_depth_dp(self):
        tables = build_tables(SPEC).tables
        for i, j, l, alpha, fraction, delta in SPEC.combos():
            law = effective_probabilities(alpha, fraction, delta, SPEC.activity)
            for m, k in enumerate(SPEC.depths):
                assert tables.forward[i, j, l, m] == (
                    settlement_violation_probability(law, k)
                )

    def test_minimal_depth_consistent_with_forward(self):
        tables = build_tables(SPEC).tables
        for i, j, l, alpha, fraction, delta in SPEC.combos():
            law = effective_probabilities(alpha, fraction, delta, SPEC.activity)
            for n, target in enumerate(SPEC.targets):
                k = int(tables.minimal_depth[i, j, l, n])
                if k < 0:
                    # Unreachable: even the horizon depth stays above.
                    assert (
                        settlement_violation_probability(
                            law, SPEC.depth_horizon
                        )
                        > target
                    )
                    continue
                assert settlement_violation_probability(law, k) <= target
                if k > 1:
                    assert (
                        settlement_violation_probability(law, k - 1) > target
                    )

    def test_minimal_depth_monotone_in_target(self):
        tables = build_tables(SPEC).tables
        minimal = tables.minimal_depth
        reachable = minimal >= 0
        # Stricter target (later index) never needs a shallower block.
        first, second = minimal[..., 0], minimal[..., 1]
        both = reachable[..., 0] & reachable[..., 1]
        assert np.all(second[both] >= first[both])
        # A reachable strict target implies the looser one is reachable.
        assert np.all(reachable[..., 0] | ~reachable[..., 1])

    def test_mc_cross_check_runs_and_caches(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        report = build_tables(MC_SPEC, cache=cache)
        assert report.mc_points == len(list(MC_SPEC.combos())) * 2
        assert report.mc_cached == 0
        rerun = build_tables(MC_SPEC, cache=cache)
        assert rerun.mc_cached == rerun.mc_points  # zero re-estimation
        assert np.array_equal(report.tables.forward, rerun.tables.forward)

    def test_workers_do_not_change_tables(self):
        serial = build_tables(SPEC).tables
        parallel = build_tables(SPEC, workers=2).tables
        assert np.array_equal(serial.forward, parallel.forward)
        assert np.array_equal(serial.minimal_depth, parallel.minimal_depth)

    def test_tables_shape_validation(self):
        tables = build_tables(SPEC).tables
        with pytest.raises(ValueError, match="shape"):
            OracleTables(
                spec=SPEC,
                forward=tables.forward[..., :-1],
                minimal_depth=tables.minimal_depth,
            )
