"""SettlementOracle: exactness at grid points, conservatism off them."""

import numpy as np
import pytest

from repro.analysis.exact import settlement_violation_probability
from repro.oracle.service import (
    OracleDomainError,
    SettlementOracle,
    UNREACHABLE_DEPTH,
)
from repro.oracle.tables import (
    OracleSpec,
    build_tables,
    effective_probabilities,
)

SPEC = OracleSpec(
    alphas=(0.1, 0.2, 0.3),
    unique_fractions=(0.5, 1.0),
    deltas=(0, 2),
    depths=(5, 10, 20),
    targets=(1e-1, 1e-2, 1e-3),
    activity=0.05,
)


@pytest.fixture(scope="module")
def oracle():
    return SettlementOracle(build_tables(SPEC).tables)


def exact(alpha, fraction, delta, k):
    return settlement_violation_probability(
        effective_probabilities(alpha, fraction, delta, SPEC.activity), k
    )


class TestExactAtGridPoints:
    def test_every_cell_bit_identical_to_dp(self, oracle):
        for i, j, l, alpha, fraction, delta in SPEC.combos():
            for k in SPEC.depths:
                assert oracle.violation_probability(
                    alpha, fraction, delta, k
                ) == exact(alpha, fraction, delta, k)

    def test_batch_matches_scalar(self, oracle):
        # Grid cells plus off-grid queries: the bisect scalar fast path
        # and the searchsorted batch path must agree everywhere.
        queries = [
            (alpha, fraction, delta, k)
            for _, _, _, alpha, fraction, delta in SPEC.combos()
            for k in SPEC.depths
        ] + [
            (0.15, 0.75, 1, 13),
            (0.29, 0.51, 2, 6),
            (0.1, 1.0, 0, 25),
        ]
        columns = list(zip(*queries))
        batch = oracle.violation_probabilities(*columns)
        for row, (alpha, fraction, delta, k) in zip(batch, queries):
            assert row == oracle.violation_probability(
                alpha, fraction, delta, k
            )

    def test_batch_matches_scalar_depth_queries(self, oracle):
        queries = [
            (alpha, fraction, delta, target)
            for _, _, _, alpha, fraction, delta in SPEC.combos()
            for target in SPEC.targets
        ] + [(0.15, 0.75, 1, 5e-2)]
        columns = list(zip(*queries))
        batch = oracle.settlement_depths(*columns)
        for row, (alpha, fraction, delta, target) in zip(batch, queries):
            scalar = oracle.settlement_depth(alpha, fraction, delta, target)
            assert int(row) == (
                UNREACHABLE_DEPTH if scalar is None else scalar
            )


class TestConservativeBetweenGridPoints:
    # Off-grid spot-check set: strictly interior in at least one axis.
    QUERIES = [
        (0.15, 1.0, 0, 10),
        (0.1, 0.75, 0, 10),
        (0.1, 1.0, 1, 10),
        (0.1, 1.0, 0, 13),
        (0.17, 0.66, 1, 7),
        (0.25, 0.9, 2, 17),
        (0.12, 0.51, 1, 19),
    ]

    @pytest.mark.parametrize("alpha,fraction,delta,k", QUERIES)
    def test_answer_dominates_exact_dp(self, oracle, alpha, fraction, delta, k):
        answer = oracle.violation_probability(alpha, fraction, delta, k)
        assert answer >= exact(alpha, fraction, delta, k)

    def test_snaps_to_worst_corner_of_cell(self, oracle):
        # alpha rounds up, fraction down, delta up, depth down.
        assert oracle.violation_probability(
            0.15, 0.75, 1, 13
        ) == oracle.violation_probability(0.2, 0.5, 2, 10)

    def test_depth_query_is_conservative(self, oracle):
        # Off-grid target snaps to the stricter grid target -> deeper k
        # (alpha = 0.1 decays fast enough that 1e-2 is reachable within
        # this tiny table's 20-deep horizon).
        on_grid = oracle.settlement_depth(0.1, 1.0, 0, 1e-2)
        between = oracle.settlement_depth(0.1, 1.0, 0, 5e-2)
        assert between == on_grid
        loose = oracle.settlement_depth(0.1, 1.0, 0, 1e-1)
        assert between >= loose
        # And the answered depth really does satisfy the asked target.
        assert exact(0.1, 1.0, 0, between) <= 5e-2


class TestDepthQueries:
    def test_matches_minimal_depth_table(self, oracle):
        tables = oracle.tables
        for i, j, l, alpha, fraction, delta in SPEC.combos():
            for n, target in enumerate(SPEC.targets):
                stored = int(tables.minimal_depth[i, j, l, n])
                answer = oracle.settlement_depth(alpha, fraction, delta, target)
                if stored == UNREACHABLE_DEPTH:
                    assert answer is None
                else:
                    assert answer == stored

    def test_batch_sentinel(self, oracle):
        depths = oracle.settlement_depths(
            [0.3, 0.1], [0.5, 1.0], [2, 0], [1e-3, 1e-1]
        )
        assert depths.dtype == np.int64
        # Strict target at the nastiest cell may be unreachable in a
        # 20-deep table; the loose one at the best cell never is.
        assert depths[1] > 0


class TestDomain:
    def test_alpha_above_grid_raises(self, oracle):
        with pytest.raises(OracleDomainError, match="conservative hull"):
            oracle.violation_probability(0.45, 1.0, 0, 10)

    def test_fraction_below_grid_raises(self, oracle):
        with pytest.raises(OracleDomainError, match="conservative hull"):
            oracle.violation_probability(0.1, 0.25, 0, 10)

    def test_depth_below_grid_raises(self, oracle):
        with pytest.raises(OracleDomainError, match="smallest depth"):
            oracle.violation_probability(0.1, 1.0, 0, 3)

    def test_target_below_grid_raises(self, oracle):
        with pytest.raises(OracleDomainError, match="tightest target"):
            oracle.settlement_depth(0.1, 1.0, 0, 1e-9)

    def test_saturation_mode(self, oracle):
        assert (
            oracle.violation_probability(0.45, 1.0, 0, 10, strict=False)
            == 1.0
        )
        assert (
            oracle.settlement_depth(0.45, 1.0, 0, 1e-2, strict=False) is None
        )

    def test_interior_values_above_grid_depth_allowed(self, oracle):
        # Depth beyond the top of the grid floors to the deepest row —
        # conservative (deeper blocks only settle harder).
        deep = oracle.violation_probability(0.1, 1.0, 0, 200)
        assert deep == oracle.violation_probability(0.1, 1.0, 0, 20)

    def test_shape_mismatch_rejected(self, oracle):
        with pytest.raises(ValueError, match="equal lengths"):
            oracle.violation_probabilities([0.1], [1.0], [0], [10, 20])

    def test_non_finite_rejected(self, oracle):
        with pytest.raises(ValueError, match="non-finite"):
            oracle.violation_probabilities(
                [float("nan")], [1.0], [0], [10]
            )
