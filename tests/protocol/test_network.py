"""The Δ-bounded rushing-adversary network (axioms A0, A4Δ)."""

import pytest

from repro.protocol.block import Block
from repro.protocol.network import NetworkModel


def make_block(slot: int, tag: str) -> Block:
    return Block(slot=slot, parent_hash="p", issuer=tag)


class TestSynchronousDelivery:
    def test_broadcast_reaches_everyone_same_slot(self):
        net = NetworkModel(["a", "b"], delta=0)
        block = make_block(3, "x")
        net.broadcast(block, sent_slot=3)
        assert net.due("a", 3) == [block]
        assert net.due("b", 3) == [block]
        assert net.pending_count() == 0

    def test_delay_beyond_delta_rejected(self):
        net = NetworkModel(["a"], delta=0)
        with pytest.raises(ValueError):
            net.broadcast(make_block(1, "x"), 1, delays={"a": 1})

    def test_messages_not_due_early(self):
        net = NetworkModel(["a"], delta=2)
        net.broadcast(make_block(1, "x"), 1, delays={"a": 2})
        assert net.due("a", 2) == []
        assert len(net.due("a", 3)) == 1


class TestDeltaDelivery:
    def test_per_recipient_delays(self):
        net = NetworkModel(["a", "b"], delta=3)
        block = make_block(1, "x")
        net.broadcast(block, 1, delays={"a": 0, "b": 3})
        assert net.due("a", 1) == [block]
        assert net.due("b", 1) == []
        assert net.due("b", 4) == [block]

    def test_negative_delay_rejected(self):
        net = NetworkModel(["a"], delta=3)
        with pytest.raises(ValueError):
            net.broadcast(make_block(1, "x"), 1, delays={"a": -1})


class TestRushingAdversary:
    def test_injection_unconstrained_by_delta(self):
        net = NetworkModel(["a"], delta=0)
        late = make_block(1, "withheld")
        net.inject(late, "a", deliver_slot=9)
        assert net.due("a", 8) == []
        assert net.due("a", 9) == [late]

    def test_injection_targets_single_recipient(self):
        net = NetworkModel(["a", "b"], delta=0)
        net.inject(make_block(1, "x"), "a", 1)
        assert len(net.due("a", 1)) == 1
        assert net.due("b", 1) == []

    def test_injected_blocks_rush_ahead(self):
        """Default injection priority −1 beats honest broadcasts."""
        net = NetworkModel(["a"], delta=0)
        honest = make_block(2, "honest")
        adversarial = make_block(2, "adv")
        net.broadcast(honest, 2)
        net.inject(adversarial, "a", 2)
        assert net.due("a", 2) == [adversarial, honest]

    def test_priority_ordering_controls_sequence(self):
        net = NetworkModel(["a"], delta=0)
        first = make_block(1, "first")
        second = make_block(1, "second")
        net.broadcast(first, 1, priorities={"a": 5})
        net.broadcast(second, 1, priorities={"a": 1})
        assert net.due("a", 1) == [second, first]

    def test_equal_priority_preserves_broadcast_order(self):
        net = NetworkModel(["a"], delta=0)
        blocks = [make_block(1, f"b{i}") for i in range(4)]
        for block in blocks:
            net.broadcast(block, 1)
        assert net.due("a", 1) == blocks


class TestSchedulerOrdering:
    """Regression suite for the equality-aliased ordering bug.

    The old scheduler sorted due messages by ``(priority,
    queue.index(delivery))``; ``Delivery`` is an ``eq=True`` dataclass,
    so ``list.index`` matched by *value* and value-equal duplicates all
    aliased to the first match's index — jumping the queue ahead of
    messages enqueued between them — while each ``due()`` call rescanned
    and ``remove()``d through the whole flat queue.
    """

    def test_value_equal_duplicates_keep_enqueue_order(self):
        # Two value-equal broadcasts of the same block at equal priority
        # with a distinct block between them: the old index-aliased sort
        # returned [dup, dup, other]; enqueue order is [dup, other, dup].
        net = NetworkModel(["a"], delta=0)
        dup = make_block(1, "dup")
        other = make_block(1, "other")
        net.broadcast(dup, 1)
        net.broadcast(other, 1)
        net.broadcast(dup, 1)
        assert net.due("a", 1) == [dup, other, dup]

    def test_adversarial_inject_interleavings(self):
        """Injected duplicates interleaved with broadcasts drain in
        (priority, enqueue order) exactly."""
        net = NetworkModel(["a"], delta=0)
        h1 = make_block(2, "h1")
        h2 = make_block(2, "h2")
        adv = make_block(2, "adv")
        net.broadcast(h1, 2)
        net.inject(adv, "a", 2)               # priority −1: rushes ahead
        net.broadcast(h2, 2)
        net.inject(adv, "a", 2, priority=0)   # value-equal, honest priority
        assert net.due("a", 2) == [adv, h1, h2, adv]

    def test_duplicate_injections_each_delivered_exactly_once(self):
        net = NetworkModel(["a"], delta=0)
        block = make_block(1, "x")
        for _ in range(3):
            net.inject(block, "a", 1)
        assert net.due("a", 1) == [block] * 3
        assert net.pending_count() == 0
        # Nothing left to rescan: the drained buckets are gone.
        assert net.due("a", 1) == []
        assert net._buckets["a"] == {}

    def test_sequence_numbers_are_distinct_and_monotone(self):
        net = NetworkModel(["a", "b"], delta=0)
        same = make_block(1, "same")
        net.broadcast(same, 1)
        net.broadcast(same, 1)
        sequences = [
            delivery.sequence
            for bucket in net._buckets.values()
            for deliveries in bucket.values()
            for delivery in deliveries
        ]
        assert len(set(sequences)) == 4
        assert all(s > 0 for s in sequences)

    def test_cross_slot_leftovers_merge_by_priority_then_sequence(self):
        """The (priority, enqueue order) contract spans delivery slots:
        a rushed later message beats a low-priority leftover."""
        net = NetworkModel(["a"], delta=0)
        early = make_block(1, "early")
        late = make_block(2, "late")
        net.inject(early, "a", 1, priority=5)
        net.inject(late, "a", 2, priority=-1)
        assert net.due("a", 2) == [late, early]
        assert net.pending_count() == 0
