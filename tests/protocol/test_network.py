"""The Δ-bounded rushing-adversary network (axioms A0, A4Δ)."""

import pytest

from repro.protocol.block import Block
from repro.protocol.network import NetworkModel


def make_block(slot: int, tag: str) -> Block:
    return Block(slot=slot, parent_hash="p", issuer=tag)


class TestSynchronousDelivery:
    def test_broadcast_reaches_everyone_same_slot(self):
        net = NetworkModel(["a", "b"], delta=0)
        block = make_block(3, "x")
        net.broadcast(block, sent_slot=3)
        assert net.due("a", 3) == [block]
        assert net.due("b", 3) == [block]
        assert net.pending_count() == 0

    def test_delay_beyond_delta_rejected(self):
        net = NetworkModel(["a"], delta=0)
        with pytest.raises(ValueError):
            net.broadcast(make_block(1, "x"), 1, delays={"a": 1})

    def test_messages_not_due_early(self):
        net = NetworkModel(["a"], delta=2)
        net.broadcast(make_block(1, "x"), 1, delays={"a": 2})
        assert net.due("a", 2) == []
        assert len(net.due("a", 3)) == 1


class TestDeltaDelivery:
    def test_per_recipient_delays(self):
        net = NetworkModel(["a", "b"], delta=3)
        block = make_block(1, "x")
        net.broadcast(block, 1, delays={"a": 0, "b": 3})
        assert net.due("a", 1) == [block]
        assert net.due("b", 1) == []
        assert net.due("b", 4) == [block]

    def test_negative_delay_rejected(self):
        net = NetworkModel(["a"], delta=3)
        with pytest.raises(ValueError):
            net.broadcast(make_block(1, "x"), 1, delays={"a": -1})


class TestRushingAdversary:
    def test_injection_unconstrained_by_delta(self):
        net = NetworkModel(["a"], delta=0)
        late = make_block(1, "withheld")
        net.inject(late, "a", deliver_slot=9)
        assert net.due("a", 8) == []
        assert net.due("a", 9) == [late]

    def test_injection_targets_single_recipient(self):
        net = NetworkModel(["a", "b"], delta=0)
        net.inject(make_block(1, "x"), "a", 1)
        assert len(net.due("a", 1)) == 1
        assert net.due("b", 1) == []

    def test_injected_blocks_rush_ahead(self):
        """Default injection priority −1 beats honest broadcasts."""
        net = NetworkModel(["a"], delta=0)
        honest = make_block(2, "honest")
        adversarial = make_block(2, "adv")
        net.broadcast(honest, 2)
        net.inject(adversarial, "a", 2)
        assert net.due("a", 2) == [adversarial, honest]

    def test_priority_ordering_controls_sequence(self):
        net = NetworkModel(["a"], delta=0)
        first = make_block(1, "first")
        second = make_block(1, "second")
        net.broadcast(first, 1, priorities={"a": 5})
        net.broadcast(second, 1, priorities={"a": 1})
        assert net.due("a", 1) == [second, first]

    def test_equal_priority_preserves_broadcast_order(self):
        net = NetworkModel(["a"], delta=0)
        blocks = [make_block(1, f"b{i}") for i in range(4)]
        for block in blocks:
            net.broadcast(block, 1)
        assert net.due("a", 1) == blocks
