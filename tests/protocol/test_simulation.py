"""End-to-end protocol simulations and their measurements."""

import pytest

from repro.protocol.adversary import (
    MaxDelayAdversary,
    NullAdversary,
    PrivateChainAdversary,
    SplitAdversary,
)
from repro.protocol.leader import StakeDistribution
from repro.protocol.simulation import Simulation
from repro.protocol.tiebreak import consistent_hash_rule


def run_simulation(**overrides):
    config = dict(
        stakes=StakeDistribution.uniform(6, 0),
        activity=0.3,
        total_slots=80,
        randomness="test-seed",
    )
    config.update(overrides)
    return Simulation(**config).run()


class TestHonestBaseline:
    def test_single_chain_emerges(self):
        result = run_simulation()
        final_tips = result.records[-1].adopted_tips
        # with immediate delivery, slots after the last leader agree
        assert len(set(final_tips.values())) == 1

    def test_no_settlement_violation(self):
        result = run_simulation()
        assert not result.settlement_violation(10, 20)

    def test_no_cp_violation(self):
        result = run_simulation()
        assert not result.cp_slot_violation(20)

    def test_characteristic_string_has_no_adversarial(self):
        result = run_simulation()
        assert "A" not in result.characteristic_string

    def test_execution_fork_valid(self):
        fork = run_simulation().execution_fork()
        fork.validate()

    def test_chain_growth_matches_honest_slots(self):
        """Every non-empty slot adds exactly one depth (synchrony, A4)."""
        result = run_simulation()
        word = result.characteristic_string
        active = sum(1 for c in word if c != ".")
        union = result.union_tree()
        assert union.max_depth() == active


class TestPrivateChainAttack:
    def test_attack_produces_valid_fork(self):
        result = run_simulation(
            stakes=StakeDistribution.uniform(6, 4),
            activity=0.4,
            total_slots=120,
            adversary=PrivateChainAdversary(target_slot=15, hold=6),
        )
        result.execution_fork().validate()

    def test_attack_sometimes_wins_with_large_stake(self):
        wins = 0
        for seed in range(10):
            result = run_simulation(
                stakes=StakeDistribution.uniform(5, 5),
                activity=0.4,
                total_slots=120,
                adversary=PrivateChainAdversary(
                    target_slot=15, hold=4, patience=80
                ),
                randomness=f"attack-{seed}",
            )
            if result.settlement_violation(15, 3):
                wins += 1
        assert wins >= 1

    def test_attack_never_wins_without_stake(self):
        result = run_simulation(
            adversary=PrivateChainAdversary(target_slot=10, hold=4),
        )
        assert not result.settlement_violation(10, 4)


class TestSplitAttack:
    def test_split_hurts_adversarial_tiebreak_more(self):
        """The Theorem 2 ablation: A0 suffers deeper reorgs than A0′."""
        stakes = StakeDistribution.uniform(10, 0)
        depths = {}
        for label, rule in (
            ("adversarial", None),
            ("consistent", consistent_hash_rule),
        ):
            total = 0
            for seed in range(4):
                kwargs = dict(
                    stakes=stakes,
                    activity=0.8,
                    total_slots=80,
                    adversary=SplitAdversary(),
                    randomness=f"split-{seed}",
                )
                if rule is not None:
                    kwargs["tie_break"] = rule
                total += run_simulation(**kwargs).max_reorg_depth()
            depths[label] = total
        assert depths["adversarial"] > depths["consistent"]


class TestDeltaSimulation:
    def test_delayed_delivery_produces_valid_delta_fork(self):
        result = run_simulation(
            stakes=StakeDistribution.uniform(8, 0),
            activity=0.3,
            total_slots=100,
            delta=3,
            adversary=MaxDelayAdversary(max_delay=3),
        )
        fork = result.execution_fork()
        fork.validate()

    def test_delay_increases_reorg_depth(self):
        shallow = run_simulation(
            stakes=StakeDistribution.uniform(8, 0),
            activity=0.5,
            total_slots=100,
        ).max_reorg_depth()
        deep = 0
        for seed in range(3):
            deep += run_simulation(
                stakes=StakeDistribution.uniform(8, 0),
                activity=0.5,
                total_slots=100,
                delta=4,
                adversary=MaxDelayAdversary(max_delay=4),
                randomness=f"delay-{seed}",
            ).max_reorg_depth()
        assert deep >= shallow


class TestEligibilityEnforcement:
    def test_forged_proof_rejected_by_nodes(self):
        simulation = Simulation(
            StakeDistribution.uniform(3, 0),
            activity=0.5,
            total_slots=10,
            randomness="forge",
        )
        node = next(iter(simulation.nodes.values()))
        intruder_keys = simulation.signatures.generate_keypair()
        draft_parent = node.tree.genesis_hash
        from repro.protocol.block import Block

        draft = Block(1, draft_parent, intruder_keys.public, "", "fake-proof")
        signature = simulation.signatures.sign(intruder_keys, draft.header())
        forged = Block(
            1, draft_parent, intruder_keys.public, "", "fake-proof", signature
        )
        assert not node.receive(forged)
