"""Ideal cryptographic functionalities."""

import pytest

from repro.protocol.crypto import (
    IdealSignatureScheme,
    IdealVrf,
    hash_data,
)


class TestHash:
    def test_deterministic(self):
        assert hash_data("a", 1) == hash_data("a", 1)

    def test_different_inputs_differ(self):
        assert hash_data("a") != hash_data("b")

    def test_no_concatenation_ambiguity(self):
        """Length-prefixed encoding: ('ab','c') != ('a','bc')."""
        assert hash_data("ab", "c") != hash_data("a", "bc")

    def test_accepts_bytes_and_ints(self):
        assert hash_data(b"raw", 42, "s")


class TestSignatures:
    def test_sign_verify_round_trip(self):
        scheme = IdealSignatureScheme()
        keypair = scheme.generate_keypair()
        signature = scheme.sign(keypair, "message")
        assert scheme.verify(keypair.public, "message", signature)

    def test_wrong_message_rejected(self):
        scheme = IdealSignatureScheme()
        keypair = scheme.generate_keypair()
        signature = scheme.sign(keypair, "message")
        assert not scheme.verify(keypair.public, "other", signature)

    def test_wrong_key_rejected(self):
        scheme = IdealSignatureScheme()
        alice = scheme.generate_keypair()
        bob = scheme.generate_keypair()
        signature = scheme.sign(alice, "message")
        assert not scheme.verify(bob.public, "message", signature)

    def test_unregistered_key_cannot_sign(self):
        scheme = IdealSignatureScheme()
        other_scheme = IdealSignatureScheme(seed="other")
        foreign = other_scheme.generate_keypair()
        with pytest.raises(ValueError):
            scheme.sign(foreign, "message")

    def test_unregistered_public_key_never_verifies(self):
        scheme = IdealSignatureScheme()
        assert not scheme.verify("nobody", "m", "sig")

    def test_distinct_keypairs(self):
        scheme = IdealSignatureScheme()
        assert scheme.generate_keypair() != scheme.generate_keypair()


class TestVrf:
    def test_evaluate_verify_round_trip(self):
        vrf = IdealVrf()
        keypair = vrf.generate_keypair()
        value, proof = vrf.evaluate(keypair, "slot-7")
        assert 0.0 <= value < 1.0
        assert vrf.verify(keypair.public, "slot-7", value, proof)

    def test_deterministic_per_input(self):
        vrf = IdealVrf()
        keypair = vrf.generate_keypair()
        assert vrf.evaluate(keypair, "x") == vrf.evaluate(keypair, "x")
        assert vrf.evaluate(keypair, "x") != vrf.evaluate(keypair, "y")

    def test_wrong_value_rejected(self):
        vrf = IdealVrf()
        keypair = vrf.generate_keypair()
        value, proof = vrf.evaluate(keypair, "slot-7")
        assert not vrf.verify(keypair.public, "slot-7", value / 2, proof)

    def test_outputs_look_uniform(self):
        vrf = IdealVrf()
        keypair = vrf.generate_keypair()
        values = [vrf.evaluate(keypair, f"slot-{i}")[0] for i in range(2000)]
        mean = sum(values) / len(values)
        assert abs(mean - 0.5) < 0.03
        assert abs(sum(1 for v in values if v < 0.25) / 2000 - 0.25) < 0.04

    def test_seed_separates_lotteries(self):
        first = IdealVrf(seed="epoch-1")
        second = IdealVrf(seed="epoch-2")
        k1 = first.generate_keypair()
        k2 = second.generate_keypair()
        assert first.evaluate(k1, "s")[0] != second.evaluate(k2, "s")[0]
