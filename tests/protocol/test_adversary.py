"""Protocol-level adversary strategies in isolation."""

import pytest

from repro.protocol.adversary import (
    Adversary,
    MaxDelayAdversary,
    NullAdversary,
    PrivateChainAdversary,
    SplitAdversary,
)
from repro.protocol.block import Block
from repro.protocol.crypto import IdealSignatureScheme
from repro.protocol.leader import Party
from repro.protocol.network import NetworkModel


def attached(adversary: Adversary, recipients=("n0", "n1")):
    scheme = IdealSignatureScheme()
    keys = {"mallory": scheme.generate_keypair()}
    adversary.attach(scheme, keys, list(recipients))
    return adversary, scheme


class TestBaseAdversary:
    def test_observes_blocks_into_private_tree(self):
        adversary, _ = attached(Adversary())
        genesis_hash = adversary.tree.genesis_hash
        block = Block(1, genesis_hash, "honest")
        adversary.observe_block(block)
        assert block.block_hash in adversary.tree

    def test_mint_requires_attachment(self):
        adversary = Adversary()
        with pytest.raises(AssertionError):
            adversary._mint(Party("mallory", 1.0, True), 1, "x", "proof")

    def test_minted_blocks_are_well_signed(self):
        adversary, scheme = attached(Adversary())
        party = Party("mallory", 1.0, corrupted=True)
        block, block_hash = adversary._mint(
            party, 1, adversary.tree.genesis_hash, "proof"
        )
        assert scheme.verify(block.issuer, block.header(), block.signature)
        assert block_hash == block.block_hash

    def test_default_hooks_are_inert(self):
        adversary, _ = attached(NullAdversary())
        delays, priorities = adversary.honest_delays(1, None)
        assert delays == {} and priorities == {}
        network = NetworkModel(["n0", "n1"])
        adversary.act(1, [], network)
        assert network.pending_count() == 0


class TestPrivateChainAdversary:
    def test_forks_before_target(self):
        adversary, _ = attached(PrivateChainAdversary(target_slot=3, hold=5))
        genesis = adversary.tree.genesis_hash
        early = Block(1, genesis, "honest-1")
        adversary.observe_block(early)
        party = Party("mallory", 1.0, corrupted=True)
        network = NetworkModel(["n0", "n1"])
        adversary.act(3, [(party, "proof")], network)
        assert adversary._fork_point == early.block_hash
        # private block extends the fork point; hold keeps it unpublished
        assert not adversary.released

    def test_releases_with_lead(self):
        adversary, _ = attached(PrivateChainAdversary(target_slot=1, hold=0))
        party = Party("mallory", 1.0, corrupted=True)
        network = NetworkModel(["n0", "n1"])
        adversary.act(1, [(party, "p1")], network)  # fork + first private
        # private chain depth 1 vs public height 0 -> lead achieved
        assert adversary.released
        assert network.pending_count() == 2  # one block x two recipients

    def test_honours_hold_period(self):
        adversary, _ = attached(
            PrivateChainAdversary(target_slot=1, hold=10)
        )
        party = Party("mallory", 1.0, corrupted=True)
        network = NetworkModel(["n0"])
        for slot in (1, 2, 3):
            adversary.act(slot, [(party, f"p{slot}")], network)
        assert not adversary.released  # still inside the hold window

    def test_one_extension_per_slot(self):
        """Two corrupted leaders in a slot cannot chain two blocks (F2)."""
        adversary, scheme = attached(PrivateChainAdversary(1, hold=5))
        a = Party("mallory", 1.0, corrupted=True)
        adversary.keys["mallory2"] = scheme.generate_keypair()
        b = Party("mallory2", 1.0, corrupted=True)
        network = NetworkModel(["n0"])
        adversary.act(1, [(a, "pa"), (b, "pb")], network)
        tip = adversary._private_tip
        assert adversary.tree.depth(tip) == 1


class TestSplitAdversary:
    def test_opposite_priorities_for_concurrent_blocks(self):
        adversary, _ = attached(SplitAdversary(), recipients=("n0", "n1"))
        genesis = adversary.tree.genesis_hash
        first = Block(2, genesis, "leader-a")
        second = Block(2, genesis, "leader-b")
        adversary.observe_block(first)
        adversary.observe_block(second)
        _, priorities_first = adversary.honest_delays(2, first)
        _, priorities_second = adversary.honest_delays(2, second)
        # group 0 (n0) favours the first block, group 1 (n1) the second
        assert priorities_first["n0"] < priorities_first["n1"]
        assert priorities_second["n0"] > priorities_second["n1"]

    def test_single_block_slots_are_neutral_per_group(self):
        adversary, _ = attached(SplitAdversary(), recipients=("n0", "n1"))
        block = Block(1, adversary.tree.genesis_hash, "only")
        adversary.observe_block(block)
        _, priorities = adversary.honest_delays(1, block)
        assert priorities["n0"] == 0  # favoured for group 0


class TestMaxDelayAdversary:
    def test_delays_everyone_by_budget(self):
        adversary, _ = attached(MaxDelayAdversary(max_delay=3))
        block = Block(1, adversary.tree.genesis_hash, "x")
        delays, _ = adversary.honest_delays(1, block)
        assert delays == {"n0": 3, "n1": 3}
