"""Chain-selection tie-breaking rules (axioms A0 / A0′)."""

from repro.protocol.block import Block, BlockTree
from repro.protocol.tiebreak import (
    adversarial_order_rule,
    consistent_hash_rule,
    select_chain,
)


def forked_tree() -> tuple[BlockTree, str, str]:
    tree = BlockTree()
    a = Block(1, tree.genesis_hash, "a")
    b = Block(2, tree.genesis_hash, "b")
    tree.add_block(a)
    tree.add_block(b)
    return tree, a.block_hash, b.block_hash


class TestAdversarialOrderRule:
    def test_prefers_earlier_arrival(self):
        tree, a, b = forked_tree()
        assert adversarial_order_rule(tree, [a, b], {a: 1, b: 2}) == a
        assert adversarial_order_rule(tree, [a, b], {a: 2, b: 1}) == b

    def test_unknown_arrival_ranks_last(self):
        tree, a, b = forked_tree()
        assert adversarial_order_rule(tree, [a, b], {b: 5}) == b

    def test_deterministic_fallback_on_equal_ranks(self):
        tree, a, b = forked_tree()
        first = adversarial_order_rule(tree, [a, b], {a: 1, b: 1})
        second = adversarial_order_rule(tree, [b, a], {a: 1, b: 1})
        assert first == second


class TestConsistentHashRule:
    def test_ignores_arrival_order(self):
        tree, a, b = forked_tree()
        assert consistent_hash_rule(tree, [a, b], {a: 9, b: 1}) == min(a, b)

    def test_same_choice_for_all_observers(self):
        tree, a, b = forked_tree()
        choices = {
            consistent_hash_rule(tree, tips, ranks)
            for tips in ([a, b], [b, a])
            for ranks in ({a: 1, b: 2}, {a: 2, b: 1})
        }
        assert len(choices) == 1


class TestCurrentChainPreference:
    """Axiom A0's "keep your current chain" clause (the docstring the
    old sentinel-plus-hash fallback contradicted)."""

    def test_node_keeps_current_chain_on_rank_ties(self):
        tree, a, b = forked_tree()
        hash_winner = min(a, b)
        hash_loser = max(a, b)
        ranks = {a: 1, b: 1}
        # Stateless query: the hash fallback decides, as before …
        assert adversarial_order_rule(tree, [a, b], ranks) == hash_winner
        # … but a node already on the hash-losing chain keeps it — the
        # old rule switched to the smaller hash here.
        assert (
            adversarial_order_rule(
                tree, [a, b], ranks, current_tip=hash_loser
            )
            == hash_loser
        )

    def test_earlier_arrival_still_displaces_current_chain(self):
        tree, a, b = forked_tree()
        assert (
            adversarial_order_rule(tree, [a, b], {a: 1, b: 2}, current_tip=b)
            == a
        )

    def test_select_chain_threads_current_tip(self):
        tree, a, b = forked_tree()
        keeper = max(a, b)
        chosen = select_chain(
            tree, adversarial_order_rule, {a: 3, b: 3}, current_tip=keeper
        )
        assert chosen == keeper

    def test_consistent_rule_ignores_current_tip(self):
        tree, a, b = forked_tree()
        assert (
            consistent_hash_rule(tree, [a, b], {}, current_tip=max(a, b))
            == min(a, b)
        )


class TestSelectChain:
    def test_no_tie_short_circuits(self):
        tree = BlockTree()
        a = Block(1, tree.genesis_hash, "a")
        tree.add_block(a)
        b = Block(2, a.block_hash, "b")
        tree.add_block(b)
        assert select_chain(tree, consistent_hash_rule, {}) == b.block_hash

    def test_tie_uses_rule(self):
        tree, a, b = forked_tree()
        chosen = select_chain(tree, adversarial_order_rule, {a: 2, b: 1})
        assert chosen == b
