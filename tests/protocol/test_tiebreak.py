"""Chain-selection tie-breaking rules (axioms A0 / A0′)."""

from repro.protocol.block import Block, BlockTree
from repro.protocol.tiebreak import (
    adversarial_order_rule,
    consistent_hash_rule,
    select_chain,
)


def forked_tree() -> tuple[BlockTree, str, str]:
    tree = BlockTree()
    a = Block(1, tree.genesis_hash, "a")
    b = Block(2, tree.genesis_hash, "b")
    tree.add_block(a)
    tree.add_block(b)
    return tree, a.block_hash, b.block_hash


class TestAdversarialOrderRule:
    def test_prefers_earlier_arrival(self):
        tree, a, b = forked_tree()
        assert adversarial_order_rule(tree, [a, b], {a: 1, b: 2}) == a
        assert adversarial_order_rule(tree, [a, b], {a: 2, b: 1}) == b

    def test_unknown_arrival_ranks_last(self):
        tree, a, b = forked_tree()
        assert adversarial_order_rule(tree, [a, b], {b: 5}) == b

    def test_deterministic_fallback_on_equal_ranks(self):
        tree, a, b = forked_tree()
        first = adversarial_order_rule(tree, [a, b], {a: 1, b: 1})
        second = adversarial_order_rule(tree, [b, a], {a: 1, b: 1})
        assert first == second


class TestConsistentHashRule:
    def test_ignores_arrival_order(self):
        tree, a, b = forked_tree()
        assert consistent_hash_rule(tree, [a, b], {a: 9, b: 1}) == min(a, b)

    def test_same_choice_for_all_observers(self):
        tree, a, b = forked_tree()
        choices = {
            consistent_hash_rule(tree, tips, ranks)
            for tips in ([a, b], [b, a])
            for ranks in ({a: 1, b: 2}, {a: 2, b: 1})
        }
        assert len(choices) == 1


class TestSelectChain:
    def test_no_tie_short_circuits(self):
        tree = BlockTree()
        a = Block(1, tree.genesis_hash, "a")
        tree.add_block(a)
        b = Block(2, a.block_hash, "b")
        tree.add_block(b)
        assert select_chain(tree, consistent_hash_rule, {}) == b.block_hash

    def test_tie_uses_rule(self):
        tree, a, b = forked_tree()
        chosen = select_chain(tree, adversarial_order_rule, {a: 2, b: 1})
        assert chosen == b
