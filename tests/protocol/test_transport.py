"""Transport layer: degenerate equivalence, topology, jitter, adversary.

The load-bearing test is :class:`TestDegenerateEquivalence` (ISSUE 7
satellite 2): with uniform sub-slot latency, infinite bandwidth, a
complete graph and no jitter, the continuous-time :class:`Transport`
produces **bit-identical** ``SimulationResult``s to the slot-quantized
:class:`NetworkModel` over the registered protocol workloads — the
paper's model is pinned as a special case, not a parallel code path.

:class:`TestAdversarialHoldComposition` is satellite 4: the adversary's
slot-granular hold (budgeted by Δ) must *compose* with the physical
transit, never overwrite it — and the Δ budget keeps being enforced on
the hold alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.protocol import ProtocolRunner, ProtocolScenario
from repro.engine.scenarios import get_scenario
from repro.protocol.adversary import SplitAdversary
from repro.protocol.block import genesis_block
from repro.protocol.crypto import IdealSignatureScheme
from repro.protocol.transport import (
    BLOCK_HEADER_BYTES,
    Transport,
    TransportConfig,
    build_adjacency,
    hop_counts,
    message_size,
    sample_jitter,
    transport_seed,
)

NODES = ["n0", "n1", "n2", "n3", "n4"]


def make_block(slot: int = 1, payload: str = "") -> "Block":
    """A well-formed block for transport-level tests."""
    signatures = IdealSignatureScheme(seed="transport-test")
    keypair = signatures.generate_keypair()
    genesis = genesis_block()
    from repro.protocol.block import Block

    header_free = Block(
        slot=slot,
        parent_hash=genesis.block_hash,
        issuer=keypair.public,
        payload=payload,
        vrf_proof="proof",
        signature="",
    )
    return Block(
        slot=slot,
        parent_hash=genesis.block_hash,
        issuer=keypair.public,
        payload=payload,
        vrf_proof="proof",
        signature=signatures.sign(keypair, header_free.header()),
    )


def snapshot(result):
    """Everything observable about a run, hash-exact."""
    return (
        result.characteristic_string,
        [
            (r.slot, r.symbol, tuple(sorted(r.adopted_tips.items())))
            for r in result.records
        ],
        tuple(sorted(b.block_hash for b in result.union_tree().all_blocks())),
    )


# ----------------------------------------------------------------------
# Satellite 2: the slot model is the degenerate case, bit-exactly
# ----------------------------------------------------------------------


#: Exact dyadic sub-slot latencies: 0 (free links), one half, and a
#: near-1 value — all quantize a slot-``t`` send back into slot ``t``.
SUB_SLOT_LATENCIES = (0.0, 0.5, 0.96875)

#: The registered slot-model workloads (the E10 grid plus the split and
#: Δ stressors), shrunk for test wall-clock without changing structure.
WORKLOADS = (
    ("protocol-honest", {"total_slots": 60, "depth": 10}),
    ("protocol-private-chain", {"total_slots": 50, "patience": 30}),
    ("protocol-split", {"total_slots": 40}),
    ("protocol-delta", {"total_slots": 50, "target_slot": 10, "depth": 6}),
)


class TestDegenerateEquivalence:
    @pytest.mark.parametrize("base,overrides", WORKLOADS)
    @pytest.mark.parametrize("latency", SUB_SLOT_LATENCIES)
    def test_runs_bit_identical_to_slot_model(self, base, overrides, latency):
        """Uniform sub-slot latency + ∞ bandwidth + complete graph ≡ slot."""
        slot_scenario = get_scenario(base, **overrides)
        wan_scenario = get_scenario(
            base, network="wan", latency=latency, **overrides
        )
        for randomness in ("protocol-17", "protocol-23skidoo"):
            slot_run = slot_scenario.build_simulation(randomness).run()
            wan_run = wan_scenario.build_simulation(randomness).run()
            assert snapshot(slot_run) == snapshot(wan_run)

    @pytest.mark.parametrize("base,overrides", WORKLOADS)
    def test_runner_estimates_bit_identical(self, base, overrides):
        """The whole engine path agrees: same estimate, same SE, exactly."""
        slot_scenario = get_scenario(base, **overrides)
        wan_scenario = get_scenario(base, network="wan", **overrides)
        slot_estimate = ProtocolRunner(slot_scenario).run(8, seed=909)
        wan_estimate = ProtocolRunner(wan_scenario).run(8, seed=909)
        assert slot_estimate == wan_estimate

    def test_default_transport_consumes_no_randomness(self):
        """The degenerate config never touches the jitter generator, so
        enabling jitter later cannot silently re-key anything else."""
        transport = Transport(NODES, delta=0, seed=42)
        before = transport._rng.bit_generator.state
        block = make_block()
        transport.broadcast(block, 1, sender="n0")
        transport.inject(block, "n1", 3)
        assert transport._rng.bit_generator.state == before

    def test_realized_delays_match_slot_model(self):
        """The observable sample is identical in the degenerate case."""
        from repro.protocol.network import NetworkModel

        slot_net = NetworkModel(NODES, delta=2)
        wan_net = Transport(NODES, delta=2, config=TransportConfig())
        block = make_block()
        delays = {"n1": 1, "n2": 2}
        slot_net.broadcast(block, 4, dict(delays), sender="n0")
        wan_net.broadcast(block, 4, dict(delays), sender="n0")
        assert wan_net.realized_delays == slot_net.realized_delays


# ----------------------------------------------------------------------
# Satellite 4: adversarial hold composes with transit, never overwrites
# ----------------------------------------------------------------------


class TestAdversarialHoldComposition:
    def test_hold_and_transit_add(self):
        """hold 2 + latency 1.5 ⇒ delivery in slot sent+3 — not sent+2
        (hold overwriting transit) nor sent+1 (transit overwriting hold).
        """
        config = TransportConfig(latency=1.5)
        transport = Transport(["a", "b"], delta=2, config=config)
        block = make_block()
        transport.broadcast(block, 5, delays={"b": 2}, sender="a")
        assert transport.due("b", 7) == []  # 5 + max(2, 1.5) would land here
        assert transport.due("b", 8) == [block]  # 5 + 2 + 1.5 = 8.5 → slot 8

    def test_delta_budget_still_enforced_on_the_hold(self):
        """Physics may exceed Δ; the adversary's hold still may not."""
        config = TransportConfig(latency=7.0)  # transit alone far past Δ
        transport = Transport(["a", "b"], delta=2, config=config)
        block = make_block()
        transport.broadcast(block, 1, delays={"b": 2}, sender="a")  # fine
        with pytest.raises(ValueError, match="axiom A0/A4"):
            transport.broadcast(block, 1, delays={"b": 3}, sender="a")

    def test_split_adversary_holds_compose_in_a_full_run(self):
        """Run-level regression: SplitAdversary(max_delay=Δ) on a WAN.

        Every realized honest delay must carry the link latency on top
        of whatever hold the adversary chose — the minimum realized
        delay is ≥ latency (nothing got its transit overwritten to 0)
        and delays for held recipients exceed the Δ budget alone
        (nothing got its hold clamped into the transit).
        """
        latency, delta = 0.5, 2
        scenario = ProtocolScenario(
            name="split-wan-regression",
            parties=6,
            activity=0.8,
            total_slots=40,
            delta=delta,
            adversary="split",
            target_slot=5,
            depth=3,
            network="wan",
            latency=latency,
        )
        assert isinstance(scenario.build_adversary(), SplitAdversary)
        result = scenario.build_simulation("protocol-303").run()
        delays = result.simulation.network.realized_delays
        assert delays, "the run must broadcast at least one honest block"
        assert min(delays) >= latency
        # The split schedule holds one half of the nodes the full budget:
        # those deliveries realize hold + transit = Δ + latency > Δ.
        assert max(delays) == pytest.approx(delta + latency)
        distribution = result.delay_distribution()
        assert distribution.exceedance_rate > 0.0

    def test_hold_composes_identically_through_the_scenario_layer(self):
        """max-delay adversary on a WAN: every non-sender delivery pays
        Δ + transit, bit-exactly."""
        scenario = get_scenario(
            "protocol-wan",
            topology="complete",
            jitter="fixed",
            jitter_scale=0.0,
            bandwidth=0.0,
            latency=0.5,
            total_slots=30,
        )
        result = scenario.build_simulation("protocol-11").run()
        delays = result.simulation.network.realized_delays
        assert delays
        assert all(d == pytest.approx(scenario.delta + 0.5) for d in delays)


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------


class TestTopology:
    def test_complete_is_single_hop(self):
        adjacency = build_adjacency(NODES, TransportConfig())
        for node in NODES:
            hops = hop_counts(adjacency, node)
            assert all(
                hops[other] == 1 for other in NODES if other != node
            )

    def test_star_routes_leaf_to_leaf_through_the_hub(self):
        adjacency = build_adjacency(
            NODES, TransportConfig(topology="star")
        )
        hub = NODES[0]
        from_hub = hop_counts(adjacency, hub)
        assert all(from_hub[leaf] == 1 for leaf in NODES[1:])
        from_leaf = hop_counts(adjacency, NODES[1])
        assert from_leaf[hub] == 1
        assert all(from_leaf[other] == 2 for other in NODES[2:])

    def test_ring_distance_is_cycle_distance(self):
        adjacency = build_adjacency(
            NODES, TransportConfig(topology="ring")
        )
        hops = hop_counts(adjacency, NODES[0])
        size = len(NODES)
        for i, node in enumerate(NODES):
            assert hops[node] == min(i, size - i)

    def test_two_node_ring_has_one_link(self):
        adjacency = build_adjacency(
            ["a", "b"], TransportConfig(topology="ring")
        )
        assert adjacency == {"a": ["b"], "b": ["a"]}

    def test_random_topology_is_connected_and_deterministic(self):
        config = TransportConfig(
            topology="random", edge_probability=0.2, topology_seed=7
        )
        nodes = [f"p{i}" for i in range(12)]
        adjacency = build_adjacency(nodes, config)
        hops = hop_counts(adjacency, nodes[0])
        assert set(hops) == set(nodes)  # ring backbone ⇒ connected
        assert build_adjacency(nodes, config) == adjacency
        rewired = build_adjacency(
            nodes,
            TransportConfig(
                topology="random", edge_probability=0.2, topology_seed=8
            ),
        )
        assert rewired != adjacency  # the seed is load-bearing

    def test_relays_multiply_latency(self):
        """Store-and-forward: each hop pays latency (ring, 2 hops)."""
        config = TransportConfig(latency=0.75, topology="ring")
        transport = Transport(NODES, config=config)
        block = make_block()
        transport.broadcast(block, 0, sender="n0")
        # n2 is two hops from n0: delivery at 2 * 0.75 = 1.5 → slot 1.
        assert block not in transport.due("n2", 0)
        assert transport.due("n2", 1) == [block]

    def test_unknown_sender_is_single_hop(self):
        transport = Transport(
            NODES, config=TransportConfig(latency=1.0, topology="ring")
        )
        block = make_block()
        transport.broadcast(block, 0, sender=None)
        for node in NODES:
            assert transport.due(node, 1) == [block]


# ----------------------------------------------------------------------
# Link physics: bandwidth, message size, jitter
# ----------------------------------------------------------------------


class TestLinkPhysics:
    def test_message_size_counts_header_and_payload(self):
        assert message_size(make_block()) == BLOCK_HEADER_BYTES
        assert (
            message_size(make_block(payload="xy"))
            == BLOCK_HEADER_BYTES + 2
        )

    def test_bandwidth_adds_transfer_time(self):
        """512-byte block over a 512 B/slot link: one slot of transfer."""
        config = TransportConfig(bandwidth=float(BLOCK_HEADER_BYTES))
        transport = Transport(["a", "b"], config=config)
        block = make_block()
        transport.broadcast(block, 3, sender="a")
        assert transport.due("b", 3) == []
        assert transport.due("b", 4) == [block]

    def test_larger_messages_take_longer(self):
        config = TransportConfig(bandwidth=float(BLOCK_HEADER_BYTES))
        transport = Transport(["a", "b"], config=config)
        heavy = make_block(payload="z" * BLOCK_HEADER_BYTES)  # 2× the size
        transport.broadcast(heavy, 3, sender="a")
        assert transport.due("b", 4) == []
        assert transport.due("b", 5) == [heavy]

    def test_uniform_jitter_is_bounded_by_scale(self):
        config = TransportConfig(jitter="uniform", jitter_scale=0.25)
        generator = np.random.default_rng(5)
        draws = [sample_jitter(config, generator) for _ in range(200)]
        assert all(0.0 <= d < 0.25 for d in draws)
        assert len(set(draws)) > 1

    def test_exponential_jitter_respects_the_cap(self):
        config = TransportConfig(
            jitter="exponential", jitter_scale=1.0, jitter_cap=1.5
        )
        generator = np.random.default_rng(5)
        draws = [sample_jitter(config, generator) for _ in range(300)]
        assert all(0.0 <= d <= 1.5 for d in draws)
        assert any(d == 1.5 for d in draws)  # the cap actually binds

    def test_exponential_cap_defaults_to_eight_scales(self):
        config = TransportConfig(jitter="exponential", jitter_scale=0.5)
        assert config.exponential_cap == 4.0

    def test_fixed_jitter_is_constant_and_free(self):
        config = TransportConfig(jitter="fixed", jitter_scale=0.3)
        generator = np.random.default_rng(5)
        state = generator.bit_generator.state
        assert sample_jitter(config, generator) == 0.3
        assert generator.bit_generator.state == state

    def test_jitter_draws_are_seed_deterministic(self):
        config = TransportConfig(jitter="exponential", jitter_scale=0.5)

        def schedule(seed):
            transport = Transport(NODES, config=config, seed=seed)
            block = make_block()
            transport.broadcast(block, 0, sender="n0")
            return list(transport.realized_delays)

        assert schedule(1234) == schedule(1234)
        assert schedule(1234) != schedule(4321)

    def test_transport_seed_is_stable_and_domain_separated(self):
        assert transport_seed("protocol-1") == transport_seed("protocol-1")
        assert transport_seed("protocol-1") != transport_seed("protocol-2")


# ----------------------------------------------------------------------
# Run-level observables and bookkeeping
# ----------------------------------------------------------------------


class TestRunObservables:
    def test_delay_distribution_quantiles(self):
        scenario = get_scenario("protocol-wan", total_slots=40)
        result = scenario.build_simulation("protocol-77").run()
        distribution = result.delay_distribution()
        assert distribution.count == len(
            result.simulation.network.realized_delays
        )
        assert distribution.count > 0
        assert (
            0.0
            < distribution.p50
            <= distribution.p90
            <= distribution.p99
            <= distribution.maximum
        )
        assert distribution.delta == scenario.delta
        # Δ=2 hold + ≥0.4-slot transit on every link ⇒ everything exceeds Δ.
        assert distribution.exceedance_rate == 1.0

    def test_slot_model_never_exceeds_delta(self):
        scenario = get_scenario("protocol-delta", total_slots=40)
        result = scenario.build_simulation("protocol-77").run()
        distribution = result.delay_distribution()
        assert distribution.count > 0
        assert distribution.exceedance_rate == 0.0
        assert distribution.maximum <= scenario.delta

    def test_empty_sample_collapses_to_zeros(self):
        scenario = get_scenario(
            "protocol-honest", activity=0.01, total_slots=2, target_slot=1,
            depth=1,
        )
        result = scenario.build_simulation("protocol-quiet").run()
        if result.simulation.network.realized_delays:
            pytest.skip("this seed minted a block after all")
        distribution = result.delay_distribution()
        assert distribution.count == 0
        assert distribution.mean == 0.0
        assert distribution.exceedance_rate == 0.0

    def test_long_transit_is_drained_by_the_end_of_run(self):
        """Latency ≫ Δ: the final drain still empties the network."""
        scenario = get_scenario(
            "protocol-wan",
            latency=5.0,
            jitter="fixed",
            jitter_scale=0.0,
            bandwidth=0.0,
            topology="ring",
            total_slots=30,
        )
        result = scenario.build_simulation("protocol-13").run()
        assert result.simulation.network.pending_count() == 0

    def test_scenario_rejects_transport_fields_on_slot_network(self):
        with pytest.raises(ValueError, match='require network="wan"'):
            ProtocolScenario(name="bad", latency=0.5)

    def test_scenario_rejects_unknown_axes(self):
        with pytest.raises(ValueError, match="unknown network"):
            ProtocolScenario(name="bad", network="carrier-pigeon")
        with pytest.raises(ValueError, match="unknown topology"):
            ProtocolScenario(
                name="bad", network="wan", topology="torus"
            )
        with pytest.raises(ValueError, match="unknown jitter"):
            ProtocolScenario(name="bad", network="wan", jitter="pareto")
        with pytest.raises(ValueError, match="edge_probability"):
            TransportConfig(edge_probability=1.5)
        with pytest.raises(ValueError, match="latency"):
            TransportConfig(latency=-1.0)
