"""Stake-weighted leader election and induced symbol probabilities."""

import math

import pytest

from repro.core.distributions import sample_characteristic_string
from repro.protocol.leader import (
    LeaderSchedule,
    Party,
    StakeDistribution,
    VrfLeaderElection,
    induced_slot_probabilities,
    phi,
)


class TestStakeDistribution:
    def test_relative_stake(self):
        stakes = StakeDistribution(
            [Party("a", 3.0), Party("b", 1.0, corrupted=True)]
        )
        assert stakes.relative_stake(stakes.parties[0]) == pytest.approx(0.75)
        assert stakes.adversarial_stake_fraction() == pytest.approx(0.25)

    def test_uniform_builder(self):
        stakes = StakeDistribution.uniform(3, 2)
        assert len(stakes.parties) == 5
        assert stakes.adversarial_stake_fraction() == pytest.approx(0.4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            StakeDistribution([Party("a", 1.0), Party("a", 2.0)])

    def test_zero_total_stake_rejected(self):
        with pytest.raises(ValueError):
            StakeDistribution([Party("a", 0.0)])


class TestPhi:
    def test_full_stake_gets_activity(self):
        assert phi(0.3, 1.0) == pytest.approx(0.3)

    def test_zero_stake_never_leads(self):
        assert phi(0.3, 0.0) == 0.0

    def test_independent_aggregation(self):
        """1 − φ(σ₁ + σ₂) = (1 − φ(σ₁))(1 − φ(σ₂)) — Praos's key identity."""
        f = 0.2
        lhs = 1 - phi(f, 0.3 + 0.5)
        rhs = (1 - phi(f, 0.3)) * (1 - phi(f, 0.5))
        assert lhs == pytest.approx(rhs)


class TestElection:
    def test_leaders_deterministic(self):
        stakes = StakeDistribution.uniform(4, 1)
        election = VrfLeaderElection(stakes, 0.5)
        assert [p.name for p in election.leaders(9)] == [
            p.name for p in election.leaders(9)
        ]

    def test_eligibility_consistent_with_leaders(self):
        stakes = StakeDistribution.uniform(4, 1)
        election = VrfLeaderElection(stakes, 0.5)
        for slot in range(1, 20):
            leaders = {p.name for p in election.leaders(slot)}
            for party in stakes.parties:
                eligible, _value, _proof = election.eligibility(party, slot)
                assert (party.name in leaders) == eligible

    def test_empty_slot_probability(self):
        """Pr[nobody leads] = 1 − f exactly, via φ aggregation."""
        stakes = StakeDistribution.uniform(6, 2)
        activity = 0.25
        election = VrfLeaderElection(stakes, activity)
        empty = sum(
            1 for slot in range(1, 4001) if not election.leaders(slot)
        )
        assert abs(empty / 4000 - (1 - activity)) < 0.025


class TestSchedule:
    def test_symbols(self):
        honest_a = Party("a", 1.0)
        honest_b = Party("b", 1.0)
        corrupt = Party("c", 1.0, corrupted=True)
        schedule = LeaderSchedule(
            {
                1: [honest_a],
                2: [honest_a, honest_b],
                3: [honest_a, corrupt],
                4: [],
            }
        )
        assert schedule.characteristic_string() == "hHA."

    def test_length(self):
        schedule = LeaderSchedule({1: [], 2: []})
        assert len(schedule) == 2


class TestInducedProbabilities:
    def test_sums_to_one(self):
        stakes = StakeDistribution.uniform(5, 3)
        probs = induced_slot_probabilities(stakes, 0.3)
        assert math.isclose(sum(probs.as_tuple()), 1.0)

    def test_empty_probability_is_one_minus_activity(self):
        stakes = StakeDistribution.uniform(5, 3)
        probs = induced_slot_probabilities(stakes, 0.3)
        assert probs.p_empty == pytest.approx(0.7)

    def test_no_corrupted_parties_no_adversarial_slots(self):
        stakes = StakeDistribution.uniform(5, 0)
        probs = induced_slot_probabilities(stakes, 0.3)
        assert probs.p_adversarial == 0.0

    def test_matches_simulated_schedule(self):
        """Materialised schedules follow the exact induced law."""
        stakes = StakeDistribution.uniform(6, 2)
        activity = 0.4
        probs = induced_slot_probabilities(stakes, activity)
        election = VrfLeaderElection(stakes, activity)
        schedule = election.schedule(5000)
        word = schedule.characteristic_string()
        for symbol, expected in (
            ("h", probs.p_unique),
            ("H", probs.p_multi),
            ("A", probs.p_adversarial),
            (".", probs.p_empty),
        ):
            assert abs(word.count(symbol) / 5000 - expected) < 0.03

    def test_more_corruption_more_adversarial_slots(self):
        values = []
        for corrupted in (0, 2, 4):
            stakes = StakeDistribution.uniform(8 - corrupted, corrupted)
            values.append(
                induced_slot_probabilities(stakes, 0.3).p_adversarial
            )
        assert values == sorted(values)
