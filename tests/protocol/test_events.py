"""Property suite for the discrete-event core (ISSUE 7 satellite 1).

Hypothesis-generated workloads pin the :class:`EventScheduler` contract:
no event is ever lost or duplicated, served times are monotone
non-decreasing (per queue, hence per recipient in the transport), events
at the same instant drain in exact insertion order via their ``sequence``
stamp, and a schedule — including the transport's seeded jitter draws —
replays bit-identically under the same seed.

The CI profile (``tests/conftest.py``) is derandomized with a fixed
example budget, so these tests are deterministic regressions, not
fuzzing.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocol.events import EventScheduler
from repro.protocol.transport import TransportConfig, sample_jitter

#: Finite, non-negative event times with plenty of exact collisions
#: (integers are drawn often, and floats quantize to a coarse lattice).
times = st.one_of(
    st.integers(min_value=0, max_value=12).map(float),
    st.floats(
        min_value=0.0,
        max_value=12.0,
        allow_nan=False,
        allow_infinity=False,
    ).map(lambda t: round(t * 4) / 4),
)

#: A workload: the event times to schedule, in insertion order.
workloads = st.lists(times, min_size=0, max_size=60)

#: Interleavings: after scheduling each event, optionally drain up to a
#: bound (None = keep scheduling).
drain_bounds = st.lists(
    st.one_of(st.none(), times), min_size=0, max_size=60
)


def drain_all(scheduler: EventScheduler):
    served = []
    while len(scheduler):
        served.append(scheduler.pop())
    return served


class TestConservation:
    @given(workloads)
    def test_no_loss_no_duplication(self, schedule_times):
        """Every scheduled payload is served exactly once."""
        scheduler = EventScheduler()
        for i, t in enumerate(schedule_times):
            scheduler.schedule(t, i)
        served = drain_all(scheduler)
        assert sorted(e.payload for e in served) == list(
            range(len(schedule_times))
        )
        assert len(scheduler) == 0

    @given(workloads, drain_bounds)
    def test_conservation_under_interleaved_drains(
        self, schedule_times, bounds
    ):
        """Partial drains between schedules still conserve every event."""
        scheduler = EventScheduler()
        served = []
        for i, t in enumerate(schedule_times):
            scheduler.schedule(t, i)
            if i < len(bounds) and bounds[i] is not None:
                served.extend(scheduler.pop_until(bounds[i]))
        served.extend(drain_all(scheduler))
        assert sorted(e.payload for e in served) == list(
            range(len(schedule_times))
        )


class TestOrdering:
    @given(workloads)
    def test_served_times_monotone(self, schedule_times):
        """Service order is by time: never backwards."""
        scheduler = EventScheduler()
        for i, t in enumerate(schedule_times):
            scheduler.schedule(t, i)
        served = drain_all(scheduler)
        for earlier, later in zip(served, served[1:]):
            assert earlier.time <= later.time

    @given(workloads, drain_bounds)
    def test_served_times_monotone_across_drains(
        self, schedule_times, bounds
    ):
        """Monotonicity survives interleaved schedules and drains.

        The clock clamps late schedules forward, so even an adversarial
        interleaving cannot deliver into the past.
        """
        scheduler = EventScheduler()
        served = []
        for i, t in enumerate(schedule_times):
            scheduler.schedule(t, i)
            if i < len(bounds) and bounds[i] is not None:
                served.extend(scheduler.pop_until(bounds[i]))
        served.extend(drain_all(scheduler))
        for earlier, later in zip(served, served[1:]):
            assert earlier.time <= later.time

    @given(workloads)
    def test_equal_time_events_preserve_insertion_order(self, schedule_times):
        """Within one instant, events drain in exact insertion order."""
        scheduler = EventScheduler()
        for i, t in enumerate(schedule_times):
            scheduler.schedule(t, i)
        served = drain_all(scheduler)
        for earlier, later in zip(served, served[1:]):
            if earlier.time == later.time:
                assert earlier.sequence < later.sequence
                assert earlier.payload < later.payload  # insertion index

    @given(st.integers(min_value=1, max_value=40))
    def test_value_equal_payloads_stay_distinct(self, copies):
        """Identical (time, payload) pairs are distinct schedule entries."""
        scheduler = EventScheduler()
        for _ in range(copies):
            scheduler.schedule(1.0, "same")
        served = drain_all(scheduler)
        assert len(served) == copies
        assert [e.sequence for e in served] == sorted(
            e.sequence for e in served
        )


class TestClock:
    @given(workloads, drain_bounds)
    def test_clock_never_decreases(self, schedule_times, bounds):
        scheduler = EventScheduler()
        last = scheduler.now
        for i, t in enumerate(schedule_times):
            scheduler.schedule(t, i)
            assert scheduler.now >= last
            last = scheduler.now
            if i < len(bounds) and bounds[i] is not None:
                scheduler.pop_until(bounds[i])
                assert scheduler.now >= last
                last = scheduler.now
        while len(scheduler):
            scheduler.pop()
            assert scheduler.now >= last
            last = scheduler.now

    @given(workloads)
    def test_schedule_behind_the_clock_is_clamped(self, schedule_times):
        """A late schedule lands at ``now``, never in the past."""
        scheduler = EventScheduler()
        scheduler.pop_until(50.0)  # advance the clock past every time
        for i, t in enumerate(schedule_times):
            event = scheduler.schedule(t, i)
            assert event.time == 50.0
        for event in drain_all(scheduler):
            assert event.time == 50.0

    def test_pop_until_bound_is_exclusive(self):
        """Slot semantics: an event at exactly the bound stays pending."""
        scheduler = EventScheduler()
        scheduler.schedule(2.0, "at-bound")
        scheduler.schedule(1.999, "inside")
        assert [e.payload for e in scheduler.pop_until(2.0)] == ["inside"]
        assert len(scheduler) == 1
        assert [e.payload for e in scheduler.pop_until(3.0)] == ["at-bound"]

    def test_rejects_non_finite_times(self):
        scheduler = EventScheduler()
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(ValueError):
                scheduler.schedule(bad, None)
            with pytest.raises(ValueError):
                scheduler.pop_until(bad)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventScheduler().pop()
        assert EventScheduler().peek_time() is None


class TestReplay:
    @given(workloads, drain_bounds)
    def test_schedule_replays_bit_identically(self, schedule_times, bounds):
        """The same call sequence yields the same served sequence, exactly."""

        def execute():
            scheduler = EventScheduler()
            served = []
            for i, t in enumerate(schedule_times):
                scheduler.schedule(t, i)
                if i < len(bounds) and bounds[i] is not None:
                    served.extend(scheduler.pop_until(bounds[i]))
            served.extend(drain_all(scheduler))
            return [(e.time, e.sequence, e.payload) for e in served]

        assert execute() == execute()

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from(["uniform", "exponential"]),
        st.integers(min_value=1, max_value=30),
    )
    def test_seeded_jitter_schedule_replays_bit_identically(
        self, seed, jitter, draws
    ):
        """Stochastic delays re-run bit-identically under the same seed.

        This is the full transport recipe: sample from a seeded
        generator, schedule at clock + draw — the scheduler itself stays
        deterministic, so the whole schedule is a pure function of the
        seed.
        """
        config = TransportConfig(
            jitter=jitter, jitter_scale=0.5, jitter_cap=2.0
        )

        def execute():
            generator = np.random.default_rng(seed)
            scheduler = EventScheduler()
            for i in range(draws):
                delay = sample_jitter(config, generator)
                assert 0.0 <= delay <= config.exponential_cap
                scheduler.schedule(float(i % 5) + delay, i)
            return [
                (e.time, e.sequence, e.payload) for e in drain_all(scheduler)
            ]

        first = execute()
        assert first == execute()
        assert len(first) == draws
