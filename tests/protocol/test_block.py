"""Blocks and block trees (the ledger layer)."""

import pytest

from repro.protocol.block import Block, BlockTree, genesis_block


def chain_of(tree: BlockTree, *slots: int) -> list[Block]:
    """Append a chain of unsigned test blocks at the given slots."""
    parent = tree.genesis_hash
    blocks = []
    for slot in slots:
        block = Block(slot=slot, parent_hash=parent, issuer=f"issuer-{slot}")
        assert tree.add_block(block)
        blocks.append(block)
        parent = block.block_hash
    return blocks


class TestBlock:
    def test_hash_commits_to_content(self):
        a = Block(1, "p", "i", payload="x")
        b = Block(1, "p", "i", payload="y")
        assert a.block_hash != b.block_hash

    def test_hash_commits_to_parent(self):
        a = Block(1, "p1", "i")
        b = Block(1, "p2", "i")
        assert a.block_hash != b.block_hash

    def test_signature_not_part_of_hash(self):
        """The signature covers the header; the hash covers the content."""
        unsigned = Block(1, "p", "i")
        signed = Block(1, "p", "i", signature="sig")
        assert unsigned.block_hash == signed.block_hash

    def test_genesis(self):
        genesis = genesis_block()
        assert genesis.slot == 0
        assert genesis.parent_hash == ""


class TestBlockTree:
    def test_initial_state(self):
        tree = BlockTree()
        assert len(tree) == 1
        assert tree.max_depth() == 0

    def test_chain_growth(self):
        tree = BlockTree()
        chain_of(tree, 1, 2, 5)
        assert tree.max_depth() == 3
        tip = tree.longest_tips()[0]
        assert tree.chain_slots(tip) == [0, 1, 2, 5]

    def test_unknown_parent_rejected(self):
        tree = BlockTree()
        orphan = Block(3, "missing", "i")
        assert not tree.add_block(orphan)
        assert orphan.block_hash not in tree

    def test_non_increasing_slot_rejected(self):
        tree = BlockTree()
        blocks = chain_of(tree, 4)
        sibling = Block(4, blocks[0].block_hash, "j")
        assert not tree.add_block(sibling)

    def test_add_is_idempotent(self):
        tree = BlockTree()
        block = Block(1, tree.genesis_hash, "i")
        assert tree.add_block(block)
        assert tree.add_block(block)
        assert len(tree) == 2

    def test_forked_tips(self):
        tree = BlockTree()
        a = Block(1, tree.genesis_hash, "a")
        b = Block(1, tree.genesis_hash, "b")
        tree.add_block(a)
        tree.add_block(b)
        assert len(tree.tips()) == 2
        assert set(tree.longest_tips()) == {a.block_hash, b.block_hash}

    def test_common_prefix_slot(self):
        tree = BlockTree()
        trunk = chain_of(tree, 1, 2)
        left = Block(3, trunk[-1].block_hash, "l")
        right = Block(4, trunk[-1].block_hash, "r")
        tree.add_block(left)
        tree.add_block(right)
        assert tree.common_prefix_slot(left.block_hash, right.block_hash) == 2
        assert tree.common_prefix_slot(left.block_hash, left.block_hash) == 3

    def test_prefix_hash_at_slot(self):
        tree = BlockTree()
        blocks = chain_of(tree, 1, 3, 7)
        tip = blocks[-1].block_hash
        assert tree.prefix_hash_at_slot(tip, 0) == tree.genesis_hash
        assert tree.prefix_hash_at_slot(tip, 3) == blocks[1].block_hash
        assert tree.prefix_hash_at_slot(tip, 6) == blocks[1].block_hash
        assert tree.prefix_hash_at_slot(tip, 7) == tip

    def test_depth_bookkeeping(self):
        tree = BlockTree()
        blocks = chain_of(tree, 2, 4)
        assert tree.depth(tree.genesis_hash) == 0
        assert tree.depth(blocks[0].block_hash) == 1
        assert tree.depth(blocks[1].block_hash) == 2
