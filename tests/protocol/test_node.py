"""Honest nodes: validation, chain selection, minting."""

import pytest

from repro.protocol.block import Block
from repro.protocol.crypto import IdealSignatureScheme
from repro.protocol.node import HonestNode
from repro.protocol.tiebreak import adversarial_order_rule, consistent_hash_rule


@pytest.fixture()
def scheme():
    return IdealSignatureScheme()


def make_node(scheme, rule=adversarial_order_rule, accept_all=True):
    keypair = scheme.generate_keypair()
    check = (lambda issuer, slot, proof: accept_all) if isinstance(
        accept_all, bool
    ) else accept_all
    return HonestNode("node", keypair, scheme, rule, check)


def signed_block(scheme, keypair, slot, parent_hash, payload=""):
    draft = Block(slot, parent_hash, keypair.public, payload, "proof")
    signature = scheme.sign(keypair, draft.header())
    return Block(slot, parent_hash, keypair.public, payload, "proof", signature)


class TestReceive:
    def test_valid_block_accepted(self, scheme):
        node = make_node(scheme)
        producer = scheme.generate_keypair()
        block = signed_block(scheme, producer, 1, node.tree.genesis_hash)
        assert node.receive(block)
        assert block.block_hash in node.tree

    def test_bad_signature_dropped(self, scheme):
        node = make_node(scheme)
        producer = scheme.generate_keypair()
        block = Block(1, node.tree.genesis_hash, producer.public, "", "p", "bad")
        assert not node.receive(block)
        assert block.block_hash not in node.tree

    def test_ineligible_issuer_dropped(self, scheme):
        node = make_node(scheme, accept_all=lambda i, s, p: False)
        producer = scheme.generate_keypair()
        block = signed_block(scheme, producer, 1, node.tree.genesis_hash)
        assert not node.receive(block)

    def test_fake_genesis_rejected(self, scheme):
        node = make_node(scheme)
        assert not node.receive(Block(0, "", "someone"))

    def test_orphan_reconnected_on_parent_arrival(self, scheme):
        """The network may reorder: children arriving first are buffered."""
        node = make_node(scheme)
        producer = scheme.generate_keypair()
        parent = signed_block(scheme, producer, 1, node.tree.genesis_hash)
        child = signed_block(scheme, producer, 2, parent.block_hash)
        assert not node.receive(child)  # parent unknown: orphaned
        assert node.receive(parent)  # drains the orphan too
        assert child.block_hash in node.tree
        assert node.best_chain_depth() == 2


class TestChainSelection:
    def test_longest_chain_wins(self, scheme):
        node = make_node(scheme)
        producer = scheme.generate_keypair()
        a = signed_block(scheme, producer, 1, node.tree.genesis_hash)
        b1 = signed_block(scheme, producer, 2, node.tree.genesis_hash)
        b2 = signed_block(scheme, producer, 3, b1.block_hash)
        for block in (a, b1, b2):
            node.receive(block)
        assert node.best_tip() == b2.block_hash

    def test_tie_breaks_by_arrival_order(self, scheme):
        node = make_node(scheme, rule=adversarial_order_rule)
        producer = scheme.generate_keypair()
        first = signed_block(scheme, producer, 1, node.tree.genesis_hash, "1")
        second = signed_block(scheme, producer, 2, node.tree.genesis_hash, "2")
        node.receive(first)
        node.receive(second)
        assert node.best_tip() == first.block_hash

    def test_consistent_rule_ignores_arrival(self, scheme):
        producer = scheme.generate_keypair()
        tips = {}
        for order in ("ab", "ba"):
            node = make_node(scheme, rule=consistent_hash_rule)
            a = signed_block(scheme, producer, 1, node.tree.genesis_hash, "a")
            b = signed_block(scheme, producer, 2, node.tree.genesis_hash, "b")
            for label in order:
                node.receive(a if label == "a" else b)
            tips[order] = node.best_tip()
        assert tips["ab"] == tips["ba"]


class TestMinting:
    def test_minted_block_extends_best_chain(self, scheme):
        node = make_node(scheme)
        producer = scheme.generate_keypair()
        base = signed_block(scheme, producer, 1, node.tree.genesis_hash)
        node.receive(base)
        block = node.mint_block(2, "proof")
        assert block.parent_hash == base.block_hash
        assert node.best_tip() == block.block_hash

    def test_minted_block_is_well_signed(self, scheme):
        node = make_node(scheme)
        block = node.mint_block(1, "proof")
        assert scheme.verify(
            node.keypair.public, block.header(), block.signature
        )
