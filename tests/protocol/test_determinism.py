"""Protocol determinism: repeats, execution modes, drains, predicates.

The layer-5 contract mirrors the engine determinism suite
(``tests/engine/test_parallel.py``): a protocol run is a pure function
of its configuration and randomness string — identical across repeats,
identical between the reference and shared-validation execution modes,
and (through the runner) identical for every worker count.  The
``*_scalar`` measurement oracles must agree with the hash-indexed
predicates on adversarial executions, and the bucketed network must be
fully drained by the end-of-run flush for every Δ.
"""

import pytest

from repro.engine.protocol import (
    ProtocolRunner,
    ProtocolScenario,
    protocol_cp_violation,
    protocol_deep_reorg,
    protocol_settlement_violation,
    run_protocol_scalar,
)
from repro.engine.scenarios import get_scenario
from repro.protocol.adversary import (
    MaxDelayAdversary,
    PrivateChainAdversary,
    SplitAdversary,
)
from repro.protocol.leader import StakeDistribution
from repro.protocol.simulation import Simulation


def make_adversary(kind: str, delta: int = 0):
    if kind == "private-chain":
        return PrivateChainAdversary(target_slot=10, hold=4, patience=40)
    if kind == "split":
        return SplitAdversary()
    if kind == "max-delay":
        return MaxDelayAdversary(max_delay=delta)
    return None


def run_once(kind: str = "private-chain", shared: bool = False, delta: int = 0):
    corrupted = 4 if kind == "private-chain" else 0
    return Simulation(
        StakeDistribution.uniform(6, corrupted),
        activity=0.5,
        total_slots=60,
        delta=delta,
        adversary=make_adversary(kind, delta),
        randomness="determinism-seed",
        shared_validation=shared,
    ).run()


def snapshot(result):
    """Everything observable about a run, for bit-identity comparison."""
    return (
        result.characteristic_string,
        [(r.slot, r.symbol, r.adopted_tips) for r in result.records],
        sorted(b.block_hash for b in result.union_tree().all_blocks()),
    )


class TestFixedSeedRepeats:
    @pytest.mark.parametrize("kind", ["null", "private-chain", "split"])
    def test_bit_identical_across_repeats(self, kind):
        assert snapshot(run_once(kind)) == snapshot(run_once(kind))

    @pytest.mark.parametrize("kind", ["null", "private-chain", "split"])
    def test_shared_validation_mode_changes_nothing(self, kind):
        reference = run_once(kind, shared=False)
        batched = run_once(kind, shared=True)
        assert snapshot(reference) == snapshot(batched)

    def test_delta_run_identical_across_modes(self):
        reference = run_once("max-delay", shared=False, delta=3)
        batched = run_once("max-delay", shared=True, delta=3)
        assert snapshot(reference) == snapshot(batched)


class TestFinalDrain:
    @pytest.mark.parametrize("delta", [0, 1, 3])
    def test_nothing_pending_after_run(self, delta):
        simulation = Simulation(
            StakeDistribution.uniform(6, 0),
            activity=0.5,
            total_slots=40,
            delta=delta,
            adversary=MaxDelayAdversary(max_delay=delta),
            randomness=f"drain-{delta}",
        )
        simulation.run()
        assert simulation.network.pending_count() == 0


class TestScalarOracles:
    """Hash-indexed predicates ≡ the chain-walking scalar algorithms."""

    @pytest.mark.parametrize("kind", ["private-chain", "split"])
    @pytest.mark.parametrize("seed", range(3))
    def test_predicates_agree_on_adversarial_runs(self, kind, seed):
        corrupted = 4 if kind == "private-chain" else 0
        result = Simulation(
            StakeDistribution.uniform(6, corrupted),
            activity=0.6,
            total_slots=60,
            adversary=make_adversary(kind),
            randomness=f"oracle-{kind}-{seed}",
        ).run()
        for target, depth in ((10, 4), (5, 10), (20, 2)):
            assert result.settlement_violation(
                target, depth
            ) == result.settlement_violation_scalar(target, depth)
        for depth in (2, 5, 10):
            assert result.cp_slot_violation(
                depth
            ) == result.cp_slot_violation_scalar(depth)
        assert result.max_reorg_depth() == result.max_reorg_depth_scalar()


class TestRunnerBackendIndependence:
    """Batched protocol runs: serial ≡ 2 ≡ 4 workers ≡ scalar oracle."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return get_scenario("protocol-split", total_slots=40)

    @pytest.fixture(scope="class")
    def serial(self, scenario):
        return ProtocolRunner(scenario, chunk_size=4).run(12, seed=99)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_across_worker_counts(self, scenario, serial, workers):
        runner = ProtocolRunner(scenario, chunk_size=4, workers=workers)
        assert runner.run(12, seed=99) == serial

    def test_scalar_oracle_matches(self, scenario, serial):
        assert run_protocol_scalar(scenario, 12, seed=99, chunk_size=4) == serial

    @pytest.mark.parametrize(
        "estimator",
        [
            protocol_settlement_violation,
            protocol_cp_violation,
            protocol_deep_reorg,
        ],
    )
    def test_every_estimator_has_matching_scalar_twin(
        self, scenario, estimator
    ):
        batched = ProtocolRunner(
            scenario, estimator=estimator, chunk_size=4
        ).run(8, seed=5)
        scalar = run_protocol_scalar(
            scenario, 8, seed=5, chunk_size=4, estimator=estimator
        )
        assert batched == scalar
