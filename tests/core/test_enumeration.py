"""Exhaustive fork enumeration sanity (the ground-truth machinery itself)."""

import pytest

from repro.core.enumeration import canonical_form, enumerate_forks
from repro.core.forks import Fork


class TestEnumeration:
    def test_empty_string_single_trivial_fork(self):
        forks = enumerate_forks("")
        assert len(forks) == 1
        assert len(forks[0]) == 1

    def test_single_unique_honest(self):
        forks = enumerate_forks("h")
        assert len(forks) == 1
        assert forks[0].height == 1

    def test_single_multiply_honest_with_cap_two(self):
        forks = enumerate_forks("H", max_multi_vertices=2)
        # one or two sibling vertices labelled 1
        assert len(forks) == 2

    def test_single_adversarial_closed_only_trivial(self):
        forks = enumerate_forks("A")
        assert len(forks) == 1
        assert forks[0].height == 0

    def test_adversarial_leaves_pruned_by_closed_filter(self):
        closed = enumerate_forks("Ah", closed_only=True)
        mixed = enumerate_forks("Ah", closed_only=False)
        assert len(mixed) > len(closed)
        assert all(f.is_closed() for f in closed)

    def test_all_enumerated_forks_are_valid(self):
        for word in ("hA", "Hh", "AAh", "hHA", "AhHA"):
            for fork in enumerate_forks(word, 2, 2):
                fork.validate()

    def test_f4_respected_under_enumeration(self):
        # 'hh' forces a chain: the only fork is linear
        forks = enumerate_forks("hh")
        assert len(forks) == 1
        assert forks[0].height == 2

    def test_canonical_form_deduplicates(self):
        first = Fork("H")
        first.add_vertex(first.root, 1)
        second = Fork("H")
        second.add_vertex(second.root, 1)
        assert canonical_form(first) == canonical_form(second)

    def test_canonical_form_distinguishes_shape(self):
        chain = Fork("hA")
        v1 = chain.add_vertex(chain.root, 1)
        chain.add_vertex(v1, 2)
        split = Fork("hA")
        split.add_vertex(split.root, 1)
        split.add_vertex(split.root, 2)
        assert canonical_form(chain) != canonical_form(split)

    def test_fork_counts_grow_with_adversarial_freedom(self):
        fewer = enumerate_forks("hAh", max_adversarial_vertices=1)
        more = enumerate_forks("hAh", max_adversarial_vertices=2)
        assert len(more) >= len(fewer)
